//! Zero-copy-style engine snapshots: build once, load many.
//!
//! Building the Voronoi substrate dominates cold-start time — the
//! Delaunay/regular triangulation is orders of magnitude more expensive
//! than any secondary index. A **snapshot** persists the built
//! triangulation (and everything else the answer depends on) as flat
//! little-endian POD arrays in a versioned, checksummed, page-aligned
//! container file, so a serving process reaches its first answer by
//! *reading* instead of *rebuilding*. Loads hand the flat arrays
//! straight back to [`Triangulation::from_flat`] without per-element
//! decoding; the cheap, deterministic secondary structures (R-tree,
//! kd-tree, quadtree, hidden-site index) are rebuilt from the persisted
//! [`IndexConfig`] so a loaded engine is **bit-identical** to a freshly
//! built one — same indices, same [`QueryStats`](crate::QueryStats)
//! work counters on every execution path.
//!
//! # Container layout
//!
//! ```text
//! page 0 (4096 B)   header
//!   0   magic      u64   "VAQSNAP1" read as little-endian u64
//!   8   version    u32   SNAPSHOT_VERSION
//!   12  kind       u32   1 = plain, 2 = sharded, 3 = dynamic
//!   16  layout     u64   layout_fingerprint() of this build
//!   24  file_len   u64   total container size in bytes
//!   32  sections   u64   section count
//!   40  table_sum  u64   checksum64 of the section table bytes
//!   48  git_rev    24 B  zero-padded ASCII (save-time git revision)
//!   72  params     56 B  zero-padded ASCII (save-time build params)
//!   128 section table: per section {tag u64, offset u64, len u64,
//!       checksum u64} — offsets are 4096-aligned
//! page 1..         section payloads, each starting on a page boundary
//! ```
//!
//! Every section is independently checksummed; loads validate magic,
//! version, layout fingerprint, file length and all checksums before
//! touching a payload byte, and reject truncated or corrupted files
//! with a specific [`SnapshotError`]. The **layout fingerprint** hashes
//! a textual description of the flat layout — any change to the
//! serialized struct layouts changes the fingerprint, and a guard test
//! forces a [`SNAPSHOT_VERSION`] bump alongside it.
//!
//! # What is persisted per kind
//!
//! * **Plain** ([`AreaQueryEngine`]): points, the triangulation's flat
//!   arrays ([`TriangulationFlat`]: mesh slots + free list, adjacency
//!   CSR, hull, weights, hidden/anchor tables), payload record pages,
//!   the planner's density map and the [`IndexConfig`].
//! * **Sharded** ([`ShardedAreaQueryEngine`]): the kd-partition
//!   metadata plus **one independently loadable section per shard**
//!   (its global-id table and a nested engine blob), and the planner's
//!   calibration ratios, so a loaded engine resumes with the
//!   calibration it had learned.
//! * **Dynamic** ([`DynamicAreaQueryEngine`]): the base engine blob
//!   plus the overlay **as data** — id/weight tables, the delta
//!   buffer, tombstones and the id counter are stored and replayed on
//!   load, not re-executed as operations.

use crate::dynamic::DynamicAreaQueryEngine;
use crate::engine::{AreaQueryEngine, IndexConfig};
use crate::payload::RecordStore;
use crate::plan::DensityMap;
use crate::shard::ShardedAreaQueryEngine;
use std::collections::HashSet;
use std::fmt;
use std::path::Path;
use vaq_delaunay::mesh::Tri;
use vaq_delaunay::{DiagramKind, Triangulation, TriangulationFlat};
use vaq_geom::{Point, Rect};
use vaq_rtree::{RTree, RTreeRaw, SplitAlgorithm};

/// The container magic: the bytes `VAQSNAP1` read as a little-endian
/// `u64`. A byte-swapped magic identifies a container written on a
/// wrong-endian machine ([`SnapshotError::WrongEndian`]).
pub const SNAPSHOT_MAGIC: u64 = u64::from_le_bytes(*b"VAQSNAP1");

/// Current container format version. Bump on **any** change to the
/// header, section or flat-array layouts (the layout-fingerprint guard
/// test enforces the coupling).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Section payloads (and the first section) start on multiples of this.
pub const SNAPSHOT_PAGE: usize = 4096;

/// Size of the fixed header fields preceding the section table.
const HEADER_FIXED: usize = 128;
/// Bytes per section-table entry: tag, offset, len, checksum.
const TABLE_ENTRY: usize = 32;
/// Header bytes reserved for the save-time git revision (ASCII).
const GIT_REV_BYTES: usize = 24;
/// Header bytes reserved for the save-time build parameters (ASCII).
const PARAMS_BYTES: usize = 56;

/// Section tag: the plain engine blob.
const TAG_ENGINE: u64 = 0x01;
/// Section tag: the dynamic engine's base blob.
const TAG_DYN_BASE: u64 = 0x10;
/// Section tag: the dynamic engine's overlay (ids, weights, delta,
/// tombstones, next id).
const TAG_DYN_OVERLAY: u64 = 0x11;
/// Section tag: the sharded engine's partition metadata.
const TAG_SH_META: u64 = 0x20;
/// Section tag base: shard `i` lives in section `TAG_SHARD + i`.
const TAG_SHARD: u64 = 0x1000;

/// A textual description of every serialized layout. The fingerprint in
/// the header is [`checksum64`] of this string, so any layout change —
/// reordering a field, widening a type, adding an array — changes the
/// fingerprint and old readers reject the file cleanly instead of
/// misparsing it. The guard test in this module pins the fingerprint:
/// editing this string (or the layouts it describes) without bumping
/// [`SNAPSHOT_VERSION`] fails the build's test suite.
const LAYOUT: &str = "vaq-snapshot layout v1:\
 header{magic:u64,version:u32,kind:u32,layout:u64,file_len:u64,sections:u64,\
table_sum:u64,git_rev:[u8;24],params:[u8;56]}\
 table{tag:u64,offset:u64,len:u64,checksum:u64}*\
 engine{points:[f64x2],tri?{canon_identity:u32,canon?:[u32],\
members_off?:[u32],members?:[u32],mesh_tris:[u32x6],mesh_free:[u32],\
adj_off:[u32],adj:[u32],\
hull:[u32],degenerate:u32,last_finite:u32,weights:[f64],hidden:[u32],\
anchor:[u32]},records?{record_bytes:u64,data:[u8]},\
density:[{min:f64x2,max:f64x2,count:f64}],\
config{rtree_fanout:u64,incremental:u32,algorithm:u32,kdtree:u32,quadtree:u32},\
straddlers?:[u8],rtree{levels:[u32],entry_offsets:[u32],entry_children:[u32],\
inner_rects:[f64],free:[u32],root:u32,len:u64,max_entries:u32,algorithm:u32}}\
 dyn_overlay{base_ids:[u64],base_weights:[f64],delta:[{id:u64,x:f64,y:f64,\
w:f64}],tombstones:[u64],next_id:u64}\
 sh_meta{len:u64,target_shards:u64,diagram:u32,calibration:[f64;3],\
shard_count:u64}\
 shard{global:[u32],engine:[u8]}";

/// The layout fingerprint of this build: [`checksum64`] over the
/// private `LAYOUT` description string. Stored in every header; a
/// mismatch on load is rejected as [`SnapshotError::LayoutMismatch`].
pub fn layout_fingerprint() -> u64 {
    checksum64(LAYOUT.as_bytes())
}

/// The container's checksum: four independent rotate–xor–multiply lanes
/// over 32-byte blocks (so the mix keeps up with section payloads tens
/// of megabytes long), folded together and run over the sub-block tail
/// as 8-byte little-endian words, the last word zero-padded. The byte
/// length is mixed in at the end, so zero-padding cannot alias two
/// inputs.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const K: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut lanes: [u64; 4] = [
        0x5641_5153_4E41_5031, // "VAQSNAP1"
        0xC2B2_AE3D_27D4_EB4F,
        0x1656_67B1_9E37_79F9,
        0x2545_F491_4F6C_DD1D,
    ];
    let mut blocks = bytes.chunks_exact(32);
    for b in &mut blocks {
        for (lane, wb) in lanes.iter_mut().zip(b.chunks_exact(8)) {
            let w = u64::from_le_bytes(wb.try_into().expect("chunks_exact(8) yields 8 bytes"));
            *lane = (lane.rotate_left(5) ^ w).wrapping_mul(K);
        }
    }
    let [l0, l1, l2, l3] = lanes;
    let mut h = l0;
    for lane in [l1, l2, l3] {
        h = (h.rotate_left(17) ^ lane).wrapping_mul(K);
    }
    let mut chunks = blocks.remainder().chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("chunks_exact(8) yields 8 bytes"));
        h = (h.rotate_left(5) ^ w).wrapping_mul(K);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h.rotate_left(5) ^ u64::from_le_bytes(tail)).wrapping_mul(K);
    }
    (h ^ bytes.len() as u64).wrapping_mul(K)
}

/// Which engine shape a snapshot holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotKind {
    /// One [`AreaQueryEngine`].
    Plain,
    /// One [`ShardedAreaQueryEngine`].
    Sharded,
    /// One [`DynamicAreaQueryEngine`] (base + overlay).
    Dynamic,
}

impl SnapshotKind {
    fn code(self) -> u32 {
        match self {
            SnapshotKind::Plain => 1,
            SnapshotKind::Sharded => 2,
            SnapshotKind::Dynamic => 3,
        }
    }

    fn from_code(code: u32) -> Option<SnapshotKind> {
        match code {
            1 => Some(SnapshotKind::Plain),
            2 => Some(SnapshotKind::Sharded),
            3 => Some(SnapshotKind::Dynamic),
            _ => None,
        }
    }
}

impl fmt::Display for SnapshotKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SnapshotKind::Plain => "plain",
            SnapshotKind::Sharded => "sharded",
            SnapshotKind::Dynamic => "dynamic",
        })
    }
}

/// Everything that can go wrong saving or loading a snapshot. Every
/// variant renders a clean, specific diagnostic; corrupted or truncated
/// files never panic and never misparse.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file read/write failed.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic {
        /// The 8 bytes found where the magic should be.
        found: u64,
    },
    /// The magic matches byte-swapped: the file was written on a
    /// machine of the opposite endianness.
    WrongEndian,
    /// The container's format version is not the one this build reads.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file's layout fingerprint differs from this build's — the
    /// flat layouts changed without a version bump, or the file is from
    /// an incompatible build.
    LayoutMismatch {
        /// Fingerprint stored in the file.
        found: u64,
        /// This build's fingerprint.
        expected: u64,
    },
    /// The file is shorter than its header or section table claims.
    Truncated {
        /// Bytes the container claims to span.
        needed: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A section's stored checksum does not match its bytes (section
    /// tag `0` means the section table itself).
    ChecksumMismatch {
        /// Tag of the failing section (`0` = section table).
        section: u64,
        /// Checksum stored in the table.
        stored: u64,
        /// Checksum recomputed from the bytes.
        computed: u64,
    },
    /// A section parsed but its contents violate the format (bad
    /// lengths, out-of-range codes, non-canonical structure).
    Malformed(String),
    /// The snapshot holds a different engine shape than the caller
    /// asked for.
    WrongKind {
        /// Kind stored in the file.
        found: SnapshotKind,
        /// Kind the caller requested.
        expected: SnapshotKind,
    },
    /// Sections are individually valid but mutually inconsistent
    /// (mismatched lengths, broken partition invariants).
    Inconsistent(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a vaq snapshot: bad magic {found:#018x}")
            }
            SnapshotError::WrongEndian => {
                write!(f, "snapshot was written on a different-endian machine")
            }
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            SnapshotError::LayoutMismatch { found, expected } => write!(
                f,
                "snapshot layout fingerprint {found:#018x} does not match this \
build's {expected:#018x}"
            ),
            SnapshotError::Truncated { needed, actual } => write!(
                f,
                "snapshot truncated: container spans {needed} bytes but only {actual} \
are present"
            ),
            SnapshotError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => {
                if *section == 0 {
                    write!(
                        f,
                        "section table checksum mismatch: stored {stored:#018x}, \
computed {computed:#018x}"
                    )
                } else {
                    write!(
                        f,
                        "section {section:#x} checksum mismatch: stored {stored:#018x}, \
computed {computed:#018x}"
                    )
                }
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::WrongKind { found, expected } => write!(
                f,
                "snapshot holds a {found} engine but a {expected} engine was requested"
            ),
            SnapshotError::Inconsistent(what) => write!(f, "inconsistent snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// Header-level facts about a snapshot, read without decoding any
/// section payload (see [`inspect`]).
#[derive(Clone, Debug)]
pub struct SnapshotInfo {
    /// The engine shape the container holds.
    pub kind: SnapshotKind,
    /// The container format version.
    pub version: u32,
    /// The git revision recorded at save time (`unknown` outside a
    /// work tree).
    pub git_revision: String,
    /// The build parameters recorded at save time.
    pub build_params: String,
    /// Total container size in bytes.
    pub file_len: u64,
    /// Number of sections.
    pub sections: usize,
}

/// Any engine loaded from a snapshot (see [`load`] / [`from_bytes`]).
// One value exists per load and it lives on the stack of the caller that
// immediately destructures it — the variant size gap never multiplies
// across a collection, so boxing would only add an indirection.
#[allow(clippy::large_enum_variant)]
pub enum LoadedEngine {
    /// A plain engine.
    Plain(AreaQueryEngine),
    /// A sharded engine.
    Sharded(ShardedAreaQueryEngine),
    /// A dynamic engine.
    Dynamic(DynamicAreaQueryEngine),
}

impl LoadedEngine {
    /// The shape of the loaded engine.
    pub fn kind(&self) -> SnapshotKind {
        match self {
            LoadedEngine::Plain(_) => SnapshotKind::Plain,
            LoadedEngine::Sharded(_) => SnapshotKind::Sharded,
            LoadedEngine::Dynamic(_) => SnapshotKind::Dynamic,
        }
    }
}

/// The git revision of the tree this process was started in, captured
/// at **save time** and embedded in the container header (provenance:
/// which code produced these flat arrays). `unknown` when the process
/// runs outside a git work tree.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The build parameters of the writer, embedded in the container header
/// next to the git revision: crate version and compile profile.
fn build_params() -> String {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    format!("pkg={} profile={}", env!("CARGO_PKG_VERSION"), profile)
}

fn align_page(n: usize) -> usize {
    n.div_ceil(SNAPSHOT_PAGE) * SNAPSHOT_PAGE
}

// ---------------------------------------------------------------------
// Section payload encoding: length-prefixed little-endian POD arrays.
// ---------------------------------------------------------------------

#[derive(Default)]
struct SecWriter {
    buf: Vec<u8>,
}

impl SecWriter {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    fn u32s(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        self.buf.reserve(v.len() * 4);
        for &x in v {
            self.u32(x);
        }
    }

    fn tris(&mut self, v: &[Tri]) {
        self.u64(v.len() as u64);
        self.buf.reserve(v.len() * 24);
        for t in v {
            for w in t.v.iter().chain(t.n.iter()) {
                self.buf.extend_from_slice(&w.to_le_bytes());
            }
        }
    }

    fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }

    fn f64s(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }

    fn bools(&mut self, v: &[bool]) {
        self.u64(v.len() as u64);
        self.buf.extend(v.iter().map(|&b| b as u8));
    }
}

struct SecReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SecReader<'a> {
    fn new(buf: &'a [u8]) -> SecReader<'a> {
        SecReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SnapshotError::Malformed("section payload underrun".to_string()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("take(4)")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("take(8)")))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("take(8)")))
    }

    /// Reads a length prefix and proves `len * elem_bytes` more payload
    /// bytes exist, so corrupted prefixes cannot trigger huge
    /// allocations.
    fn len(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let n: usize = n
            .try_into()
            .map_err(|_| SnapshotError::Malformed("array length overflows usize".to_string()))?;
        let bytes = n
            .checked_mul(elem_bytes)
            .ok_or_else(|| SnapshotError::Malformed("array byte size overflows".to_string()))?;
        if bytes > self.buf.len() - self.pos {
            return Err(SnapshotError::Malformed(
                "array length exceeds section payload".to_string(),
            ));
        }
        Ok(n)
    }

    fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.len(1)?;
        self.take(n)
    }

    fn u32s(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.len(4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
            .collect())
    }

    /// Bulk-decodes interleaved `x y` coordinate pairs; one streaming
    /// pass instead of two per-element reads per point.
    fn points(&mut self) -> Result<Vec<Point>, SnapshotError> {
        let n = self.len(16)?;
        let raw = self.take(n * 16)?;
        Ok(raw
            .chunks_exact(16)
            .map(|c| {
                let (x, y) = c.split_at(8);
                Point::new(
                    f64::from_le_bytes(x.try_into().expect("split_at(8) of a 16-byte chunk")),
                    f64::from_le_bytes(y.try_into().expect("split_at(8) of a 16-byte chunk")),
                )
            })
            .collect())
    }

    /// Bulk-decodes mesh arena slots (`v0 v1 v2 n0 n1 n2` per slot)
    /// straight into [`Tri`]s — the arena is the largest array in an
    /// engine blob, and decoding it once (instead of via an intermediate
    /// word vector) saves a full pass over it.
    fn tris(&mut self) -> Result<Vec<Tri>, SnapshotError> {
        let n = self.len(24)?;
        let raw = self.take(n * 24)?;
        let word = |c: &[u8], i: usize| {
            // vaq-lint: allow(panic-hygiene) -- i ranges over 0..6 within a 24-byte chunk
            u32::from_le_bytes(c[4 * i..4 * i + 4].try_into().expect("chunks_exact(24)"))
        };
        Ok(raw
            .chunks_exact(24)
            .map(|c| Tri {
                v: [word(c, 0), word(c, 1), word(c, 2)],
                n: [word(c, 3), word(c, 4), word(c, 5)],
            })
            .collect())
    }

    fn u64s(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.len(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect())
    }

    fn f64s(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.len(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect())
    }

    fn bools(&mut self) -> Result<Vec<bool>, SnapshotError> {
        let n = self.len(1)?;
        let raw = self.take(n)?;
        raw.iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(SnapshotError::Malformed(format!(
                    "non-canonical bool byte {b:#04x}"
                ))),
            })
            .collect()
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes in section payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Container framing.
// ---------------------------------------------------------------------

struct ContainerWriter {
    kind: SnapshotKind,
    sections: Vec<(u64, Vec<u8>)>,
}

impl ContainerWriter {
    fn new(kind: SnapshotKind) -> ContainerWriter {
        ContainerWriter {
            kind,
            sections: Vec::new(),
        }
    }

    fn section(&mut self, tag: u64, payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    fn finish(self) -> Vec<u8> {
        let table_len = self.sections.len() * TABLE_ENTRY;
        let mut offset = align_page(HEADER_FIXED + table_len);
        let mut table = Vec::with_capacity(table_len);
        let mut entries = Vec::with_capacity(self.sections.len());
        for (tag, payload) in &self.sections {
            entries.push((*tag, offset as u64, payload.len() as u64));
            table.extend_from_slice(&tag.to_le_bytes());
            table.extend_from_slice(&(offset as u64).to_le_bytes());
            table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            table.extend_from_slice(&checksum64(payload).to_le_bytes());
            offset = align_page(offset + payload.len());
        }
        let file_len = offset;
        // The header fields are contiguous, so the file is written
        // append-only: each fixed field in order, zero padding up to the
        // next boundary, then the table and the page-aligned sections.
        let mut out = Vec::with_capacity(file_len);
        out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind.code().to_le_bytes());
        out.extend_from_slice(&layout_fingerprint().to_le_bytes());
        out.extend_from_slice(&(file_len as u64).to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum64(&table).to_le_bytes());
        let rev = git_revision();
        let rev = rev.as_bytes();
        out.extend_from_slice(&rev[..rev.len().min(GIT_REV_BYTES)]);
        out.resize(HEADER_FIXED - PARAMS_BYTES, 0);
        let params = build_params();
        let params = params.as_bytes();
        out.extend_from_slice(&params[..params.len().min(PARAMS_BYTES)]);
        out.resize(HEADER_FIXED, 0);
        out.extend_from_slice(&table);
        for ((_, off, _), (_, payload)) in entries.iter().zip(&self.sections) {
            out.resize(*off as usize, 0);
            out.extend_from_slice(payload);
        }
        out.resize(file_len, 0);
        out
    }
}

struct Container<'a> {
    kind: SnapshotKind,
    version: u32,
    git_revision: String,
    build_params: String,
    file_len: u64,
    /// `(tag, payload)` in table order, checksums already verified.
    sections: Vec<(u64, &'a [u8])>,
}

impl<'a> Container<'a> {
    fn parse(bytes: &'a [u8]) -> Result<Container<'a>, SnapshotError> {
        if bytes.len() < HEADER_FIXED {
            return Err(SnapshotError::Truncated {
                needed: HEADER_FIXED as u64,
                actual: bytes.len() as u64,
            });
        }
        let word =
            |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        let half =
            |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        let magic = word(0);
        if magic != SNAPSHOT_MAGIC {
            if magic.swap_bytes() == SNAPSHOT_MAGIC {
                return Err(SnapshotError::WrongEndian);
            }
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = half(8);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let fingerprint = word(16);
        if fingerprint != layout_fingerprint() {
            return Err(SnapshotError::LayoutMismatch {
                found: fingerprint,
                expected: layout_fingerprint(),
            });
        }
        let kind = SnapshotKind::from_code(half(12))
            .ok_or_else(|| SnapshotError::Malformed(format!("unknown kind code {}", half(12))))?;
        let file_len = word(24);
        if (bytes.len() as u64) < file_len {
            return Err(SnapshotError::Truncated {
                needed: file_len,
                actual: bytes.len() as u64,
            });
        }
        if (bytes.len() as u64) > file_len {
            return Err(SnapshotError::Malformed(format!(
                "{} bytes past the declared container end",
                bytes.len() as u64 - file_len
            )));
        }
        let n_sections: usize = word(32)
            .try_into()
            .map_err(|_| SnapshotError::Malformed("section count overflows usize".to_string()))?;
        let table_end = HEADER_FIXED
            .checked_add(n_sections.checked_mul(TABLE_ENTRY).ok_or_else(|| {
                SnapshotError::Malformed("section table size overflows".to_string())
            })?)
            .ok_or_else(|| SnapshotError::Malformed("section table size overflows".to_string()))?;
        if table_end as u64 > file_len {
            return Err(SnapshotError::Truncated {
                needed: table_end as u64,
                actual: file_len,
            });
        }
        let table = &bytes[HEADER_FIXED..table_end];
        let stored_table_sum = word(40);
        let computed_table_sum = checksum64(table);
        if stored_table_sum != computed_table_sum {
            return Err(SnapshotError::ChecksumMismatch {
                section: 0,
                stored: stored_table_sum,
                computed: computed_table_sum,
            });
        }
        let field = |s: &str, off: usize, len: usize| {
            let raw = &bytes[off..off + len];
            let end = raw.iter().position(|&b| b == 0).unwrap_or(len);
            std::str::from_utf8(&raw[..end])
                .map(str::to_string)
                .map_err(|_| SnapshotError::Malformed(format!("non-utf8 {s} header field")))
        };
        let git_rev = field("git revision", 48, GIT_REV_BYTES)?;
        let params = field("build params", 72, PARAMS_BYTES)?;
        let mut sections = Vec::with_capacity(n_sections);
        for i in 0..n_sections {
            let base = HEADER_FIXED + i * TABLE_ENTRY;
            let tag = word(base);
            let offset = word(base + 8);
            let len = word(base + 16);
            let stored = word(base + 24);
            let end = offset.checked_add(len).ok_or_else(|| {
                SnapshotError::Malformed(format!("section {tag:#x} extent overflows"))
            })?;
            if end > file_len {
                return Err(SnapshotError::Truncated {
                    needed: end,
                    actual: file_len,
                });
            }
            let payload = &bytes[offset as usize..end as usize];
            let computed = checksum64(payload);
            if stored != computed {
                return Err(SnapshotError::ChecksumMismatch {
                    section: tag,
                    stored,
                    computed,
                });
            }
            sections.push((tag, payload));
        }
        Ok(Container {
            kind,
            version,
            git_revision: git_rev,
            build_params: params,
            file_len,
            sections,
        })
    }

    fn section(&self, tag: u64) -> Result<&'a [u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or_else(|| SnapshotError::Malformed(format!("missing section {tag:#x}")))
    }

    fn expect_kind(&self, expected: SnapshotKind) -> Result<(), SnapshotError> {
        if self.kind != expected {
            return Err(SnapshotError::WrongKind {
                found: self.kind,
                expected,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Engine blob: the plain engine's persisted state.
// ---------------------------------------------------------------------

fn encode_engine(engine: &AreaQueryEngine) -> Vec<u8> {
    let mut w = SecWriter::default();
    w.u64(engine.points.len() as u64);
    for p in &engine.points {
        w.f64(p.x);
        w.f64(p.y);
    }
    match engine.tri.as_ref() {
        Some(tri) => {
            w.u32(1);
            let flat = tri.to_flat();
            // The triangulation's site array IS the engine's point array
            // (same order, same bits); persisting it once is enough.
            debug_assert!(
                flat.pts == engine.points,
                "triangulation sites diverged from the engine's points"
            );
            // With no coincident input points the canonical map and the
            // members CSR are all identity permutations — the common
            // case. A flag replaces three `n`-length arrays, and a load
            // regenerates them faster than it could read them.
            let n = flat.pts.len();
            let identity = flat.canon.len() == n
                && flat.members.len() == n
                && flat.members_off.len() == n + 1
                && flat.canon.iter().enumerate().all(|(i, &c)| c == i as u32)
                && flat
                    .members_off
                    .iter()
                    .enumerate()
                    .all(|(i, &o)| o == i as u32)
                && flat.members.iter().enumerate().all(|(i, &m)| m == i as u32);
            w.u32(identity as u32);
            if !identity {
                w.u32s(&flat.canon);
                w.u32s(&flat.members_off);
                w.u32s(&flat.members);
            }
            w.tris(&flat.mesh_tris);
            w.u32s(&flat.mesh_free);
            w.u32s(&flat.adj_off);
            w.u32s(&flat.adj);
            w.u32s(&flat.hull);
            w.u32(flat.degenerate as u32);
            w.u32(flat.last_finite);
            w.f64s(&flat.weights);
            w.u32s(&flat.hidden);
            w.u32s(&flat.anchor);
        }
        None => w.u32(0),
    }
    match engine.records.as_ref() {
        Some(rs) => {
            w.u32(1);
            w.u64(rs.record_bytes() as u64);
            w.bytes(rs.raw_bytes());
        }
        None => w.u32(0),
    }
    let regions = engine.density_map().regions();
    w.u64(regions.len() as u64);
    for &(r, c) in regions {
        w.f64(r.min.x);
        w.f64(r.min.y);
        w.f64(r.max.x);
        w.f64(r.max.y);
        w.f64(c);
    }
    let cfg = engine.index_config();
    w.u64(cfg.rtree_fanout as u64);
    w.u32(cfg.incremental_rtree as u32);
    w.u32(match cfg.rtree_algorithm {
        SplitAlgorithm::Quadratic => 0,
        SplitAlgorithm::RStar => 1,
    });
    w.u32(cfg.kdtree as u32);
    w.u32(cfg.quadtree as u32);
    match engine.boundary_straddlers.as_ref() {
        Some(s) => {
            w.u32(1);
            w.bools(s);
        }
        None => w.u32(0),
    }
    // The R-tree arena, flattened. Persisting it (rather than paying the
    // STR bulk load again) is most of the cold-start win; leaf MBRs are
    // degenerate point rects, so only internal rectangles are stored.
    let raw = engine.rtree().raw_parts();
    w.u32s(&raw.levels);
    w.u32s(&raw.entry_offsets);
    w.u32s(&raw.entry_children);
    w.f64s(&raw.inner_rects);
    w.u32s(&raw.free);
    w.u32(raw.root);
    w.u64(raw.len);
    w.u32(raw.max_entries);
    w.u32(match raw.algorithm {
        SplitAlgorithm::Quadratic => 0,
        SplitAlgorithm::RStar => 1,
    });
    w.buf
}

fn decode_engine(payload: &[u8]) -> Result<AreaQueryEngine, SnapshotError> {
    let mut r = SecReader::new(payload);
    let points = r.points()?;
    let n_points = points.len();
    let tri = match r.u32()? {
        0 => None,
        1 => {
            let (canon, members_off, members) = match r.u32()? {
                0 => (r.u32s()?, r.u32s()?, r.u32s()?),
                1 => {
                    let n = points.len() as u32;
                    ((0..n).collect(), (0..=n).collect(), (0..n).collect())
                }
                f => {
                    return Err(SnapshotError::Malformed(format!(
                        "non-canonical identity flag {f}"
                    )))
                }
            };
            let flat = TriangulationFlat {
                pts: points.clone(),
                canon,
                members_off,
                members,
                mesh_tris: r.tris()?,
                mesh_free: r.u32s()?,
                adj_off: r.u32s()?,
                adj: r.u32s()?,
                hull: r.u32s()?,
                degenerate: match r.u32()? {
                    0 => false,
                    1 => true,
                    d => {
                        return Err(SnapshotError::Malformed(format!(
                            "non-canonical degenerate flag {d}"
                        )))
                    }
                },
                last_finite: r.u32()?,
                weights: r.f64s()?,
                hidden: r.u32s()?,
                anchor: r.u32s()?,
            };
            Some(Triangulation::from_flat(flat).map_err(SnapshotError::Malformed)?)
        }
        f => {
            return Err(SnapshotError::Malformed(format!(
                "non-canonical triangulation flag {f}"
            )))
        }
    };
    let records = match r.u32()? {
        0 => None,
        1 => {
            let record_bytes: usize = r
                .u64()?
                .try_into()
                .map_err(|_| SnapshotError::Malformed("record size overflows usize".to_string()))?;
            let data = r.bytes()?.to_vec();
            if record_bytes == 0 || data.len() != n_points * record_bytes {
                return Err(SnapshotError::Inconsistent(format!(
                    "record store holds {} bytes, expected {} records x {} bytes",
                    data.len(),
                    n_points,
                    record_bytes
                )));
            }
            Some(RecordStore::from_raw(data, record_bytes))
        }
        f => {
            return Err(SnapshotError::Malformed(format!(
                "non-canonical record flag {f}"
            )))
        }
    };
    let n_regions = r.len(40)?;
    let mut regions = Vec::with_capacity(n_regions);
    for _ in 0..n_regions {
        let min = Point::new(r.f64()?, r.f64()?);
        let max = Point::new(r.f64()?, r.f64()?);
        regions.push((Rect::new(min, max), r.f64()?));
    }
    let density = DensityMap::from_regions(regions);
    let rtree_fanout: usize = r
        .u64()?
        .try_into()
        .map_err(|_| SnapshotError::Malformed("rtree fanout overflows usize".to_string()))?;
    let incremental_rtree = r.u32()? != 0;
    let rtree_algorithm = match r.u32()? {
        0 => SplitAlgorithm::Quadratic,
        1 => SplitAlgorithm::RStar,
        a => {
            return Err(SnapshotError::Malformed(format!(
                "unknown rtree split algorithm code {a}"
            )))
        }
    };
    let config = IndexConfig {
        rtree_fanout,
        incremental_rtree,
        rtree_algorithm,
        kdtree: r.u32()? != 0,
        quadtree: r.u32()? != 0,
    };
    let boundary_straddlers = match r.u32()? {
        0 => None,
        1 => Some(r.bools()?),
        f => {
            return Err(SnapshotError::Malformed(format!(
                "non-canonical straddler flag {f}"
            )))
        }
    };
    let raw = RTreeRaw {
        levels: r.u32s()?,
        entry_offsets: r.u32s()?,
        entry_children: r.u32s()?,
        inner_rects: r.f64s()?,
        free: r.u32s()?,
        root: r.u32()?,
        len: r.u64()?,
        max_entries: r.u32()?,
        algorithm: match r.u32()? {
            0 => SplitAlgorithm::Quadratic,
            1 => SplitAlgorithm::RStar,
            a => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown rtree split algorithm code {a}"
                )))
            }
        },
    };
    r.finish()?;
    let rtree = RTree::from_raw(raw, &points).map_err(SnapshotError::Malformed)?;
    if rtree.len() != n_points {
        return Err(SnapshotError::Inconsistent(format!(
            "rtree indexes {} points but the engine holds {n_points}",
            rtree.len()
        )));
    }
    Ok(AreaQueryEngine::assemble(
        points,
        tri,
        records,
        density,
        config,
        boundary_straddlers,
        Some(rtree),
    ))
}

// ---------------------------------------------------------------------
// Public save/load surface.
// ---------------------------------------------------------------------

/// Serializes a plain engine into an in-memory container.
pub fn engine_to_bytes(engine: &AreaQueryEngine) -> Vec<u8> {
    let mut c = ContainerWriter::new(SnapshotKind::Plain);
    c.section(TAG_ENGINE, encode_engine(engine));
    c.finish()
}

/// Serializes a dynamic engine (base + overlay) into an in-memory
/// container.
pub fn dynamic_to_bytes(engine: &DynamicAreaQueryEngine) -> Vec<u8> {
    let (base, base_ids, base_weights, delta, tombstones, next_id) = engine.snapshot_parts();
    let mut c = ContainerWriter::new(SnapshotKind::Dynamic);
    c.section(TAG_DYN_BASE, encode_engine(base));
    let mut w = SecWriter::default();
    w.u64s(base_ids);
    w.f64s(base_weights);
    w.u64(delta.len() as u64);
    for &(id, p, weight) in delta {
        w.u64(id);
        w.f64(p.x);
        w.f64(p.y);
        w.f64(weight);
    }
    let mut tombs: Vec<u64> = tombstones.iter().copied().collect();
    tombs.sort_unstable();
    w.u64s(&tombs);
    w.u64(next_id);
    c.section(TAG_DYN_OVERLAY, w.buf);
    c.finish()
}

/// Serializes a sharded engine into an in-memory container: partition
/// metadata plus one independently checksummed section per shard.
pub fn sharded_to_bytes(engine: &ShardedAreaQueryEngine) -> Vec<u8> {
    let (shards, len, target_shards, diagram, calibration) = engine.snapshot_parts();
    let mut c = ContainerWriter::new(SnapshotKind::Sharded);
    let mut m = SecWriter::default();
    m.u64(len as u64);
    m.u64(target_shards as u64);
    m.u32(match diagram {
        DiagramKind::Euclidean => 0,
        DiagramKind::Power => 1,
    });
    for v in calibration {
        m.f64(v);
    }
    m.u64(shards.len() as u64);
    c.section(TAG_SH_META, m.buf);
    for (i, shard) in shards.iter().enumerate() {
        let mut w = SecWriter::default();
        w.u32s(&shard.global);
        w.bytes(&encode_engine(&shard.engine));
        c.section(TAG_SHARD + i as u64, w.buf);
    }
    c.finish()
}

/// Deserializes a plain engine from container bytes.
pub fn engine_from_bytes(bytes: &[u8]) -> Result<AreaQueryEngine, SnapshotError> {
    let c = Container::parse(bytes)?;
    c.expect_kind(SnapshotKind::Plain)?;
    decode_engine(c.section(TAG_ENGINE)?)
}

/// Deserializes a dynamic engine from container bytes. The overlay is
/// replayed as data: delta, tombstones and the id counter resume
/// exactly where the saved engine stood.
pub fn dynamic_from_bytes(bytes: &[u8]) -> Result<DynamicAreaQueryEngine, SnapshotError> {
    let c = Container::parse(bytes)?;
    c.expect_kind(SnapshotKind::Dynamic)?;
    let base = decode_engine(c.section(TAG_DYN_BASE)?)?;
    let mut r = SecReader::new(c.section(TAG_DYN_OVERLAY)?);
    let base_ids = r.u64s()?;
    let base_weights = r.f64s()?;
    let n_delta = r.len(32)?;
    let mut delta = Vec::with_capacity(n_delta);
    for _ in 0..n_delta {
        let id = r.u64()?;
        let x = r.f64()?;
        let y = r.f64()?;
        let weight = r.f64()?;
        delta.push((id, Point::new(x, y), weight));
    }
    let tombs = r.u64s()?;
    let next_id = r.u64()?;
    r.finish()?;
    if base_ids.len() != base.len() {
        return Err(SnapshotError::Inconsistent(format!(
            "{} base ids for a {}-point base engine",
            base_ids.len(),
            base.len()
        )));
    }
    if base_weights.len() != base_ids.len() {
        return Err(SnapshotError::Inconsistent(format!(
            "{} base weights for {} base ids",
            base_weights.len(),
            base_ids.len()
        )));
    }
    // vaq-lint: allow(panic-hygiene) -- windows(2) yields exactly two elements
    if !base_ids.windows(2).all(|w| w[0] < w[1]) {
        return Err(SnapshotError::Malformed(
            "base ids are not strictly ascending".to_string(),
        ));
    }
    let ceiling = base_ids
        .iter()
        .chain(delta.iter().map(|(id, _, _)| id))
        .chain(tombs.iter())
        .max()
        .copied();
    if let Some(max_id) = ceiling {
        if next_id <= max_id {
            return Err(SnapshotError::Inconsistent(format!(
                "next id {next_id} does not exceed the largest assigned id {max_id}"
            )));
        }
    }
    let tombstones: HashSet<u64> = tombs.into_iter().collect();
    Ok(DynamicAreaQueryEngine::from_snapshot_parts(
        base,
        base_ids,
        base_weights,
        delta,
        tombstones,
        next_id,
    ))
}

/// Deserializes a sharded engine from container bytes. Shard MBRs and
/// the density map are recomputed from the shard point sets
/// (deterministically, so they match the built engine's bit for bit)
/// and the planner resumes from the persisted calibration.
pub fn sharded_from_bytes(bytes: &[u8]) -> Result<ShardedAreaQueryEngine, SnapshotError> {
    let c = Container::parse(bytes)?;
    c.expect_kind(SnapshotKind::Sharded)?;
    let mut m = SecReader::new(c.section(TAG_SH_META)?);
    let len: usize = m
        .u64()?
        .try_into()
        .map_err(|_| SnapshotError::Malformed("point count overflows usize".to_string()))?;
    let target_shards: usize = m
        .u64()?
        .try_into()
        .map_err(|_| SnapshotError::Malformed("shard target overflows usize".to_string()))?;
    let diagram = match m.u32()? {
        0 => DiagramKind::Euclidean,
        1 => DiagramKind::Power,
        d => {
            return Err(SnapshotError::Malformed(format!(
                "unknown diagram kind code {d}"
            )))
        }
    };
    let calibration = [m.f64()?, m.f64()?, m.f64()?];
    let shard_count: usize = m
        .u64()?
        .try_into()
        .map_err(|_| SnapshotError::Malformed("shard count overflows usize".to_string()))?;
    m.finish()?;
    let mut shards = Vec::with_capacity(shard_count);
    let mut covered = vec![false; len];
    for i in 0..shard_count {
        let mut r = SecReader::new(c.section(TAG_SHARD + i as u64)?);
        let global = r.u32s()?;
        let engine = decode_engine(r.bytes()?)?;
        r.finish()?;
        if global.len() != engine.len() {
            return Err(SnapshotError::Inconsistent(format!(
                "shard {i} maps {} global ids onto {} points",
                global.len(),
                engine.len()
            )));
        }
        for &g in &global {
            let slot = covered.get_mut(g as usize).ok_or_else(|| {
                SnapshotError::Inconsistent(format!(
                    "shard {i} global id {g} out of range for {len} points"
                ))
            })?;
            if *slot {
                return Err(SnapshotError::Inconsistent(format!(
                    "global id {g} appears in more than one shard"
                )));
            }
            *slot = true;
        }
        shards.push((engine, global));
    }
    if let Some(missing) = covered.iter().position(|&c| !c) {
        return Err(SnapshotError::Inconsistent(format!(
            "global id {missing} is covered by no shard"
        )));
    }
    Ok(ShardedAreaQueryEngine::from_snapshot_parts(
        shards,
        len,
        target_shards,
        diagram,
        calibration,
    ))
}

/// Deserializes whichever engine shape the container holds.
pub fn from_bytes(bytes: &[u8]) -> Result<LoadedEngine, SnapshotError> {
    let kind = Container::parse(bytes)?.kind;
    match kind {
        SnapshotKind::Plain => engine_from_bytes(bytes).map(LoadedEngine::Plain),
        SnapshotKind::Sharded => sharded_from_bytes(bytes).map(LoadedEngine::Sharded),
        SnapshotKind::Dynamic => dynamic_from_bytes(bytes).map(LoadedEngine::Dynamic),
    }
}

/// Reads a snapshot's header facts without decoding any section.
pub fn inspect_bytes(bytes: &[u8]) -> Result<SnapshotInfo, SnapshotError> {
    let c = Container::parse(bytes)?;
    Ok(SnapshotInfo {
        kind: c.kind,
        version: c.version,
        git_revision: c.git_revision,
        build_params: c.build_params,
        file_len: c.file_len,
        sections: c.sections.len(),
    })
}

/// Saves a plain engine to `path`.
pub fn save_engine(engine: &AreaQueryEngine, path: &Path) -> Result<(), SnapshotError> {
    Ok(std::fs::write(path, engine_to_bytes(engine))?)
}

/// Saves a dynamic engine to `path`.
pub fn save_dynamic(engine: &DynamicAreaQueryEngine, path: &Path) -> Result<(), SnapshotError> {
    Ok(std::fs::write(path, dynamic_to_bytes(engine))?)
}

/// Saves a sharded engine to `path`.
pub fn save_sharded(engine: &ShardedAreaQueryEngine, path: &Path) -> Result<(), SnapshotError> {
    Ok(std::fs::write(path, sharded_to_bytes(engine))?)
}

/// Loads a plain engine from `path`.
pub fn load_engine(path: &Path) -> Result<AreaQueryEngine, SnapshotError> {
    engine_from_bytes(&std::fs::read(path)?)
}

/// Loads a dynamic engine from `path`.
pub fn load_dynamic(path: &Path) -> Result<DynamicAreaQueryEngine, SnapshotError> {
    dynamic_from_bytes(&std::fs::read(path)?)
}

/// Loads a sharded engine from `path`.
pub fn load_sharded(path: &Path) -> Result<ShardedAreaQueryEngine, SnapshotError> {
    sharded_from_bytes(&std::fs::read(path)?)
}

/// Loads whichever engine shape the snapshot at `path` holds.
pub fn load(path: &Path) -> Result<LoadedEngine, SnapshotError> {
    from_bytes(&std::fs::read(path)?)
}

/// Reads the header facts of the snapshot at `path`.
pub fn inspect(path: &Path) -> Result<SnapshotInfo, SnapshotError> {
    inspect_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_distinguishes_length_and_content() {
        assert_ne!(checksum64(b""), checksum64(b"\0"));
        assert_ne!(checksum64(b"\0"), checksum64(b"\0\0"));
        assert_ne!(checksum64(b"abcdefgh"), checksum64(b"abcdefgi"));
        assert_eq!(checksum64(b"vaqsnap"), checksum64(b"vaqsnap"));
    }

    #[test]
    fn magic_reads_as_its_ascii_bytes() {
        assert_eq!(&SNAPSHOT_MAGIC.to_le_bytes(), b"VAQSNAP1");
    }

    /// Guards the flat-layout/version coupling: any change to [`LAYOUT`]
    /// (which must accompany any change to the serialized struct
    /// layouts) moves the fingerprint and fails here. When that is
    /// intentional, bump [`SNAPSHOT_VERSION`] and re-pin both constants
    /// below — old containers must be rejected, not misparsed.
    #[test]
    fn layout_fingerprint_is_pinned_to_the_version() {
        assert_eq!(
            SNAPSHOT_VERSION, 1,
            "version changed: re-pin the fingerprint"
        );
        assert_eq!(
            layout_fingerprint(),
            0x3795_7829_2fb4_7ca1,
            "flat layout changed: bump SNAPSHOT_VERSION and re-pin this fingerprint"
        );
    }

    #[test]
    fn plain_round_trip_preserves_answers() {
        let pts: Vec<Point> = (0..60)
            .map(|i| Point::new((i % 10) as f64, (i / 10) as f64 * 1.5))
            .collect();
        let engine = AreaQueryEngine::build(&pts);
        let bytes = engine_to_bytes(&engine);
        let loaded = engine_from_bytes(&bytes).expect("round trip");
        assert_eq!(loaded.len(), engine.len());
        let area = Rect::new(Point::new(1.5, 0.5), Point::new(6.5, 9.0));
        assert_eq!(
            loaded.voronoi(&area).sorted_indices(),
            engine.voronoi(&area).sorted_indices()
        );
        let info = inspect_bytes(&bytes).expect("inspect");
        assert_eq!(info.kind, SnapshotKind::Plain);
        assert_eq!(info.version, SNAPSHOT_VERSION);
        assert_eq!(info.file_len as usize, bytes.len());
        assert!(info.build_params.contains("pkg="));
    }

    #[test]
    fn sections_are_page_aligned() {
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new(i as f64, (i * 7 % 13) as f64))
            .collect();
        let bytes = engine_to_bytes(&AreaQueryEngine::build(&pts));
        assert_eq!(bytes.len() % SNAPSHOT_PAGE, 0);
        let c = Container::parse(&bytes).expect("parse");
        for (tag, payload) in &c.sections {
            let offset = payload.as_ptr() as usize - bytes.as_ptr() as usize;
            assert_eq!(offset % SNAPSHOT_PAGE, 0, "section {tag:#x} unaligned");
        }
    }

    #[test]
    fn corruption_is_rejected_cleanly() {
        let pts: Vec<Point> = (0..30)
            .map(|i| Point::new(i as f64, (i * i) as f64))
            .collect();
        let bytes = engine_to_bytes(&AreaQueryEngine::build(&pts));

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            engine_from_bytes(&bad),
            Err(SnapshotError::BadMagic { .. })
        ));

        let mut swapped = bytes.clone();
        swapped[0..8].reverse();
        assert!(matches!(
            engine_from_bytes(&swapped),
            Err(SnapshotError::WrongEndian)
        ));

        let mut newer = bytes.clone();
        newer[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            engine_from_bytes(&newer),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));

        let mut other_layout = bytes.clone();
        other_layout[16] ^= 0x01;
        assert!(matches!(
            engine_from_bytes(&other_layout),
            Err(SnapshotError::LayoutMismatch { .. })
        ));

        assert!(matches!(
            engine_from_bytes(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::Truncated { .. })
        ));

        let c = Container::parse(&bytes).expect("clean parse");
        let (tag, payload) = c.sections[0];
        let offset = payload.as_ptr() as usize - bytes.as_ptr() as usize;
        let mut flipped = bytes.clone();
        flipped[offset + payload.len() / 2] ^= 0x01;
        match engine_from_bytes(&flipped) {
            Err(SnapshotError::ChecksumMismatch { section, .. }) => assert_eq!(section, tag),
            Err(e) => panic!("expected ChecksumMismatch, got {e}"),
            Ok(_) => panic!("flipped payload byte must not load"),
        }
    }

    #[test]
    fn wrong_kind_is_reported() {
        let pts: Vec<Point> = (0..25).map(|i| Point::new(i as f64, 1.0)).collect();
        let bytes = engine_to_bytes(&AreaQueryEngine::build(&pts));
        match sharded_from_bytes(&bytes) {
            Err(SnapshotError::WrongKind { found, expected }) => {
                assert_eq!(found, SnapshotKind::Plain);
                assert_eq!(expected, SnapshotKind::Sharded);
            }
            other => panic!(
                "expected WrongKind, got {:?}",
                other.err().map(|e| e.to_string())
            ),
        }
    }

    #[test]
    fn errors_render_clean_diagnostics() {
        let msgs = [
            SnapshotError::BadMagic { found: 1 }.to_string(),
            SnapshotError::WrongEndian.to_string(),
            SnapshotError::UnsupportedVersion {
                found: 9,
                supported: SNAPSHOT_VERSION,
            }
            .to_string(),
            SnapshotError::Truncated {
                needed: 8192,
                actual: 100,
            }
            .to_string(),
            SnapshotError::ChecksumMismatch {
                section: TAG_ENGINE,
                stored: 1,
                computed: 2,
            }
            .to_string(),
            SnapshotError::WrongKind {
                found: SnapshotKind::Dynamic,
                expected: SnapshotKind::Plain,
            }
            .to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
            assert!(!m.contains("Error("), "debug leak in {m}");
        }
        assert!(msgs[3].contains("8192"));
        assert!(msgs[5].contains("dynamic"));
    }
}
