//! A deterministic interleaving explorer for the sync facade: CHESS- /
//! loom-style stateless model checking, built on nothing but `std`.
//!
//! [`explore`] runs a test body once per *schedule*. Model threads
//! ([`spawn`]) are real OS threads, but a cooperative scheduler lets
//! exactly one run at a time; every operation on a model
//! [`AtomicUsize`] or [`Mutex`] is a *decision point* where the
//! scheduler may switch threads. The set of decisions taken in one run
//! is recorded as a path through a tree; depth-first backtracking then
//! replays the longest shared prefix and flips the deepest unexplored
//! choice, until the whole bounded schedule space is enumerated.
//!
//! Two deliberate bounds keep exploration tractable:
//!
//! * a **preemption bound** ([`Config::preemption_bound`]): switching
//!   away from a thread that could have continued is a preemption, and
//!   at most that many are spent per schedule (forced switches — the
//!   current thread blocking or finishing — are always explored). Most
//!   real races need only one or two preemptions (CHESS's empirical
//!   result), so a small bound finds them while cutting the space from
//!   exponential-in-ops to polynomial.
//! * a **schedule cap** ([`Config::max_schedules`]) as a hard stop;
//!   [`Report::complete`] records whether the cap was hit.
//!
//! The model executes every atomic under sequential consistency: it
//! enumerates *interleavings*, not memory-model weakenings. That is the
//! right tool for the engine's idioms — claim counters and mutexes —
//! whose correctness arguments are interleaving arguments; the
//! `atomic-ordering` lint separately forces every `Ordering` choice to
//! carry a written justification.
//!
//! Failures — a panicking assertion in the body, a deadlock, a re-lock,
//! or a schedule-replay divergence — surface as a [`Failure`] carrying
//! the decision sequence of the failing schedule, so a seeded race
//! fails deterministically with a replayable trace.
//!
//! ```
//! use std::sync::Arc;
//! use vaq_core::sync::model::{self, Config};
//! use vaq_core::sync::Ordering;
//!
//! let hits = Arc::new(model::AtomicUsize::new(0));
//! let body_hits = Arc::clone(&hits);
//! let report = model::explore(&Config::default(), move || {
//!     let shared = Arc::new(model::AtomicUsize::new(0));
//!     let theirs = Arc::clone(&shared);
//!     let t = model::spawn(move || {
//!         theirs.fetch_add(1, Ordering::SeqCst);
//!     });
//!     shared.fetch_add(1, Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(shared.load(Ordering::SeqCst), 2);
//!     body_hits.fetch_add(1, Ordering::SeqCst);
//! })
//! .expect("fetch_add is atomic in every interleaving");
//! assert!(report.complete);
//! assert_eq!(hits.load(Ordering::SeqCst), report.schedules);
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};
use std::sync::{
    Arc, Condvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once, PoisonError,
};
use std::thread;

/// What one model thread's closure produced: `Ok` or a panic payload.
type RunResult = Result<(), Box<dyn std::any::Any + Send>>;

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Per-OS-thread handle into the active exploration, if any. Absent on
/// ordinary threads, which is what makes every model primitive degrade
/// to plain `std` behaviour outside [`explore`].
#[derive(Clone)]
struct Ctx {
    ctrl: Arc<Controller>,
    tid: usize,
}

fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Panic payload used internally to unwind model threads when a run is
/// torn down (failure found, or a stale thread from an aborted run).
/// Never reported as a test failure itself.
struct SchedulerAbort;

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum *preemptive* context switches per schedule: switches
    /// away from a thread that was still runnable. Forced switches
    /// (current thread blocked or finished) are free and always
    /// explored. Two preemptions reach the overwhelming majority of
    /// real races (the CHESS observation).
    pub preemption_bound: usize,
    /// Hard cap on the number of schedules run; [`Report::complete`]
    /// is `false` when exploration stops because of this cap.
    pub max_schedules: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 2,
            max_schedules: 100_000,
        }
    }
}

impl Config {
    /// No preemption bound: enumerate every interleaving of the body's
    /// decision points (still capped at one million schedules as a
    /// runaway stop). Right for small 2–3-thread scenarios.
    pub fn exhaustive() -> Config {
        Config {
            preemption_bound: usize::MAX,
            max_schedules: 1_000_000,
        }
    }
}

/// Summary of a completed exploration in which no schedule failed.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// `true` when the bounded schedule space was exhausted; `false`
    /// when [`Config::max_schedules`] cut exploration short.
    pub complete: bool,
    /// Deepest decision count observed over all schedules.
    pub max_decisions: usize,
}

/// A failing schedule: some interleaving panicked, deadlocked, or broke
/// a locking rule. Carries the decision trace for replaying by hand.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong (panic message, deadlock description, …).
    pub message: String,
    /// The failing schedule as the chosen thread id at each decision
    /// point, in order.
    pub schedule: Vec<usize>,
    /// How many schedules had run when the failure surfaced (1-based:
    /// the failing one is counted).
    pub schedules: usize,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (schedule {} — thread choices {:?})",
            self.message, self.schedules, self.schedule
        )
    }
}

impl std::error::Error for Failure {}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    BlockedLock(usize),
    BlockedJoin(usize),
    Finished,
}

/// One decision point: the runnable choices that existed there and the
/// index of the branch the current schedule takes.
struct Frame {
    options: Vec<usize>,
    chosen: usize,
}

struct Shared {
    threads: Vec<TState>,
    current: usize,
    depth: usize,
    frames: Vec<Frame>,
    preemptions: usize,
    /// lock identity (address of the model mutex) -> holder tid
    locks: HashMap<usize, usize>,
    failure: Option<String>,
    abort: bool,
    handles: Vec<thread::JoinHandle<()>>,
}

struct Controller {
    state: StdMutex<Shared>,
    cv: Condvar,
    preemption_bound: usize,
}

impl Controller {
    fn new(preemption_bound: usize, frames: Vec<Frame>) -> Controller {
        Controller {
            state: StdMutex::new(Shared {
                threads: vec![TState::Runnable],
                current: 0,
                depth: 0,
                frames,
                preemptions: 0,
                locks: HashMap::new(),
                failure: None,
                abort: false,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
            preemption_bound,
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, Shared> {
        // The scheduler never panics while holding its own lock, so
        // poisoning here would be an internal bug worth a loud stop.
        self.state
            .lock()
            .expect("scheduler state lock is never poisoned")
    }

    fn fail(&self, s: &mut Shared, message: String) {
        if s.failure.is_none() {
            s.failure = Some(message);
        }
        s.abort = true;
        self.cv.notify_all();
    }

    /// Makes the next scheduling decision. The caller holds the state
    /// lock and has already recorded `me`'s new state. Returns `false`
    /// when no decision was made (run over, deadlock, or abort).
    fn decide(&self, s: &mut Shared, me: usize) -> bool {
        if s.abort {
            return false;
        }
        let runnable: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == TState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if s.threads.iter().all(|t| *t == TState::Finished) {
                self.cv.notify_all();
                return false;
            }
            let blocked: Vec<usize> = s
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t, TState::BlockedLock(_) | TState::BlockedJoin(_)))
                .map(|(i, _)| i)
                .collect();
            self.fail(
                s,
                format!("deadlock: threads {blocked:?} are blocked and none is runnable"),
            );
            return false;
        }
        let me_runnable = runnable.contains(&me);
        let depth = s.depth;
        s.depth += 1;
        if depth == s.frames.len() {
            // Fresh decision: default is to keep running the current
            // thread; preempting to a sibling is explored while the
            // preemption budget lasts. Forced switches list everyone.
            let mut options = Vec::new();
            if me_runnable {
                options.push(me);
                if s.preemptions < self.preemption_bound {
                    options.extend(runnable.iter().copied().filter(|&t| t != me));
                }
            } else {
                options.extend(runnable.iter().copied());
            }
            s.frames.push(Frame { options, chosen: 0 });
        }
        let frame = &s.frames[depth];
        if frame.chosen >= frame.options.len() {
            self.fail(
                s,
                "internal scheduler error: replayed an exhausted decision frame".to_owned(),
            );
            return false;
        }
        let chosen = frame.options[frame.chosen];
        if !runnable.contains(&chosen) {
            self.fail(
                s,
                format!(
                    "schedule replay diverged (thread {chosen} was expected to be runnable); \
                     the explored body must be deterministic apart from scheduling"
                ),
            );
            return false;
        }
        if me_runnable && chosen != me {
            s.preemptions += 1;
        }
        s.current = chosen;
        self.cv.notify_all();
        true
    }

    /// Parks the calling model thread until the scheduler selects it
    /// (or the run aborts, in which case the thread unwinds).
    fn park_until_scheduled(&self, mut s: StdMutexGuard<'_, Shared>, me: usize) {
        loop {
            if s.abort {
                drop(s);
                panic::panic_any(SchedulerAbort);
            }
            if s.current == me && s.threads[me] == TState::Runnable {
                return;
            }
            s = self
                .cv
                .wait(s)
                .expect("scheduler state lock is never poisoned");
        }
    }

    /// One scheduling point for a thread that stays runnable: pick the
    /// next thread, then return once `me` is scheduled again.
    fn schedule_point(&self, me: usize) {
        let mut s = self.lock_state();
        if s.abort {
            drop(s);
            panic::panic_any(SchedulerAbort);
        }
        s.threads[me] = TState::Runnable;
        if !self.decide(&mut s, me) {
            // `me` is runnable, so the only no-decision case is abort.
            drop(s);
            panic::panic_any(SchedulerAbort);
        }
        if s.current == me {
            return;
        }
        self.park_until_scheduled(s, me);
    }

    /// Models a lock acquisition: a decision point, then take the lock
    /// or block until a release hands it over.
    fn acquire_lock(&self, me: usize, key: usize) {
        self.schedule_point(me);
        loop {
            let mut s = self.lock_state();
            if s.abort {
                drop(s);
                panic::panic_any(SchedulerAbort);
            }
            match s.locks.get(&key).copied() {
                None => {
                    s.locks.insert(key, me);
                    return;
                }
                Some(holder) if holder == me => {
                    self.fail(
                        &mut s,
                        format!("thread {me} re-locked a mutex it already holds"),
                    );
                    drop(s);
                    panic::panic_any(SchedulerAbort);
                }
                Some(_) => {
                    s.threads[me] = TState::BlockedLock(key);
                    // Ignore the return: a deadlock sets abort, which
                    // the park below turns into an unwind.
                    let _ = self.decide(&mut s, me);
                    self.park_until_scheduled(s, me);
                }
            }
        }
    }

    /// Models a lock release. Not a decision point: drops may run while
    /// unwinding, and the releaser's next operation supplies the next
    /// decision anyway.
    fn release_lock(&self, me: usize, key: usize) {
        let mut s = self.lock_state();
        let held = s.locks.remove(&key);
        if held != Some(me) && !s.abort {
            self.fail(
                &mut s,
                format!("thread {me} released a lock it does not hold"),
            );
        }
        for t in s.threads.iter_mut() {
            if *t == TState::BlockedLock(key) {
                *t = TState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// Records a model thread's end and hands the schedule onward.
    fn finish(&self, me: usize, result: RunResult) {
        let mut s = self.lock_state();
        s.threads[me] = TState::Finished;
        if let Err(payload) = result {
            if payload.downcast_ref::<SchedulerAbort>().is_none() {
                let msg = panic_message(payload.as_ref());
                self.fail(&mut s, format!("thread {me} panicked: {msg}"));
            }
            self.cv.notify_all();
            return;
        }
        for t in s.threads.iter_mut() {
            if *t == TState::BlockedJoin(me) {
                *t = TState::Runnable;
            }
        }
        let _ = self.decide(&mut s, me);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(m) = payload.downcast_ref::<&str>() {
        (*m).to_owned()
    } else if let Some(m) = payload.downcast_ref::<String>() {
        m.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses the
/// default stderr report for panics on model threads — a failing
/// schedule is surfaced as a structured [`Failure`], and seeded-race
/// tests would otherwise spray one backtrace per failing run — while
/// delegating every other thread's panics to the hook that was already
/// installed.
fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let on_model_thread = CTX.try_with(|c| c.borrow().is_some()).unwrap_or(false);
            if !on_model_thread {
                prev(info);
            }
        }));
    });
}

/// A shared `usize` cell with the `std::sync::atomic::AtomicUsize`
/// surface the engine uses. Outside an exploration every operation
/// delegates straight to the wrapped std atomic; inside, each operation
/// is first a scheduling decision point.
#[derive(Debug, Default)]
pub struct AtomicUsize {
    inner: StdAtomicUsize,
}

impl AtomicUsize {
    /// A cell holding `v`.
    pub const fn new(v: usize) -> AtomicUsize {
        AtomicUsize {
            inner: StdAtomicUsize::new(v),
        }
    }

    fn yield_point(&self) {
        if let Some(ctx) = current_ctx() {
            ctx.ctrl.schedule_point(ctx.tid);
        }
    }

    /// Atomically adds `v`, returning the previous value.
    pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        self.yield_point();
        self.inner.fetch_add(v, order)
    }

    /// Reads the value. Pairing this with a later [`store`](Self::store)
    /// is *not* atomic — exactly the class of bug the explorer exists to
    /// catch (a decision point sits between the two).
    pub fn load(&self, order: Ordering) -> usize {
        self.yield_point();
        self.inner.load(order)
    }

    /// Writes the value.
    pub fn store(&self, v: usize, order: Ordering) {
        self.yield_point();
        self.inner.store(v, order);
    }
}

/// A mutual-exclusion lock with the `std::sync::Mutex` surface the
/// engine uses (including the poison-`Result` wrapper). Outside an
/// exploration it behaves exactly like the std mutex it wraps; inside,
/// acquisition orders are enumerated and deadlocks are detected.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// A lock around `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    /// Acquires the lock, parking in the model scheduler (inside an
    /// exploration) or blocking on the OS lock (outside) until free.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = current_ctx().map(|ctx| {
            let key = std::ptr::from_ref(self) as usize;
            ctx.ctrl.acquire_lock(ctx.tid, key);
            (ctx.ctrl, ctx.tid, key)
        });
        // Under the model, ownership was just granted, so the wrapped
        // std lock is free and this cannot block.
        match self.inner.lock() {
            Ok(guard) => Ok(MutexGuard {
                guard: Some(guard),
                model,
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                guard: Some(poisoned.into_inner()),
                model,
            })),
        }
    }
}

/// Guard returned by [`Mutex::lock`]; releases on drop — std lock
/// first, then the model's bookkeeping, so a waiter the model wakes
/// never blocks on an OS lock that is still held.
pub struct MutexGuard<'a, T> {
    guard: Option<StdMutexGuard<'a, T>>,
    model: Option<(Arc<Controller>, usize, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        if let Some((ctrl, tid, key)) = self.model.take() {
            ctrl.release_lock(tid, key);
        }
    }
}

/// Handle to a model thread created by [`spawn`].
pub struct JoinHandle {
    ctrl: Arc<Controller>,
    tid: usize,
}

impl JoinHandle {
    /// Waits (in the model scheduler) until the thread finishes. A
    /// panic on the joined thread is reported through the exploration's
    /// [`Failure`], not through this call.
    pub fn join(self) {
        let ctx = current_ctx().expect("JoinHandle::join is called from inside model::explore");
        self.ctrl.schedule_point(ctx.tid);
        loop {
            let mut s = self.ctrl.lock_state();
            if s.abort {
                drop(s);
                panic::panic_any(SchedulerAbort);
            }
            if s.threads[self.tid] == TState::Finished {
                return;
            }
            s.threads[ctx.tid] = TState::BlockedJoin(self.tid);
            let _ = self.ctrl.decide(&mut s, ctx.tid);
            self.ctrl.park_until_scheduled(s, ctx.tid);
        }
    }
}

/// Spawns a logical thread inside the current exploration. Must be
/// called (directly or transitively) from [`explore`]'s body; move
/// shared state in via `Arc`s, loom-style.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let ctx = current_ctx().expect("model::spawn is called from inside model::explore");
    let ctrl = Arc::clone(&ctx.ctrl);
    let tid = {
        let mut s = ctrl.lock_state();
        let tid = s.threads.len();
        s.threads.push(TState::Runnable);
        tid
    };
    let thread_ctrl = Arc::clone(&ctrl);
    let handle = thread::Builder::new()
        .name(format!("vaq-race-{tid}"))
        .spawn(move || {
            CTX.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    ctrl: Arc::clone(&thread_ctrl),
                    tid,
                });
            });
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                // Park until first scheduled; aborts unwind from here
                // into the catch just like a body panic would.
                let s = thread_ctrl.lock_state();
                thread_ctrl.park_until_scheduled(s, tid);
                f();
            }));
            thread_ctrl.finish(tid, result);
        })
        .expect("OS thread spawn succeeds");
    {
        let mut s = ctrl.lock_state();
        s.handles.push(handle);
    }
    // Thread creation is a visible event: give the scheduler a decision
    // so the child may run before the parent's next step.
    ctrl.schedule_point(ctx.tid);
    JoinHandle { ctrl, tid }
}

/// Runs `body` once per schedule, enumerating bounded interleavings
/// depth-first. Returns a [`Report`] when every explored schedule
/// passes, or the first [`Failure`] (panic, deadlock, locking-rule
/// violation) with its decision trace.
///
/// The body runs as model thread 0 and may [`spawn`] further model
/// threads; it must be deterministic apart from scheduling (same
/// decision points in the same order given the same choices).
pub fn explore<F>(cfg: &Config, body: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync,
{
    install_quiet_panic_hook();
    let mut frames: Vec<Frame> = Vec::new();
    let mut schedules = 0_usize;
    let mut max_decisions = 0_usize;
    loop {
        schedules += 1;
        let ctrl = Arc::new(Controller::new(
            cfg.preemption_bound,
            std::mem::take(&mut frames),
        ));
        run_schedule(&ctrl, &body);
        let (run_frames, failure) = {
            let mut s = ctrl.lock_state();
            (std::mem::take(&mut s.frames), s.failure.take())
        };
        max_decisions = max_decisions.max(run_frames.len());
        if let Some(message) = failure {
            return Err(Failure {
                message,
                schedule: run_frames.iter().map(|f| f.options[f.chosen]).collect(),
                schedules,
            });
        }
        frames = run_frames;
        // Backtrack: advance the deepest frame with an unexplored
        // option; pop exhausted frames. Empty stack = space exhausted.
        loop {
            match frames.last_mut() {
                None => {
                    return Ok(Report {
                        schedules,
                        complete: true,
                        max_decisions,
                    });
                }
                Some(frame) => {
                    frame.chosen += 1;
                    if frame.chosen < frame.options.len() {
                        break;
                    }
                    frames.pop();
                }
            }
        }
        if schedules >= cfg.max_schedules {
            return Ok(Report {
                schedules,
                complete: false,
                max_decisions,
            });
        }
    }
}

/// One schedule: run the body as model thread 0 on its own OS thread,
/// then join every OS thread the run created.
fn run_schedule<F>(ctrl: &Arc<Controller>, body: &F)
where
    F: Fn() + Send + Sync,
{
    thread::scope(|scope| {
        let root_ctrl = Arc::clone(ctrl);
        scope.spawn(move || {
            CTX.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    ctrl: Arc::clone(&root_ctrl),
                    tid: 0,
                });
            });
            let result = panic::catch_unwind(AssertUnwindSafe(body));
            root_ctrl.finish(0, result);
        });
    });
    // The root has returned, but children it spawned may still be
    // draining their schedules; join them all before reading results.
    loop {
        let handle = {
            let mut s = ctrl.lock_state();
            s.handles.pop()
        };
        match handle {
            // Child panics were already routed through finish(); the
            // OS-level join result carries nothing further.
            Some(h) => drop(h.join()),
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_threaded_body_is_one_schedule() {
        let report = explore(&Config::default(), || {
            let a = AtomicUsize::new(0);
            a.fetch_add(1, Ordering::SeqCst);
            assert_eq!(a.load(Ordering::SeqCst), 1);
        })
        .expect("no failure");
        assert_eq!(report.schedules, 1);
        assert!(report.complete);
    }

    #[test]
    fn explores_more_than_one_schedule_with_two_threads() {
        let report = explore(&Config::exhaustive(), || {
            let shared = Arc::new(AtomicUsize::new(0));
            let theirs = Arc::clone(&shared);
            let t = spawn(move || {
                theirs.fetch_add(1, Ordering::SeqCst);
            });
            shared.fetch_add(2, Ordering::SeqCst);
            t.join();
            assert_eq!(shared.load(Ordering::SeqCst), 3);
        })
        .expect("additions commute");
        assert!(report.complete);
        assert!(report.schedules > 1, "got {} schedules", report.schedules);
    }

    #[test]
    fn read_modify_write_split_is_caught() {
        // The canonical seeded race: load-then-store instead of
        // fetch_add loses an increment in some interleaving.
        let failure = explore(&Config::default(), || {
            let shared = Arc::new(AtomicUsize::new(0));
            let theirs = Arc::clone(&shared);
            let t = spawn(move || {
                let v = theirs.load(Ordering::SeqCst);
                theirs.store(v + 1, Ordering::SeqCst);
            });
            let v = shared.load(Ordering::SeqCst);
            shared.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(shared.load(Ordering::SeqCst), 2, "an increment was lost");
        });
        let failure = failure.expect_err("the split increment must lose an update");
        assert!(
            failure.message.contains("panicked"),
            "unexpected failure: {failure}"
        );
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn ab_ba_lock_order_deadlocks() {
        let failure = explore(&Config::default(), || {
            let a = Arc::new(Mutex::new(0_u32));
            let b = Arc::new(Mutex::new(0_u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = spawn(move || {
                let ga = a2.lock().expect("not poisoned");
                let mut gb = b2.lock().expect("not poisoned");
                *gb += *ga;
            });
            let gb = b.lock().expect("not poisoned");
            let mut ga = a.lock().expect("not poisoned");
            *ga += *gb;
            drop(ga);
            drop(gb);
            t.join();
        });
        let failure = failure.expect_err("AB-BA ordering must deadlock in some schedule");
        assert!(
            failure.message.contains("deadlock"),
            "unexpected failure: {failure}"
        );
    }

    #[test]
    fn mutex_protects_a_split_increment() {
        // The same read-modify-write, now under a lock: every
        // interleaving conserves both increments.
        let report = explore(&Config::exhaustive(), || {
            let shared = Arc::new(Mutex::new(0_usize));
            let theirs = Arc::clone(&shared);
            let t = spawn(move || {
                let mut g = theirs.lock().expect("not poisoned");
                *g += 1;
            });
            {
                let mut g = shared.lock().expect("not poisoned");
                *g += 1;
            }
            t.join();
            assert_eq!(*shared.lock().expect("not poisoned"), 2);
        })
        .expect("the lock serialises the increments");
        assert!(report.complete);
        assert!(report.schedules > 1);
    }

    #[test]
    fn relock_on_the_same_thread_is_reported() {
        let failure = explore(&Config::default(), || {
            let m = Mutex::new(0_u8);
            let _g = m.lock().expect("not poisoned");
            let _g2 = m.lock().expect("not poisoned");
        });
        let failure = failure.expect_err("self-relock is a modelled error");
        assert!(
            failure.message.contains("re-locked"),
            "unexpected failure: {failure}"
        );
    }

    #[test]
    fn primitives_pass_through_outside_explorations() {
        // No exploration context on this thread: model types behave
        // like their std counterparts.
        let a = AtomicUsize::new(5);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 5);
        assert_eq!(a.load(Ordering::SeqCst), 7);
        a.store(1, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 1);
        let m = Mutex::new(3_u32);
        *m.lock().expect("not poisoned") += 1;
        assert_eq!(*m.lock().expect("not poisoned"), 4);
        assert_eq!(m.into_inner().expect("not poisoned"), 4);
    }
}
