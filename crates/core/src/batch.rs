//! Batch query execution: answer many area queries over one engine,
//! optionally in parallel.
//!
//! The engine is immutable after construction and `Sync`; the only
//! per-query mutable state is the [`crate::scratch::QueryScratch`]. Batch
//! execution hands
//! each worker thread its own scratch and splits the query list into
//! contiguous chunks — embarrassingly parallel, no locking on the hot
//! path. This is the throughput-oriented serving mode of a GIS backend,
//! complementing the paper's latency-oriented single-query evaluation.

use crate::area::QueryArea;
use crate::engine::{AreaQueryEngine, QueryResult, SeedIndex};
use crate::voronoi_query::ExpansionPolicy;
use vaq_geom::{Polygon, PreparedPolygon};

impl AreaQueryEngine {
    /// Answers `areas` sequentially with the Voronoi method, reusing one
    /// scratch across the batch.
    pub fn voronoi_batch<A: QueryArea>(&self, areas: &[A]) -> Vec<QueryResult> {
        let mut scratch = self.new_scratch();
        areas
            .iter()
            .map(|a| self.voronoi_with(a, ExpansionPolicy::Segment, SeedIndex::RTree, &mut scratch))
            .collect()
    }

    /// Answers `areas` with the Voronoi method on `threads` worker
    /// threads (contiguous chunks, one scratch per worker). Results come
    /// back in input order.
    ///
    /// `threads == 0` or `1` falls back to the sequential path.
    pub fn voronoi_batch_parallel<A: QueryArea + Sync>(
        &self,
        areas: &[A],
        threads: usize,
    ) -> Vec<QueryResult> {
        if threads <= 1 || areas.len() <= 1 {
            return self.voronoi_batch(areas);
        }
        let chunk = areas.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = areas
                .chunks(chunk)
                .map(|part| scope.spawn(move || self.voronoi_batch(part)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker does not panic"))
                .collect()
        })
    }

    /// As [`AreaQueryEngine::voronoi_batch`], but every area is
    /// **prepared once up front** (query compilation: slab index + edge
    /// grid + cached MBR/interior point) before any query runs, so the
    /// per-candidate and per-frontier primitives inside the batch hot
    /// loop are index-backed. Results are identical to the raw batch.
    pub fn voronoi_batch_prepared(&self, areas: &[Polygon]) -> Vec<QueryResult> {
        let prepared = prepare_all(areas);
        self.voronoi_batch(&prepared)
    }

    /// As [`AreaQueryEngine::voronoi_batch_parallel`] with prepare-once
    /// semantics: preparation happens once on the calling thread, and the
    /// immutable prepared areas are shared by every worker.
    pub fn voronoi_batch_parallel_prepared(
        &self,
        areas: &[Polygon],
        threads: usize,
    ) -> Vec<QueryResult> {
        let prepared = prepare_all(areas);
        self.voronoi_batch_parallel(&prepared, threads)
    }
}

/// Query-compiles a slice of polygons (shared helper of the prepared
/// batch entry points).
fn prepare_all(areas: &[Polygon]) -> Vec<PreparedPolygon> {
    areas
        .iter()
        .map(|a| PreparedPolygon::new(a.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::{Point, Polygon};

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn squares() -> Vec<Polygon> {
        (0..16)
            .map(|k| {
                let cx = 0.2 + 0.04 * f64::from(k);
                Polygon::new(vec![
                    Point::new(cx - 0.1, 0.3),
                    Point::new(cx + 0.1, 0.3),
                    Point::new(cx + 0.1, 0.6),
                    Point::new(cx - 0.1, 0.6),
                ])
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_matches_individual_queries() {
        let engine = AreaQueryEngine::build(&uniform(3000, 17));
        let areas = squares();
        let batch = engine.voronoi_batch(&areas);
        for (area, got) in areas.iter().zip(&batch) {
            assert_eq!(got.sorted_indices(), engine.voronoi(area).sorted_indices());
        }
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let engine = AreaQueryEngine::build(&uniform(3000, 18));
        let areas = squares();
        let seq = engine.voronoi_batch(&areas);
        for threads in [1, 2, 4, 7] {
            let par = engine.voronoi_batch_parallel(&areas, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.indices, b.indices, "threads={threads}");
                assert_eq!(a.stats.candidates, b.stats.candidates);
            }
        }
    }

    #[test]
    fn prepared_batch_matches_raw_batch() {
        let engine = AreaQueryEngine::build(&uniform(3000, 21));
        let areas = squares();
        let raw = engine.voronoi_batch(&areas);
        let prepared = engine.voronoi_batch_prepared(&areas);
        assert_eq!(raw.len(), prepared.len());
        for (a, b) in raw.iter().zip(&prepared) {
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.stats.candidates, b.stats.candidates);
            assert_eq!(a.stats.segment_tests, b.stats.segment_tests);
        }
        for threads in [2, 4] {
            let par = engine.voronoi_batch_parallel_prepared(&areas, threads);
            for (a, b) in raw.iter().zip(&par) {
                assert_eq!(a.indices, b.indices, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_batch() {
        let engine = AreaQueryEngine::build(&uniform(100, 19));
        let areas: Vec<Polygon> = Vec::new();
        assert!(engine.voronoi_batch(&areas).is_empty());
        assert!(engine.voronoi_batch_parallel(&areas, 4).is_empty());
    }
}
