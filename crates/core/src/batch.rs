//! Batch query execution: answer many area queries over one engine,
//! optionally in parallel.
//!
//! The engine is immutable after construction and `Sync`; the only
//! per-query mutable state is the per-worker
//! [`QuerySession`]. The single batch entrypoint is
//! [`AreaQueryEngine::execute_batch`]: any [`QuerySpec`] over any slice of
//! areas, on any number of worker threads. Workers claim queries from a
//! **shared atomic work-stealing index** (one `fetch_add` per query, no
//! other coordination), so skewed query sizes never leave threads idle the
//! way fixed contiguous chunks did — the thread that drew three heavy
//! 32 %-size queries no longer gates the batch while its siblings sleep.
//! Results always come back in input order. This is the
//! throughput-oriented serving mode of a GIS backend, complementing the
//! paper's latency-oriented single-query evaluation.
//!
//! The batch path never inspects the spec's output mode: each worker's
//! session emits into the spec's [`ResultSink`](crate::ResultSink) and
//! returns the finished per-query [`QueryOutput`], so every sink —
//! including kNN-within-area and payload materialisation — batches with
//! zero extra dispatch here.

use crate::area::{AreaFingerprint, QueryArea};
use crate::engine::{AreaQueryEngine, QueryResult};
use crate::plan::{ExecutionPlan, PlanFeatures, PlannedPath, Planner};
use crate::query::{PrepareMode, QueryOutput, QuerySession, QuerySpec};
use crate::stats::CacheCounters;
use crate::sync::{scope, ClaimCounter};
use std::sync::Arc;
use vaq_geom::{Polygon, PreparedPolygon};

/// Prepared-area resolution for one whole batch: each distinct area
/// fingerprint is query-compiled exactly once on the calling thread and
/// the immutable compiled form is shared (`Arc`) by every worker — and,
/// on the sharded engine, by every shard. The per-area counters replay
/// what a single batch-wide cache would have recorded: a miss on a
/// fingerprint's first (input-order) occurrence, a hit on every repeat.
pub(crate) struct BatchPreparedAreas {
    /// Per input area: the shared compiled form (`None` when the area has
    /// no prepared form and runs as-is).
    pub(crate) resolved: Vec<Option<Arc<dyn QueryArea + Send + Sync>>>,
    /// Per input area: the synthesized cache traffic (all zero unless the
    /// spec asked for [`PrepareMode::Cached`]).
    pub(crate) counters: Vec<CacheCounters>,
}

/// Resolves a batch's areas for `spec`. Returns `None` for
/// [`PrepareMode::Raw`] (areas run exactly as passed). For
/// [`PrepareMode::Cached`], distinct fingerprints are prepared once and
/// shared; for [`PrepareMode::PrepareOnce`], each area is prepared
/// individually (per-query semantics) but still off the workers' hot
/// loop.
pub(crate) fn prepare_batch_shared<A: QueryArea>(
    spec: &QuerySpec,
    areas: &[A],
) -> Option<BatchPreparedAreas> {
    if spec.prepare == PrepareMode::Raw {
        return None;
    }
    let mut resolved: Vec<Option<Arc<dyn QueryArea + Send + Sync>>> =
        Vec::with_capacity(areas.len());
    let mut counters = vec![CacheCounters::default(); areas.len()];
    let mut distinct: Vec<(AreaFingerprint, Arc<dyn QueryArea + Send + Sync>)> = Vec::new();
    for (i, area) in areas.iter().enumerate() {
        if spec.prepare == PrepareMode::PrepareOnce {
            resolved.push(area.prepare().map(Arc::from));
            continue;
        }
        let Some(fp) = area.fingerprint() else {
            resolved.push(None);
            continue;
        };
        if let Some((_, prep)) = distinct
            .iter()
            .find(|(k, _)| k.hash() == fp.hash() && *k == fp)
        {
            counters[i].hits = 1;
            resolved.push(Some(Arc::clone(prep)));
        } else if let Some(prep) = area.prepare() {
            let prep: Arc<dyn QueryArea + Send + Sync> = Arc::from(prep);
            counters[i].misses = 1;
            distinct.push((fp, Arc::clone(&prep)));
            resolved.push(Some(prep));
        } else {
            resolved.push(None);
        }
    }
    Some(BatchPreparedAreas { resolved, counters })
}

impl AreaQueryEngine {
    /// Executes `spec` over every area, on `threads` worker threads, and
    /// returns the outputs **in input order**.
    ///
    /// `threads <= 1` (or a batch of at most one query) runs sequentially
    /// on the calling thread with a single reused session. The parallel
    /// path gives each worker its own session and hands out queries
    /// through a shared atomic index (work stealing): a worker that
    /// finishes early keeps pulling work instead of idling behind a
    /// fixed chunk boundary.
    ///
    /// Preparation is hoisted out of the workers on **both** paths:
    /// under [`PrepareMode::Cached`](crate::PrepareMode) each
    /// **distinct** fingerprint is compiled exactly once per batch and
    /// the compiled form is shared by every worker (a repeated-area
    /// batch no longer re-prepares the same area once per worker, and a
    /// batch with more distinct areas than a session cache holds cannot
    /// thrash it), and the batch-wide hit/miss counters land in the
    /// returned stats: the first input-order occurrence of a fingerprint
    /// records the miss, every repeat a hit — exactly what one
    /// unbounded shared cache would have seen, independent of `threads`.
    pub fn execute_batch<A: QueryArea + Sync>(
        &self,
        spec: &QuerySpec,
        areas: &[A],
        threads: usize,
    ) -> Vec<QueryOutput> {
        if spec.method.is_auto() {
            return self.execute_batch_auto(spec, areas, threads);
        }
        let shared = if spec.prepare == PrepareMode::Cached {
            prepare_batch_shared(spec, areas)
        } else {
            // PrepareOnce keeps its documented per-query semantics (each
            // worker compiles per query); Raw has nothing to prepare.
            None
        };
        let raw_spec = spec.prepare(PrepareMode::Raw);
        if threads <= 1 || areas.len() <= 1 {
            // Same once-per-batch preparation as the parallel path, so
            // cache counters (and the preparation count) do not depend on
            // the thread count — and a batch with more distinct areas
            // than the session LRU holds cannot thrash it.
            let mut session = QuerySession::new(self);
            return areas
                .iter()
                .enumerate()
                .map(
                    |(i, area)| match shared.as_ref().and_then(|s| s.resolved[i].as_deref()) {
                        Some(prepared) => {
                            let mut out = session.execute(&raw_spec, prepared);
                            out.stats_mut().prepared_cache =
                                shared.as_ref().expect("resolved implies shared").counters[i];
                            out
                        }
                        None => session.execute(spec, area),
                    },
                )
                .collect();
        }
        let next = ClaimCounter::new();
        let workers = threads.min(areas.len());
        let mut slots: Vec<Option<QueryOutput>> = Vec::new();
        slots.resize_with(areas.len(), || None);
        scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let shared = shared.as_ref();
                    let raw_spec = &raw_spec;
                    scope.spawn(move || {
                        let mut session = QuerySession::new(self);
                        let mut done = Vec::new();
                        loop {
                            let i = next.claim();
                            let Some(area) = areas.get(i) else { break };
                            let out = match shared.and_then(|s| s.resolved[i].as_deref()) {
                                Some(prepared) => {
                                    let mut out = session.execute(raw_spec, prepared);
                                    out.stats_mut().prepared_cache =
                                        shared.expect("resolved implies shared").counters[i];
                                    out
                                }
                                None => session.execute(spec, area),
                            };
                            done.push((i, out));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (i, out) in h.join().expect("batch worker does not panic") {
                    slots[i] = Some(out);
                }
            }
        });
        slots
            .into_iter()
            .map(|o| o.expect("every query index is claimed exactly once"))
            .collect()
    }

    /// The batched planned path: every area's plan is resolved **up
    /// front** with one fresh [`Planner`] (the batch path has no session
    /// cache and plans must not depend on worker interleaving, so
    /// resolution happens before any query runs and the planner never
    /// chooses [`PrepareMode::Cached`] here — [`PlannedPath::Batch`]
    /// prepares per query instead). The resolved explicit specs then run
    /// through the ordinary per-worker sessions, and each output carries
    /// its [`ExecutionPlan`]. Deterministic for a fixed engine and area
    /// list, whatever the thread count.
    fn execute_batch_auto<A: QueryArea + Sync>(
        &self,
        spec: &QuerySpec,
        areas: &[A],
        threads: usize,
    ) -> Vec<QueryOutput> {
        let planner = Planner::default();
        let plans: Vec<(QuerySpec, ExecutionPlan)> = areas
            .iter()
            .map(|area| {
                let mbr = area.mbr();
                let features = PlanFeatures {
                    len: self.len(),
                    est_candidates: self.density_map().estimate_count(&mbr),
                    vertices: area.complexity(),
                    cached: false,
                    cacheable: area.fingerprint().is_some(),
                    delta_len: 0,
                    shards: 0,
                    in_hull: self.data_bounds().contains_rect(&mbr),
                    diagram: self.diagram_kind(),
                    path: PlannedPath::Batch,
                };
                planner.resolve(spec, &features)
            })
            .collect();
        let mut outs = if threads <= 1 || areas.len() <= 1 {
            let mut session = QuerySession::new(self);
            areas
                .iter()
                .zip(&plans)
                .map(|(area, (resolved, _))| session.execute(resolved, area))
                .collect()
        } else {
            let next = ClaimCounter::new();
            let workers = threads.min(areas.len());
            let mut slots: Vec<Option<QueryOutput>> = Vec::new();
            slots.resize_with(areas.len(), || None);
            scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let plans = &plans;
                        scope.spawn(move || {
                            let mut session = QuerySession::new(self);
                            let mut done = Vec::new();
                            loop {
                                let i = next.claim();
                                let Some(area) = areas.get(i) else { break };
                                done.push((i, session.execute(&plans[i].0, area)));
                            }
                            done
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, out) in h.join().expect("planned batch worker does not panic") {
                        slots[i] = Some(out);
                    }
                }
            });
            slots
                .into_iter()
                .map(|o| o.expect("every query index is claimed exactly once"))
                .collect::<Vec<QueryOutput>>()
        };
        for (out, (_, plan)) in outs.iter_mut().zip(&plans) {
            out.stats_mut().plan = Some(*plan);
        }
        outs
    }

    /// Answers `areas` sequentially with the Voronoi method, reusing one
    /// session across the batch — [`QuerySession::execute`] in a loop with
    /// the default spec.
    pub fn voronoi_batch<A: QueryArea>(&self, areas: &[A]) -> Vec<QueryResult> {
        let spec = QuerySpec::voronoi();
        let mut session = QuerySession::new(self);
        collect_results(areas.iter().map(|a| session.execute(&spec, a)).collect())
    }

    /// Answers `areas` with the Voronoi method on `threads` worker
    /// threads. Results come back in input order. Wrapper over
    /// [`AreaQueryEngine::execute_batch`] with the default spec.
    ///
    /// `threads == 0` or `1` falls back to the sequential path.
    pub fn voronoi_batch_parallel<A: QueryArea + Sync>(
        &self,
        areas: &[A],
        threads: usize,
    ) -> Vec<QueryResult> {
        collect_results(self.execute_batch(&QuerySpec::voronoi(), areas, threads))
    }

    /// As [`AreaQueryEngine::voronoi_batch`], but every area is
    /// **prepared once up front** (query compilation: slab index + edge
    /// grid + cached MBR/interior point) before any query runs, so the
    /// per-candidate and per-frontier primitives inside the batch hot
    /// loop are index-backed. Results are identical to the raw batch.
    pub fn voronoi_batch_prepared(&self, areas: &[Polygon]) -> Vec<QueryResult> {
        let prepared = prepare_all(areas);
        self.voronoi_batch(&prepared)
    }

    /// As [`AreaQueryEngine::voronoi_batch_parallel`] with prepare-once
    /// semantics: preparation happens once on the calling thread, and the
    /// immutable prepared areas are shared by every worker.
    pub fn voronoi_batch_parallel_prepared(
        &self,
        areas: &[Polygon],
        threads: usize,
    ) -> Vec<QueryResult> {
        let prepared = prepare_all(areas);
        self.voronoi_batch_parallel(&prepared, threads)
    }
}

/// Unwraps a batch of collect-mode outputs into plain results.
fn collect_results(outputs: Vec<QueryOutput>) -> Vec<QueryResult> {
    outputs
        .into_iter()
        .map(|o| o.into_result().expect("collect-mode batch"))
        .collect()
}

/// Query-compiles a slice of polygons (shared helper of the prepared
/// batch entry points).
fn prepare_all(areas: &[Polygon]) -> Vec<PreparedPolygon> {
    areas
        .iter()
        .map(|a| PreparedPolygon::new(a.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::{Point, Polygon};

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn squares() -> Vec<Polygon> {
        (0..16)
            .map(|k| {
                let cx = 0.2 + 0.04 * f64::from(k);
                Polygon::new(vec![
                    Point::new(cx - 0.1, 0.3),
                    Point::new(cx + 0.1, 0.3),
                    Point::new(cx + 0.1, 0.6),
                    Point::new(cx - 0.1, 0.6),
                ])
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_matches_individual_queries() {
        let engine = AreaQueryEngine::build(&uniform(3000, 17));
        let areas = squares();
        let batch = engine.voronoi_batch(&areas);
        for (area, got) in areas.iter().zip(&batch) {
            assert_eq!(got.sorted_indices(), engine.voronoi(area).sorted_indices());
        }
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let engine = AreaQueryEngine::build(&uniform(3000, 18));
        let areas = squares();
        let seq = engine.voronoi_batch(&areas);
        for threads in [1, 2, 4, 7] {
            let par = engine.voronoi_batch_parallel(&areas, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.indices, b.indices, "threads={threads}");
                assert_eq!(a.stats.candidates, b.stats.candidates);
            }
        }
    }

    #[test]
    fn prepared_batch_matches_raw_batch() {
        let engine = AreaQueryEngine::build(&uniform(3000, 21));
        let areas = squares();
        let raw = engine.voronoi_batch(&areas);
        let prepared = engine.voronoi_batch_prepared(&areas);
        assert_eq!(raw.len(), prepared.len());
        for (a, b) in raw.iter().zip(&prepared) {
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.stats.candidates, b.stats.candidates);
            assert_eq!(a.stats.segment_tests, b.stats.segment_tests);
        }
        for threads in [2, 4] {
            let par = engine.voronoi_batch_parallel_prepared(&areas, threads);
            for (a, b) in raw.iter().zip(&par) {
                assert_eq!(a.indices, b.indices, "threads={threads}");
            }
        }
    }

    /// A repeated-area cached batch compiles each distinct fingerprint
    /// once for the whole batch (not once per worker) and the merged
    /// hit/miss counters come back in the per-query stats: first
    /// input-order occurrence = miss, every repeat = hit.
    #[test]
    fn cached_parallel_batch_prepares_each_fingerprint_once() {
        use crate::query::{PrepareMode, QuerySpec};
        let engine = AreaQueryEngine::build(&uniform(2000, 23));
        let distinct = squares();
        let mut areas = Vec::new();
        for _ in 0..3 {
            areas.extend(distinct.iter().cloned());
        }
        let spec = QuerySpec::voronoi().prepare(PrepareMode::Cached);
        let raw = engine.execute_batch(&QuerySpec::voronoi(), &areas, 1);
        // threads = 1 included: the sequential path shares the same
        // once-per-batch preparation, so counters are thread-independent.
        for threads in [1, 2, 4, 8] {
            let outs = engine.execute_batch(&spec, &areas, threads);
            let misses: u64 = outs.iter().map(|o| o.stats().prepared_cache.misses).sum();
            let hits: u64 = outs.iter().map(|o| o.stats().prepared_cache.hits).sum();
            assert_eq!(
                misses,
                distinct.len() as u64,
                "one preparation per distinct area (threads={threads})"
            );
            assert_eq!(
                hits,
                (areas.len() - distinct.len()) as u64,
                "every repeat is a hit (threads={threads})"
            );
            for (i, out) in outs.iter().enumerate() {
                let want = if i < distinct.len() {
                    crate::stats::CacheCounters { hits: 0, misses: 1 }
                } else {
                    crate::stats::CacheCounters { hits: 1, misses: 0 }
                };
                assert_eq!(
                    out.stats().prepared_cache,
                    want,
                    "query {i}, threads={threads}"
                );
                assert_eq!(
                    out.result().unwrap().indices,
                    raw[i].result().unwrap().indices,
                    "query {i}, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn empty_batch() {
        let engine = AreaQueryEngine::build(&uniform(100, 19));
        let areas: Vec<Polygon> = Vec::new();
        assert!(engine.voronoi_batch(&areas).is_empty());
        assert!(engine.voronoi_batch_parallel(&areas, 4).is_empty());
    }
}
