//! The concurrency facade: every synchronisation primitive the engine's
//! hot paths share state through, importable from exactly one place.
//!
//! Two implementations sit behind the same names:
//!
//! * **Passthrough** (default): zero-cost re-exports of `std::sync` —
//!   [`AtomicUsize`] *is* `std::sync::atomic::AtomicUsize` and [`Mutex`]
//!   *is* `std::sync::Mutex`, so codegen is bit-identical to writing the
//!   std paths directly.
//! * **Model** (`--cfg vaq_race`): the deterministic interleaving
//!   explorer in [`model`] supplies drop-in replacements whose every
//!   operation is a scheduling point. `RUSTFLAGS='--cfg vaq_race'
//!   cargo test -p vaq-race` then enumerates bounded thread
//!   interleavings of the code built on this facade (DFS over schedules
//!   with a preemption bound — loom-style, but std-only).
//!
//! The `sync-facade` vaq-lint rule keeps raw `std::sync::{atomic,
//! Mutex}` imports confined to this module, so the two implementations
//! cannot silently drift apart: concurrent code that bypasses the
//! facade is a lint finding, not a latent blind spot of the model
//! checker.
//!
//! ## What is shared, and under which primitive
//!
//! * **Work distribution** — the batch executors (unsharded, sharded,
//!   planned, and the parallel shard build) hand out work through a
//!   [`ClaimCounter`]: one `fetch_add` per item, no other coordination.
//! * **Planner calibration** — [`ShardedAreaQueryEngine`] resolves and
//!   observes `MethodChoice::Auto` queries through a [`Mutex`]`<Planner>`
//!   (the engine executes through `&self`).
//! * **Build-time record stores** — the parallel shard build parks each
//!   shard's split [`RecordStore`](crate::RecordStore) in a
//!   [`Mutex`]`<Option<RecordStore>>` so the owning worker can *take* it
//!   instead of cloning record contents.
//! * **Pipeline handoff** — `vaq-workload`'s build pipeline moves
//!   engines between threads through [`channel::bounded`].
//!
//! The dynamic engines (`DynamicAreaQueryEngine` and the sharded
//! overlay) mutate delta/tombstone/compaction state through `&mut self`
//! and are externally synchronised; `vaq-race` model-checks them behind
//! a model [`Mutex`](model::Mutex) to prove that a plain exclusive lock
//! is a sufficient sharing contract for that state.
//!
//! [`ShardedAreaQueryEngine`]: crate::ShardedAreaQueryEngine

pub mod model;

/// Atomic memory-ordering tokens. Both facade implementations use the
/// std orderings verbatim; the model executes operations under
/// sequential consistency (it explores *interleavings*, not memory-model
/// weakenings), so every ordering argument is also a documentation
/// artefact — which is why the `atomic-ordering` lint insists each use
/// carries an `// ordering:` justification.
pub use std::sync::atomic::Ordering;

#[cfg(not(vaq_race))]
pub use std::sync::atomic::AtomicUsize;
#[cfg(not(vaq_race))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(vaq_race)]
pub use model::{AtomicUsize, Mutex, MutexGuard};

/// Scoped threads, re-exported so worker fan-out rides the facade too.
/// Thread creation itself is not a modelled operation — the model
/// checker spawns its own logical threads via [`model::spawn`] — but
/// routing the engine's scopes through this name keeps every
/// concurrency ingredient in one audited module.
pub use std::thread::{scope, Scope};

/// The work-stealing claim counter: the one concurrency idiom behind
/// every parallel loop in the engine (batch execution, the sharded
/// `(area, shard)` fan-out, and the parallel shard build).
///
/// Workers repeatedly [`claim`](ClaimCounter::claim) the next work index
/// until the returned index runs past the work list. Each index is
/// handed to exactly one worker (the counter never skips and never
/// repeats — the property `vaq-race` model-checks exhaustively), and a
/// worker that finishes early keeps claiming instead of idling behind a
/// fixed chunk boundary.
#[derive(Debug, Default)]
pub struct ClaimCounter {
    next: AtomicUsize,
}

impl ClaimCounter {
    /// A fresh counter starting at index 0.
    pub fn new() -> ClaimCounter {
        ClaimCounter {
            next: AtomicUsize::new(0),
        }
    }

    /// Claims and returns the next work index. Every call returns a
    /// distinct index, in allocation order 0, 1, 2, … across all
    /// claiming threads.
    #[inline]
    pub fn claim(&self) -> usize {
        // ordering: Relaxed suffices for the claim counter — the
        // returned index is the *only* information a worker acts on
        // (the work list itself is immutable and was published by the
        // scope/spawn edge), so no other memory traffic needs to be
        // ordered against the fetch_add; its atomicity alone guarantees
        // uniqueness of the handed-out indices.
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

/// Resolves a requested worker-thread count: `0` auto-tunes to the
/// machine's [`std::thread::available_parallelism`] (at least 1),
/// anything else passes through. The CLI exposes the sentinel as
/// `--threads auto`/`--threads 0`, exactly like `--shards auto`; the
/// sharded engine's shard-count auto-tuning resolves through the same
/// function.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// Bounded channels for pipeline handoff (the depth-1 build pipeline in
/// `vaq-workload::experiment`).
///
/// Both facade implementations pass through to
/// [`std::sync::mpsc::sync_channel`]: a bounded channel is a blocking
/// rendezvous, not a lock-free hot path, so the model checker covers
/// the *protocols built on top of it* (via [`model::Mutex`] models)
/// rather than the channel internals themselves.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, SyncSender};

    /// A bounded channel with capacity `cap`: `send` blocks while the
    /// buffer is full (capacity 0 is a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_counter_hands_out_sequential_indices() {
        let c = ClaimCounter::new();
        assert_eq!(c.claim(), 0);
        assert_eq!(c.claim(), 1);
        assert_eq!(c.claim(), 2);
        let d = ClaimCounter::default();
        assert_eq!(d.claim(), 0);
    }

    #[test]
    fn claim_counter_is_unique_across_threads() {
        let c = ClaimCounter::new();
        let mut all: Vec<usize> = scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = &c;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = c.claim();
                            if i >= 64 {
                                break;
                            }
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("claim worker does not panic"))
                .collect()
        });
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_threads_auto_tunes_zero() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(
            resolve_threads(0),
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        );
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn bounded_channel_hands_off_in_order() {
        let (tx, rx) = channel::bounded::<usize>(1);
        let got: Vec<usize> = scope(|s| {
            s.spawn(move || {
                for i in 0..8 {
                    tx.send(i).expect("receiver lives");
                }
            });
            (0..8).map(|_| rx.recv().expect("sender lives")).collect()
        });
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }
}
