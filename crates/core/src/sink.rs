//! Composable result sinks: what happens to a candidate after it survives
//! filter + refinement.
//!
//! The paper's area query *finds* the points inside the area; real systems
//! then *do something* with each accepted candidate — materialise the full
//! geometry record, keep only the k nearest to a focus point, count, or
//! just collect indices. Before this module, each of those output shapes
//! was a `match` on [`OutputMode`] repeated in every execution path
//! (single query, batch worker, dynamic delta scan, per-shard merge), so
//! every new shape multiplied across all of them.
//!
//! A [`ResultSink`] inverts that: the execution paths **emit** every
//! accepted candidate into a sink and never look at the output mode again.
//! Each sink owns
//!
//! * a **mergeable partial state** ([`ResultSink::Partial`], `Send`) —
//!   batch workers, shards and the dynamic engine's delta scan each fill
//!   their own partial and the owner folds them with
//!   [`ResultSink::merge`], instead of concatenating index vectors and
//!   re-dispatching on the output mode;
//! * an **emission step** ([`ResultSink::emit`]) — called once per
//!   accepted candidate with its output id, its executing-engine-local
//!   index (for record reads), its coordinates and the engine's
//!   [`RecordStore`].
//!
//! The id space is generic ([`SinkId`]): static and sharded engines emit
//! `u32` **global input indices**, the dynamic engines emit `u64`
//! **stable external ids**. Merging is deterministic: a partial's content
//! after any interleaving of emits and merges depends only on the emitted
//! multiset (the k-nearest sink breaks distance ties by id).
//!
//! Four sinks ship today, one per non-classify [`OutputMode`]:
//!
//! | sink | partial | emit | answer |
//! |------|---------|------|--------|
//! | [`CollectSink`] | `Vec<id>` | push | matching ids |
//! | [`CountSink`] | `usize` | increment | match count |
//! | [`TopKNearestSink`] | bounded max-heap | push if nearer | k nearest matches to an origin |
//! | [`MaterializeSink`] | `Vec<id>` | read record, push | ids + payload checksum |
//!
//! `OutputMode::Classify` is *not* a sink — classification is defined on
//! the whole Voronoi diagram, not per accepted candidate — and is handled
//! where the single output-mode dispatch lives (the crate-private
//! `dispatch_sink`), the only `match` over [`OutputMode`] in the crate.

use crate::dynamic::DynamicQueryResult;
use crate::engine::QueryResult;
use crate::payload::RecordStore;
use crate::query::{OutputMode, QueryOutput};
use crate::shard::ShardedQueryOutput;
use crate::stats::QueryStats;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vaq_geom::Point;

/// An id space results are emitted in: `u32` global input indices for the
/// static and sharded engines, `u64` stable external ids for the dynamic
/// engines.
pub trait SinkId: Copy + Ord + Send + Sync + std::fmt::Debug + 'static {}

impl SinkId for u32 {}
impl SinkId for u64 {}

/// One accepted candidate, as handed to [`ResultSink::emit`].
#[derive(Clone, Copy, Debug)]
pub struct Emit<'a, I: SinkId> {
    /// The candidate's id in the caller's output space (global input
    /// index, or external id on the dynamic path).
    pub id: I,
    /// The candidate's index in the *executing* engine — the id its
    /// records live under in that engine's [`RecordStore`] (shard-local
    /// on a sharded engine; meaningless when `records` is `None`).
    pub local: u32,
    /// The candidate's coordinates.
    pub point: Point,
    /// The executing engine's record store, when it simulates payload
    /// records (`None` otherwise — e.g. the dynamic delta scan, whose
    /// buffered inserts have no stored records until compaction).
    pub records: Option<&'a RecordStore>,
}

/// A result sink: accepted candidates are emitted in, a mergeable partial
/// state comes out. See the [module docs](self) for the contract and the
/// shipped sinks.
///
/// Implementations are small `Copy` configuration values (the partial
/// carries all the data), shared freely across worker threads.
pub trait ResultSink<I: SinkId>: Copy + Send + Sync {
    /// The sink's mergeable partial result state. Batch workers, shards
    /// and delta scans each fill one; [`ResultSink::merge`] folds them.
    type Partial: Send;

    /// A fresh, empty partial.
    fn start(&self) -> Self::Partial;

    /// Folds one accepted candidate into `partial`. Called once per
    /// candidate that survived filter + refinement; `stats` is the
    /// executing run's counters (the materialising sink folds its record
    /// checksums into `stats.payload_checksum`).
    fn emit(&self, partial: &mut Self::Partial, item: &Emit<'_, I>, stats: &mut QueryStats);

    /// Folds `from` into `into`. The result is independent of merge
    /// order and of how emissions were distributed across partials.
    fn merge(&self, into: &mut Self::Partial, from: Self::Partial);

    /// Number of result items `partial` currently holds (what
    /// `QueryStats::result_size` reports for the run).
    fn result_len(&self, partial: &Self::Partial) -> usize;
}

/// One answer of the k-nearest-within-area sink: a matching point and its
/// exact squared distance to the query origin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor<I: SinkId = u32> {
    /// The matching point's id (global input index, or external id on the
    /// dynamic path).
    pub id: I,
    /// Exact squared Euclidean distance to the sink's origin.
    pub dist_sq: f64,
}

/// Squared Euclidean distance — the exact, deterministic ranking key of
/// [`TopKNearestSink`] (identical f64 operations on identical inputs, so
/// every execution path ranks identically).
#[inline]
fn dist_sq(origin: Point, p: Point) -> f64 {
    let dx = p.x - origin.x;
    let dy = p.y - origin.y;
    dx * dx + dy * dy
}

/// Max-heap entry ordered by `(dist_sq, id)` — the heap's top is the
/// *worst* kept neighbour (farthest, largest id on ties), which is what a
/// bounded k-nearest heap evicts first.
#[derive(Clone, Copy, Debug)]
struct HeapEntry<I: SinkId> {
    dist_sq: f64,
    id: I,
}

impl<I: SinkId> PartialEq for HeapEntry<I> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<I: SinkId> Eq for HeapEntry<I> {}

impl<I: SinkId> PartialOrd for HeapEntry<I> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<I: SinkId> Ord for HeapEntry<I> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq
            .total_cmp(&other.dist_sq)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Bounded max-heap over `(dist_sq, id)`: the partial state of
/// [`TopKNearestSink`]. Its content after any emit/merge interleaving is
/// exactly the k smallest entries of the emitted multiset under the total
/// `(dist_sq, id)` order — deterministic by construction.
#[derive(Clone, Debug, Default)]
pub struct TopKPartial<I: SinkId> {
    heap: BinaryHeap<HeapEntry<I>>,
}

impl<I: SinkId> TopKPartial<I> {
    fn push_bounded(&mut self, k: usize, e: HeapEntry<I>) {
        if k == 0 {
            return;
        }
        if self.heap.len() < k {
            self.heap.push(e);
        } else if let Some(top) = self.heap.peek() {
            if e < *top {
                self.heap.pop();
                self.heap.push(e);
            }
        }
    }

    /// The kept neighbours, ascending by `(dist_sq, id)`.
    fn into_sorted(self) -> Vec<Neighbor<I>> {
        let mut v: Vec<HeapEntry<I>> = self.heap.into_vec();
        v.sort_unstable();
        v.into_iter()
            .map(|e| Neighbor {
                id: e.id,
                dist_sq: e.dist_sq,
            })
            .collect()
    }
}

/// The collecting sink: the matching ids, in emission order
/// ([`OutputMode::Collect`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct CollectSink;

impl<I: SinkId> ResultSink<I> for CollectSink {
    type Partial = Vec<I>;

    fn start(&self) -> Vec<I> {
        Vec::new()
    }

    #[inline]
    fn emit(&self, partial: &mut Vec<I>, item: &Emit<'_, I>, _stats: &mut QueryStats) {
        partial.push(item.id);
    }

    fn merge(&self, into: &mut Vec<I>, mut from: Vec<I>) {
        if into.is_empty() {
            *into = from;
        } else {
            into.append(&mut from);
        }
    }

    fn result_len(&self, partial: &Vec<I>) -> usize {
        partial.len()
    }
}

/// The counting sink: matches counted, nothing materialised
/// ([`OutputMode::Count`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct CountSink;

impl<I: SinkId> ResultSink<I> for CountSink {
    type Partial = usize;

    fn start(&self) -> usize {
        0
    }

    #[inline]
    fn emit(&self, partial: &mut usize, _item: &Emit<'_, I>, _stats: &mut QueryStats) {
        *partial += 1;
    }

    fn merge(&self, into: &mut usize, from: usize) {
        *into += from;
    }

    fn result_len(&self, partial: &usize) -> usize {
        *partial
    }
}

/// The kNN-within-area sink ([`OutputMode::TopKNearest`]): of the points
/// inside the area, keep the `k` nearest to `origin` by exact squared
/// Euclidean distance, ties broken by ascending id. A bounded max-heap,
/// merged across shards and delta buffers; `k = 0` keeps nothing.
#[derive(Clone, Copy, Debug)]
pub struct TopKNearestSink {
    /// How many nearest matches to keep.
    pub k: usize,
    /// The focus point distances are measured from (need not lie inside
    /// the area).
    pub origin: Point,
}

impl<I: SinkId> ResultSink<I> for TopKNearestSink {
    type Partial = TopKPartial<I>;

    fn start(&self) -> TopKPartial<I> {
        TopKPartial {
            heap: BinaryHeap::with_capacity(self.k.min(1024)),
        }
    }

    #[inline]
    fn emit(&self, partial: &mut TopKPartial<I>, item: &Emit<'_, I>, _stats: &mut QueryStats) {
        partial.push_bounded(
            self.k,
            HeapEntry {
                dist_sq: dist_sq(self.origin, item.point),
                id: item.id,
            },
        );
    }

    fn merge(&self, into: &mut TopKPartial<I>, from: TopKPartial<I>) {
        for e in from.heap {
            into.push_bounded(self.k, e);
        }
    }

    fn result_len(&self, partial: &TopKPartial<I>) -> usize {
        partial.heap.len()
    }
}

/// The payload-materialising sink ([`OutputMode::Materialize`]): collects
/// the matching ids *and* reads each accepted candidate's full record
/// through the executing engine's [`RecordStore`], folding the record
/// checksums into `QueryStats::payload_checksum` — the response-building
/// fetch a real GIS performs after validation. On engines without a
/// record store (or on delta-buffered points, which have no stored record
/// until compaction) it degrades to collection.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaterializeSink;

impl<I: SinkId> ResultSink<I> for MaterializeSink {
    type Partial = Vec<I>;

    fn start(&self) -> Vec<I> {
        Vec::new()
    }

    #[inline]
    fn emit(&self, partial: &mut Vec<I>, item: &Emit<'_, I>, stats: &mut QueryStats) {
        if let Some(rs) = item.records {
            stats.payload_checksum = stats.payload_checksum.wrapping_add(rs.read(item.local));
        }
        partial.push(item.id);
    }

    fn merge(&self, into: &mut Vec<I>, mut from: Vec<I>) {
        if into.is_empty() {
            *into = from;
        } else {
            into.append(&mut from);
        }
    }

    fn result_len(&self, partial: &Vec<I>) -> usize {
        partial.len()
    }
}

/// Finishers for the `u32` (global-input-index) id space: how a sink's
/// merged partial becomes a [`QueryOutput`] or fills a
/// [`ShardedQueryOutput`].
pub(crate) trait EngineSink: ResultSink<u32> {
    /// Wraps the finished partial as the funnel's [`QueryOutput`].
    /// `stats.result_size` has already been set from
    /// [`ResultSink::result_len`].
    fn finish_output(
        &self,
        partial: <Self as ResultSink<u32>>::Partial,
        stats: QueryStats,
    ) -> QueryOutput;

    /// Writes the merged partial into a sharded output (`indices` /
    /// `neighbors` / `count`, ids ascending).
    fn fold_sharded(&self, acc: <Self as ResultSink<u32>>::Partial, out: &mut ShardedQueryOutput);
}

/// Finishers for the `u64` (external-id) space: how a sink's merged
/// partial fills a [`DynamicQueryResult`].
pub(crate) trait DynamicSink: ResultSink<u64> {
    /// Writes the merged partial into a dynamic result (`ids` ascending,
    /// `neighbors` by ascending `(dist_sq, id)`).
    fn finish_dynamic(&self, acc: <Self as ResultSink<u64>>::Partial, out: &mut DynamicQueryResult);
}

impl EngineSink for CollectSink {
    fn finish_output(&self, partial: Vec<u32>, stats: QueryStats) -> QueryOutput {
        QueryOutput::Collected(QueryResult {
            indices: partial,
            stats,
        })
    }

    fn fold_sharded(&self, mut acc: Vec<u32>, out: &mut ShardedQueryOutput) {
        acc.sort_unstable();
        out.count = acc.len();
        out.indices = acc;
    }
}

impl DynamicSink for CollectSink {
    fn finish_dynamic(&self, mut acc: Vec<u64>, out: &mut DynamicQueryResult) {
        acc.sort_unstable();
        out.ids = acc;
    }
}

impl EngineSink for CountSink {
    fn finish_output(&self, partial: usize, stats: QueryStats) -> QueryOutput {
        QueryOutput::Counted {
            count: partial,
            stats,
        }
    }

    fn fold_sharded(&self, acc: usize, out: &mut ShardedQueryOutput) {
        out.count = acc;
    }
}

impl DynamicSink for CountSink {
    fn finish_dynamic(&self, _acc: usize, _out: &mut DynamicQueryResult) {
        // The count lives in `stats.result_size`; there are no ids to
        // materialise.
    }
}

impl EngineSink for TopKNearestSink {
    fn finish_output(&self, partial: TopKPartial<u32>, stats: QueryStats) -> QueryOutput {
        QueryOutput::TopK {
            neighbors: partial.into_sorted(),
            stats,
        }
    }

    fn fold_sharded(&self, acc: TopKPartial<u32>, out: &mut ShardedQueryOutput) {
        let neighbors = acc.into_sorted();
        out.count = neighbors.len();
        out.indices = neighbors.iter().map(|n| n.id).collect();
        out.indices.sort_unstable();
        out.neighbors = neighbors;
    }
}

impl DynamicSink for TopKNearestSink {
    fn finish_dynamic(&self, acc: TopKPartial<u64>, out: &mut DynamicQueryResult) {
        let neighbors = acc.into_sorted();
        out.ids = neighbors.iter().map(|n| n.id).collect();
        out.ids.sort_unstable();
        out.neighbors = neighbors;
    }
}

impl EngineSink for MaterializeSink {
    fn finish_output(&self, partial: Vec<u32>, stats: QueryStats) -> QueryOutput {
        QueryOutput::Materialized(QueryResult {
            indices: partial,
            stats,
        })
    }

    fn fold_sharded(&self, mut acc: Vec<u32>, out: &mut ShardedQueryOutput) {
        acc.sort_unstable();
        out.count = acc.len();
        out.indices = acc;
    }
}

impl DynamicSink for MaterializeSink {
    fn finish_dynamic(&self, mut acc: Vec<u64>, out: &mut DynamicQueryResult) {
        acc.sort_unstable();
        out.ids = acc;
    }
}

/// A computation generic over the sink kind: the funnel's execution paths
/// implement this once and [`dispatch_sink`] instantiates them per
/// concrete sink. `classify` is the non-sink escape hatch (classification
/// is whole-diagram, not per-candidate).
pub(crate) trait SinkVisitor: Sized {
    /// The computation's result type.
    type Out;

    /// Runs the computation with the concrete sink `kind`.
    fn visit<K: EngineSink + DynamicSink>(self, kind: K) -> Self::Out;

    /// Runs the non-sink classification output.
    fn classify(self) -> Self::Out;
}

/// **The one `OutputMode` dispatch in the crate**: maps the spec's output
/// mode to its concrete sink and hands it to the visitor. Every execution
/// path — single query, batch, dynamic, sharded — funnels through here;
/// adding a sink means adding an [`OutputMode`] variant, a sink type, and
/// one arm below.
pub(crate) fn dispatch_sink<V: SinkVisitor>(output: OutputMode, v: V) -> V::Out {
    match output {
        OutputMode::Collect => v.visit(CollectSink),
        OutputMode::Count => v.visit(CountSink),
        OutputMode::Classify => v.classify(),
        OutputMode::TopKNearest { k, origin } => v.visit(TopKNearestSink { k, origin }),
        OutputMode::Materialize => v.visit(MaterializeSink),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_item(id: u32, x: f64, y: f64) -> Emit<'static, u32> {
        Emit {
            id,
            local: id,
            point: Point::new(x, y),
            records: None,
        }
    }

    #[test]
    fn collect_and_count_partials_merge_by_concatenation_and_sum() {
        let c = CollectSink;
        let mut a: Vec<u32> = ResultSink::<u32>::start(&c);
        let mut b: Vec<u32> = ResultSink::<u32>::start(&c);
        let mut stats = QueryStats::default();
        c.emit(&mut a, &emit_item(3, 0.0, 0.0), &mut stats);
        c.emit(&mut b, &emit_item(1, 0.0, 0.0), &mut stats);
        c.emit(&mut b, &emit_item(2, 0.0, 0.0), &mut stats);
        c.merge(&mut a, b);
        assert_eq!(a, vec![3, 1, 2]);
        assert_eq!(ResultSink::<u32>::result_len(&c, &a), 3);

        let n = CountSink;
        let mut x: usize = ResultSink::<u32>::start(&n);
        n.emit(&mut x, &emit_item(9, 0.0, 0.0), &mut stats);
        ResultSink::<u32>::merge(&n, &mut x, 4);
        assert_eq!(x, 5);
    }

    #[test]
    fn topk_keeps_k_smallest_with_id_tiebreak_regardless_of_order() {
        let sink = TopKNearestSink {
            k: 3,
            origin: Point::new(0.0, 0.0),
        };
        // Two exact distance ties (ids 5 and 2 at distance 1.0): the
        // smaller id wins the last slot.
        let items = [
            (7u32, 2.0, 0.0),
            (5, 1.0, 0.0),
            (2, 0.0, 1.0),
            (9, 0.5, 0.0),
            (4, 3.0, 0.0),
        ];
        let mut stats = QueryStats::default();
        // All in one partial…
        let mut all: TopKPartial<u32> = ResultSink::<u32>::start(&sink);
        for &(id, x, y) in &items {
            sink.emit(&mut all, &emit_item(id, x, y), &mut stats);
        }
        let direct = all.into_sorted();
        // …vs split across two partials merged in either order.
        for split in 0..items.len() {
            for flip in [false, true] {
                let mut a: TopKPartial<u32> = ResultSink::<u32>::start(&sink);
                let mut b: TopKPartial<u32> = ResultSink::<u32>::start(&sink);
                for (i, &(id, x, y)) in items.iter().enumerate() {
                    let target = if i < split { &mut a } else { &mut b };
                    sink.emit(target, &emit_item(id, x, y), &mut stats);
                }
                let merged = if flip {
                    sink.merge(&mut b, a);
                    b
                } else {
                    sink.merge(&mut a, b);
                    a
                };
                assert_eq!(merged.into_sorted(), direct, "split {split}, flip {flip}");
            }
        }
        assert_eq!(
            direct.iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![9, 2, 5],
            "0.25 < 1.0 (tie: id 2 beats id 5), 1.0; ids 7 and 4 evicted"
        );
    }

    #[test]
    fn topk_zero_keeps_nothing() {
        let sink = TopKNearestSink {
            k: 0,
            origin: Point::new(0.5, 0.5),
        };
        let mut p: TopKPartial<u32> = ResultSink::<u32>::start(&sink);
        let mut stats = QueryStats::default();
        sink.emit(&mut p, &emit_item(1, 0.5, 0.5), &mut stats);
        assert_eq!(ResultSink::<u32>::result_len(&sink, &p), 0);
        assert!(p.into_sorted().is_empty());
    }

    #[test]
    fn materialize_reads_records_and_folds_checksums() {
        let store = RecordStore::generate(4, 64, 0xABCD);
        let sink = MaterializeSink;
        let mut p: Vec<u32> = ResultSink::<u32>::start(&sink);
        let mut stats = QueryStats::default();
        for id in [2u32, 0] {
            sink.emit(
                &mut p,
                &Emit {
                    id,
                    local: id,
                    point: Point::new(0.0, 0.0),
                    records: Some(&store),
                },
                &mut stats,
            );
        }
        assert_eq!(p, vec![2, 0]);
        assert_eq!(
            stats.payload_checksum,
            store.read(2).wrapping_add(store.read(0))
        );
        // Without a store, it degrades to collection.
        let mut q: Vec<u32> = ResultSink::<u32>::start(&sink);
        let mut s2 = QueryStats::default();
        sink.emit(&mut q, &emit_item(7, 0.0, 0.0), &mut s2);
        assert_eq!(q, vec![7]);
        assert_eq!(s2.payload_checksum, 0);
    }
}
