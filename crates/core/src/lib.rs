//! # vaq-core — the area-query engine
//!
//! The primary contribution of *Area Queries Based on Voronoi Diagrams*
//! (ICDE 2020), reproduced in full, next to the traditional baseline it is
//! evaluated against.
//!
//! An **area query** returns every point of a set `P` contained in a given
//! closed polygon `A`. Two implementations:
//!
//! * **Traditional filter–refine** ([`traditional_area_query`], module
//!   [`traditional`]): window query with `MBR(A)` on a spatial index, then
//!   exact validation of each candidate. Candidates ≈ all points in the
//!   MBR, so irregular areas validate mostly garbage.
//! * **Voronoi-based incremental generation** ([`voronoi_area_query`],
//!   module [`voronoi_query`] — the paper's Algorithm 1): seed with the
//!   nearest site to a point of `A`, then BFS over Voronoi neighbours,
//!   expanding from outside-points only across the area boundary.
//!   Candidates = internal points + a one-cell-thick boundary ring.
//!
//! [`AreaQueryEngine`] packages both behind **one query surface**: a
//! [`QuerySpec`] names a point in the evaluation grid (method × filter
//! index × seed index × expansion policy × prepare mode × output shape)
//! and a [`QuerySession`] executes it, owning the reusable scratch and a
//! bounded LRU **prepared-area cache** for dashboard-style repeated
//! queries. A brute-force oracle and the paper's Section III point
//! classification ([`classify`]) run through the same funnel. Callers
//! who'd rather not pick a strategy ask for [`QuerySpec::auto()`]: the
//! cost-model planner (module [`plan`]) resolves method, expansion
//! policy, prepare mode and shard pruning per query and records its
//! decision as an [`ExecutionPlan`] in the stats.
//!
//! ## Quick start
//!
//! ```
//! use vaq_core::{AreaQueryEngine, OutputMode, PrepareMode, QuerySpec};
//! use vaq_geom::{Point, Polygon, Rect};
//!
//! // A tiny dataset and a concave query area.
//! let pts: Vec<Point> = (0..100)
//!     .map(|i| Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0))
//!     .collect();
//! let area = Polygon::new(vec![
//!     Point::new(0.05, 0.05),
//!     Point::new(0.85, 0.10),
//!     Point::new(0.30, 0.35),   // concave notch
//!     Point::new(0.40, 0.85),
//! ]).unwrap();
//!
//! let engine = AreaQueryEngine::build(&pts);
//! let mut session = engine.session();
//!
//! // The paper's two methods are one field apart.
//! let voronoi = session.execute(&QuerySpec::voronoi(), &area);
//! let traditional = session.execute(&QuerySpec::traditional(), &area);
//! let result = voronoi.result().unwrap();
//! assert_eq!(
//!     result.sorted_indices(),
//!     traditional.result().unwrap().sorted_indices(),
//! );
//! println!(
//!     "result {} candidates {} redundant {}",
//!     result.stats.result_size,
//!     result.stats.candidates,
//!     result.stats.redundant_validations(),
//! );
//!
//! // Counts, window queries and cached prepared areas ride the same
//! // funnel: same seeding, same counters, bit-identical answers.
//! let spec = QuerySpec::voronoi()
//!     .prepare(PrepareMode::Cached)
//!     .output(OutputMode::Count);
//! let n = session.execute(&spec, &area).count();
//! assert_eq!(n, result.indices.len());
//! assert_eq!(session.execute(&spec, &area).stats().prepared_cache.hits, 1);
//! let window = Rect::new(Point::new(0.0, 0.0), Point::new(0.55, 0.55));
//! assert_eq!(session.execute(&spec, &window).count(), 36);
//!
//! // Batches fan out over a shared work-stealing index.
//! let areas = vec![area.clone(), area];
//! let outs = engine.execute_batch(&QuerySpec::voronoi(), &areas, 2);
//! assert_eq!(outs[0].count(), outs[1].count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod batch;
pub mod classify;
pub mod dynamic;
pub mod engine;
pub mod payload;
pub mod plan;
pub mod query;
pub mod scratch;
pub mod shard;
pub mod sink;
pub mod snapshot;
pub mod stats;
pub mod sync;
pub mod traditional;
pub mod voronoi_query;

pub use area::{AreaFingerprint, QueryArea};
pub use classify::{classify_points, PointClass};
pub use dynamic::{DynamicAreaQueryEngine, DynamicQueryResult};
pub use engine::{AreaQueryEngine, EngineBuilder, IndexConfig, QueryResult, SeedIndex};
pub use payload::{RecordStore, RecordStoreError};
pub use plan::{DensityMap, ExecutionPlan, PlanFeatures, PlannedPath, Planner};
pub use query::{
    MethodChoice, OutputMode, PrepareMode, QueryMethod, QueryOutput, QuerySession, QuerySpec,
    ShardPruning, DEFAULT_CACHE_CAPACITY,
};
pub use scratch::QueryScratch;
pub use shard::{
    ShardBreakdown, ShardedAreaQueryEngine, ShardedDynamicAreaQueryEngine, ShardedQueryOutput,
};
pub use sink::{
    CollectSink, CountSink, Emit, MaterializeSink, Neighbor, ResultSink, SinkId, TopKNearestSink,
    TopKPartial,
};
pub use snapshot::{LoadedEngine, SnapshotError, SnapshotInfo, SnapshotKind, SNAPSHOT_VERSION};
pub use stats::{CacheCounters, PredicateCounters, QueryStats};
pub use traditional::{traditional_area_query, FilterIndex};
pub use voronoi_query::{voronoi_area_query, ExpansionPolicy};
