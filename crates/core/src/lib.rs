//! # vaq-core — the area-query engine
//!
//! The primary contribution of *Area Queries Based on Voronoi Diagrams*
//! (ICDE 2020), reproduced in full, next to the traditional baseline it is
//! evaluated against.
//!
//! An **area query** returns every point of a set `P` contained in a given
//! closed polygon `A`. Two implementations:
//!
//! * **Traditional filter–refine** ([`traditional_area_query`], module
//!   [`traditional`]): window query with `MBR(A)` on a spatial index, then
//!   exact validation of each candidate. Candidates ≈ all points in the
//!   MBR, so irregular areas validate mostly garbage.
//! * **Voronoi-based incremental generation** ([`voronoi_area_query`],
//!   module [`voronoi_query`] — the paper's Algorithm 1): seed with the
//!   nearest site to a point of `A`, then BFS over Voronoi neighbours,
//!   expanding from outside-points only across the area boundary.
//!   Candidates = internal points + a one-cell-thick boundary ring.
//!
//! [`AreaQueryEngine`] packages both behind one API, with configurable
//! filter/seed indexes and expansion policies for the ablation studies, a
//! brute-force oracle, and the paper's Section III point classification
//! ([`classify`]).
//!
//! ## Quick start
//!
//! ```
//! use vaq_core::AreaQueryEngine;
//! use vaq_geom::{Point, Polygon};
//!
//! // A tiny dataset and a concave query area.
//! let pts: Vec<Point> = (0..100)
//!     .map(|i| Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0))
//!     .collect();
//! let area = Polygon::new(vec![
//!     Point::new(0.05, 0.05),
//!     Point::new(0.85, 0.10),
//!     Point::new(0.30, 0.35),   // concave notch
//!     Point::new(0.40, 0.85),
//! ]).unwrap();
//!
//! let engine = AreaQueryEngine::build(&pts);
//! let result = engine.voronoi(&area);
//! assert_eq!(result.sorted_indices(), engine.traditional(&area).sorted_indices());
//! println!(
//!     "result {} candidates {} redundant {}",
//!     result.stats.result_size,
//!     result.stats.candidates,
//!     result.stats.redundant_validations(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod batch;
pub mod classify;
pub mod dynamic;
pub mod engine;
pub mod payload;
pub mod scratch;
pub mod stats;
pub mod traditional;
pub mod voronoi_query;

pub use area::QueryArea;
pub use classify::{classify_points, PointClass};
pub use dynamic::DynamicAreaQueryEngine;
pub use engine::{AreaQueryEngine, EngineBuilder, QueryResult, SeedIndex};
pub use payload::RecordStore;
pub use scratch::QueryScratch;
pub use stats::QueryStats;
pub use traditional::{traditional_area_query, FilterIndex};
pub use voronoi_query::{voronoi_area_query, ExpansionPolicy};
