//! The query-area abstraction.
//!
//! The paper evaluates on simple polygons, but neither method cares what
//! the area *is* — they need exactly five operations. [`QueryArea`]
//! captures them, so the engine answers queries over plain polygons and
//! over [`Region`]s (polygons with holes) with the same code.
//!
//! **Contract**: the area's interior must be *connected* (a polygon always
//! is; a region is as long as its holes don't touch each other or the
//! outer ring — see [`Region::validate_nesting`]). The Voronoi method's
//! completeness argument (the connectivity lemma in [`crate::classify`])
//! needs connectedness; the traditional method does not, but a
//! disconnected "area" is two queries in disguise anyway.

use vaq_geom::{Point, Polygon, PreparedPolygon, PreparedRegion, Rect, Region, Segment};

/// A content hash of a query area's vertices, keying the per-session
/// prepared-area cache (see `QuerySession`).
///
/// Two areas with the same fingerprint are geometrically identical down to
/// the last f64 bit: the `words` hold the exact coordinate bit patterns
/// (plus ring structure), so a 64-bit hash collision is detected by the
/// full comparison instead of silently answering the wrong query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AreaFingerprint {
    hash: u64,
    words: Vec<u64>,
}

impl AreaFingerprint {
    /// Builds a fingerprint from the area's content words (FNV-1a hash).
    pub fn new(words: Vec<u64>) -> AreaFingerprint {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for w in &words {
            for byte in w.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        AreaFingerprint { hash, words }
    }

    /// The 64-bit content hash (cheap first-stage comparison).
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// Encodes a sequence of vertex rings as fingerprint words: a leading ring
/// count, each ring's length, then every coordinate's exact bit pattern.
/// The length prefixes make the encoding prefix-free across ring layouts.
fn ring_words<'a>(rings: impl Iterator<Item = &'a [Point]> + Clone) -> Vec<u64> {
    let ring_count = rings.clone().count() as u64;
    let total: usize = rings.clone().map(<[Point]>::len).sum();
    let mut words = Vec::with_capacity(1 + ring_count as usize + 2 * total);
    words.push(ring_count);
    for ring in rings {
        words.push(ring.len() as u64);
        for p in ring {
            words.push(p.x.to_bits());
            words.push(p.y.to_bits());
        }
    }
    words
}

/// Operations the area-query methods need from a query area.
///
/// The five required methods are the geometric primitives; the two
/// provided methods ([`QueryArea::fingerprint`] and [`QueryArea::prepare`])
/// opt an area into the prepared-area machinery of `PrepareMode` — types
/// that are already their own best representation (a [`Rect`], an already
/// prepared polygon) keep the `None` defaults and pass through untouched.
pub trait QueryArea {
    /// Minimum bounding rectangle (drives the traditional filter).
    fn mbr(&self) -> Rect;

    /// Exact closed containment test (the refinement primitive).
    fn contains(&self, p: Point) -> bool;

    /// `true` when the segment crosses or touches the area's boundary;
    /// used by the segment expansion policy where one endpoint is known to
    /// be outside the area.
    fn boundary_intersects_segment(&self, s: &Segment) -> bool;

    /// `true` when the closed area shares a point with the closed polygon
    /// (used by the cell expansion policy with a convex Voronoi cell).
    fn intersects_polygon(&self, poly: &Polygon) -> bool;

    /// Some point inside the area (the paper's "arbitrary position in A",
    /// which seeds the Voronoi method).
    fn interior_point(&self) -> Point;

    /// The area's combinatorial complexity `k` — its total vertex count
    /// (outer ring plus holes). Every geometric primitive above is
    /// `O(k)` raw, so this is the planner's per-primitive cost feature.
    /// The default is a generic small-polygon estimate for area types
    /// that don't override it.
    fn complexity(&self) -> usize {
        8
    }

    /// Content hash of the area's exact vertex data, keying the
    /// prepared-area cache. `None` (the default) opts out of caching:
    /// `PrepareMode::Cached` then runs the area as-is.
    ///
    /// Contract: `a.fingerprint() == b.fingerprint()` (both `Some`) must
    /// imply `a` and `b` answer every [`QueryArea`] primitive identically.
    fn fingerprint(&self) -> Option<AreaFingerprint> {
        None
    }

    /// Query-compiles the area into a faster, exactly-equivalent form
    /// (e.g. [`Polygon`] → [`PreparedPolygon`]). `None` (the default)
    /// means the area is already its own best representation and prepare
    /// modes pass it through unchanged.
    ///
    /// The compiled form is `Send + Sync` so one preparation can be
    /// shared by every worker of a parallel batch (and by every shard of
    /// a sharded engine) — prepared areas are immutable after
    /// construction.
    ///
    /// Contract: the returned area must answer every [`QueryArea`]
    /// primitive bit-identically to `self`.
    fn prepare(&self) -> Option<Box<dyn QueryArea + Send + Sync>> {
        None
    }
}

impl QueryArea for Polygon {
    #[inline]
    fn mbr(&self) -> Rect {
        Polygon::mbr(self)
    }

    #[inline]
    fn contains(&self, p: Point) -> bool {
        Polygon::contains(self, p)
    }

    #[inline]
    fn boundary_intersects_segment(&self, s: &Segment) -> bool {
        Polygon::boundary_intersects_segment(self, s)
    }

    #[inline]
    fn intersects_polygon(&self, poly: &Polygon) -> bool {
        Polygon::intersects_polygon(self, poly)
    }

    #[inline]
    fn interior_point(&self) -> Point {
        Polygon::interior_point(self)
    }

    #[inline]
    fn complexity(&self) -> usize {
        self.len()
    }

    fn fingerprint(&self) -> Option<AreaFingerprint> {
        Some(AreaFingerprint::new(ring_words(std::iter::once(
            self.vertices(),
        ))))
    }

    fn prepare(&self) -> Option<Box<dyn QueryArea + Send + Sync>> {
        Some(Box::new(PreparedPolygon::new(self.clone())))
    }
}

impl QueryArea for Region {
    #[inline]
    fn mbr(&self) -> Rect {
        Region::mbr(self)
    }

    #[inline]
    fn contains(&self, p: Point) -> bool {
        Region::contains(self, p)
    }

    #[inline]
    fn boundary_intersects_segment(&self, s: &Segment) -> bool {
        Region::boundary_intersects_segment(self, s)
    }

    #[inline]
    fn intersects_polygon(&self, poly: &Polygon) -> bool {
        Region::intersects_polygon(self, poly)
    }

    #[inline]
    fn interior_point(&self) -> Point {
        Region::interior_point(self)
    }

    #[inline]
    fn complexity(&self) -> usize {
        self.outer().len() + self.holes().iter().map(Polygon::len).sum::<usize>()
    }

    fn fingerprint(&self) -> Option<AreaFingerprint> {
        let rings = std::iter::once(self.outer().vertices())
            .chain(self.holes().iter().map(Polygon::vertices));
        Some(AreaFingerprint::new(ring_words(rings)))
    }

    fn prepare(&self) -> Option<Box<dyn QueryArea + Send + Sync>> {
        Some(Box::new(PreparedRegion::new(self.clone())))
    }
}

/// Axis-aligned window queries through the same API: a [`Rect`] is a
/// first-class query area. Every primitive is already `O(1)`, so the rect
/// is its own prepared form — prepare modes pass it through unchanged
/// (`fingerprint`/`prepare` keep the `None` defaults).
///
/// The rect must be non-empty (see [`Rect::is_empty`]); an empty rect has
/// no interior point to seed the Voronoi method with.
impl QueryArea for Rect {
    #[inline]
    fn mbr(&self) -> Rect {
        *self
    }

    #[inline]
    fn contains(&self, p: Point) -> bool {
        self.contains_point(p)
    }

    fn boundary_intersects_segment(&self, s: &Segment) -> bool {
        let c = self.corners();
        (0..4).any(|i| s.intersects(&Segment::new(c[i], c[(i + 1) % 4])))
    }

    #[inline]
    fn intersects_polygon(&self, poly: &Polygon) -> bool {
        poly.intersects_rect(self)
    }

    #[inline]
    fn interior_point(&self) -> Point {
        self.center()
    }

    #[inline]
    fn complexity(&self) -> usize {
        4
    }
}

/// Prepared areas answer the same five operations through their
/// build-once indexes — results are bit-identical to the raw types (see
/// `vaq_geom::prepared`), so queries over a [`PreparedPolygon`] return
/// exactly what the raw [`Polygon`] would, faster.
impl QueryArea for PreparedPolygon {
    #[inline]
    fn mbr(&self) -> Rect {
        PreparedPolygon::mbr(self)
    }

    #[inline]
    fn contains(&self, p: Point) -> bool {
        PreparedPolygon::contains(self, p)
    }

    #[inline]
    fn boundary_intersects_segment(&self, s: &Segment) -> bool {
        PreparedPolygon::boundary_intersects_segment(self, s)
    }

    #[inline]
    fn intersects_polygon(&self, poly: &Polygon) -> bool {
        PreparedPolygon::intersects_polygon(self, poly)
    }

    #[inline]
    fn interior_point(&self) -> Point {
        PreparedPolygon::interior_point(self)
    }

    #[inline]
    fn complexity(&self) -> usize {
        PreparedPolygon::len(self)
    }
}

impl QueryArea for PreparedRegion {
    #[inline]
    fn mbr(&self) -> Rect {
        PreparedRegion::mbr(self)
    }

    #[inline]
    fn contains(&self, p: Point) -> bool {
        PreparedRegion::contains(self, p)
    }

    #[inline]
    fn boundary_intersects_segment(&self, s: &Segment) -> bool {
        PreparedRegion::boundary_intersects_segment(self, s)
    }

    #[inline]
    fn intersects_polygon(&self, poly: &Polygon) -> bool {
        PreparedRegion::intersects_polygon(self, poly)
    }

    #[inline]
    fn interior_point(&self) -> Point {
        PreparedRegion::interior_point(self)
    }

    #[inline]
    fn complexity(&self) -> usize {
        PreparedRegion::outer(self).len()
            + PreparedRegion::holes(self)
                .iter()
                .map(PreparedPolygon::len)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn tri() -> Polygon {
        Polygon::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)]).unwrap()
    }

    /// The trait methods forward to the inherent ones.
    #[test]
    fn polygon_forwarding() {
        let a = tri();
        assert_eq!(QueryArea::mbr(&a), Polygon::mbr(&a));
        assert!(QueryArea::contains(&a, p(0.2, 0.2)));
        assert!(QueryArea::boundary_intersects_segment(
            &a,
            &Segment::new(p(-1.0, 0.5), p(1.0, 0.5))
        ));
        assert!(QueryArea::contains(&a, QueryArea::interior_point(&a)));
    }

    /// Prepared areas answer the five operations identically to raw.
    #[test]
    fn prepared_forwarding_matches_raw() {
        let a = tri();
        let prep = PreparedPolygon::new(a.clone());
        assert_eq!(QueryArea::mbr(&prep), QueryArea::mbr(&a));
        assert_eq!(
            QueryArea::interior_point(&prep),
            QueryArea::interior_point(&a)
        );
        let probes = [p(0.2, 0.2), p(0.0, 0.0), p(0.5, 0.5), p(2.0, 2.0)];
        for q in probes {
            assert_eq!(QueryArea::contains(&prep, q), QueryArea::contains(&a, q));
        }
        let s = Segment::new(p(-1.0, 0.5), p(1.0, 0.5));
        assert_eq!(
            QueryArea::boundary_intersects_segment(&prep, &s),
            QueryArea::boundary_intersects_segment(&a, &s)
        );
        assert_eq!(
            QueryArea::intersects_polygon(&prep, &tri()),
            QueryArea::intersects_polygon(&a, &tri())
        );

        let outer = Polygon::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]).unwrap();
        let hole = Polygon::new(vec![p(1.0, 1.0), p(3.0, 1.0), p(3.0, 3.0), p(1.0, 3.0)]).unwrap();
        let r = Region::new(outer, vec![hole]);
        let prep_r = PreparedRegion::new(r.clone());
        for q in [p(0.5, 0.5), p(2.0, 2.0), p(5.0, 5.0), p(1.0, 2.0)] {
            assert_eq!(QueryArea::contains(&prep_r, q), QueryArea::contains(&r, q));
        }
        assert_eq!(
            QueryArea::interior_point(&prep_r),
            QueryArea::interior_point(&r)
        );
    }

    #[test]
    fn region_forwarding() {
        let outer = Polygon::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]).unwrap();
        let hole = Polygon::new(vec![p(1.0, 1.0), p(3.0, 1.0), p(3.0, 3.0), p(1.0, 3.0)]).unwrap();
        let r = Region::new(outer, vec![hole]);
        assert!(QueryArea::contains(&r, p(0.5, 0.5)));
        assert!(!QueryArea::contains(&r, p(2.0, 2.0)));
        let ip = QueryArea::interior_point(&r);
        assert!(QueryArea::contains(&r, ip));
        assert!(QueryArea::intersects_polygon(&r, &tri()));
    }
}
