//! Dynamic updates on top of the static engine: the base + delta pattern.
//!
//! The Delaunay triangulation behind the Voronoi method is built once
//! (rebuilding the CSR adjacency per insert would be wasteful), so the
//! engine itself is static — the same trade-off the paper's setup makes.
//! Real deployments still need inserts and deletes between rebuilds. The
//! standard answer, used by LSM-style spatial stores, is an overlay:
//!
//! * a **base** [`AreaQueryEngine`] over the last compaction's points;
//! * a **delta** buffer of points inserted since, scanned linearly at
//!   query time (cheap while small);
//! * a **tombstone** set masking deleted base points;
//! * [`DynamicAreaQueryEngine::compact`] folds delta and tombstones into a
//!   fresh base when the overlay grows past a threshold.
//!
//! Query results use stable external ids handed out at insertion, so ids
//! survive compaction.
//!
//! **Weighted sites** ride the same overlay: build with
//! [`DynamicAreaQueryEngine::with_weights`] and insert with
//! [`DynamicAreaQueryEngine::insert_weighted`], and compaction folds the
//! weights into the rebuilt base's power diagram. A delta point's weight
//! has no effect *before* compaction — the delta scan is an exact
//! point-in-area test, and a site's weight shifts its cell, never its
//! membership in the area — so answers are exact at every moment and the
//! weight takes structural (performance-shaping) effect at the next
//! rebuild. Unweighted inserts carry weight `0.0`; an engine holding only
//! uniform weights compacts back to the plain Euclidean diagram,
//! bit-identically.
//!
//! Queries run through the same [`QuerySpec`] funnel as the static
//! engine ([`DynamicAreaQueryEngine::execute`]): the base pass honours
//! method / seed / policy / prepare mode (with an owned prepared-area
//! cache amortising repeated areas), and the delta scan's cost is
//! surfaced in the returned stats ([`QueryStats::delta_scanned`]).
//! [`DynamicAreaQueryEngine::query`] is the paper-default convenience.
//! For the partitioned variant see
//! [`ShardedDynamicAreaQueryEngine`](crate::shard::ShardedDynamicAreaQueryEngine).

use crate::area::QueryArea;
use crate::engine::{AreaQueryEngine, EngineBuilder};
use crate::plan::{PlannedPath, Planner};
use crate::query::{QuerySpec, SessionState, DEFAULT_CACHE_CAPACITY};
use crate::sink::{
    dispatch_sink, DynamicSink, Emit, EngineSink, Neighbor, ResultSink, SinkVisitor,
};
use crate::stats::{CacheCounters, QueryStats};
use std::collections::HashSet;
use vaq_geom::Point;

/// Fraction of the base size the delta may reach before
/// [`DynamicAreaQueryEngine::maybe_compact`] rebuilds.
pub const DEFAULT_COMPACT_RATIO: f64 = 0.25;

/// Minimum delta-buffer size before a tombstone purge is considered
/// (tiny buffers are cheaper to scan than to rewrite).
pub(crate) const DELTA_PURGE_MIN: usize = 16;

/// `true` when a delta buffer of `len` points, `dead` of them
/// tombstoned, should be physically purged: at least half dead and big
/// enough to matter. Shared by the plain and sharded dynamic engines.
pub(crate) fn should_purge_delta(len: usize, dead: usize) -> bool {
    len >= DELTA_PURGE_MIN && dead * 2 >= len
}

/// The answer to one dynamic query: stable external ids plus the work
/// counters of both passes (base query through the funnel, linear delta
/// scan — see [`QueryStats::delta_scanned`]).
#[derive(Clone, Debug, Default)]
pub struct DynamicQueryResult {
    /// Matching live external ids, ascending. Empty for the counting
    /// sink (`OutputMode::Count` — the count is `stats.result_size`);
    /// for `OutputMode::TopKNearest` these are the kept neighbours' ids.
    pub ids: Vec<u64>,
    /// The kept neighbours, ascending by `(dist_sq, id)` — populated
    /// only by `OutputMode::TopKNearest`.
    pub neighbors: Vec<Neighbor<u64>>,
    /// Combined counters: the base engine's query stats with the delta
    /// scan folded in (`delta_scanned`, plus one candidate / containment
    /// test per scanned live delta point) and `result_size` set to the
    /// final (tombstone-filtered) result count.
    pub stats: QueryStats,
}

/// A dynamic area-query engine: static base + linear delta + tombstones.
pub struct DynamicAreaQueryEngine {
    base: AreaQueryEngine,
    /// Stable external id of each base point (parallel to base points).
    base_ids: Vec<u64>,
    /// Site weight of each base point (parallel to base points; all
    /// `0.0` on a plain Euclidean engine).
    base_weights: Vec<f64>,
    /// Points inserted since the last compaction, with their ids and
    /// site weights (`0.0` for plain inserts).
    delta: Vec<(u64, Point, f64)>,
    /// How many `delta` entries are tombstoned (dead but not yet
    /// physically removed). Drives the purge heuristic.
    dead_delta: usize,
    /// External ids deleted since the last compaction (base or delta).
    tombstones: HashSet<u64>,
    /// Next external id to hand out.
    next_id: u64,
    /// Owned session state (reusable scratch + prepared-area cache), so
    /// repeated dynamic queries get the same amortisation a
    /// [`QuerySession`](crate::QuerySession) gives static callers.
    state: SessionState,
}

impl DynamicAreaQueryEngine {
    /// Builds over an initial point set; ids `0..n as u64` are assigned in
    /// input order.
    pub fn new(points: &[Point]) -> DynamicAreaQueryEngine {
        DynamicAreaQueryEngine {
            base_ids: (0..points.len() as u64).collect(),
            base_weights: vec![0.0; points.len()],
            next_id: points.len() as u64,
            base: AreaQueryEngine::build(points),
            delta: Vec::new(),
            dead_delta: 0,
            tombstones: HashSet::new(),
            state: SessionState::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// Builds over an initial **weighted** point set (power diagram
    /// semantics — see the [module docs](self)); ids `0..n as u64` are
    /// assigned in input order. Uniform weights normalise to the plain
    /// Euclidean engine, bit-identically.
    ///
    /// # Panics
    ///
    /// Panics when `weights.len() != points.len()` or any weight is
    /// non-finite (validate user input first; the CLI does).
    pub fn with_weights(points: &[Point], weights: &[f64]) -> DynamicAreaQueryEngine {
        assert_eq!(
            weights.len(),
            points.len(),
            "one weight per point: {} weights for {} points",
            weights.len(),
            points.len()
        );
        DynamicAreaQueryEngine {
            base_ids: (0..points.len() as u64).collect(),
            base_weights: weights.to_vec(),
            next_id: points.len() as u64,
            base: AreaQueryEngine::build_weighted(points, weights),
            delta: Vec::new(),
            dead_delta: 0,
            tombstones: HashSet::new(),
            state: SessionState::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// Number of live points (base + delta − tombstones).
    pub fn len(&self) -> usize {
        self.base_ids.len() + self.delta.len() - self.tombstones.len()
    }

    /// `true` when no live points remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points buffered in the delta (a compaction-pressure signal).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Inserts a point, returning its stable id.
    pub fn insert(&mut self, p: Point) -> u64 {
        self.insert_weighted(p, 0.0)
    }

    /// Inserts a point with a site weight, returning its stable id. The
    /// weight has no effect until the next compaction folds it into the
    /// rebuilt base's power diagram (see the [module docs](self)).
    pub fn insert_weighted(&mut self, p: Point, weight: f64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.delta.push((id, p, weight));
        id
    }

    /// Deletes the point with external id `id`. Returns `false` when the
    /// id is unknown or already deleted.
    ///
    /// Deleted *delta* points are tombstoned first and physically purged
    /// from the buffer once they make up at least half of it — a buffer
    /// of mostly-dead points would otherwise be re-scanned point by
    /// point on every query until the next full compaction.
    pub fn remove(&mut self, id: u64) -> bool {
        if self.tombstones.contains(&id) {
            return false;
        }
        let in_base = self.base_ids.binary_search(&id).is_ok();
        let in_delta = !in_base && self.delta.iter().any(|&(d, _, _)| d == id);
        if !in_base && !in_delta {
            return false;
        }
        self.tombstones.insert(id);
        if in_delta {
            self.dead_delta += 1;
            if should_purge_delta(self.delta.len(), self.dead_delta) {
                self.purge_delta();
            }
        }
        true
    }

    /// Physically removes tombstoned delta points (and retires their
    /// tombstones — a purged insert never reaches the base, so its
    /// tombstone has nothing left to mask). Queries and compaction see
    /// exactly the same live set before and after.
    fn purge_delta(&mut self) {
        let tombstones = &mut self.tombstones;
        self.delta.retain(|(id, _, _)| !tombstones.remove(id));
        self.dead_delta = 0;
    }

    /// Answers the area query with the paper-default [`QuerySpec`] (the
    /// Voronoi method, segment expansion, R-tree seed) and returns the
    /// stable external ids, ascending — the convenience form of
    /// [`DynamicAreaQueryEngine::execute`].
    pub fn query<A: QueryArea + ?Sized>(&mut self, area: &A) -> Vec<u64> {
        self.execute(&QuerySpec::new(), area).ids
    }

    /// Executes `spec` over `area` through the same
    /// [`QuerySpec`]/session funnel as the static engine: the base query
    /// honours the spec's method, seed index, expansion policy and
    /// prepare mode (including the owned prepared-area cache — repeated
    /// dashboard areas hit it across dynamic queries), then the live
    /// delta is scanned linearly. Both passes **emit into the spec's
    /// result sink** in external-id space, with tombstoned ids filtered
    /// *before* the sink (so a bounded sink like
    /// [`OutputMode::TopKNearest`](crate::OutputMode) never wastes a
    /// slot on a dead point). Stats surface both passes — see
    /// [`DynamicQueryResult::stats`] and [`QueryStats::delta_scanned`].
    ///
    /// Delta-buffered points have no stored payload records until
    /// compaction, so the materialising sink reads records for base
    /// points only.
    ///
    /// # Panics
    ///
    /// Panics if the spec requests an index the base engine did not build
    /// (the dynamic engine builds default bases: R-tree + Delaunay), or
    /// for `OutputMode::Classify` (classification is whole-diagram and
    /// undefined over a base + delta overlay).
    pub fn execute<A: QueryArea + ?Sized>(
        &mut self,
        spec: &QuerySpec,
        area: &A,
    ) -> DynamicQueryResult {
        if spec.method.is_auto() {
            let live_delta = self.delta.len() - self.dead_delta;
            let features =
                self.state
                    .plan_features(&self.base, area, PlannedPath::Dynamic, live_delta);
            let (resolved, plan) = self.state.planner.resolve(spec, &features);
            let mut out = self.execute(&resolved, area);
            out.stats.plan = Some(plan);
            self.state
                .planner
                .observe(&plan, Planner::observed_cost(&out.stats, features.vertices));
            return out;
        }
        dispatch_sink(
            spec.output,
            DynamicRun {
                eng: self,
                spec,
                area,
            },
        )
    }

    /// Lifetime hit/miss totals of the owned prepared-area cache (see
    /// [`PrepareMode::Cached`](crate::PrepareMode)).
    pub fn cache_counters(&self) -> CacheCounters {
        self.state.cache_totals()
    }

    /// The **live** overlay size: delta points not yet tombstoned, plus
    /// tombstones masking *base* points. A tombstoned delta point cancels
    /// out — after compaction it costs neither a delta scan nor a base
    /// mask — so it contributes to neither term (counting it in both, as
    /// `delta.len() + tombstones.len()` did, fired compaction up to twice
    /// as early as [`DEFAULT_COMPACT_RATIO`] documents).
    pub fn overlay_len(&self) -> usize {
        debug_assert_eq!(
            self.dead_delta,
            self.delta
                .iter()
                .filter(|(id, _, _)| self.tombstones.contains(id))
                .count(),
            "dead-delta counter tracks the tombstoned delta entries"
        );
        (self.delta.len() - self.dead_delta) + (self.tombstones.len() - self.dead_delta)
    }

    /// Compacts when the live overlay (see
    /// [`DynamicAreaQueryEngine::overlay_len`]) exceeds
    /// [`DEFAULT_COMPACT_RATIO`] of the base. Returns `true` if a rebuild
    /// happened.
    pub fn maybe_compact(&mut self) -> bool {
        let overlay = self.overlay_len();
        if (overlay as f64) <= (self.base_ids.len().max(16) as f64) * DEFAULT_COMPACT_RATIO {
            return false;
        }
        self.compact();
        true
    }

    /// Borrows everything a snapshot writer needs: the base engine, the
    /// id/weight tables, the delta buffer, the tombstone set and the
    /// next id. The session state (scratch + cache) is deliberately
    /// excluded — it is an amortisation, not part of the answer.
    #[allow(clippy::type_complexity)] // one borrow per persisted field
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        &AreaQueryEngine,
        &[u64],
        &[f64],
        &[(u64, Point, f64)],
        &HashSet<u64>,
        u64,
    ) {
        (
            &self.base,
            &self.base_ids,
            &self.base_weights,
            &self.delta,
            &self.tombstones,
            self.next_id,
        )
    }

    /// Reassembles a dynamic engine from snapshot-loaded parts: the base
    /// structure plus the overlay (delta + tombstones) replayed as data,
    /// not as operations. `dead_delta` is recomputed from the overlay
    /// and the session state starts fresh (caches are amortisations, not
    /// answers).
    pub(crate) fn from_snapshot_parts(
        base: AreaQueryEngine,
        base_ids: Vec<u64>,
        base_weights: Vec<f64>,
        delta: Vec<(u64, Point, f64)>,
        tombstones: HashSet<u64>,
        next_id: u64,
    ) -> DynamicAreaQueryEngine {
        let dead_delta = delta
            .iter()
            .filter(|(id, _, _)| tombstones.contains(id))
            .count();
        DynamicAreaQueryEngine {
            base,
            base_ids,
            base_weights,
            delta,
            dead_delta,
            tombstones,
            next_id,
            state: SessionState::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// Folds delta and tombstones into a fresh base engine, carrying
    /// every surviving site's weight into the rebuilt diagram (uniform
    /// weights — the all-plain-inserts case — normalise back to the
    /// Euclidean build, bit-identically).
    pub fn compact(&mut self) {
        let mut ids = Vec::with_capacity(self.len());
        let mut pts = Vec::with_capacity(self.len());
        let mut ws = Vec::with_capacity(self.len());
        for (idx, &id) in self.base_ids.iter().enumerate() {
            if !self.tombstones.contains(&id) {
                ids.push(id);
                pts.push(self.base.points()[idx]);
                ws.push(self.base_weights[idx]);
            }
        }
        for &(id, p, w) in &self.delta {
            if !self.tombstones.contains(&id) {
                ids.push(id);
                pts.push(p);
                ws.push(w);
            }
        }
        // Keep base_ids sorted so `remove` can binary-search them.
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_unstable_by_key(|&i| ids[i]);
        self.base_ids = order.iter().map(|&i| ids[i]).collect();
        let pts: Vec<Point> = order.iter().map(|&i| pts[i]).collect();
        self.base_weights = order.iter().map(|&i| ws[i]).collect();
        self.base = EngineBuilder::new(&pts).weights(&self.base_weights).build();
        // The scratch was sized for the old base; the prepared-area cache
        // is content-keyed and survives the rebuild untouched.
        self.state.reset_scratch();
        self.delta.clear();
        self.dead_delta = 0;
        self.tombstones.clear();
    }
}

/// The dynamic execution path as a sink visitor: base pass through the
/// session funnel (tombstones filtered, base indices translated to
/// external ids *before* the sink), then the live delta scanned into the
/// same partial, then one finish.
struct DynamicRun<'r, A: ?Sized> {
    eng: &'r mut DynamicAreaQueryEngine,
    spec: &'r QuerySpec,
    area: &'r A,
}

impl<A: QueryArea + ?Sized> SinkVisitor for DynamicRun<'_, A> {
    type Out = DynamicQueryResult;

    fn visit<K: EngineSink + DynamicSink>(self, kind: K) -> DynamicQueryResult {
        let DynamicAreaQueryEngine {
            base,
            base_ids,
            delta,
            tombstones,
            state,
            ..
        } = self.eng;
        let area = self.area;
        let mut stats = QueryStats::default();
        let mut partial = ResultSink::<u64>::start(&kind);
        if !base.is_empty() {
            let map = |i: u32| {
                let id = base_ids[i as usize];
                (!tombstones.contains(&id)).then_some(id)
            };
            state.execute_sink(base, self.spec, area, &kind, &mut partial, &map, &mut stats);
        }
        let delta_predicates = AreaQueryEngine::sample_predicates(|| {
            for &(id, p, _) in delta.iter() {
                if tombstones.contains(&id) {
                    continue;
                }
                stats.delta_scanned += 1;
                stats.candidates += 1;
                stats.containment_tests += 1;
                if area.contains(p) {
                    stats.accepted += 1;
                    kind.emit(
                        &mut partial,
                        &Emit {
                            id,
                            local: 0,
                            point: p,
                            records: None,
                        },
                        &mut stats,
                    );
                }
            }
        });
        stats.predicates.absorb(delta_predicates);
        stats.result_size = ResultSink::<u64>::result_len(&kind, &partial);
        let mut out = DynamicQueryResult {
            ids: Vec::new(),
            neighbors: Vec::new(),
            stats,
        };
        kind.finish_dynamic(partial, &mut out);
        out
    }

    fn classify(self) -> DynamicQueryResult {
        // vaq-lint: allow(panic-hygiene) -- documented unsupported-mode
        // contract: classification is whole-diagram by definition, and the
        // message tells the caller exactly which engine to use instead.
        panic!("point classification is whole-diagram and is not supported on the dynamic engine");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::Polygon;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(vec![
            p(cx - half, cy - half),
            p(cx + half, cy - half),
            p(cx + half, cy + half),
            p(cx - half, cy + half),
        ])
        .unwrap()
    }

    /// Oracle tracking live (id, point) pairs by hand.
    struct Oracle {
        live: Vec<(u64, Point)>,
    }

    impl Oracle {
        fn query(&self, area: &Polygon) -> Vec<u64> {
            let mut v: Vec<u64> = self
                .live
                .iter()
                .filter(|(_, q)| area.contains(*q))
                .map(|&(id, _)| id)
                .collect();
            v.sort_unstable();
            v
        }
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let initial = uniform(500, 7);
        let mut eng = DynamicAreaQueryEngine::new(&initial);
        let mut oracle = Oracle {
            live: initial
                .iter()
                .enumerate()
                .map(|(i, &q)| (i as u64, q))
                .collect(),
        };
        let area = square(0.5, 0.5, 0.22);
        assert_eq!(eng.query(&area), oracle.query(&area));

        // Insert new points (some inside, some outside the area).
        for &q in &uniform(100, 8) {
            let id = eng.insert(q);
            oracle.live.push((id, q));
        }
        assert_eq!(eng.query(&area), oracle.query(&area));
        assert_eq!(eng.len(), 600);

        // Delete a mix of base and delta points.
        for id in [3u64, 250, 499, 510, 577] {
            assert!(eng.remove(id));
            oracle.live.retain(|&(i, _)| i != id);
        }
        assert!(!eng.remove(3), "double delete");
        assert!(!eng.remove(99_999), "unknown id");
        assert_eq!(eng.len(), 595);
        assert_eq!(eng.query(&area), oracle.query(&area));
    }

    #[test]
    fn compaction_preserves_answers_and_ids() {
        let initial = uniform(300, 9);
        let mut eng = DynamicAreaQueryEngine::new(&initial);
        let mut oracle = Oracle {
            live: initial
                .iter()
                .enumerate()
                .map(|(i, &q)| (i as u64, q))
                .collect(),
        };
        for &q in &uniform(200, 10) {
            let id = eng.insert(q);
            oracle.live.push((id, q));
        }
        for id in (0..300u64).step_by(3) {
            eng.remove(id);
            oracle.live.retain(|&(i, _)| i != id);
        }
        let area = square(0.45, 0.55, 0.3);
        let before = eng.query(&area);
        assert_eq!(before, oracle.query(&area));

        assert!(eng.maybe_compact(), "overlay is large enough to compact");
        assert_eq!(eng.delta_len(), 0);
        assert_eq!(eng.query(&area), before, "answers survive compaction");

        // Ids remain stable and deletable after compaction.
        let victim = before[0];
        assert!(eng.remove(victim));
        oracle.live.retain(|&(i, _)| i != victim);
        assert_eq!(eng.query(&area), oracle.query(&area));
    }

    #[test]
    fn maybe_compact_respects_threshold() {
        let mut eng = DynamicAreaQueryEngine::new(&uniform(400, 11));
        for &q in &uniform(10, 12) {
            eng.insert(q);
        }
        assert!(!eng.maybe_compact(), "10/400 is below the ratio");
        for &q in &uniform(200, 13) {
            eng.insert(q);
        }
        assert!(eng.maybe_compact());
    }

    /// Regression: a tombstoned delta point used to count once in
    /// `delta.len()` *and* once in `tombstones.len()`, firing compaction
    /// at half the documented overlay ratio.
    #[test]
    fn tombstoned_delta_points_are_not_double_counted() {
        let mut eng = DynamicAreaQueryEngine::new(&uniform(400, 21));
        // Insert 60 points and remove them all again: the live overlay is
        // empty, but the buggy count saw 60 + 60 = 120 > 400 × 0.25.
        let ids: Vec<u64> = uniform(60, 22).iter().map(|&q| eng.insert(q)).collect();
        for id in ids {
            assert!(eng.remove(id));
        }
        assert_eq!(eng.overlay_len(), 0, "cancelled inserts leave no overlay");
        assert!(
            !eng.maybe_compact(),
            "an empty live overlay must not trigger compaction"
        );
        // Base tombstones and live delta points still count, once each.
        for id in 0..50u64 {
            assert!(eng.remove(id));
        }
        for &q in &uniform(51, 23) {
            eng.insert(q);
        }
        assert_eq!(eng.overlay_len(), 101);
        assert!(eng.maybe_compact(), "101 > 400 × 0.25 compacts");
    }

    /// Regression: a delta buffer of mostly-dead points must be
    /// physically purged — not re-scanned and skipped point by point on
    /// every query until compaction.
    #[test]
    fn heavy_deletes_purge_the_delta_buffer() {
        let mut eng = DynamicAreaQueryEngine::new(&uniform(400, 41));
        let ids: Vec<u64> = uniform(60, 42).iter().map(|&q| eng.insert(q)).collect();
        let area = square(0.5, 0.5, 0.6);
        let before = eng.execute(&QuerySpec::new(), &area);
        assert_eq!(before.stats.delta_scanned, 60);

        // Delete 50 of the 60: the purge threshold (half the buffer)
        // trips along the way and rewrites the buffer.
        for &id in &ids[..50] {
            assert!(eng.remove(id));
        }
        assert!(
            eng.delta_len() <= 20,
            "dead points were purged, got {} buffered",
            eng.delta_len()
        );
        let after = eng.execute(&QuerySpec::new(), &area);
        assert_eq!(after.stats.delta_scanned, 10, "only live points scanned");
        assert_eq!(eng.overlay_len(), 10, "purged tombstones are retired");
        assert_eq!(eng.len(), 410);

        // Purged ids stay deleted and unknown.
        assert!(!eng.remove(ids[0]), "purged id cannot be removed again");
        let mut oracle: Vec<u64> = (0..400).collect();
        oracle.extend(&ids[50..]);
        let mut got = eng.query(&area);
        got.sort_unstable();
        assert_eq!(got, oracle, "live set survives the purge");

        // Compaction still works after purging.
        eng.compact();
        assert_eq!(eng.len(), 410);
        assert_eq!(eng.query(&area).len(), 410);
    }

    /// The funnel route: `execute` honours the spec, surfaces base +
    /// delta stats, and the owned prepared-area cache hits on repeats.
    #[test]
    fn execute_routes_through_the_funnel_with_stats() {
        use crate::query::{PrepareMode, QueryMethod};
        let initial = uniform(500, 31);
        let mut eng = DynamicAreaQueryEngine::new(&initial);
        let inserted = uniform(40, 32);
        for &q in &inserted {
            eng.insert(q);
        }
        assert!(eng.remove(7));
        let area = square(0.5, 0.5, 0.25);

        // Every method agrees through the funnel (ids are method-agnostic).
        let voro = eng.execute(&QuerySpec::voronoi(), &area);
        for spec in [
            QuerySpec::traditional(),
            QuerySpec::brute_force(),
            QuerySpec::new().method(QueryMethod::Voronoi),
        ] {
            assert_eq!(eng.execute(&spec, &area).ids, voro.ids, "{spec:?}");
        }
        assert_eq!(voro.ids, eng.query(&area), "query() is the default spec");

        // Stats surface both passes (id 7 is a base id, so all 40
        // inserted delta points are live and scanned).
        assert_eq!(voro.stats.delta_scanned, 40);
        assert!(voro.stats.seed.is_some(), "base pass was seeded");
        assert_eq!(voro.stats.result_size, voro.ids.len());
        assert!(
            voro.stats.candidates >= voro.stats.delta_scanned,
            "delta scan candidates are folded in"
        );
        assert_eq!(
            voro.stats.containment_tests, voro.stats.candidates as u64,
            "identity holds across base + delta"
        );

        // The owned prepared-area cache spans queries.
        let cached = QuerySpec::voronoi().prepare(PrepareMode::Cached);
        let poly =
            Polygon::new(vec![p(0.25, 0.25), p(0.75, 0.3), p(0.7, 0.75), p(0.3, 0.7)]).unwrap();
        let first = eng.execute(&cached, &poly);
        let second = eng.execute(&cached, &poly);
        assert_eq!(first.ids, second.ids);
        assert_eq!(
            first.stats.prepared_cache,
            CacheCounters { hits: 0, misses: 1 }
        );
        assert_eq!(
            second.stats.prepared_cache,
            CacheCounters { hits: 1, misses: 0 }
        );
        assert_eq!(eng.cache_counters(), CacheCounters { hits: 1, misses: 1 });
    }

    #[test]
    fn starts_empty_and_grows() {
        let mut eng = DynamicAreaQueryEngine::new(&[]);
        assert!(eng.is_empty());
        let area = square(0.5, 0.5, 0.4);
        assert!(eng.query(&area).is_empty());
        let a = eng.insert(p(0.5, 0.5));
        let b = eng.insert(p(0.9, 0.95));
        assert_eq!(eng.query(&area), vec![a]);
        eng.compact();
        assert_eq!(eng.query(&area), vec![a]);
        assert_eq!(eng.len(), 2);
        assert!(eng.remove(b));
        assert_eq!(eng.len(), 1);
    }

    #[test]
    fn randomized_operations_against_oracle() {
        let mut rng = StdRng::seed_from_u64(14);
        let initial = uniform(200, 15);
        let mut eng = DynamicAreaQueryEngine::new(&initial);
        let mut oracle = Oracle {
            live: initial
                .iter()
                .enumerate()
                .map(|(i, &q)| (i as u64, q))
                .collect(),
        };
        for step in 0..400 {
            match rng.gen_range(0..10) {
                0..=4 => {
                    let q = p(rng.gen(), rng.gen());
                    let id = eng.insert(q);
                    oracle.live.push((id, q));
                }
                5..=7 => {
                    if let Some(&(id, _)) =
                        oracle.live.get(rng.gen_range(0..oracle.live.len().max(1)))
                    {
                        eng.remove(id);
                        oracle.live.retain(|&(i, _)| i != id);
                    }
                }
                8 => {
                    eng.maybe_compact();
                }
                _ => {
                    let area = square(rng.gen(), rng.gen(), 0.1 + rng.gen::<f64>() * 0.2);
                    assert_eq!(eng.query(&area), oracle.query(&area), "step {step}");
                }
            }
        }
        eng.compact();
        let area = square(0.5, 0.5, 0.35);
        assert_eq!(eng.query(&area), oracle.query(&area));
    }
}
