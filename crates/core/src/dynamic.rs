//! Dynamic updates on top of the static engine: the base + delta pattern.
//!
//! The Delaunay triangulation behind the Voronoi method is built once
//! (rebuilding the CSR adjacency per insert would be wasteful), so the
//! engine itself is static — the same trade-off the paper's setup makes.
//! Real deployments still need inserts and deletes between rebuilds. The
//! standard answer, used by LSM-style spatial stores, is an overlay:
//!
//! * a **base** [`AreaQueryEngine`] over the last compaction's points;
//! * a **delta** buffer of points inserted since, scanned linearly at
//!   query time (cheap while small);
//! * a **tombstone** set masking deleted base points;
//! * [`DynamicAreaQueryEngine::compact`] folds delta and tombstones into a
//!   fresh base when the overlay grows past a threshold.
//!
//! Query results use stable external ids handed out at insertion, so ids
//! survive compaction.

use crate::area::QueryArea;
use crate::engine::AreaQueryEngine;
use crate::scratch::QueryScratch;
use std::collections::HashSet;
use vaq_geom::Point;

/// Fraction of the base size the delta may reach before
/// [`DynamicAreaQueryEngine::maybe_compact`] rebuilds.
pub const DEFAULT_COMPACT_RATIO: f64 = 0.25;

/// A dynamic area-query engine: static base + linear delta + tombstones.
pub struct DynamicAreaQueryEngine {
    base: AreaQueryEngine,
    /// Stable external id of each base point (parallel to base points).
    base_ids: Vec<u64>,
    /// Points inserted since the last compaction, with their ids.
    delta: Vec<(u64, Point)>,
    /// External ids deleted since the last compaction (base or delta).
    tombstones: HashSet<u64>,
    /// Next external id to hand out.
    next_id: u64,
    scratch: QueryScratch,
}

impl DynamicAreaQueryEngine {
    /// Builds over an initial point set; ids `0..n as u64` are assigned in
    /// input order.
    pub fn new(points: &[Point]) -> DynamicAreaQueryEngine {
        let base = AreaQueryEngine::build(points);
        let scratch = base.new_scratch();
        DynamicAreaQueryEngine {
            base_ids: (0..points.len() as u64).collect(),
            next_id: points.len() as u64,
            base,
            delta: Vec::new(),
            tombstones: HashSet::new(),
            scratch,
        }
    }

    /// Number of live points (base + delta − tombstones).
    pub fn len(&self) -> usize {
        self.base_ids.len() + self.delta.len() - self.tombstones.len()
    }

    /// `true` when no live points remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points buffered in the delta (a compaction-pressure signal).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Inserts a point, returning its stable id.
    pub fn insert(&mut self, p: Point) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.delta.push((id, p));
        id
    }

    /// Deletes the point with external id `id`. Returns `false` when the
    /// id is unknown or already deleted.
    pub fn remove(&mut self, id: u64) -> bool {
        if self.tombstones.contains(&id) {
            return false;
        }
        let exists =
            self.base_ids.binary_search(&id).is_ok() || self.delta.iter().any(|&(d, _)| d == id);
        if exists {
            self.tombstones.insert(id);
        }
        exists
    }

    /// Answers the area query with the Voronoi method on the base plus a
    /// linear scan of the delta; tombstoned ids are filtered. Returns
    /// stable external ids, ascending.
    pub fn query<A: QueryArea>(&mut self, area: &A) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        if !self.base.is_empty() {
            let r = self.base.voronoi_with(
                area,
                crate::voronoi_query::ExpansionPolicy::Segment,
                crate::engine::SeedIndex::RTree,
                &mut self.scratch,
            );
            out.extend(
                r.indices
                    .iter()
                    .map(|&i| self.base_ids[i as usize])
                    .filter(|id| !self.tombstones.contains(id)),
            );
        }
        out.extend(
            self.delta
                .iter()
                .filter(|(id, p)| !self.tombstones.contains(id) && area.contains(*p))
                .map(|&(id, _)| id),
        );
        out.sort_unstable();
        out
    }

    /// Compacts when the overlay (delta + tombstones) exceeds
    /// [`DEFAULT_COMPACT_RATIO`] of the base. Returns `true` if a rebuild
    /// happened.
    pub fn maybe_compact(&mut self) -> bool {
        let overlay = self.delta.len() + self.tombstones.len();
        if (overlay as f64) <= (self.base_ids.len().max(16) as f64) * DEFAULT_COMPACT_RATIO {
            return false;
        }
        self.compact();
        true
    }

    /// Folds delta and tombstones into a fresh base engine.
    pub fn compact(&mut self) {
        let mut ids = Vec::with_capacity(self.len());
        let mut pts = Vec::with_capacity(self.len());
        for (idx, &id) in self.base_ids.iter().enumerate() {
            if !self.tombstones.contains(&id) {
                ids.push(id);
                pts.push(self.base.points()[idx]);
            }
        }
        for &(id, p) in &self.delta {
            if !self.tombstones.contains(&id) {
                ids.push(id);
                pts.push(p);
            }
        }
        // Keep base_ids sorted so `remove` can binary-search them.
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_unstable_by_key(|&i| ids[i]);
        self.base_ids = order.iter().map(|&i| ids[i]).collect();
        let pts: Vec<Point> = order.iter().map(|&i| pts[i]).collect();
        self.base = AreaQueryEngine::build(&pts);
        self.scratch = self.base.new_scratch();
        self.delta.clear();
        self.tombstones.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::Polygon;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(vec![
            p(cx - half, cy - half),
            p(cx + half, cy - half),
            p(cx + half, cy + half),
            p(cx - half, cy + half),
        ])
        .unwrap()
    }

    /// Oracle tracking live (id, point) pairs by hand.
    struct Oracle {
        live: Vec<(u64, Point)>,
    }

    impl Oracle {
        fn query(&self, area: &Polygon) -> Vec<u64> {
            let mut v: Vec<u64> = self
                .live
                .iter()
                .filter(|(_, q)| area.contains(*q))
                .map(|&(id, _)| id)
                .collect();
            v.sort_unstable();
            v
        }
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let initial = uniform(500, 7);
        let mut eng = DynamicAreaQueryEngine::new(&initial);
        let mut oracle = Oracle {
            live: initial
                .iter()
                .enumerate()
                .map(|(i, &q)| (i as u64, q))
                .collect(),
        };
        let area = square(0.5, 0.5, 0.22);
        assert_eq!(eng.query(&area), oracle.query(&area));

        // Insert new points (some inside, some outside the area).
        for &q in &uniform(100, 8) {
            let id = eng.insert(q);
            oracle.live.push((id, q));
        }
        assert_eq!(eng.query(&area), oracle.query(&area));
        assert_eq!(eng.len(), 600);

        // Delete a mix of base and delta points.
        for id in [3u64, 250, 499, 510, 577] {
            assert!(eng.remove(id));
            oracle.live.retain(|&(i, _)| i != id);
        }
        assert!(!eng.remove(3), "double delete");
        assert!(!eng.remove(99_999), "unknown id");
        assert_eq!(eng.len(), 595);
        assert_eq!(eng.query(&area), oracle.query(&area));
    }

    #[test]
    fn compaction_preserves_answers_and_ids() {
        let initial = uniform(300, 9);
        let mut eng = DynamicAreaQueryEngine::new(&initial);
        let mut oracle = Oracle {
            live: initial
                .iter()
                .enumerate()
                .map(|(i, &q)| (i as u64, q))
                .collect(),
        };
        for &q in &uniform(200, 10) {
            let id = eng.insert(q);
            oracle.live.push((id, q));
        }
        for id in (0..300u64).step_by(3) {
            eng.remove(id);
            oracle.live.retain(|&(i, _)| i != id);
        }
        let area = square(0.45, 0.55, 0.3);
        let before = eng.query(&area);
        assert_eq!(before, oracle.query(&area));

        assert!(eng.maybe_compact(), "overlay is large enough to compact");
        assert_eq!(eng.delta_len(), 0);
        assert_eq!(eng.query(&area), before, "answers survive compaction");

        // Ids remain stable and deletable after compaction.
        let victim = before[0];
        assert!(eng.remove(victim));
        oracle.live.retain(|&(i, _)| i != victim);
        assert_eq!(eng.query(&area), oracle.query(&area));
    }

    #[test]
    fn maybe_compact_respects_threshold() {
        let mut eng = DynamicAreaQueryEngine::new(&uniform(400, 11));
        for &q in &uniform(10, 12) {
            eng.insert(q);
        }
        assert!(!eng.maybe_compact(), "10/400 is below the ratio");
        for &q in &uniform(200, 13) {
            eng.insert(q);
        }
        assert!(eng.maybe_compact());
    }

    #[test]
    fn starts_empty_and_grows() {
        let mut eng = DynamicAreaQueryEngine::new(&[]);
        assert!(eng.is_empty());
        let area = square(0.5, 0.5, 0.4);
        assert!(eng.query(&area).is_empty());
        let a = eng.insert(p(0.5, 0.5));
        let b = eng.insert(p(0.9, 0.95));
        assert_eq!(eng.query(&area), vec![a]);
        eng.compact();
        assert_eq!(eng.query(&area), vec![a]);
        assert_eq!(eng.len(), 2);
        assert!(eng.remove(b));
        assert_eq!(eng.len(), 1);
    }

    #[test]
    fn randomized_operations_against_oracle() {
        let mut rng = StdRng::seed_from_u64(14);
        let initial = uniform(200, 15);
        let mut eng = DynamicAreaQueryEngine::new(&initial);
        let mut oracle = Oracle {
            live: initial
                .iter()
                .enumerate()
                .map(|(i, &q)| (i as u64, q))
                .collect(),
        };
        for step in 0..400 {
            match rng.gen_range(0..10) {
                0..=4 => {
                    let q = p(rng.gen(), rng.gen());
                    let id = eng.insert(q);
                    oracle.live.push((id, q));
                }
                5..=7 => {
                    if let Some(&(id, _)) =
                        oracle.live.get(rng.gen_range(0..oracle.live.len().max(1)))
                    {
                        eng.remove(id);
                        oracle.live.retain(|&(i, _)| i != id);
                    }
                }
                8 => {
                    eng.maybe_compact();
                }
                _ => {
                    let area = square(rng.gen(), rng.gen(), 0.1 + rng.gen::<f64>() * 0.2);
                    assert_eq!(eng.query(&area), oracle.query(&area), "step {step}");
                }
            }
        }
        eng.compact();
        let area = square(0.5, 0.5, 0.35);
        assert_eq!(eng.query(&area), oracle.query(&area));
    }
}
