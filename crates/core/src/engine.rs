//! The area-query engine: owns the point set and its indexes, and exposes
//! every query configuration through one funnel.
//!
//! Build once per dataset, query many times — the workflow of the paper's
//! experiments (and of any GIS serving area queries). The intended surface
//! is a [`QuerySpec`] executed through a
//! [`QuerySession`](crate::QuerySession):
//!
//! ```
//! use vaq_core::{AreaQueryEngine, QuerySpec};
//! use vaq_geom::{Point, Polygon};
//!
//! let pts = vec![
//!     Point::new(0.2, 0.2),
//!     Point::new(0.8, 0.3),
//!     Point::new(0.5, 0.9),
//!     Point::new(0.45, 0.4),
//! ];
//! let engine = AreaQueryEngine::build(&pts);
//! let area = Polygon::new(vec![
//!     Point::new(0.1, 0.1),
//!     Point::new(0.7, 0.15),
//!     Point::new(0.5, 0.6),
//! ]).unwrap();
//!
//! let mut session = engine.session();
//! let trad = session.execute(&QuerySpec::traditional(), &area);
//! let voro = session.execute(&QuerySpec::voronoi(), &area);
//! assert_eq!(
//!     trad.result().unwrap().sorted_indices(),
//!     voro.result().unwrap().sorted_indices(),
//! );
//! ```
//!
//! The named convenience methods below ([`AreaQueryEngine::traditional`],
//! [`AreaQueryEngine::voronoi`], the counting and prepared variants, …)
//! are thin wrappers over that same funnel — same results, same stats,
//! bit for bit (`tests/legacy_equivalence.rs` enforces it).
//!
//! On realistic data sizes the Voronoi method validates far fewer
//! candidates than the window query (the point of the paper); the
//! `voronoi_produces_fewer_candidates_on_irregular_areas` test below and
//! the benchmark harness quantify it.

use crate::area::QueryArea;
use crate::classify::PointClass;
use crate::payload::RecordStore;
use crate::plan::DensityMap;
use crate::query::{OutputMode, PrepareMode, QuerySpec};
use crate::scratch::QueryScratch;
use crate::stats::QueryStats;
use crate::traditional::FilterIndex;
use crate::voronoi_query::ExpansionPolicy;
use vaq_delaunay::{DiagramKind, SiteMetric, Triangulation};
use vaq_geom::{Point, Polygon, Rect};
use vaq_kdtree::KdTree;
use vaq_quadtree::Quadtree;
use vaq_rtree::{RTree, SplitAlgorithm};

/// Which index answers the Voronoi method's seed nearest-neighbour query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SeedIndex {
    /// R-tree best-first NN — the paper's choice ("for fairness, the index
    /// used to provide the NN query in our method is also R-tree").
    #[default]
    RTree,
    /// kd-tree NN (ablation; requires [`EngineBuilder::with_kdtree`]).
    KdTree,
    /// Greedy walk on the Delaunay graph itself — no second index at all
    /// (ablation).
    DelaunayWalk,
}

/// The outcome of one area query: matching point ids plus statistics.
#[derive(Clone, Debug, Default)]
pub struct QueryResult {
    /// Input indices of the matching points. Order is method-dependent
    /// (index traversal order / BFS discovery order) but deterministic.
    pub indices: Vec<u32>,
    /// Work counters for the query.
    pub stats: QueryStats,
}

impl QueryResult {
    /// The matching indices in ascending order (for comparisons).
    pub fn sorted_indices(&self) -> Vec<u32> {
        let mut v = self.indices.clone();
        v.sort_unstable();
        v
    }
}

/// The index-build parameters an engine was constructed under, recorded
/// on the engine so a snapshot can rebuild the exact same secondary
/// indexes on load — the R-tree's node structure (and hence its
/// traversal counters in [`QueryStats::index`](crate::QueryStats)) is a
/// deterministic function of the points *and* these parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexConfig {
    /// R-tree fan-out (max entries per node).
    pub rtree_fanout: usize,
    /// One-at-a-time R-tree inserts instead of STR bulk loading.
    pub incremental_rtree: bool,
    /// Insertion heuristics for the incremental R-tree.
    pub rtree_algorithm: SplitAlgorithm,
    /// Whether a kd-tree was built.
    pub kdtree: bool,
    /// Whether a PR quadtree was built.
    pub quadtree: bool,
}

/// Builder for [`AreaQueryEngine`] with optional extra indexes and tuning.
pub struct EngineBuilder {
    points: Vec<Point>,
    rtree_fanout: usize,
    incremental_rtree: bool,
    rtree_algorithm: SplitAlgorithm,
    build_kdtree: bool,
    build_quadtree: bool,
    payload_bytes: usize,
    records: Option<RecordStore>,
    weights: Option<Vec<f64>>,
}

impl EngineBuilder {
    /// Starts a builder over a copy of `points`.
    pub fn new(points: &[Point]) -> EngineBuilder {
        EngineBuilder {
            points: points.to_vec(),
            rtree_fanout: vaq_rtree::DEFAULT_MAX_ENTRIES,
            incremental_rtree: false,
            rtree_algorithm: SplitAlgorithm::Quadratic,
            build_kdtree: false,
            build_quadtree: false,
            payload_bytes: 0,
            records: None,
            weights: None,
        }
    }

    /// Sets the R-tree fan-out (max entries per node).
    pub fn rtree_fanout(mut self, fanout: usize) -> EngineBuilder {
        self.rtree_fanout = fanout;
        self
    }

    /// Builds the R-tree by one-at-a-time inserts instead of STR bulk
    /// loading (ablation of bulk-load quality).
    pub fn incremental_rtree(mut self) -> EngineBuilder {
        self.incremental_rtree = true;
        self
    }

    /// Insertion heuristics for the incremental R-tree (Guttman quadratic
    /// or R\*; only meaningful with [`EngineBuilder::incremental_rtree`]).
    pub fn rtree_algorithm(mut self, algorithm: SplitAlgorithm) -> EngineBuilder {
        self.rtree_algorithm = algorithm;
        self
    }

    /// Also builds a kd-tree (enables [`SeedIndex::KdTree`] and
    /// [`FilterIndex::KdTree`]).
    pub fn with_kdtree(mut self) -> EngineBuilder {
        self.build_kdtree = true;
        self
    }

    /// Also builds a PR quadtree (enables [`FilterIndex::Quadtree`]).
    pub fn with_quadtree(mut self) -> EngineBuilder {
        self.build_quadtree = true;
        self
    }

    /// Attaches a simulated geometry record of `bytes` bytes to every
    /// point; candidate validation must then materialise the record before
    /// the exact test, restoring the refinement cost model of the paper's
    /// disk-backed GIS setting (see [`RecordStore`]). `0` (the default)
    /// disables the simulation.
    pub fn payload_bytes(mut self, bytes: usize) -> EngineBuilder {
        self.payload_bytes = bytes;
        self
    }

    /// Attaches a pre-built record store instead of generating one
    /// (overrides [`EngineBuilder::payload_bytes`]). The sharded engines
    /// use this to hand each shard its slice of one logical store
    /// ([`RecordStore::split`]) — shard-local ids, record contents copied
    /// exactly once, checksums bit-identical to the unsharded store's.
    ///
    /// The store must hold exactly one record per point;
    /// [`EngineBuilder::build`] panics otherwise.
    pub fn record_store(mut self, records: RecordStore) -> EngineBuilder {
        self.records = Some(records);
        self
    }

    /// Attaches one weight per point, generalising the diagram substrate
    /// to a **power diagram** (regular triangulation): the cell of site
    /// `p` with weight `w` holds every location `x` minimising
    /// `|x − p|² − w`. Uniform weights (including all-zero) normalize
    /// away at build time — the engine then reports
    /// [`DiagramKind::Euclidean`] and behaves bit-identically to an
    /// unweighted build. Weighted sites dominated everywhere become
    /// *hidden* (no cell); queries still report them when the query area
    /// contains their coordinates.
    ///
    /// [`EngineBuilder::build`] panics on non-finite weights or a length
    /// mismatch; validate user input first (the CLI does).
    pub fn weights(mut self, weights: &[f64]) -> EngineBuilder {
        self.weights = Some(weights.to_vec());
        self
    }

    /// Builds the engine: R-tree, Delaunay triangulation and any requested
    /// extra indexes.
    pub fn build(self) -> AreaQueryEngine {
        let config = IndexConfig {
            rtree_fanout: self.rtree_fanout,
            incremental_rtree: self.incremental_rtree,
            rtree_algorithm: self.rtree_algorithm,
            kdtree: self.build_kdtree,
            quadtree: self.build_quadtree,
        };
        let tri = if self.points.is_empty() {
            None
        } else {
            Some(
                Triangulation::with_site_metric(&self.points, self.weights.as_deref())
                    .expect("finite, non-empty input with one finite weight per point"),
            )
        };
        let records = self.records.or_else(|| {
            (self.payload_bytes > 0).then(|| {
                RecordStore::generate(
                    self.points.len(),
                    self.payload_bytes,
                    crate::payload::PAYLOAD_SEED,
                )
            })
        });
        let density = DensityMap::from_points(&self.points);
        AreaQueryEngine::assemble(self.points, tri, records, density, config, None, None)
    }
}

/// Pre-built indexes over one point set, answering area queries with both
/// the traditional and the Voronoi-based method.
pub struct AreaQueryEngine {
    pub(crate) points: Vec<Point>,
    pub(crate) rtree: RTree,
    /// `None` only for an empty point set. The metric is decided by the
    /// input: unweighted or uniformly weighted datasets build the classic
    /// Delaunay triangulation, non-uniform weights the regular
    /// triangulation of the power diagram.
    pub(crate) tri: Option<Triangulation<SiteMetric>>,
    pub(crate) kdtree: Option<KdTree>,
    pub(crate) quadtree: Option<Quadtree>,
    /// Simulated geometry records (None = pure in-memory regime).
    pub(crate) records: Option<RecordStore>,
    data_bbox: Rect,
    /// Coarse occupancy grid over the point set — the planner's O(1)
    /// density feature (see [`DensityMap`]).
    density: DensityMap,
    /// `√(max positive weight)` — the farthest a weighted cell can reach
    /// past its site; `0.0` on Euclidean engines. Added to window and
    /// shard-boundary expansions so weight-shifted cells stay
    /// representative inside them.
    weight_radius: f64,
    /// Per-canonical-vertex flag: does this vertex's Voronoi cell extend
    /// past the shard boundary? `None` on plain engines (no boundary);
    /// computed once by [`AreaQueryEngine::mark_shard_boundary`] on
    /// shard-local engines so the segment policy can fall back to the
    /// complete cell test exactly on boundary-straddling frontiers.
    pub(crate) boundary_straddlers: Option<Vec<bool>>,
    /// kd-tree over the **hidden** canonical vertices' coordinates (id =
    /// position in the sorted hidden list), so the post-BFS hidden-site
    /// sweep is a window lookup instead of an `O(hidden)` rect scan.
    /// `None` when nothing is hidden (every Euclidean engine).
    pub(crate) hidden_index: Option<KdTree>,
    /// The index-build parameters (see [`IndexConfig`]); persisted in
    /// snapshots so a load rebuilds identical secondary indexes.
    config: IndexConfig,
}

impl AreaQueryEngine {
    /// Assembles an engine from a built (or loaded) triangulation plus
    /// the index parameters — the shared tail of [`EngineBuilder::build`]
    /// and the snapshot loader. The secondary indexes (R-tree, kd-tree,
    /// quadtree, hidden-site index) are deterministic functions of the
    /// points and `config`, so rebuilding them here keeps a loaded engine
    /// bit-identical to a freshly built one.
    pub(crate) fn assemble(
        points: Vec<Point>,
        tri: Option<Triangulation<SiteMetric>>,
        records: Option<RecordStore>,
        density: DensityMap,
        config: IndexConfig,
        boundary_straddlers: Option<Vec<bool>>,
        prebuilt_rtree: Option<RTree>,
    ) -> AreaQueryEngine {
        // A snapshot hands back the exact arena the saved engine was
        // built with; fresh builds construct it here.
        let rtree = prebuilt_rtree.unwrap_or_else(|| {
            if config.incremental_rtree {
                let mut t = RTree::with_algorithm(config.rtree_fanout, config.rtree_algorithm);
                for (i, &p) in points.iter().enumerate() {
                    t.insert(i as u32, p);
                }
                t
            } else {
                RTree::bulk_load_with_params(&points, config.rtree_fanout)
            }
        });
        // How far a positive weight can pull a cell towards a location:
        // pow_p(x) = |x − p|² − w ≤ 0 within distance √w of p, so window
        // and shard-boundary expansions grow by the largest such radius.
        // Euclidean builds (and all-non-positive weights) add 0.0,
        // keeping every window bit-identical to the unweighted engine.
        let weight_radius = match tri.as_ref().map(Triangulation::metric) {
            Some(SiteMetric::Power(pw)) => {
                pw.weights().iter().fold(0.0f64, |m, &w| m.max(w)).sqrt()
            }
            _ => 0.0,
        };
        let kdtree = config.kdtree.then(|| KdTree::build(&points));
        let quadtree = config.quadtree.then(|| Quadtree::bulk_load(&points));
        if let Some(rs) = records.as_ref() {
            assert_eq!(
                rs.len(),
                points.len(),
                "record store must hold exactly one record per point"
            );
        }
        let hidden_index = tri.as_ref().and_then(|t| {
            let hidden = t.hidden_vertices();
            (!hidden.is_empty()).then(|| {
                let coords: Vec<Point> = hidden.iter().map(|&h| t.point(h)).collect();
                KdTree::build(&coords)
            })
        });
        let data_bbox = Rect::from_points(points.iter().copied());
        AreaQueryEngine {
            points,
            rtree,
            tri,
            kdtree,
            quadtree,
            records,
            data_bbox,
            density,
            weight_radius,
            boundary_straddlers,
            hidden_index,
            config,
        }
    }

    /// The index-build parameters this engine was constructed under.
    pub fn index_config(&self) -> IndexConfig {
        self.config
    }
    /// Builds with defaults: STR-bulk-loaded R-tree + Delaunay
    /// triangulation (exactly the paper's setup).
    pub fn build(points: &[Point]) -> AreaQueryEngine {
        EngineBuilder::new(points).build()
    }

    /// Builds with defaults over **weighted** sites — the power-diagram
    /// form of the engine (see [`EngineBuilder::weights`]).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not one finite value per point.
    pub fn build_weighted(points: &[Point], weights: &[f64]) -> AreaQueryEngine {
        EngineBuilder::new(points).weights(weights).build()
    }

    /// Starts a [`EngineBuilder`] for non-default configurations.
    pub fn builder(points: &[Point]) -> EngineBuilder {
        EngineBuilder::new(points)
    }

    /// The indexed points (input order).
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The underlying R-tree.
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }

    /// The underlying triangulation (`None` for an empty engine).
    pub fn triangulation(&self) -> Option<&Triangulation<SiteMetric>> {
        self.tri.as_ref()
    }

    /// Which diagram the engine's substrate realizes:
    /// [`DiagramKind::Power`] iff the build received genuinely
    /// non-uniform weights. Empty engines report
    /// [`DiagramKind::Euclidean`].
    pub fn diagram_kind(&self) -> DiagramKind {
        self.tri
            .as_ref()
            .map_or(DiagramKind::Euclidean, Triangulation::diagram_kind)
    }

    /// The engine's simulated record store (`None` when the engine does
    /// not simulate payload records). See [`EngineBuilder::payload_bytes`]
    /// and [`OutputMode::Materialize`](crate::OutputMode).
    pub fn record_store(&self) -> Option<&RecordStore> {
        self.records.as_ref()
    }

    /// Fresh scratch space for [`AreaQueryEngine::voronoi_with`]; reuse it
    /// across queries on one thread.
    pub fn new_scratch(&self) -> QueryScratch {
        QueryScratch::new(self.tri.as_ref().map_or(0, Triangulation::vertex_count))
    }

    /// Coarse occupancy grid over the indexed points, built once at engine
    /// construction. The planner reads area-local point counts from it in
    /// O(grid cells) without touching any index.
    pub fn density_map(&self) -> &DensityMap {
        &self.density
    }

    /// Tight bounding box of the indexed points ([`Rect::EMPTY`] for an
    /// empty engine).
    pub fn data_bounds(&self) -> Rect {
        self.data_bbox
    }

    /// Marks this engine as the shard of a larger point set bounded by
    /// `mbr`: flags every canonical vertex whose Voronoi cell is not
    /// certainly contained in `mbr` (conservatively, any clipped cell ring
    /// with a vertex outside `mbr`, or a degenerate ring). The segment
    /// expansion policy consults these flags to fall back to the complete
    /// cell test on boundary-straddling frontiers — closing the
    /// completeness gap of shard-local segment expansion. Called once per
    /// shard at build time by the sharded engines.
    pub(crate) fn mark_shard_boundary(&mut self, mbr: &Rect) {
        let Some(tri) = self.tri.as_ref() else {
            self.boundary_straddlers = None;
            return;
        };
        // Replicates `cell_window` for an area-independent window: big
        // enough that unbounded hull cells keep a representative clipped
        // shape around the data.
        let window = self.data_bbox.expand(
            (self.data_bbox.width() + self.data_bbox.height()).max(1.0) + self.weight_radius,
        );
        let straddlers = (0..tri.vertex_count() as u32)
            .map(|v| {
                let ring = vaq_delaunay::cell_polygon(tri, v, &window);
                ring.len() < 3 || ring.iter().any(|&p| !mbr.contains_point(p))
            })
            .collect();
        self.boundary_straddlers = Some(straddlers);
    }

    /// Clipping window for on-demand Voronoi cells: the data extent joined
    /// with the query area, grown by its own diagonal so unbounded hull
    /// cells keep a representative shape around the region of interest.
    pub(crate) fn cell_window<A: QueryArea + ?Sized>(&self, area: &A) -> Rect {
        let r = self.data_bbox.union(&area.mbr());
        r.expand((r.width() + r.height()).max(1.0) + self.weight_radius)
    }

    /// Unwraps a collect-mode funnel output (the wrappers below always
    /// request `OutputMode::Collect`).
    fn collected(out: crate::query::QueryOutput) -> QueryResult {
        out.into_result().expect("collect-mode query")
    }

    /// Traditional filter–refine query with the R-tree (the paper's
    /// baseline). Wrapper over `execute(&QuerySpec::traditional(), area)`.
    pub fn traditional<A: QueryArea + ?Sized>(&self, area: &A) -> QueryResult {
        self.traditional_with(area, FilterIndex::RTree)
    }

    /// Traditional query with an explicit filter index.
    ///
    /// # Panics
    ///
    /// Panics if the requested index was not built (see
    /// [`EngineBuilder::with_kdtree`] / [`EngineBuilder::with_quadtree`]).
    pub fn traditional_with<A: QueryArea + ?Sized>(
        &self,
        area: &A,
        filter: FilterIndex,
    ) -> QueryResult {
        Self::collected(self.run_spec(&QuerySpec::traditional().filter(filter), area, None))
    }

    /// Voronoi-based area query (Algorithm 1) with the paper's defaults:
    /// R-tree seed NN and the segment expansion policy. Allocates fresh
    /// scratch; for repeated queries prefer a
    /// [`QuerySession`](crate::QuerySession) (or
    /// [`AreaQueryEngine::voronoi_with`]).
    pub fn voronoi<A: QueryArea + ?Sized>(&self, area: &A) -> QueryResult {
        Self::collected(self.run_spec(&QuerySpec::voronoi(), area, None))
    }

    /// Voronoi-based area query with explicit policy, seed index and
    /// caller-owned reusable scratch — `execute` with a spec of
    /// `QuerySpec::voronoi().policy(policy).seed(seed_index)`.
    ///
    /// # Panics
    ///
    /// Panics if [`SeedIndex::KdTree`] is requested but the kd-tree was not
    /// built.
    pub fn voronoi_with<A: QueryArea + ?Sized>(
        &self,
        area: &A,
        policy: ExpansionPolicy,
        seed_index: SeedIndex,
        scratch: &mut QueryScratch,
    ) -> QueryResult {
        let spec = QuerySpec::voronoi().policy(policy).seed(seed_index);
        Self::collected(self.run_spec(&spec, area, Some(scratch)))
    }

    /// Voronoi-based area query over a **prepared** polygon: the area is
    /// query-compiled once (slab decomposition + edge grid + cached
    /// MBR/interior point, see `vaq_geom::prepared`) and the per-
    /// candidate `contains` / per-frontier segment tests run against the
    /// index instead of scanning all `k` polygon edges. Wrapper over
    /// `execute` with [`PrepareMode::PrepareOnce`].
    ///
    /// Results are identical to [`AreaQueryEngine::voronoi`] — the
    /// prepared layer is exact. For repeated queries with the same areas,
    /// use a [`QuerySession`](crate::QuerySession) with
    /// [`PrepareMode::Cached`] instead; this convenience re-prepares per
    /// call.
    pub fn voronoi_prepared(&self, area: &Polygon) -> QueryResult {
        let spec = QuerySpec::voronoi().prepare(PrepareMode::PrepareOnce);
        Self::collected(self.run_spec(&spec, area, None))
    }

    /// Traditional filter–refine query with a prepared refine step (the
    /// exact containment tests run against the prepared index). Identical
    /// results to [`AreaQueryEngine::traditional`].
    pub fn traditional_prepared(&self, area: &Polygon) -> QueryResult {
        let spec = QuerySpec::traditional().prepare(PrepareMode::PrepareOnce);
        Self::collected(self.run_spec(&spec, area, None))
    }

    /// Counts the points inside `area` without materialising them — the
    /// aggregate form of the area query (`SELECT COUNT(*) WHERE
    /// Contains(A, p)`), using the Voronoi method's candidate generation.
    /// Wrapper over `execute` with [`OutputMode::Count`]: the count runs
    /// the same seeded, stats-tracked BFS as collection.
    ///
    /// Count queries magnify the paper's point: with no result set to
    /// build, candidate generation and validation are the *entire* cost.
    pub fn voronoi_count<A: QueryArea + ?Sized>(
        &self,
        area: &A,
        scratch: &mut QueryScratch,
    ) -> usize {
        let spec = QuerySpec::voronoi().output(OutputMode::Count);
        self.run_spec(&spec, area, Some(scratch)).count()
    }

    /// Counts the points inside `area` with the traditional method
    /// (window count is not enough — the exact test still runs per
    /// candidate; only the result vector is avoided). Wrapper over
    /// `execute` with [`OutputMode::Count`].
    pub fn traditional_count<A: QueryArea + ?Sized>(&self, area: &A) -> usize {
        let spec = QuerySpec::traditional().output(OutputMode::Count);
        self.run_spec(&spec, area, None).count()
    }

    /// Reference oracle: a linear scan validating every point. `O(n·|A|)`.
    /// Wrapper over `execute` with
    /// [`QueryMethod::BruteForce`](crate::QueryMethod::BruteForce); use the
    /// spec form to get stats too.
    pub fn brute_force<A: QueryArea + ?Sized>(&self, area: &A) -> Vec<u32> {
        Self::collected(self.run_spec(&QuerySpec::brute_force(), area, None)).indices
    }

    /// Classifies every canonical vertex as internal / boundary / external
    /// relative to `area` (see [`PointClass`]). Returns `None` for an empty
    /// engine. Wrapper over `execute` with [`OutputMode::Classify`].
    pub fn classify<A: QueryArea + ?Sized>(&self, area: &A) -> Option<Vec<PointClass>> {
        self.tri.as_ref()?;
        let spec = QuerySpec::new().output(OutputMode::Classify);
        match self.run_spec(&spec, area, None) {
            crate::query::QueryOutput::Classified { classes, .. } => Some(classes),
            // vaq-lint: allow(panic-hygiene) -- run_spec returns the
            // variant matching the spec's OutputMode, and the spec two
            // lines up is pinned to Classify.
            _ => unreachable!("classify-mode query"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::{Polygon, PreparedPolygon};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn star_polygon(c: Point, r_max: f64, k: usize, seed: u64) -> Polygon {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut angles: Vec<f64> = (0..k)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        angles.sort_by(f64::total_cmp);
        Polygon::new(
            angles
                .iter()
                .map(|&a| {
                    let r = r_max * (0.3 + 0.7 * rng.gen::<f64>());
                    p(c.x + r * a.cos(), c.y + r * a.sin())
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn methods_agree_with_each_other_and_brute_force() {
        let pts = uniform(600, 81);
        let engine = AreaQueryEngine::builder(&pts)
            .with_kdtree()
            .with_quadtree()
            .build();
        let mut scratch = engine.new_scratch();
        for seed in 0..8u64 {
            let area = star_polygon(p(0.5, 0.5), 0.25, 10, seed);
            let mut want = engine.brute_force(&area);
            want.sort_unstable();
            assert_eq!(engine.traditional(&area).sorted_indices(), want);
            assert_eq!(
                engine
                    .traditional_with(&area, FilterIndex::KdTree)
                    .sorted_indices(),
                want
            );
            assert_eq!(
                engine
                    .traditional_with(&area, FilterIndex::Quadtree)
                    .sorted_indices(),
                want
            );
            for policy in [ExpansionPolicy::Segment, ExpansionPolicy::Cell] {
                for seed_idx in [SeedIndex::RTree, SeedIndex::KdTree, SeedIndex::DelaunayWalk] {
                    let r = engine.voronoi_with(&area, policy, seed_idx, &mut scratch);
                    assert_eq!(
                        r.sorted_indices(),
                        want,
                        "policy {policy:?}, seed {seed_idx:?}"
                    );
                }
            }
        }
    }

    /// The prepared path must traverse exactly the same BFS (identical
    /// results *and* identical work counters) — the index only changes
    /// how each primitive is answered, never its answer.
    #[test]
    fn prepared_queries_bit_match_raw_queries() {
        let pts = uniform(1500, 90);
        let engine = AreaQueryEngine::build(&pts);
        for seed in 0..6u64 {
            let area = star_polygon(p(0.5, 0.5), 0.25, 24, 700 + seed);
            let raw_v = engine.voronoi(&area);
            let prep_v = engine.voronoi_prepared(&area);
            assert_eq!(raw_v.indices, prep_v.indices, "voronoi results");
            assert_eq!(
                raw_v.stats.candidates, prep_v.stats.candidates,
                "voronoi candidates"
            );
            assert_eq!(
                raw_v.stats.segment_tests, prep_v.stats.segment_tests,
                "voronoi segment tests"
            );
            let raw_t = engine.traditional(&area);
            let prep_t = engine.traditional_prepared(&area);
            assert_eq!(raw_t.indices, prep_t.indices, "traditional results");
            assert_eq!(raw_t.stats.candidates, prep_t.stats.candidates);
            // Classification and counts flow through the same trait.
            let prep = PreparedPolygon::new(area.clone());
            assert_eq!(engine.classify(&area), engine.classify(&prep));
            let mut s1 = engine.new_scratch();
            let mut s2 = engine.new_scratch();
            assert_eq!(
                engine.voronoi_count(&area, &mut s1),
                engine.voronoi_count(&prep, &mut s2)
            );
            assert_eq!(
                engine.traditional_count(&area),
                engine.traditional_count(&prep)
            );
        }
    }

    #[test]
    fn voronoi_produces_fewer_candidates_on_irregular_areas() {
        let pts = uniform(3000, 82);
        let engine = AreaQueryEngine::build(&pts);
        let mut scratch = engine.new_scratch();
        let mut total_trad = 0usize;
        let mut total_voro = 0usize;
        for seed in 0..10u64 {
            let area = star_polygon(p(0.5, 0.5), 0.2, 10, 1000 + seed);
            let t = engine.traditional(&area);
            let v = engine.voronoi_with(
                &area,
                ExpansionPolicy::Segment,
                SeedIndex::RTree,
                &mut scratch,
            );
            total_trad += t.stats.candidates;
            total_voro += v.stats.candidates;
        }
        assert!(
            total_voro < total_trad,
            "voronoi candidates {total_voro} should undercut traditional {total_trad}"
        );
    }

    #[test]
    fn empty_engine_answers_empty() {
        let engine = AreaQueryEngine::build(&[]);
        let area = star_polygon(p(0.5, 0.5), 0.2, 10, 1);
        assert!(engine.is_empty());
        assert!(engine.traditional(&area).indices.is_empty());
        assert!(engine.voronoi(&area).indices.is_empty());
        assert!(engine.brute_force(&area).is_empty());
        assert!(engine.classify(&area).is_none());
    }

    #[test]
    fn single_point_engine() {
        let engine = AreaQueryEngine::build(&[p(0.5, 0.5)]);
        let inside = Polygon::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(0.5, 1.0)]).unwrap();
        assert_eq!(engine.voronoi(&inside).indices, vec![0]);
        assert_eq!(engine.traditional(&inside).indices, vec![0]);
        let outside = Polygon::new(vec![p(5.0, 5.0), p(6.0, 5.0), p(5.5, 6.0)]).unwrap();
        assert!(engine.voronoi(&outside).indices.is_empty());
        assert!(engine.traditional(&outside).indices.is_empty());
    }

    #[test]
    fn duplicate_points_are_all_reported() {
        let pts = vec![
            p(0.5, 0.5),
            p(0.5, 0.5),
            p(0.5, 0.5),
            p(0.9, 0.9),
            p(0.1, 0.9),
        ];
        let engine = AreaQueryEngine::build(&pts);
        let area = Polygon::new(vec![p(0.4, 0.4), p(0.6, 0.4), p(0.6, 0.6), p(0.4, 0.6)]).unwrap();
        let v = engine.voronoi(&area);
        assert_eq!(v.sorted_indices(), vec![0, 1, 2]);
        assert_eq!(v.stats.result_size, 3);
        let t = engine.traditional(&area);
        assert_eq!(t.sorted_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn collinear_dataset_still_answers_correctly() {
        let pts: Vec<Point> = (0..50).map(|i| p(f64::from(i) * 0.02, 0.5)).collect();
        let engine = AreaQueryEngine::build(&pts);
        let area =
            Polygon::new(vec![p(0.25, 0.4), p(0.55, 0.4), p(0.55, 0.6), p(0.25, 0.6)]).unwrap();
        let mut want = engine.brute_force(&area);
        want.sort_unstable();
        assert!(!want.is_empty());
        assert_eq!(engine.voronoi(&area).sorted_indices(), want);
        assert_eq!(engine.traditional(&area).sorted_indices(), want);
    }

    #[test]
    fn incremental_rtree_engine_matches_bulk() {
        let pts = uniform(300, 83);
        let bulk = AreaQueryEngine::build(&pts);
        let inc = AreaQueryEngine::builder(&pts).incremental_rtree().build();
        let area = star_polygon(p(0.5, 0.5), 0.3, 10, 84);
        assert_eq!(
            bulk.traditional(&area).sorted_indices(),
            inc.traditional(&area).sorted_indices()
        );
        assert_eq!(
            bulk.voronoi(&area).sorted_indices(),
            inc.voronoi(&area).sorted_indices()
        );
    }

    #[test]
    fn stats_identities_hold() {
        let pts = uniform(1000, 85);
        let engine = AreaQueryEngine::build(&pts);
        let area = star_polygon(p(0.5, 0.5), 0.25, 10, 86);
        let t = engine.traditional(&area);
        assert_eq!(t.stats.result_size, t.indices.len());
        assert_eq!(t.stats.accepted, t.indices.len());
        assert_eq!(t.stats.containment_tests, t.stats.candidates as u64);
        assert_eq!(
            t.stats.redundant_validations(),
            t.stats.candidates - t.stats.accepted
        );
        let v = engine.voronoi(&area);
        assert_eq!(v.stats.result_size, v.indices.len());
        assert_eq!(v.stats.containment_tests, v.stats.candidates as u64);
        assert!(v.stats.seed.is_some());
        assert!(v.stats.candidates <= t.stats.candidates);
    }

    #[test]
    fn count_queries_match_materialised_results() {
        let pts = uniform(2000, 89);
        let engine = AreaQueryEngine::build(&pts);
        let mut scratch = engine.new_scratch();
        for seed in 0..5u64 {
            let area = star_polygon(p(0.5, 0.5), 0.25, 10, 900 + seed);
            let want = engine.brute_force(&area).len();
            assert_eq!(engine.voronoi_count(&area, &mut scratch), want);
            assert_eq!(engine.traditional_count(&area), want);
        }
        // Duplicates are counted with multiplicity.
        let dup_engine =
            AreaQueryEngine::build(&[p(0.5, 0.5), p(0.5, 0.5), p(0.5, 0.5), p(0.9, 0.9)]);
        let mut s = dup_engine.new_scratch();
        let area = star_polygon(p(0.5, 0.5), 0.2, 10, 1);
        let want = dup_engine.brute_force(&area).len();
        assert_eq!(dup_engine.voronoi_count(&area, &mut s), want);
        // Empty engine counts zero.
        let empty = AreaQueryEngine::build(&[]);
        let mut s = empty.new_scratch();
        assert_eq!(empty.voronoi_count(&area, &mut s), 0);
        assert_eq!(empty.traditional_count(&area), 0);
    }

    #[test]
    fn classify_counts_match_query_results() {
        let pts = uniform(400, 87);
        let engine = AreaQueryEngine::build(&pts);
        let area = star_polygon(p(0.5, 0.5), 0.3, 10, 88);
        let classes = engine.classify(&area).unwrap();
        let internal = classes
            .iter()
            .filter(|&&c| c == PointClass::Internal)
            .count();
        assert_eq!(internal, engine.brute_force(&area).len());
    }
}
