//! Reusable per-thread query scratch space.
//!
//! The Voronoi BFS needs a visited set over the canonical vertices and a
//! candidate queue. Allocating a fresh `Vec<bool>` per query would cost
//! `O(n)` per query (1 MB at n = 10⁶) and dominate small queries, so the
//! engine hands out a [`QueryScratch`] that callers reuse across queries:
//! the visited set is an epoch-stamped array that clears in `O(1)`.
//!
//! Keeping the scratch external (instead of `RefCell` inside the engine)
//! keeps the engine `Sync`, so experiment repetitions can run on threads
//! sharing one engine, each with its own scratch.

use std::collections::VecDeque;

/// Epoch-stamped visited set + BFS queue, reusable across queries.
#[derive(Clone, Debug, Default)]
pub struct QueryScratch {
    stamps: Vec<u32>,
    epoch: u32,
    pub(crate) queue: VecDeque<u32>,
}

impl QueryScratch {
    /// Creates scratch able to serve queries over `n` canonical vertices.
    pub fn new(n: usize) -> QueryScratch {
        QueryScratch {
            stamps: vec![0; n],
            epoch: 0,
            queue: VecDeque::new(),
        }
    }

    /// Starts a new query: clears the visited set in `O(1)` and empties
    /// the queue. Grows the stamp array if the vertex count increased.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: old stamps could collide with the new epoch.
            self.stamps.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Marks `v` visited; returns `true` when it was not visited before.
    #[inline]
    pub(crate) fn mark(&mut self, v: u32) -> bool {
        let slot = &mut self.stamps[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// `true` when `v` has been marked in the current query.
    #[inline]
    pub(crate) fn is_marked(&self, v: u32) -> bool {
        self.stamps[v as usize] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_reports_first_visit_only() {
        let mut s = QueryScratch::new(4);
        s.begin(4);
        assert!(s.mark(2));
        assert!(!s.mark(2));
        assert!(s.is_marked(2));
        assert!(!s.is_marked(1));
    }

    #[test]
    fn begin_resets_in_constant_time() {
        let mut s = QueryScratch::new(3);
        s.begin(3);
        assert!(s.mark(0));
        s.begin(3);
        assert!(!s.is_marked(0), "fresh epoch forgets old marks");
        assert!(s.mark(0));
    }

    #[test]
    fn grows_for_larger_vertex_counts() {
        let mut s = QueryScratch::new(1);
        s.begin(10);
        assert!(s.mark(9));
    }

    #[test]
    fn epoch_wraparound_is_safe() {
        let mut s = QueryScratch::new(2);
        s.epoch = u32::MAX - 1;
        s.begin(2); // epoch -> MAX
        assert!(s.mark(0));
        s.begin(2); // wraps: stamps cleared, epoch restarts at 1
        assert!(!s.is_marked(0));
        assert!(s.mark(0));
    }
}
