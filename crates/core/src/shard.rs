//! Sharding the engine across point-set partitions.
//!
//! The paper's evaluation stops at 10⁶ points on a single Delaunay
//! structure; serving beyond that, distributed in-memory spatial systems
//! (Simba, GeoSpark) all use the same recipe: **partition the points
//! spatially, index each partition independently, prune partitions whose
//! bounding box misses the query, and fan the survivors out in
//! parallel**. [`ShardedAreaQueryEngine`] is that recipe over the
//! existing [`AreaQueryEngine`]:
//!
//! * the point set is split into `S` shards by a **recursive kd median
//!   split** — always on the longer extent of the partition's MBR — so
//!   shards stay spatially tight (small MBRs ⇒ effective pruning) and
//!   balanced (±1 point via proportional median ranks);
//! * one full [`AreaQueryEngine`] (R-tree + Delaunay) is built **per
//!   shard, in parallel**, each over its own points — build time and
//!   memory scale per shard, and the `O(n log n)` triangulation is paid
//!   on `n/S` points at a time;
//! * any [`QuerySpec`] is answered by **MBR-pruning** the shards against
//!   the area's MBR and running the survivors — sequentially in
//!   [`ShardedAreaQueryEngine::execute`], or on a shared work-stealing
//!   worker pool in [`ShardedAreaQueryEngine::execute_batch`], where the
//!   work items are `(area, shard)` pairs and prepared areas are
//!   compiled **once per batch** and shared across shards by
//!   fingerprint;
//! * shard-local results are mapped back to **global input indices** and
//!   merged in ascending input order, with per-shard counters folded
//!   into one aggregate [`QueryStats`] (see
//!   [`QueryStats::shards_visited`] / [`QueryStats::shards_pruned`]) and
//!   kept individually in [`ShardedQueryOutput::breakdown`].
//!
//! Results are **bit-identical to the unsharded engine**: the shards
//! partition the point set, every method validates with the same exact
//! predicates, and the differential suites
//! (`tests/sharded_differential.rs`, `tests/sink_differential.rs`)
//! enforce equality of the sorted global index sets, counts, kNN
//! answers and payload checksums across the whole `QuerySpec` grid.
//!
//! The paper's **segment expansion heuristic**
//! ([`ExpansionPolicy::Segment`](crate::ExpansionPolicy)) needs one
//! extra guard here: cells of sites near a kd cut stretch across the cut
//! (their true neighbours live in the next shard), so a purely
//! shard-local segment BFS can fail to bridge a thin slice of the area
//! that the global diagram bridges fine (first observed at 2·10⁵ points
//! × 8 shards: 8 of ~55 000 matches dropped over 64 areas). Each shard
//! engine therefore flags, at build time, every vertex whose Voronoi
//! cell straddles the shard's MBR
//! (`AreaQueryEngine::mark_shard_boundary`); when the segment test
//! fails on such a **boundary-straddling frontier**, the BFS falls back
//! to the provably complete cell test for that one edge. Interior
//! frontiers — the vast majority — keep the cheap segment-only test, so
//! sharded segment expansion is at least as complete as the unsharded
//! heuristic at `O(1)` extra cost per boundary frontier
//! (`tests/shard_segment_gap.rs` reproduces the old drop and verifies
//! the fix). The [`ExpansionPolicy::Cell`](crate::ExpansionPolicy)
//! policy remains exact on every path with no fallback needed.
//!
//! [`ShardedDynamicAreaQueryEngine`] adds the base + delta pattern of
//! [`crate::dynamic`] on top: inserts land in **shard-local delta
//! buffers** (routed to the nearest shard MBR, pruned at query time by
//! the buffer's own MBR), deletes tombstone, and compaction rebuilds the
//! sharded base in parallel.

use crate::area::QueryArea;
use crate::batch::prepare_batch_shared;
use crate::dynamic::{should_purge_delta, DynamicQueryResult, DEFAULT_COMPACT_RATIO};
use crate::engine::{AreaQueryEngine, EngineBuilder};
use crate::payload::{RecordStore, PAYLOAD_SEED};
use crate::plan::{DensityMap, ExecutionPlan, PlanFeatures, PlannedPath, Planner};
use crate::query::{PrepareMode, QuerySpec, ShardPruning};
use crate::scratch::QueryScratch;
use crate::sink::{
    dispatch_sink, DynamicSink, Emit, EngineSink, Neighbor, ResultSink, SinkId, SinkVisitor,
};
use crate::stats::{CacheCounters, QueryStats};
use crate::sync::{scope, ClaimCounter, Mutex};
use std::collections::HashSet;
use vaq_delaunay::{weights_are_uniform, DiagramKind};
use vaq_geom::{Point, Polygon, Rect};

/// One spatial partition: its own engine, its points' global input
/// indices, and its MBR (the pruning key).
pub(crate) struct Shard {
    pub(crate) engine: AreaQueryEngine,
    /// Global input index of each shard-local point (parallel to the
    /// shard engine's points).
    pub(crate) global: Vec<u32>,
    /// Tight bounding box of the shard's points.
    pub(crate) mbr: Rect,
}

/// `true` when `spec`'s pruning rule rejects `shard` for `area`: the
/// shard's MBR misses the area's MBR, or — under
/// [`ShardPruning::Exact`] — the area's exact geometry misses the
/// shard's (non-degenerate) MBR rectangle. Pruning never changes
/// results: a pruned shard provably holds no matching point. Both the
/// sequential and the batched execution paths prune through this one
/// predicate, so their visit/prune counters always agree.
fn prune_shard<A: QueryArea + ?Sized>(
    spec: &QuerySpec,
    shard: &Shard,
    area_mbr: &Rect,
    area: &A,
) -> bool {
    if !shard.mbr.intersects(area_mbr) {
        return true;
    }
    spec.shard_pruning == ShardPruning::Exact
        && shard.mbr.width() > 0.0
        && shard.mbr.height() > 0.0
        && !area.intersects_polygon(&Polygon::new_unchecked(shard.mbr.corners().to_vec()))
}

/// Per-visited-shard counters of one sharded query.
#[derive(Clone, Debug)]
pub struct ShardBreakdown {
    /// Shard index (stable across queries; see
    /// [`ShardedAreaQueryEngine::shard_mbrs`]).
    pub shard: usize,
    /// The shard-local query's work counters.
    pub stats: QueryStats,
}

/// The merged answer to one sharded query.
#[derive(Clone, Debug, Default)]
pub struct ShardedQueryOutput {
    /// Matching **global input indices, ascending** (empty in
    /// [`OutputMode::Count`](crate::OutputMode); the kept neighbours'
    /// indices in [`OutputMode::TopKNearest`](crate::OutputMode)).
    pub indices: Vec<u32>,
    /// Number of matching points (equals `indices.len()` when
    /// collecting).
    pub count: usize,
    /// The kept neighbours, ascending by `(dist_sq, index)` — populated
    /// only by [`OutputMode::TopKNearest`](crate::OutputMode), merged
    /// across shards with ties broken by global index.
    pub neighbors: Vec<Neighbor>,
    /// Aggregate counters: per-shard work summed
    /// ([`QueryStats::absorb_shard`]), `shards_visited` /
    /// `shards_pruned` filled in, prepared-cache traffic of the shared
    /// (per-batch) preparation.
    pub stats: QueryStats,
    /// Per-visited-shard counters, ascending by shard index.
    pub breakdown: Vec<ShardBreakdown>,
}

/// Recursively median-splits `idx` (indices into `points`) into `shards`
/// spatially tight, balanced partitions. Each split is on the longer
/// extent of the current partition's MBR; the split rank is proportional
/// to the shard counts on each side, so every leaf ends within ±1 of
/// `n / shards` points. Ties on a coordinate break by input index, so
/// the partition is fully deterministic.
fn split_partition(points: &[Point], idx: &mut [u32], shards: usize, out: &mut Vec<Vec<u32>>) {
    if idx.is_empty() {
        return;
    }
    if shards <= 1 || idx.len() == 1 {
        out.push(idx.to_vec());
        return;
    }
    let mbr = Rect::from_points(idx.iter().map(|&i| points[i as usize]));
    let by_x = mbr.width() >= mbr.height();
    let left_shards = shards / 2;
    let mid = idx.len() * left_shards / shards;
    idx.select_nth_unstable_by(mid, |&a, &b| {
        let (pa, pb) = (points[a as usize], points[b as usize]);
        let key = if by_x {
            pa.x.total_cmp(&pb.x)
        } else {
            pa.y.total_cmp(&pb.y)
        };
        key.then(a.cmp(&b))
    });
    let (left, right) = idx.split_at_mut(mid);
    split_partition(points, left, left_shards, out);
    split_partition(points, right, shards - left_shards, out);
}

/// Resolves the requested shard count: `0` auto-tunes to the machine's
/// available parallelism (>= 1), anything else passes through. Same
/// resolution the CLI's `--threads auto` uses.
fn resolve_shard_count(shards: usize) -> usize {
    crate::sync::resolve_threads(shards)
}

/// Partitions `0..points.len()` into at most `shards` non-empty parts.
fn partition(points: &[Point], shards: usize) -> Vec<Vec<u32>> {
    if points.is_empty() {
        return Vec::new();
    }
    let shards = shards.clamp(1, points.len());
    let mut idx: Vec<u32> = (0..points.len() as u32).collect();
    let mut out = Vec::with_capacity(shards);
    split_partition(points, &mut idx, shards, &mut out);
    out
}

/// The sharded engine: `S` independent [`AreaQueryEngine`]s over a
/// kd-partitioned point set, answering any [`QuerySpec`] with MBR shard
/// pruning and global-index merging. See the [module docs](self).
pub struct ShardedAreaQueryEngine {
    shards: Vec<Shard>,
    /// Total number of indexed points.
    len: usize,
    /// The shard count originally requested (compaction of the dynamic
    /// overlay re-targets it even when fewer shards are currently live).
    target_shards: usize,
    /// Shard-granularity density map (tight shard MBRs weighted by their
    /// point counts) — the planner's candidate estimator, free at build
    /// time.
    density: DensityMap,
    /// The engine-resident planner resolving
    /// [`MethodChoice::Auto`](crate::MethodChoice) specs; behind a mutex
    /// because the sharded engine executes through `&self`.
    planner: Mutex<Planner>,
    /// The diagram family the *input* weights selected. Per-shard weight
    /// slices may individually normalise to Euclidean (a shard whose
    /// points all share one weight); the global kind is what the planner
    /// hedges on.
    diagram: DiagramKind,
}

impl ShardedAreaQueryEngine {
    /// Partitions `points` into (at most) `shards` shards and builds the
    /// per-shard engines in parallel on up to `shards` worker threads.
    /// Fewer than `shards` shards are built when the point set is
    /// smaller than the shard count.
    ///
    /// `shards == 0` **auto-tunes**: the shard count becomes the
    /// machine's [`std::thread::available_parallelism`] (the first rung
    /// of shard-count auto-tuning — one shard per hardware thread keeps
    /// every core busy on fan-out queries without over-partitioning the
    /// prune). The CLI exposes it as `--shards auto`.
    pub fn build(points: &[Point], shards: usize) -> ShardedAreaQueryEngine {
        let shards = resolve_shard_count(shards);
        ShardedAreaQueryEngine::build_with(points, shards, shards)
    }

    /// As [`ShardedAreaQueryEngine::build`], attaching a simulated
    /// payload record of `payload_bytes` bytes to every point: **one
    /// logical record store** is generated for the whole dataset (same
    /// seed and contents as `EngineBuilder::payload_bytes` on the
    /// unsharded engine) and [split](RecordStore::split) into per-shard
    /// stores addressed by shard-local ids — record contents are copied
    /// exactly once and validation/materialisation checksums stay
    /// bit-identical to the unsharded engine's. `payload_bytes == 0`
    /// builds without records; `shards == 0` auto-tunes.
    pub fn build_with_payload(
        points: &[Point],
        shards: usize,
        payload_bytes: usize,
    ) -> ShardedAreaQueryEngine {
        if payload_bytes == 0 {
            return ShardedAreaQueryEngine::build(points, shards);
        }
        let logical = RecordStore::generate(points.len(), payload_bytes, PAYLOAD_SEED);
        let shards = resolve_shard_count(shards);
        ShardedAreaQueryEngine::build_inner(points, shards, shards, None, Some(&logical))
    }

    /// As [`ShardedAreaQueryEngine::build`] over **weighted sites**: each
    /// shard builds the power diagram of its own weight slice (the kd
    /// partition splits `weights` alongside `points`), so every shard
    /// answers with power-cell semantics and the merged result equals the
    /// unsharded [`AreaQueryEngine::build_weighted`] engine's. Uniform
    /// weights normalise to the Euclidean diagram and the engine is
    /// bit-identical to [`ShardedAreaQueryEngine::build`].
    ///
    /// # Panics
    ///
    /// Panics when `weights.len() != points.len()` or any weight is
    /// non-finite (validate user input first; the CLI does).
    pub fn build_weighted(
        points: &[Point],
        weights: &[f64],
        shards: usize,
    ) -> ShardedAreaQueryEngine {
        assert_eq!(
            weights.len(),
            points.len(),
            "one weight per point: {} weights for {} points",
            weights.len(),
            points.len()
        );
        let shards = resolve_shard_count(shards);
        ShardedAreaQueryEngine::build_inner(points, shards, shards, Some(weights), None)
    }

    /// [`ShardedAreaQueryEngine::build_weighted`] with a simulated
    /// payload record per point, split per shard exactly as
    /// [`ShardedAreaQueryEngine::build_with_payload`] does.
    /// `payload_bytes == 0` builds without records.
    ///
    /// # Panics
    ///
    /// As [`ShardedAreaQueryEngine::build_weighted`].
    pub fn build_weighted_with_payload(
        points: &[Point],
        weights: &[f64],
        shards: usize,
        payload_bytes: usize,
    ) -> ShardedAreaQueryEngine {
        assert_eq!(
            weights.len(),
            points.len(),
            "one weight per point: {} weights for {} points",
            weights.len(),
            points.len()
        );
        if payload_bytes == 0 {
            return ShardedAreaQueryEngine::build_weighted(points, weights, shards);
        }
        let logical = RecordStore::generate(points.len(), payload_bytes, PAYLOAD_SEED);
        let shards = resolve_shard_count(shards);
        ShardedAreaQueryEngine::build_inner(points, shards, shards, Some(weights), Some(&logical))
    }

    /// As [`ShardedAreaQueryEngine::build`] with an explicit build
    /// worker count (`<= 1` builds sequentially on the calling thread).
    pub fn build_with(
        points: &[Point],
        shards: usize,
        build_threads: usize,
    ) -> ShardedAreaQueryEngine {
        ShardedAreaQueryEngine::build_inner(
            points,
            resolve_shard_count(shards),
            build_threads,
            None,
            None,
        )
    }

    fn build_inner(
        points: &[Point],
        shards: usize,
        build_threads: usize,
        weights: Option<&[f64]>,
        records: Option<&RecordStore>,
    ) -> ShardedAreaQueryEngine {
        let parts = partition(points, shards);
        // Per-shard slices of the logical record store (shard-local ids),
        // each record's bytes copied exactly once; the mutex lets each
        // build worker *take* its shard's store instead of cloning it (a
        // clone would be a second copy of the record contents).
        let shard_stores: Vec<Mutex<Option<RecordStore>>> = match records {
            Some(logical) => logical
                .split(&parts)
                .expect("partition indices are in range")
                .into_iter()
                .map(|s| Mutex::new(Some(s)))
                .collect(),
            None => (0..parts.len()).map(|_| Mutex::new(None)).collect(),
        };
        let multi = parts.len() > 1;
        let build_one = |si: usize, part: &[u32]| -> Shard {
            let pts: Vec<Point> = part.iter().map(|&i| points[i as usize]).collect();
            let ws: Option<Vec<f64>> =
                weights.map(|w| part.iter().map(|&i| w[i as usize]).collect());
            let mut builder = EngineBuilder::new(&pts);
            if let Some(ws) = &ws {
                builder = builder.weights(ws);
            }
            let store = shard_stores[si]
                .lock()
                .expect("store mutex poisoned")
                .take();
            if let Some(store) = store {
                builder = builder.record_store(store);
            }
            let mbr = Rect::from_points(pts.iter().copied());
            let mut engine = builder.build();
            if multi {
                // Flag boundary-straddling Voronoi cells so the segment
                // policy can fall back to the complete cell test on
                // frontiers near the kd cut (see the module docs). A
                // single shard has no cut and keeps the plain engine's
                // behaviour bit for bit.
                engine.mark_shard_boundary(&mbr);
            }
            Shard {
                mbr,
                engine,
                global: part.to_vec(),
            }
        };
        let built: Vec<Shard> = if build_threads <= 1 || parts.len() <= 1 {
            parts
                .iter()
                .enumerate()
                .map(|(i, p)| build_one(i, p))
                .collect()
        } else {
            let next = ClaimCounter::new();
            let workers = build_threads.min(parts.len());
            let mut slots: Vec<Option<Shard>> = Vec::new();
            slots.resize_with(parts.len(), || None);
            scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let parts = &parts;
                        let build_one = &build_one;
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            loop {
                                let i = next.claim();
                                let Some(part) = parts.get(i) else { break };
                                done.push((i, build_one(i, part)));
                            }
                            done
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, shard) in h.join().expect("shard builder does not panic") {
                        slots[i] = Some(shard);
                    }
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every shard index is claimed exactly once"))
                .collect()
        };
        let density =
            DensityMap::from_regions(built.iter().map(|s| (s.mbr, s.engine.len() as f64)));
        ShardedAreaQueryEngine {
            len: points.len(),
            target_shards: shards.max(1),
            shards: built,
            density,
            planner: Mutex::new(Planner::default()),
            diagram: match weights {
                Some(w) if !weights_are_uniform(w) => DiagramKind::Power,
                _ => DiagramKind::Euclidean,
            },
        }
    }

    /// The diagram family the input weights selected (uniform weights
    /// normalise to [`DiagramKind::Euclidean`]).
    pub fn diagram_kind(&self) -> DiagramKind {
        self.diagram
    }

    /// Number of live shards (at most the requested shard count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of indexed points across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Each shard's tight bounding box, in shard-index order.
    pub fn shard_mbrs(&self) -> Vec<Rect> {
        self.shards.iter().map(|s| s.mbr).collect()
    }

    /// Each shard's point count, in shard-index order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.engine.len()).collect()
    }

    /// Shard-granularity density map: the kd partition's tight shard
    /// MBRs weighted by their point counts. The planner's candidate
    /// estimator — O(shards) per lookup, free at build time.
    pub fn density_map(&self) -> &DensityMap {
        &self.density
    }

    /// Bytes per payload record of the per-shard record stores (`None`
    /// when the engine was built without payload simulation). Every
    /// shard's store is split from one logical store, so the first
    /// shard speaks for all of them.
    pub fn payload_record_bytes(&self) -> Option<usize> {
        self.shards
            .first()
            .and_then(|s| s.engine.record_store())
            .map(RecordStore::record_bytes)
    }

    /// Point density (points per unit area) of shard `shard`. A
    /// degenerate (zero-area) shard MBR reports its raw point count.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shard_count()`.
    pub fn shard_density(&self, shard: usize) -> f64 {
        let s = &self.shards[shard];
        let a = s.mbr.area();
        if a > 0.0 {
            s.engine.len() as f64 / a
        } else {
            s.engine.len() as f64
        }
    }

    /// Assembles the planner's feature vector for a query over `area` on
    /// this engine ([`PlannedPath::Sharded`]; `delta_len` is the live
    /// overlay depth when called from the dynamic wrapper).
    fn plan_features<A: QueryArea + ?Sized>(&self, area: &A, delta_len: usize) -> PlanFeatures {
        let mbr = area.mbr();
        let bounds = self
            .shards
            .iter()
            .fold(Rect::EMPTY, |acc, s| acc.union(&s.mbr));
        PlanFeatures {
            len: self.len,
            est_candidates: self.density.estimate_count(&mbr),
            vertices: area.complexity(),
            cached: false,
            cacheable: area.fingerprint().is_some(),
            delta_len,
            shards: self.shards.len(),
            in_hull: bounds.contains_rect(&mbr),
            path: PlannedPath::Sharded,
            diagram: self.diagram,
        }
    }

    /// Resolves a [`MethodChoice::Auto`](crate::MethodChoice) spec
    /// through the engine's planner and returns the concrete spec, its
    /// plan, and the vertex count (for post-hoc cost observation).
    fn resolve_auto<A: QueryArea + ?Sized>(
        &self,
        spec: &QuerySpec,
        area: &A,
        delta_len: usize,
    ) -> (QuerySpec, ExecutionPlan, usize) {
        let features = self.plan_features(area, delta_len);
        let (resolved, plan) = self
            .planner
            .lock()
            .expect("planner mutex poisoned")
            .resolve(spec, &features);
        (resolved, plan, features.vertices)
    }

    /// Feeds one finished planned query back into the engine planner's
    /// calibration.
    fn observe_auto(&self, plan: &ExecutionPlan, stats: &QueryStats, vertices: usize) {
        self.planner
            .lock()
            .expect("planner mutex poisoned")
            .observe(plan, Planner::observed_cost(stats, vertices));
    }

    /// The persisted fields of the sharded engine, for the snapshot
    /// writer: shards (each carrying its own engine and global ids),
    /// total length, the originally requested shard count, the diagram
    /// family, and the planner's current calibration ratios. Shard MBRs
    /// and the density map are *not* persisted — both are recomputed
    /// exactly from the shard point sets on load.
    #[allow(clippy::type_complexity)] // one tuple slot per persisted field
    pub(crate) fn snapshot_parts(&self) -> (&[Shard], usize, usize, DiagramKind, [f64; 3]) {
        let calibration = self
            .planner
            .lock()
            .expect("planner mutex poisoned")
            .calibration_array();
        (
            &self.shards,
            self.len,
            self.target_shards,
            self.diagram,
            calibration,
        )
    }

    /// Reassembles a sharded engine from snapshot-loaded parts. Shard
    /// MBRs are recomputed from the shard point sets (`Rect::from_points`
    /// is deterministic, so they are bit-identical to the built engine's)
    /// and the density map is rebuilt from them exactly as
    /// `build_inner` does; the planner resumes from the persisted
    /// calibration ratios.
    pub(crate) fn from_snapshot_parts(
        shards: Vec<(AreaQueryEngine, Vec<u32>)>,
        len: usize,
        target_shards: usize,
        diagram: DiagramKind,
        calibration: [f64; 3],
    ) -> ShardedAreaQueryEngine {
        let shards: Vec<Shard> = shards
            .into_iter()
            .map(|(engine, global)| {
                let mbr = Rect::from_points(engine.points().iter().copied());
                Shard {
                    engine,
                    global,
                    mbr,
                }
            })
            .collect();
        let density =
            DensityMap::from_regions(shards.iter().map(|s| (s.mbr, s.engine.len() as f64)));
        ShardedAreaQueryEngine {
            shards,
            len,
            target_shards,
            density,
            planner: Mutex::new(Planner::with_calibration(calibration)),
            diagram,
        }
    }

    /// The indexed points, reassembled in global input order (used by
    /// the dynamic overlay's compaction).
    pub fn points_in_input_order(&self) -> Vec<Point> {
        let mut pts = vec![Point::new(0.0, 0.0); self.len];
        for shard in &self.shards {
            for (local, &g) in shard.global.iter().enumerate() {
                pts[g as usize] = shard.engine.points()[local];
            }
        }
        pts
    }

    /// Executes `spec` over `area`: shards whose MBR misses the area's
    /// MBR are pruned outright, the survivors run sequentially through
    /// the generic emission path, and the shard-local sink partials are
    /// **merged** ([`ResultSink::merge`]) into one answer mapped to
    /// ascending global input indices. Preparation (for
    /// [`PrepareMode::PrepareOnce`] / `Cached`) happens **once** and the
    /// compiled area is shared by every shard.
    ///
    /// Note: a lone `execute` holds no state across calls, so
    /// [`PrepareMode::Cached`] here equals `PrepareOnce` shared across
    /// shards — each call re-compiles the area (stats report the one
    /// miss). Repeated-area amortisation needs a batch
    /// ([`ShardedAreaQueryEngine::execute_batch`] compiles each distinct
    /// fingerprint once per batch) or a caller-held prepared area.
    ///
    /// For many queries, prefer [`ShardedAreaQueryEngine::execute_batch`]
    /// — it runs `(area, shard)` pairs on a work-stealing pool and
    /// reuses per-shard scratch.
    ///
    /// # Panics
    ///
    /// Panics for `OutputMode::Classify`: classification is defined on
    /// one global Voronoi diagram, which the sharded engine does not
    /// build. Also panics if the spec requests an index the shard
    /// engines did not build (they are built with defaults: R-tree +
    /// Delaunay, no kd-tree/quadtree).
    pub fn execute<A: QueryArea + ?Sized>(&self, spec: &QuerySpec, area: &A) -> ShardedQueryOutput {
        if spec.method.is_auto() {
            let (resolved, plan, vertices) = self.resolve_auto(spec, area, 0);
            let mut out = self.execute(&resolved, area);
            out.stats.plan = Some(plan);
            self.observe_auto(&plan, &out.stats, vertices);
            return out;
        }
        dispatch_sink(
            spec.output,
            ShardRun {
                eng: self,
                spec,
                area,
            },
        )
    }

    /// The sharded emission core shared by [`ShardedAreaQueryEngine::execute`]
    /// and the sharded dynamic engine's base pass: prepares the area once,
    /// prunes shards by MBR, runs each survivor through
    /// [`AreaQueryEngine::run_sink`] with its global-index translation
    /// composed with the caller's `map`, merges the shard partials into
    /// `acc`, and folds the per-shard counters into `stats` (work
    /// counters summed via [`QueryStats::absorb_shard`], visit/prune
    /// counters and the one-shot cache traffic set here, per-shard
    /// breakdowns appended when requested).
    #[allow(clippy::too_many_arguments)] // the emission core's explicit inputs
    pub(crate) fn run_shards_sink<A, I, K, F>(
        &self,
        spec: &QuerySpec,
        area: &A,
        kind: &K,
        acc: &mut K::Partial,
        map: &F,
        stats: &mut QueryStats,
        mut breakdown: Option<&mut Vec<ShardBreakdown>>,
    ) where
        A: QueryArea + ?Sized,
        I: SinkId,
        K: ResultSink<I>,
        F: Fn(u32) -> Option<I>,
    {
        let prepared: Option<Box<dyn QueryArea + Send + Sync>> = match spec.prepare {
            PrepareMode::Raw => None,
            _ => area.prepare(),
        };
        // One shared preparation for the whole query: report it as the
        // single miss a batch-wide cache would record.
        let cache = if prepared.is_some() && spec.prepare == PrepareMode::Cached {
            CacheCounters { hits: 0, misses: 1 }
        } else {
            CacheCounters::default()
        };
        let raw_spec = spec.prepare(PrepareMode::Raw);
        let area_mbr = area.mbr();
        for (si, shard) in self.shards.iter().enumerate() {
            if prune_shard(spec, shard, &area_mbr, area) {
                stats.shards_pruned += 1;
                continue;
            }
            stats.shards_visited += 1;
            let mut st = QueryStats::default();
            let mut part = kind.start();
            let shard_map = |local: u32| map(shard.global[local as usize]);
            match &prepared {
                Some(prep) => shard.engine.run_sink(
                    &raw_spec,
                    prep.as_ref(),
                    None,
                    kind,
                    &mut part,
                    &shard_map,
                    &mut st,
                ),
                None => shard
                    .engine
                    .run_sink(&raw_spec, area, None, kind, &mut part, &shard_map, &mut st),
            }
            st.result_size = kind.result_len(&part);
            kind.merge(acc, part);
            stats.absorb_shard(&st);
            if let Some(b) = breakdown.as_deref_mut() {
                b.push(ShardBreakdown {
                    shard: si,
                    stats: st,
                });
            }
        }
        stats.prepared_cache = cache;
    }

    /// Executes `spec` over every area on `threads` worker threads and
    /// returns the merged outputs **in input order**.
    ///
    /// The unit of work is one `(area, shard)` pair of the pruned
    /// survivor set, handed out through a shared atomic index (work
    /// stealing), so a worker never idles behind one heavy area *or* one
    /// heavy shard. Workers keep per-shard scratch across the batch, and
    /// each work item fills its own sink partial — the merge step folds
    /// partials in ascending shard order ([`ResultSink::merge`]), never
    /// re-dispatching on the output mode. Under [`PrepareMode::Cached`],
    /// each **distinct** area fingerprint is compiled once per batch and
    /// the compiled form is shared across workers *and* shards; the
    /// batch-wide hit/miss counters land in the per-area stats exactly
    /// as in [`AreaQueryEngine::execute_batch`].
    ///
    /// # Panics
    ///
    /// As [`ShardedAreaQueryEngine::execute`].
    pub fn execute_batch<A: QueryArea + Sync>(
        &self,
        spec: &QuerySpec,
        areas: &[A],
        threads: usize,
    ) -> Vec<ShardedQueryOutput> {
        if spec.method.is_auto() {
            return self.execute_batch_auto(spec, areas, threads);
        }
        dispatch_sink(
            spec.output,
            ShardBatchRun {
                eng: self,
                spec,
                areas,
                threads,
            },
        )
    }

    /// The batched planned path: every area's plan is resolved **up
    /// front** against the planner's pre-batch calibration — plans never
    /// depend on worker interleaving — then the resolved explicit
    /// queries run on a work-stealing pool at per-area granularity and
    /// each output carries its plan. Observations feed the calibration
    /// back in area order after the batch, so the whole call is
    /// deterministic for a fixed engine and area list.
    fn execute_batch_auto<A: QueryArea + Sync>(
        &self,
        spec: &QuerySpec,
        areas: &[A],
        threads: usize,
    ) -> Vec<ShardedQueryOutput> {
        let plans: Vec<(QuerySpec, ExecutionPlan, usize)> = {
            let planner = self.planner.lock().expect("planner mutex poisoned");
            areas
                .iter()
                .map(|area| {
                    let features = self.plan_features(area, 0);
                    let (resolved, plan) = planner.resolve(spec, &features);
                    (resolved, plan, features.vertices)
                })
                .collect()
        };
        let run_one = |i: usize| -> ShardedQueryOutput {
            let mut out = self.execute(&plans[i].0, &areas[i]);
            out.stats.plan = Some(plans[i].1);
            out
        };
        let mut slots: Vec<Option<ShardedQueryOutput>> = Vec::new();
        slots.resize_with(areas.len(), || None);
        if threads <= 1 || areas.len() <= 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run_one(i));
            }
        } else {
            let next = ClaimCounter::new();
            let workers = threads.min(areas.len());
            scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let run_one = &run_one;
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            loop {
                                let i = next.claim();
                                if i >= areas.len() {
                                    break;
                                }
                                done.push((i, run_one(i)));
                            }
                            done
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, o) in h.join().expect("planned batch worker does not panic") {
                        slots[i] = Some(o);
                    }
                }
            });
        }
        let outs: Vec<ShardedQueryOutput> = slots
            .into_iter()
            .map(|s| s.expect("every area ran exactly once"))
            .collect();
        for (out, (_, plan, vertices)) in outs.iter().zip(&plans) {
            self.observe_auto(plan, &out.stats, *vertices);
        }
        outs
    }
}

/// The sequential sharded execution path as a sink visitor.
struct ShardRun<'r, A: ?Sized> {
    eng: &'r ShardedAreaQueryEngine,
    spec: &'r QuerySpec,
    area: &'r A,
}

impl<A: QueryArea + ?Sized> SinkVisitor for ShardRun<'_, A> {
    type Out = ShardedQueryOutput;

    fn visit<K: EngineSink + DynamicSink>(self, kind: K) -> ShardedQueryOutput {
        let mut out = ShardedQueryOutput::default();
        let mut acc = ResultSink::<u32>::start(&kind);
        let mut breakdown = Vec::new();
        self.eng.run_shards_sink(
            self.spec,
            self.area,
            &kind,
            &mut acc,
            &Some,
            &mut out.stats,
            Some(&mut breakdown),
        );
        out.breakdown = breakdown;
        kind.fold_sharded(acc, &mut out);
        out.stats.result_size = out.count;
        out
    }

    fn classify(self) -> ShardedQueryOutput {
        // vaq-lint: allow(panic-hygiene) -- documented unsupported-mode
        // contract: classification is per-diagram, and the message points
        // the caller at the right engine.
        panic!("point classification is per-diagram and is not supported on the sharded engine");
    }
}

/// The batched sharded execution path as a sink visitor: `(area, shard)`
/// work items on a shared work-stealing index, one sink partial per item,
/// merged per area in ascending shard order.
struct ShardBatchRun<'r, A> {
    eng: &'r ShardedAreaQueryEngine,
    spec: &'r QuerySpec,
    areas: &'r [A],
    threads: usize,
}

impl<A: QueryArea + Sync> SinkVisitor for ShardBatchRun<'_, A> {
    type Out = Vec<ShardedQueryOutput>;

    fn visit<K: EngineSink + DynamicSink>(self, kind: K) -> Vec<ShardedQueryOutput> {
        let ShardBatchRun {
            eng,
            spec,
            areas,
            threads,
        } = self;
        let shared = prepare_batch_shared(spec, areas);
        let raw_spec = spec.prepare(PrepareMode::Raw);

        // Prune: the work list holds only surviving (area, shard) pairs,
        // area-major so each area's items form one contiguous range.
        let mut work: Vec<(u32, u32)> = Vec::new();
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(areas.len());
        let mut pruned: Vec<usize> = Vec::with_capacity(areas.len());
        for area in areas {
            let mbr = area.mbr();
            let start = work.len();
            let mut misses = 0usize;
            for (si, shard) in eng.shards.iter().enumerate() {
                if prune_shard(spec, shard, &mbr, area) {
                    misses += 1;
                } else {
                    work.push((ranges.len() as u32, si as u32));
                }
            }
            ranges.push((start, work.len()));
            pruned.push(misses);
        }

        // One (area, shard) work item producing its own sink partial and
        // per-shard stats; `scratch` is the worker's lazily created
        // per-shard scratch.
        let run_one = |&(ai, si): &(u32, u32),
                       scratch: &mut Vec<Option<QueryScratch>>|
         -> (<K as ResultSink<u32>>::Partial, QueryStats) {
            let shard = &eng.shards[si as usize];
            let s = scratch[si as usize].get_or_insert_with(|| shard.engine.new_scratch());
            let mut st = QueryStats::default();
            let mut part = ResultSink::<u32>::start(&kind);
            let shard_map = |local: u32| Some(shard.global[local as usize]);
            match shared
                .as_ref()
                .and_then(|sh| sh.resolved[ai as usize].as_deref())
            {
                Some(prep) => shard.engine.run_sink(
                    &raw_spec,
                    prep,
                    Some(s),
                    &kind,
                    &mut part,
                    &shard_map,
                    &mut st,
                ),
                None => shard.engine.run_sink(
                    &raw_spec,
                    &areas[ai as usize],
                    Some(s),
                    &kind,
                    &mut part,
                    &shard_map,
                    &mut st,
                ),
            }
            st.result_size = ResultSink::<u32>::result_len(&kind, &part);
            (part, st)
        };

        let mut slots: Vec<Option<(<K as ResultSink<u32>>::Partial, QueryStats)>> = Vec::new();
        slots.resize_with(work.len(), || None);
        if threads <= 1 || work.len() <= 1 {
            let mut scratch: Vec<Option<QueryScratch>> =
                (0..eng.shards.len()).map(|_| None).collect();
            for (w, item) in work.iter().enumerate() {
                slots[w] = Some(run_one(item, &mut scratch));
            }
        } else {
            let next = ClaimCounter::new();
            let workers = threads.min(work.len());
            scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let work = &work;
                        let run_one = &run_one;
                        scope.spawn(move || {
                            let mut scratch: Vec<Option<QueryScratch>> =
                                (0..eng.shards.len()).map(|_| None).collect();
                            let mut done = Vec::new();
                            loop {
                                let w = next.claim();
                                let Some(item) = work.get(w) else { break };
                                done.push((w, run_one(item, &mut scratch)));
                            }
                            done
                        })
                    })
                    .collect();
                for h in handles {
                    for (w, o) in h.join().expect("sharded batch worker does not panic") {
                        slots[w] = Some(o);
                    }
                }
            });
        }

        // Merge each area's shard partials back to one output, in
        // ascending shard order (the work list was built that way), so
        // the aggregate is deterministic whatever the worker interleave.
        ranges
            .iter()
            .enumerate()
            .map(|(ai, &(start, end))| {
                let mut out = ShardedQueryOutput {
                    stats: QueryStats {
                        shards_pruned: pruned[ai],
                        ..QueryStats::default()
                    },
                    ..ShardedQueryOutput::default()
                };
                let mut acc = ResultSink::<u32>::start(&kind);
                for w in start..end {
                    let si = work[w].1 as usize;
                    let (part, st) = slots[w].take().expect("every work item ran exactly once");
                    out.stats.shards_visited += 1;
                    ResultSink::<u32>::merge(&kind, &mut acc, part);
                    out.stats.absorb_shard(&st);
                    out.breakdown.push(ShardBreakdown {
                        shard: si,
                        stats: st,
                    });
                }
                kind.fold_sharded(acc, &mut out);
                out.stats.result_size = out.count;
                out.stats.prepared_cache = shared
                    .as_ref()
                    .map_or(CacheCounters::default(), |sh| sh.counters[ai]);
                out
            })
            .collect()
    }

    fn classify(self) -> Vec<ShardedQueryOutput> {
        // vaq-lint: allow(panic-hygiene) -- documented unsupported-mode
        // contract, as in the single-area sink visitor above.
        panic!("point classification is per-diagram and is not supported on the sharded engine");
    }
}

/// One shard's delta buffer: inserts routed here, plus the tight MBR of
/// the buffered points (the buffer's own pruning key — delta points are
/// *not* bounded by the shard's base MBR).
#[derive(Clone, Debug)]
struct DeltaBucket {
    points: Vec<(u64, Point)>,
    mbr: Rect,
    /// How many buffered points are tombstoned (dead but not yet
    /// physically removed). Drives the purge heuristic.
    dead: usize,
}

impl DeltaBucket {
    fn new() -> DeltaBucket {
        DeltaBucket {
            points: Vec::new(),
            mbr: Rect::EMPTY,
            dead: 0,
        }
    }

    /// Physically removes tombstoned points and recomputes the tight MBR
    /// over the survivors. Without this, a bucket of mostly-dead points
    /// is re-scanned (and skipped point by point) on every query, and
    /// its stale MBR keeps it un-prunable long after the points it was
    /// stretched over are gone. The purged ids' tombstones are retired
    /// in the same pass (a purged insert never reaches the base, so its
    /// tombstone has nothing left to mask).
    fn purge(&mut self, tombstones: &mut HashSet<u64>) {
        self.points.retain(|(id, _)| !tombstones.remove(id));
        self.mbr = Rect::from_points(self.points.iter().map(|&(_, p)| p));
        self.dead = 0;
    }
}

/// The sharded base + delta pattern: a [`ShardedAreaQueryEngine`] base,
/// **shard-local** delta buffers (inserts routed to the nearest shard
/// MBR and pruned at query time by the buffer's own MBR), a tombstone
/// set, and compaction that rebuilds the sharded base in parallel.
/// External ids are stable across compaction, exactly as in
/// [`crate::dynamic::DynamicAreaQueryEngine`].
pub struct ShardedDynamicAreaQueryEngine {
    base: ShardedAreaQueryEngine,
    /// Stable external id per global base index (ascending — compaction
    /// rebuilds in id order, so binary search works).
    base_ids: Vec<u64>,
    /// One delta buffer per shard (a single buffer when the base is
    /// empty and there are no shards yet).
    deltas: Vec<DeltaBucket>,
    /// External ids deleted since the last compaction (base or delta).
    tombstones: HashSet<u64>,
    /// Next external id to hand out.
    next_id: u64,
}

impl ShardedDynamicAreaQueryEngine {
    /// Builds over an initial point set, partitioned into (at most)
    /// `shards` shards; ids `0..n as u64` are assigned in input order.
    pub fn new(points: &[Point], shards: usize) -> ShardedDynamicAreaQueryEngine {
        let base = ShardedAreaQueryEngine::build(points, shards);
        let buckets = base.shard_count().max(1);
        ShardedDynamicAreaQueryEngine {
            base_ids: (0..points.len() as u64).collect(),
            next_id: points.len() as u64,
            deltas: vec![DeltaBucket::new(); buckets],
            tombstones: HashSet::new(),
            base,
        }
    }

    /// Number of live points (base + deltas − tombstones).
    pub fn len(&self) -> usize {
        self.base_ids.len() + self.delta_len() - self.tombstones.len()
    }

    /// `true` when no live points remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points buffered across all shard-local deltas.
    pub fn delta_len(&self) -> usize {
        self.deltas.iter().map(|b| b.points.len()).sum()
    }

    /// The sharded base currently serving queries.
    pub fn base(&self) -> &ShardedAreaQueryEngine {
        &self.base
    }

    /// Inserts a point, returning its stable id. The point joins the
    /// delta buffer of the shard whose MBR is nearest (spatial locality:
    /// a query pruned down to a few shards scans only those buffers).
    pub fn insert(&mut self, p: Point) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let bucket = self
            .base
            .shards
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.mbr.min_dist_sq(p).total_cmp(&b.mbr.min_dist_sq(p)))
            .map_or(0, |(si, _)| si);
        self.deltas[bucket].points.push((id, p));
        self.deltas[bucket].mbr.include(p);
        id
    }

    /// Deletes the point with external id `id`. Returns `false` when the
    /// id is unknown or already deleted.
    ///
    /// Deleted *delta* points are tombstoned first; once at least half
    /// of a bucket is dead the bucket is physically purged and its MBR
    /// recomputed over the survivors, so queries regain both the
    /// skip-free scan and the pruning power of a tight bounding box
    /// without waiting for full compaction.
    pub fn remove(&mut self, id: u64) -> bool {
        if self.tombstones.contains(&id) {
            return false;
        }
        if self.base_ids.binary_search(&id).is_ok() {
            self.tombstones.insert(id);
            return true;
        }
        let Some(bucket) = self
            .deltas
            .iter_mut()
            .find(|b| b.points.iter().any(|&(d, _)| d == id))
        else {
            return false;
        };
        self.tombstones.insert(id);
        bucket.dead += 1;
        if should_purge_delta(bucket.points.len(), bucket.dead) {
            bucket.purge(&mut self.tombstones);
        }
        true
    }

    /// Answers the area query with the paper-default [`QuerySpec`];
    /// returns stable external ids, ascending.
    pub fn query<A: QueryArea + ?Sized>(&self, area: &A) -> Vec<u64> {
        self.execute(&QuerySpec::new(), area).ids
    }

    /// Executes `spec` through the sharded funnel: the MBR-pruned base
    /// shards and the delta buckets whose own MBR intersects the area
    /// all **emit into the spec's result sink** in external-id space,
    /// tombstones filtered *before* the sink (so a bounded sink like
    /// `OutputMode::TopKNearest` never wastes a slot on a dead point).
    /// Stats aggregate the base shards (visited/pruned counters
    /// included) and the delta scan ([`QueryStats::delta_scanned`]).
    /// Delta-buffered points have no stored payload records until
    /// compaction, so the materialising sink reads records for base
    /// points only.
    ///
    /// # Panics
    ///
    /// Panics for `OutputMode::Classify`, as
    /// [`ShardedAreaQueryEngine::execute`] does.
    pub fn execute<A: QueryArea + ?Sized>(&self, spec: &QuerySpec, area: &A) -> DynamicQueryResult {
        if spec.method.is_auto() {
            let dead: usize = self.deltas.iter().map(|b| b.dead).sum();
            let (resolved, plan, vertices) =
                self.base.resolve_auto(spec, area, self.delta_len() - dead);
            let mut out = self.execute(&resolved, area);
            out.stats.plan = Some(plan);
            self.base.observe_auto(&plan, &out.stats, vertices);
            return out;
        }
        dispatch_sink(
            spec.output,
            ShardedDynamicRun {
                eng: self,
                spec,
                area,
            },
        )
    }

    /// The live overlay size (see
    /// [`crate::dynamic::DynamicAreaQueryEngine::overlay_len`] — the
    /// same cancellation rule for tombstoned delta points applies).
    pub fn overlay_len(&self) -> usize {
        let dead_delta: usize = self.deltas.iter().map(|b| b.dead).sum();
        debug_assert_eq!(
            dead_delta,
            self.deltas
                .iter()
                .flat_map(|b| &b.points)
                .filter(|(id, _)| self.tombstones.contains(id))
                .count(),
            "per-bucket dead counters track the tombstoned delta entries"
        );
        (self.delta_len() - dead_delta) + (self.tombstones.len() - dead_delta)
    }

    /// Compacts when the live overlay exceeds [`DEFAULT_COMPACT_RATIO`]
    /// of the base. Returns `true` if a rebuild happened.
    pub fn maybe_compact(&mut self) -> bool {
        if (self.overlay_len() as f64)
            <= (self.base_ids.len().max(16) as f64) * DEFAULT_COMPACT_RATIO
        {
            return false;
        }
        self.compact();
        true
    }

    /// Folds deltas and tombstones into a freshly partitioned, freshly
    /// built sharded base (parallel per-shard builds). Ids survive.
    pub fn compact(&mut self) {
        let base_pts = self.base.points_in_input_order();
        let mut ids = Vec::with_capacity(self.len());
        let mut pts = Vec::with_capacity(self.len());
        for (g, &id) in self.base_ids.iter().enumerate() {
            if !self.tombstones.contains(&id) {
                ids.push(id);
                pts.push(base_pts[g]);
            }
        }
        for bucket in &self.deltas {
            for &(id, p) in &bucket.points {
                if !self.tombstones.contains(&id) {
                    ids.push(id);
                    pts.push(p);
                }
            }
        }
        // Rebuild in id order so `base_ids` stays sorted for remove()'s
        // binary search.
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_unstable_by_key(|&i| ids[i]);
        self.base_ids = order.iter().map(|&i| ids[i]).collect();
        let pts: Vec<Point> = order.iter().map(|&i| pts[i]).collect();
        self.base = ShardedAreaQueryEngine::build(&pts, self.base.target_shards);
        self.deltas = vec![DeltaBucket::new(); self.base.shard_count().max(1)];
        self.tombstones.clear();
    }
}

/// The sharded dynamic execution path as a sink visitor: base shards
/// through the sharded emission core (tombstones filtered, global
/// indices translated to external ids before the sink), then the
/// MBR-surviving delta buckets scanned into the same partial.
struct ShardedDynamicRun<'r, A: ?Sized> {
    eng: &'r ShardedDynamicAreaQueryEngine,
    spec: &'r QuerySpec,
    area: &'r A,
}

impl<A: QueryArea + ?Sized> SinkVisitor for ShardedDynamicRun<'_, A> {
    type Out = DynamicQueryResult;

    fn visit<K: EngineSink + DynamicSink>(self, kind: K) -> DynamicQueryResult {
        let eng = self.eng;
        let area = self.area;
        let mut stats = QueryStats::default();
        let mut partial = ResultSink::<u64>::start(&kind);
        let map = |g: u32| {
            let id = eng.base_ids[g as usize];
            (!eng.tombstones.contains(&id)).then_some(id)
        };
        eng.base
            .run_shards_sink(self.spec, area, &kind, &mut partial, &map, &mut stats, None);
        let area_mbr = area.mbr();
        let delta_predicates = AreaQueryEngine::sample_predicates(|| {
            for bucket in &eng.deltas {
                if bucket.points.is_empty() || !bucket.mbr.intersects(&area_mbr) {
                    continue;
                }
                for &(id, p) in &bucket.points {
                    if eng.tombstones.contains(&id) {
                        continue;
                    }
                    stats.delta_scanned += 1;
                    stats.candidates += 1;
                    stats.containment_tests += 1;
                    if area.contains(p) {
                        stats.accepted += 1;
                        kind.emit(
                            &mut partial,
                            &Emit {
                                id,
                                local: 0,
                                point: p,
                                records: None,
                            },
                            &mut stats,
                        );
                    }
                }
            }
        });
        stats.predicates.absorb(delta_predicates);
        stats.result_size = ResultSink::<u64>::result_len(&kind, &partial);
        let mut out = DynamicQueryResult {
            ids: Vec::new(),
            neighbors: Vec::new(),
            stats,
        };
        kind.finish_dynamic(partial, &mut out);
        out
    }

    fn classify(self) -> DynamicQueryResult {
        // vaq-lint: allow(panic-hygiene) -- documented unsupported-mode
        // contract, as in the sink visitors above.
        panic!("point classification is per-diagram and is not supported on the sharded engine");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AreaQueryEngine;
    use crate::query::{OutputMode, QueryMethod};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::Polygon;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(vec![
            p(cx - half, cy - half),
            p(cx + half, cy - half),
            p(cx + half, cy + half),
            p(cx - half, cy + half),
        ])
        .unwrap()
    }

    #[test]
    fn partition_is_balanced_tight_and_covers() {
        let pts = uniform(1000, 3);
        for shards in [1usize, 2, 3, 5, 8, 13] {
            let parts = partition(&pts, shards);
            assert_eq!(parts.len(), shards);
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, pts.len(), "partition covers every point");
            let mut seen = vec![false; pts.len()];
            for part in &parts {
                for &g in part {
                    assert!(!seen[g as usize], "partition is disjoint");
                    seen[g as usize] = true;
                }
            }
            let (min, max) = parts
                .iter()
                .map(Vec::len)
                .fold((usize::MAX, 0), |(lo, hi), n| (lo.min(n), hi.max(n)));
            assert!(
                max - min <= 1 + pts.len() / (4 * shards),
                "balanced: min {min}, max {max} across {shards} shards"
            );
        }
        // Determinism.
        assert_eq!(partition(&pts, 7), partition(&pts, 7));
    }

    #[test]
    fn small_and_empty_point_sets() {
        assert_eq!(partition(&[], 4).len(), 0);
        let engine = ShardedAreaQueryEngine::build(&[], 4);
        assert!(engine.is_empty());
        assert_eq!(engine.shard_count(), 0);
        let out = engine.execute(&QuerySpec::new(), &square(0.5, 0.5, 0.3));
        assert_eq!(out.count, 0);
        assert!(out.indices.is_empty());

        // More shards than points: one shard per point, queries still work.
        let pts = uniform(3, 9);
        let engine = ShardedAreaQueryEngine::build(&pts, 64);
        assert_eq!(engine.shard_count(), 3);
        let whole = square(0.5, 0.5, 0.6);
        let out = engine.execute(&QuerySpec::new(), &whole);
        assert_eq!(out.indices, vec![0, 1, 2]);
    }

    #[test]
    fn sharded_matches_unsharded_across_methods_and_threads() {
        let pts = uniform(1200, 41);
        let single = AreaQueryEngine::build(&pts);
        let areas: Vec<Polygon> = (0..8)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(500 + i);
                square(
                    0.2 + 0.6 * rng.gen::<f64>(),
                    0.2 + 0.6 * rng.gen::<f64>(),
                    0.05 + 0.2 * rng.gen::<f64>(),
                )
            })
            .collect();
        for shards in [1usize, 2, 4, 7] {
            let sharded = ShardedAreaQueryEngine::build(&pts, shards);
            assert_eq!(sharded.len(), pts.len());
            for area in &areas {
                let want = single.execute(&QuerySpec::new(), area);
                let want_sorted = want.result().unwrap().sorted_indices();
                for method in [
                    QueryMethod::Voronoi,
                    QueryMethod::Traditional,
                    QueryMethod::BruteForce,
                ] {
                    let spec = QuerySpec::new().method(method);
                    let got = sharded.execute(&spec, area);
                    assert_eq!(got.indices, want_sorted, "{method:?} shards={shards}");
                    assert_eq!(got.count, want_sorted.len());
                    assert_eq!(got.stats.result_size, want_sorted.len());
                    assert_eq!(
                        got.stats.shards_visited + got.stats.shards_pruned,
                        sharded.shard_count(),
                        "every shard is visited or pruned"
                    );
                    let counted = sharded.execute(&spec.output(OutputMode::Count), area);
                    assert_eq!(counted.count, want_sorted.len(), "{method:?} count");
                }
            }
            // Batch path, all thread counts, matches the single path.
            let single_outs = sharded.execute_batch(&QuerySpec::new(), &areas, 1);
            for threads in [1usize, 2, 4, 16] {
                let outs = sharded.execute_batch(&QuerySpec::new(), &areas, threads);
                for (i, (a, b)) in outs.iter().zip(&single_outs).enumerate() {
                    assert_eq!(a.indices, b.indices, "area {i} threads={threads}");
                    assert_eq!(a.count, b.count);
                    assert_eq!(a.stats, b.stats, "area {i} threads={threads}");
                    assert_eq!(a.breakdown.len(), b.breakdown.len());
                    for (x, y) in a.breakdown.iter().zip(&b.breakdown) {
                        assert_eq!(x.shard, y.shard);
                        assert_eq!(x.stats, y.stats, "area {i} threads={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn small_areas_prune_shards() {
        let pts = uniform(2000, 51);
        let sharded = ShardedAreaQueryEngine::build(&pts, 8);
        assert_eq!(sharded.shard_count(), 8);
        // A tiny corner area cannot straddle every kd cell.
        let out = sharded.execute(&QuerySpec::new(), &square(0.05, 0.05, 0.04));
        assert!(
            out.stats.shards_pruned >= 4,
            "tiny corner area should prune most of 8 shards, pruned {}",
            out.stats.shards_pruned
        );
        assert_eq!(out.stats.shards_visited + out.stats.shards_pruned, 8);
        assert_eq!(out.breakdown.len(), out.stats.shards_visited);
        // The whole space visits every shard.
        let out = sharded.execute(&QuerySpec::new(), &square(0.5, 0.5, 0.6));
        assert_eq!(out.stats.shards_visited, 8);
        assert_eq!(out.count, pts.len());
    }

    #[test]
    fn cached_batches_share_one_preparation_across_shards() {
        let pts = uniform(1500, 61);
        let sharded = ShardedAreaQueryEngine::build(&pts, 4);
        let area = square(0.5, 0.5, 0.3);
        let areas = vec![area.clone(), area.clone(), area];
        let spec = QuerySpec::new().prepare(PrepareMode::Cached);
        for threads in [1usize, 3] {
            let outs = sharded.execute_batch(&spec, &areas, threads);
            assert_eq!(
                outs[0].stats.prepared_cache,
                CacheCounters { hits: 0, misses: 1 },
                "one preparation for the whole batch (threads={threads})"
            );
            for out in &outs[1..] {
                assert_eq!(
                    out.stats.prepared_cache,
                    CacheCounters { hits: 1, misses: 0 }
                );
            }
            let raw = sharded.execute(&QuerySpec::new(), &areas[0]);
            for out in &outs {
                assert_eq!(out.indices, raw.indices);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not supported on the sharded engine")]
    fn classify_is_rejected() {
        let engine = ShardedAreaQueryEngine::build(&uniform(50, 71), 2);
        engine.execute(
            &QuerySpec::new().output(OutputMode::Classify),
            &square(0.5, 0.5, 0.2),
        );
    }

    #[test]
    fn dynamic_sharded_roundtrip_with_compaction() {
        let initial = uniform(400, 81);
        let mut eng = ShardedDynamicAreaQueryEngine::new(&initial, 4);
        let mut live: Vec<(u64, Point)> = initial
            .iter()
            .enumerate()
            .map(|(i, &q)| (i as u64, q))
            .collect();
        let oracle = |live: &Vec<(u64, Point)>, area: &Polygon| -> Vec<u64> {
            let mut v: Vec<u64> = live
                .iter()
                .filter(|(_, q)| area.contains(*q))
                .map(|&(id, _)| id)
                .collect();
            v.sort_unstable();
            v
        };
        let area = square(0.5, 0.5, 0.28);
        assert_eq!(eng.query(&area), oracle(&live, &area));

        // Inserts, including points outside every shard MBR.
        let mut rng = StdRng::seed_from_u64(82);
        for _ in 0..120 {
            let q = p(rng.gen::<f64>() * 1.4 - 0.2, rng.gen::<f64>() * 1.4 - 0.2);
            let id = eng.insert(q);
            live.push((id, q));
        }
        // Removals across base and delta.
        for id in [1u64, 57, 200, 399, 410, 455] {
            assert!(eng.remove(id));
            live.retain(|&(i, _)| i != id);
        }
        assert!(!eng.remove(1), "double delete");
        assert!(!eng.remove(99_999), "unknown id");
        let wide = square(0.5, 0.5, 0.75);
        assert_eq!(eng.query(&area), oracle(&live, &area));
        assert_eq!(eng.query(&wide), oracle(&live, &wide));
        assert_eq!(eng.len(), live.len());

        // Compaction preserves answers and ids, and resets the overlay:
        // 118 live delta + 4 base tombstones (two removals hit delta
        // points and cancel out) exceeds 400 × 0.25.
        assert_eq!(eng.overlay_len(), 122);
        assert!(eng.maybe_compact());
        assert_eq!(eng.delta_len(), 0);
        assert_eq!(eng.overlay_len(), 0);
        assert_eq!(eng.query(&area), oracle(&live, &area));
        let victim = oracle(&live, &area)[0];
        assert!(eng.remove(victim));
        live.retain(|&(i, _)| i != victim);
        assert_eq!(eng.query(&area), oracle(&live, &area));
    }

    #[test]
    fn dynamic_sharded_starts_empty_and_grows() {
        let mut eng = ShardedDynamicAreaQueryEngine::new(&[], 4);
        assert!(eng.is_empty());
        assert_eq!(eng.base().shard_count(), 0);
        let area = square(0.5, 0.5, 0.4);
        assert!(eng.query(&area).is_empty());
        let a = eng.insert(p(0.5, 0.5));
        let b = eng.insert(p(0.95, 0.95));
        assert_eq!(eng.query(&area), vec![a]);
        eng.compact();
        assert!(eng.base().shard_count() >= 1);
        assert_eq!(eng.query(&area), vec![a]);
        assert!(eng.remove(b));
        assert_eq!(eng.len(), 1);
    }

    /// Regression for the tombstone-purge satellite: a delta bucket whose
    /// MBR was stretched by points that are all deleted again must stop
    /// being scanned — `delta_scanned` drops back to zero for queries
    /// over the abandoned area, and the surviving points keep answering.
    #[test]
    fn heavy_delete_workload_purges_buckets_and_restores_pruning() {
        let mut eng = ShardedDynamicAreaQueryEngine::new(&uniform(400, 101), 4);
        // Live points near the top-right corner and a doomed cluster far
        // outside the data extent: both route to the same (top-right)
        // shard bucket, so the cluster stretches that bucket's MBR.
        let mut rng = StdRng::seed_from_u64(102);
        let live: Vec<u64> = (0..30)
            .map(|_| {
                eng.insert(p(
                    0.92 + rng.gen::<f64>() * 0.06,
                    0.92 + rng.gen::<f64>() * 0.06,
                ))
            })
            .collect();
        let doomed: Vec<u64> = (0..30)
            .map(|_| eng.insert(p(5.0 + rng.gen::<f64>(), 5.0 + rng.gen::<f64>())))
            .collect();
        let far = square(5.5, 5.5, 1.0);
        let before = eng.execute(&QuerySpec::new(), &far);
        assert_eq!(before.ids, doomed, "the cluster answers before deletion");
        assert_eq!(
            before.stats.delta_scanned, 60,
            "the stretched bucket scans live and doomed points alike"
        );

        for &id in &doomed {
            assert!(eng.remove(id));
        }
        // The bucket crossed the dead-fraction threshold: physically
        // purged, MBR recomputed over the survivors.
        assert_eq!(eng.delta_len(), 30, "dead points are gone from the buffer");
        assert_eq!(eng.overlay_len(), 30, "their tombstones are retired too");
        let after = eng.execute(&QuerySpec::new(), &far);
        assert!(after.ids.is_empty());
        assert_eq!(
            after.stats.delta_scanned, 0,
            "the re-tightened bucket MBR prunes the far query outright"
        );

        // Survivors still answer, and ids stay consistent.
        let near = square(0.95, 0.95, 0.04);
        let mut got = eng.execute(&QuerySpec::new(), &near).ids;
        let mut want: Vec<u64> = live.clone();
        want.sort_unstable();
        got.sort_unstable();
        for id in &want {
            assert!(got.contains(id), "live id {id} must still answer");
        }
        assert!(!eng.remove(doomed[0]), "purged id cannot be removed again");
        assert_eq!(eng.len(), 430);
    }

    /// Buckets below the purge minimum keep their tombstones (rewriting
    /// a tiny buffer costs more than scanning it); the overlay
    /// accounting and compaction stay consistent either way.
    #[test]
    fn small_buckets_skip_the_purge_but_stay_consistent() {
        let mut eng = ShardedDynamicAreaQueryEngine::new(&uniform(200, 111), 2);
        // 20 inserts split across 2 buckets: each bucket stays below
        // DELTA_PURGE_MIN, so even deleting most of them purges nothing.
        let ids: Vec<u64> = uniform(20, 112).iter().map(|&q| eng.insert(q)).collect();
        for &id in &ids[..16] {
            assert!(eng.remove(id));
        }
        assert_eq!(eng.delta_len(), 20, "tiny buckets are never rewritten");
        assert_eq!(eng.overlay_len(), 4);
        assert_eq!(eng.len(), 204);
        let area = square(0.5, 0.5, 0.6);
        let out = eng.execute(&QuerySpec::new(), &area);
        assert_eq!(out.stats.delta_scanned, 4, "dead entries are skipped");
        eng.compact();
        assert_eq!(eng.len(), 204);
        assert_eq!(eng.delta_len(), 0);
        assert_eq!(eng.overlay_len(), 0);
    }

    #[test]
    fn dynamic_sharded_surfaces_delta_scan_stats() {
        let mut eng = ShardedDynamicAreaQueryEngine::new(&uniform(300, 91), 3);
        for &q in &uniform(25, 92) {
            eng.insert(q);
        }
        let area = square(0.5, 0.5, 0.55);
        let out = eng.execute(&QuerySpec::new(), &area);
        assert_eq!(out.stats.delta_scanned, 25, "wide area scans every bucket");
        assert_eq!(out.stats.result_size, out.ids.len());
        assert!(out.stats.shards_visited >= 1);
        // A far-away area prunes every delta bucket too.
        let far = square(5.0, 5.0, 0.1);
        let out = eng.execute(&QuerySpec::new(), &far);
        assert_eq!(out.stats.delta_scanned, 0);
        assert!(out.ids.is_empty());
    }
}
