//! The traditional filter–refine area query the paper compares against.
//!
//! **Filter**: a window query on a spatial index with the MBR of the query
//! area produces the candidate set — every point inside the MBR.
//! **Refine**: each candidate is validated with an exact point-in-polygon
//! test. When the area is irregular (`area(A) ≪ area(MBR(A))`), most
//! candidates fail validation; that waste is what the paper's method
//! removes.

use crate::area::QueryArea;
use crate::payload::RecordStore;
use crate::stats::QueryStats;
use vaq_geom::Point;
use vaq_kdtree::KdTree;
use vaq_quadtree::Quadtree;
use vaq_rtree::RTree;

/// Which index serves the filter step's window query.
///
/// The paper uses the R-tree; kd-tree and PR-quadtree variants are
/// ablations showing the comparison is index-agnostic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FilterIndex {
    /// R-tree window query (the paper's baseline).
    #[default]
    RTree,
    /// Balanced kd-tree window query.
    KdTree,
    /// PR-quadtree window query.
    Quadtree,
}

/// Runs the traditional filter–refine query using the R-tree.
///
/// Returns the matching point ids (input indices, in index-traversal
/// order) and fills `stats`. When `records` is present, every validation
/// first materialises the candidate's payload record (the paper's
/// "geometric information loading"); see [`RecordStore`].
pub fn traditional_area_query<A: QueryArea + ?Sized>(
    rtree: &RTree,
    points: &[Point],
    area: &A,
    records: Option<&RecordStore>,
    stats: &mut QueryStats,
) -> Vec<u32> {
    let mbr = area.mbr();
    let candidates = rtree.window_with_stats(&mbr, &mut stats.index);
    refine(candidates, points, area, records, stats)
}

/// As [`traditional_area_query`] with the kd-tree filter.
pub fn traditional_area_query_kdtree<A: QueryArea + ?Sized>(
    kdtree: &KdTree,
    points: &[Point],
    area: &A,
    records: Option<&RecordStore>,
    stats: &mut QueryStats,
) -> Vec<u32> {
    let candidates = kdtree.window(&area.mbr());
    refine(candidates, points, area, records, stats)
}

/// As [`traditional_area_query`] with the PR-quadtree filter.
pub fn traditional_area_query_quadtree<A: QueryArea + ?Sized>(
    quadtree: &Quadtree,
    points: &[Point],
    area: &A,
    records: Option<&RecordStore>,
    stats: &mut QueryStats,
) -> Vec<u32> {
    let candidates = quadtree.window(&area.mbr());
    refine(candidates, points, area, records, stats)
}

/// The refine step shared by every filter index and result sink:
/// materialise the candidate's record (when simulated), validate with the
/// exact containment test, and hand accepted ids — plus the run's stats,
/// for sinks that fold checksums — to `on_hit`. The caller sets
/// `stats.result_size`.
pub(crate) fn refine_each<A: QueryArea + ?Sized>(
    candidates: Vec<u32>,
    points: &[Point],
    area: &A,
    records: Option<&RecordStore>,
    stats: &mut QueryStats,
    mut on_hit: impl FnMut(u32, &mut QueryStats),
) {
    stats.candidates += candidates.len();
    for id in candidates {
        stats.containment_tests += 1;
        if let Some(rs) = records {
            stats.payload_checksum = stats.payload_checksum.wrapping_add(rs.read(id));
        }
        if area.contains(points[id as usize]) {
            stats.accepted += 1;
            on_hit(id, stats);
        }
    }
}

/// Collecting refine: validates every candidate into a result vector.
pub(crate) fn refine<A: QueryArea + ?Sized>(
    candidates: Vec<u32>,
    points: &[Point],
    area: &A,
    records: Option<&RecordStore>,
    stats: &mut QueryStats,
) -> Vec<u32> {
    let mut result = Vec::with_capacity(candidates.len() / 2);
    refine_each(candidates, points, area, records, stats, |id, _| {
        result.push(id)
    });
    stats.result_size = result.len();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::Polygon;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn brute(pts: &[Point], area: &Polygon) -> Vec<u32> {
        pts.iter()
            .enumerate()
            .filter(|(_, q)| area.contains(**q))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn triangle_area() -> Polygon {
        Polygon::new(vec![p(0.2, 0.2), p(0.8, 0.25), p(0.4, 0.9)]).unwrap()
    }

    #[test]
    fn all_three_filters_match_brute_force() {
        let pts = uniform(500, 61);
        let area = triangle_area();
        let want = brute(&pts, &area);

        let rt = RTree::bulk_load(&pts);
        let mut s1 = QueryStats::default();
        let mut got = traditional_area_query(&rt, &pts, &area, None, &mut s1);
        got.sort_unstable();
        assert_eq!(got, want);

        let kt = KdTree::build(&pts);
        let mut s2 = QueryStats::default();
        let mut got = traditional_area_query_kdtree(&kt, &pts, &area, None, &mut s2);
        got.sort_unstable();
        assert_eq!(got, want);

        let qt = Quadtree::bulk_load(&pts);
        let mut s3 = QueryStats::default();
        let mut got = traditional_area_query_quadtree(&qt, &pts, &area, None, &mut s3);
        got.sort_unstable();
        assert_eq!(got, want);

        // All filters produce the same candidate set: the points in the MBR.
        let in_mbr = pts
            .iter()
            .filter(|q| area.mbr().contains_point(**q))
            .count();
        for s in [&s1, &s2, &s3] {
            assert_eq!(s.candidates, in_mbr);
            assert_eq!(s.accepted, want.len());
            assert_eq!(s.containment_tests, in_mbr as u64);
            assert_eq!(s.redundant_validations(), in_mbr - want.len());
        }
        // Only the R-tree path reports index accesses.
        assert!(s1.index.nodes() > 0);
    }

    #[test]
    fn triangle_wastes_at_least_half_of_its_mbr() {
        // The paper's motivating observation: a triangle's area is at most
        // half of its MBR's, so about half the candidates are redundant.
        let pts = uniform(4000, 62);
        let area = triangle_area();
        let rt = RTree::bulk_load(&pts);
        let mut s = QueryStats::default();
        traditional_area_query(&rt, &pts, &area, None, &mut s);
        assert!(
            s.redundant_validations() * 3 >= s.candidates,
            "expected heavy waste, got {}/{} redundant",
            s.redundant_validations(),
            s.candidates
        );
    }

    #[test]
    fn empty_point_set() {
        let pts: Vec<Point> = Vec::new();
        let rt = RTree::bulk_load(&pts);
        let mut s = QueryStats::default();
        let got = traditional_area_query(&rt, &pts, &triangle_area(), None, &mut s);
        assert!(got.is_empty());
        assert_eq!(s.candidates, 0);
    }

    #[test]
    fn area_outside_data_extent() {
        let pts = uniform(100, 63);
        let area = Polygon::new(vec![p(5.0, 5.0), p(6.0, 5.0), p(5.5, 6.0)]).unwrap();
        let rt = RTree::bulk_load(&pts);
        let mut s = QueryStats::default();
        let got = traditional_area_query(&rt, &pts, &area, None, &mut s);
        assert!(got.is_empty());
        assert_eq!(s.candidates, 0, "MBR misses all data");
    }

    #[test]
    fn boundary_points_are_included() {
        // The area query is over the *closed* region.
        let pts = vec![p(0.5, 0.5), p(0.2, 0.2), p(0.8, 0.25)];
        let area = triangle_area(); // two of the points are its vertices
        let rt = RTree::bulk_load(&pts);
        let mut s = QueryStats::default();
        let mut got = traditional_area_query(&rt, &pts, &area, None, &mut s);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }
}
