//! The unified query surface: [`QuerySpec`] describes *what* to run,
//! [`QuerySession`] owns the per-caller state needed to run it.
//!
//! The paper's evaluation is a grid over independent axes — query method,
//! filter index, seed index, expansion policy, prepared-or-raw area, and
//! output shape. Instead of one entrypoint per grid cell, [`QuerySpec`] is
//! a plain-data point in that grid and every query funnels through
//! [`QuerySession::execute`]:
//!
//! ```
//! use vaq_core::{OutputMode, QuerySpec, SeedIndex};
//! use vaq_geom::{Point, Polygon};
//!
//! let pts: Vec<Point> = (0..100)
//!     .map(|i| Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0))
//!     .collect();
//! let engine = vaq_core::AreaQueryEngine::build(&pts);
//! let area = Polygon::new(vec![
//!     Point::new(0.05, 0.05),
//!     Point::new(0.85, 0.10),
//!     Point::new(0.40, 0.85),
//! ]).unwrap();
//!
//! let mut session = engine.session();
//! let spec = QuerySpec::voronoi().seed(SeedIndex::RTree);
//! let collected = session.execute(&spec, &area);
//! let counted = session.execute(&spec.output(OutputMode::Count), &area);
//! assert_eq!(collected.count(), counted.count());
//! ```
//!
//! The session's two pieces of mutable state are exactly the two things a
//! caller wants amortised across queries:
//!
//! * the reusable [`QueryScratch`] (epoch-stamped visited set — avoids an
//!   `O(n)` allocation per Voronoi query), created lazily on the first
//!   query that needs it;
//! * a bounded LRU **prepared-area cache** keyed by a content hash of the
//!   area's vertices ([`AreaFingerprint`]). Dashboard-style workloads ask
//!   the same handful of areas over and over; with
//!   [`PrepareMode::Cached`] the expensive query-compilation (slab index +
//!   edge grid, see `vaq_geom::prepared`) happens once per distinct area
//!   and every repeat is served from the cache. Hit/miss counters are
//!   surfaced per query in [`QueryStats::prepared_cache`] and as session
//!   totals in [`QuerySession::cache_counters`].
//!
//! Results are **bit-identical across the `prepare` axis** — the prepared
//! layer is exact, so `Raw`, `PrepareOnce` and `Cached` return the same
//! indices and the same work counters. Only the two *how*-was-it-computed
//! fields differ: the cache counters, and the exact-predicate pipeline
//! split ([`QueryStats::predicates`] — prepared areas evaluate far fewer
//! edges per primitive).

use crate::area::{AreaFingerprint, QueryArea};
use crate::classify::classify_points;
use crate::engine::{AreaQueryEngine, QueryResult, SeedIndex};
use crate::plan::{PlanFeatures, PlannedPath, Planner};
use crate::scratch::QueryScratch;
use crate::sink::{
    dispatch_sink, DynamicSink, Emit, EngineSink, Neighbor, ResultSink, SinkId, SinkVisitor,
};
use crate::stats::{CacheCounters, QueryStats};
use crate::traditional::{refine_each, FilterIndex};
use crate::voronoi_query::{
    arbitrary_position_in, voronoi_area_query_with_boundary, ExpansionPolicy,
};
use crate::PointClass;
use std::sync::Arc;
use vaq_geom::Point;

/// Which algorithm answers the query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueryMethod {
    /// Traditional filter–refine: window query with `MBR(A)` on the
    /// [`FilterIndex`], exact validation of every candidate (the paper's
    /// baseline).
    Traditional,
    /// The paper's Algorithm 1: seed with the nearest site to a point of
    /// `A`, BFS over Voronoi neighbours (the default, as in the paper).
    #[default]
    Voronoi,
    /// Linear scan validating every point — the `O(n·|A|)` oracle, now a
    /// first-class method so differential tests sweep it through the same
    /// funnel.
    BruteForce,
}

/// The method axis of a [`QuerySpec`]: either a fixed [`QueryMethod`],
/// or [`MethodChoice::Auto`] — let the engine's cost-model planner
/// ([`Planner`]) pick the method, expansion policy,
/// prepare mode and shard pruning per query. The chosen strategy is
/// recorded in [`QueryStats::plan`].
///
/// `MethodChoice` compares equal to a bare [`QueryMethod`]
/// (`spec.method == QueryMethod::Voronoi`), and
/// [`QuerySpec::method`](QuerySpec::method) accepts either type, so
/// existing fixed-method code reads unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodChoice {
    /// Defer the choice to the planner at execution time.
    Auto,
    /// Run exactly this method.
    Fixed(QueryMethod),
}

impl Default for MethodChoice {
    fn default() -> MethodChoice {
        MethodChoice::Fixed(QueryMethod::default())
    }
}

impl From<QueryMethod> for MethodChoice {
    fn from(method: QueryMethod) -> MethodChoice {
        MethodChoice::Fixed(method)
    }
}

impl PartialEq<QueryMethod> for MethodChoice {
    fn eq(&self, other: &QueryMethod) -> bool {
        matches!(self, MethodChoice::Fixed(m) if m == other)
    }
}

impl MethodChoice {
    /// `true` for [`MethodChoice::Auto`].
    pub fn is_auto(&self) -> bool {
        matches!(self, MethodChoice::Auto)
    }

    /// The fixed method, if any.
    pub fn fixed(&self) -> Option<QueryMethod> {
        match self {
            MethodChoice::Auto => None,
            MethodChoice::Fixed(m) => Some(*m),
        }
    }

    /// The fixed method; every execution path resolves `Auto` through the
    /// planner before dispatch, so reaching `Auto` here is a bug.
    ///
    /// # Panics
    ///
    /// Panics on [`MethodChoice::Auto`].
    pub(crate) fn expect_fixed(&self) -> QueryMethod {
        self.fixed()
            .expect("MethodChoice::Auto is resolved by the planner before dispatch")
    }
}

/// How a sharded engine decides which shards to visit (beyond the
/// always-on rule that a shard whose MBR misses the area's MBR is
/// skipped). Pruning never changes results — a pruned shard contributes
/// nothing by construction — it only trades a per-shard geometry test
/// against whole per-shard queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPruning {
    /// Rectangle-only: visit every shard whose MBR intersects the area's
    /// MBR (the default, and the only test cheap enough for trivial
    /// areas).
    #[default]
    Mbr,
    /// Exact-geometry: after the MBR test, additionally test the area's
    /// exact boundary against the shard's MBR rectangle and skip shards
    /// the area misses. Pays off for thin or diagonal areas whose MBR
    /// sweeps over shards the polygon itself never touches.
    Exact,
}

/// Whether (and how) the query area is query-compiled before execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrepareMode {
    /// Use the area exactly as passed (the default).
    #[default]
    Raw,
    /// Prepare the area for this one query, then drop the compiled form
    /// (the `voronoi_prepared` behaviour). Areas without a prepared form
    /// ([`QueryArea::prepare`] returns `None`) pass through unchanged.
    PrepareOnce,
    /// Look the area up in the session's LRU cache by content fingerprint,
    /// preparing (and inserting) on miss. Repeated areas skip preparation
    /// entirely. Areas without a fingerprint pass through unchanged.
    Cached,
}

/// The shape of the answer — which [`ResultSink`] accepted candidates
/// are emitted into (except [`OutputMode::Classify`], which is
/// whole-diagram, not per-candidate).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum OutputMode {
    /// Materialise the matching point indices (the default).
    #[default]
    Collect,
    /// Count matching points without materialising them (`SELECT COUNT(*)`
    /// — candidate generation and validation are the entire cost). Counts
    /// run the same seeded, stats-tracked path as [`OutputMode::Collect`]:
    /// every counter, including `result_size`, is bit-identical.
    Count,
    /// Classify every canonical vertex as internal / boundary / external
    /// (the paper's Section III). Classification is defined on the Voronoi
    /// diagram and ignores `method`, `filter` and `seed`.
    Classify,
    /// kNN-within-area: of the points inside the area, the `k` nearest to
    /// `origin` by exact squared Euclidean distance, ties broken by
    /// ascending index ([`TopKNearestSink`](crate::TopKNearestSink) — a
    /// bounded max-heap merged across shards and delta buffers).
    TopKNearest {
        /// How many nearest matches to keep (`0` keeps nothing).
        k: usize,
        /// The focus point distances are measured from (need not lie
        /// inside the area).
        origin: Point,
    },
    /// Collect the matching indices *and* materialise each accepted
    /// candidate's payload record through the engine's
    /// [`RecordStore`](crate::RecordStore), folding record checksums into
    /// [`QueryStats::payload_checksum`]
    /// ([`MaterializeSink`](crate::MaterializeSink)). Engines without a
    /// record store degrade to collection.
    Materialize,
}

/// A plain-data description of one area query: a point in the evaluation
/// grid `method × filter × seed × policy × prepare × output`.
///
/// The default (`QuerySpec::new()`) is the paper's setup: Voronoi method,
/// R-tree filter and seed, segment expansion, raw area, collected output.
/// Builder-style setters return `self`, so specs compose inline;
/// the fields are public, so struct-update syntax works too.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QuerySpec {
    /// Which algorithm runs — a fixed method, or [`MethodChoice::Auto`]
    /// to let the planner decide per query.
    pub method: MethodChoice,
    /// Index serving the traditional filter step (ignored by the other
    /// methods).
    pub filter: FilterIndex,
    /// Index serving the Voronoi method's seed NN query (ignored by the
    /// other methods).
    pub seed: SeedIndex,
    /// Expansion test of the Voronoi BFS (ignored by the other methods).
    pub policy: ExpansionPolicy,
    /// Whether the area is query-compiled first.
    pub prepare: PrepareMode,
    /// How sharded engines prune shards (ignored by unsharded engines).
    pub shard_pruning: ShardPruning,
    /// The shape of the answer.
    pub output: OutputMode,
}

impl QuerySpec {
    /// The paper's default configuration (equivalent to `default()`).
    pub fn new() -> QuerySpec {
        QuerySpec::default()
    }

    /// A spec for the Voronoi method with the paper's defaults.
    pub fn voronoi() -> QuerySpec {
        QuerySpec::default()
    }

    /// A spec for the traditional filter–refine method.
    pub fn traditional() -> QuerySpec {
        QuerySpec {
            method: MethodChoice::Fixed(QueryMethod::Traditional),
            ..QuerySpec::default()
        }
    }

    /// A spec for the brute-force oracle.
    pub fn brute_force() -> QuerySpec {
        QuerySpec {
            method: MethodChoice::Fixed(QueryMethod::BruteForce),
            ..QuerySpec::default()
        }
    }

    /// A spec that defers method, expansion policy, prepare mode and
    /// shard pruning to the engine's cost-model planner
    /// ([`Planner`]); the chosen strategy is recorded in
    /// [`QueryStats::plan`]. Filter, seed and output are taken from the
    /// spec as usual.
    pub fn auto() -> QuerySpec {
        QuerySpec {
            method: MethodChoice::Auto,
            ..QuerySpec::default()
        }
    }

    /// Sets the query method (accepts a [`QueryMethod`] or a
    /// [`MethodChoice`]).
    pub fn method(mut self, method: impl Into<MethodChoice>) -> QuerySpec {
        self.method = method.into();
        self
    }

    /// Sets the traditional filter index.
    pub fn filter(mut self, filter: FilterIndex) -> QuerySpec {
        self.filter = filter;
        self
    }

    /// Sets the Voronoi seed index.
    pub fn seed(mut self, seed: SeedIndex) -> QuerySpec {
        self.seed = seed;
        self
    }

    /// Sets the Voronoi expansion policy.
    pub fn policy(mut self, policy: ExpansionPolicy) -> QuerySpec {
        self.policy = policy;
        self
    }

    /// Sets the prepare mode.
    pub fn prepare(mut self, prepare: PrepareMode) -> QuerySpec {
        self.prepare = prepare;
        self
    }

    /// Sets the shard-pruning rule (meaningful on sharded engines).
    pub fn shard_pruning(mut self, shard_pruning: ShardPruning) -> QuerySpec {
        self.shard_pruning = shard_pruning;
        self
    }

    /// Sets the output mode.
    pub fn output(mut self, output: OutputMode) -> QuerySpec {
        self.output = output;
        self
    }
}

/// The answer to one executed [`QuerySpec`] — one variant per
/// [`OutputMode`].
#[derive(Clone, Debug)]
pub enum QueryOutput {
    /// `OutputMode::Collect`: the matching indices plus statistics.
    Collected(QueryResult),
    /// `OutputMode::Count`: the number of matching points plus statistics.
    Counted {
        /// Matching points (duplicates counted with multiplicity).
        count: usize,
        /// Work counters — bit-identical to the collecting run's.
        stats: QueryStats,
    },
    /// `OutputMode::Classify`: per-canonical-vertex classes. Empty for an
    /// empty engine.
    Classified {
        /// One class per canonical vertex of the triangulation.
        classes: Vec<PointClass>,
        /// Statistics (classification populates only the cache counters).
        stats: QueryStats,
    },
    /// `OutputMode::TopKNearest`: the k nearest matches to the origin,
    /// ascending by `(dist_sq, index)`, plus statistics.
    TopK {
        /// The kept neighbours (at most `k`).
        neighbors: Vec<Neighbor>,
        /// Work counters — `result_size` is the number of neighbours
        /// returned.
        stats: QueryStats,
    },
    /// `OutputMode::Materialize`: the matching indices with every
    /// accepted record materialised — `stats.payload_checksum` folds the
    /// validation reads *and* the per-result materialisation reads.
    Materialized(QueryResult),
}

impl QueryOutput {
    /// The query's work counters, whatever the output shape.
    pub fn stats(&self) -> &QueryStats {
        match self {
            QueryOutput::Collected(r) | QueryOutput::Materialized(r) => &r.stats,
            QueryOutput::Counted { stats, .. } => stats,
            QueryOutput::Classified { stats, .. } => stats,
            QueryOutput::TopK { stats, .. } => stats,
        }
    }

    pub(crate) fn stats_mut(&mut self) -> &mut QueryStats {
        match self {
            QueryOutput::Collected(r) | QueryOutput::Materialized(r) => &mut r.stats,
            QueryOutput::Counted { stats, .. } => stats,
            QueryOutput::Classified { stats, .. } => stats,
            QueryOutput::TopK { stats, .. } => stats,
        }
    }

    /// Number of matching points: the result length, the count, the
    /// number of `Internal` vertices, or the number of neighbours kept.
    pub fn count(&self) -> usize {
        match self {
            QueryOutput::Collected(r) | QueryOutput::Materialized(r) => r.indices.len(),
            QueryOutput::Counted { count, .. } => *count,
            QueryOutput::Classified { classes, .. } => classes
                .iter()
                .filter(|&&c| c == PointClass::Internal)
                .count(),
            QueryOutput::TopK { neighbors, .. } => neighbors.len(),
        }
    }

    /// The collected result, when this was a `Collect` or `Materialize`
    /// query (both carry the matching indices).
    pub fn result(&self) -> Option<&QueryResult> {
        match self {
            QueryOutput::Collected(r) | QueryOutput::Materialized(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the output into the collected result, when this was a
    /// `Collect` or `Materialize` query.
    pub fn into_result(self) -> Option<QueryResult> {
        match self {
            QueryOutput::Collected(r) | QueryOutput::Materialized(r) => Some(r),
            _ => None,
        }
    }

    /// The per-vertex classes, when this was a `Classify` query.
    pub fn classes(&self) -> Option<&[PointClass]> {
        match self {
            QueryOutput::Classified { classes, .. } => Some(classes),
            _ => None,
        }
    }

    /// The kept neighbours, when this was a `TopKNearest` query.
    pub fn neighbors(&self) -> Option<&[Neighbor]> {
        match self {
            QueryOutput::TopK { neighbors, .. } => Some(neighbors),
            _ => None,
        }
    }
}

/// Default number of distinct prepared areas a session keeps alive.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Bounded LRU of prepared areas, keyed by content fingerprint. Lookup is
/// a linear scan over at most `capacity` entries comparing the 64-bit hash
/// first — negligible next to a single prepared `contains` call.
///
/// Entries are `Arc` (not `Rc`) so the cache — and everything owning one:
/// `QuerySession`, `DynamicAreaQueryEngine` — stays `Send` and can move
/// to a worker thread.
struct PreparedAreaCache {
    capacity: usize,
    /// Front = most recently used.
    entries: Vec<(AreaFingerprint, Arc<dyn QueryArea + Send + Sync>)>,
}

impl PreparedAreaCache {
    fn new(capacity: usize) -> PreparedAreaCache {
        PreparedAreaCache {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Returns the cached prepared area for `fp`, preparing via `build` on
    /// miss. `delta` records the hit or miss. Returns `None` when `build`
    /// yields `None` (the area has no prepared form).
    fn get_or_prepare(
        &mut self,
        fp: AreaFingerprint,
        build: impl FnOnce() -> Option<Box<dyn QueryArea + Send + Sync>>,
        delta: &mut CacheCounters,
    ) -> Option<Arc<dyn QueryArea + Send + Sync>> {
        if let Some(pos) = self
            .entries
            .iter()
            .position(|(k, _)| k.hash() == fp.hash() && *k == fp)
        {
            delta.hits += 1;
            let entry = self.entries.remove(pos);
            let area = Arc::clone(&entry.1);
            self.entries.insert(0, entry);
            return Some(area);
        }
        let prepared: Arc<dyn QueryArea + Send + Sync> = Arc::from(build()?);
        delta.misses += 1;
        if self.capacity > 0 {
            self.entries.insert(0, (fp, Arc::clone(&prepared)));
            self.entries.truncate(self.capacity);
        }
        Some(prepared)
    }

    /// `true` when `fp` is resident (a peek: no LRU reordering, no
    /// counter traffic). The planner's cache signal.
    fn contains(&self, fp: &AreaFingerprint) -> bool {
        self.entries
            .iter()
            .any(|(k, _)| k.hash() == fp.hash() && k == fp)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The owned half of a session: the reusable scratch, the prepared-area
/// cache, and the lifetime cache totals. Split out of [`QuerySession`] so
/// a long-lived owner of an engine (the dynamic overlay, which rebuilds
/// its base on compaction and therefore cannot hold a borrowing session)
/// can keep the state across queries and run the same funnel.
pub(crate) struct SessionState {
    scratch: Option<QueryScratch>,
    cache: PreparedAreaCache,
    cache_totals: CacheCounters,
    /// The cost-model planner resolving [`MethodChoice::Auto`] specs;
    /// calibration accumulates across the session's planned queries.
    pub(crate) planner: Planner,
}

impl SessionState {
    /// Fresh state with a prepared-area cache of `capacity` entries.
    pub(crate) fn new(capacity: usize) -> SessionState {
        SessionState {
            scratch: None,
            cache: PreparedAreaCache::new(capacity),
            cache_totals: CacheCounters::default(),
            planner: Planner::default(),
        }
    }

    /// Assembles the planner's O(1) feature vector for `area` on this
    /// engine: density-grid candidate estimate, vertex count, prepared
    /// cache residency, and whether the area's MBR stays inside the data
    /// bounding box.
    pub(crate) fn plan_features<A: QueryArea + ?Sized>(
        &self,
        engine: &AreaQueryEngine,
        area: &A,
        path: PlannedPath,
        delta_len: usize,
    ) -> PlanFeatures {
        let mbr = area.mbr();
        let fp = area.fingerprint();
        PlanFeatures {
            len: engine.len(),
            est_candidates: engine.density_map().estimate_count(&mbr),
            vertices: area.complexity(),
            cached: fp.as_ref().is_some_and(|fp| self.cache.contains(fp)),
            cacheable: fp.is_some(),
            delta_len,
            shards: 0,
            in_hull: engine.data_bounds().contains_rect(&mbr),
            diagram: engine.diagram_kind(),
            path,
        }
    }

    /// Resolves a [`MethodChoice::Auto`] spec through the planner, runs
    /// the concrete spec, records the
    /// [`ExecutionPlan`](crate::ExecutionPlan) in the output's stats,
    /// and feeds the observed work-unit cost back into the planner's
    /// calibration.
    pub(crate) fn execute_auto<A: QueryArea + ?Sized>(
        &mut self,
        engine: &AreaQueryEngine,
        spec: &QuerySpec,
        area: &A,
        path: PlannedPath,
    ) -> QueryOutput {
        let features = self.plan_features(engine, area, path, 0);
        let (resolved, plan) = self.planner.resolve(spec, &features);
        let mut out = self.execute(engine, &resolved, area);
        out.stats_mut().plan = Some(plan);
        self.planner.observe(
            &plan,
            Planner::observed_cost(out.stats(), features.vertices),
        );
        out
    }

    /// Drops the scratch (call after the underlying engine is rebuilt;
    /// the next query re-creates it at the new size).
    pub(crate) fn reset_scratch(&mut self) {
        self.scratch = None;
    }

    /// Lifetime prepared-area cache totals.
    pub(crate) fn cache_totals(&self) -> CacheCounters {
        self.cache_totals
    }

    /// Number of prepared areas currently cached.
    pub(crate) fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The session funnel body: resolves the prepared-area cache, lends
    /// the scratch, and dispatches into the engine.
    pub(crate) fn execute<A: QueryArea + ?Sized>(
        &mut self,
        engine: &AreaQueryEngine,
        spec: &QuerySpec,
        area: &A,
    ) -> QueryOutput {
        if spec.method.is_auto() {
            return self.execute_auto(engine, spec, area, PlannedPath::Plain);
        }
        let mut delta = CacheCounters::default();
        let cached: Option<Arc<dyn QueryArea + Send + Sync>> = match spec.prepare {
            PrepareMode::Cached if self.cache.capacity > 0 => area
                .fingerprint()
                .and_then(|fp| self.cache.get_or_prepare(fp, || area.prepare(), &mut delta)),
            _ => None,
        };
        let scratch = if spec.method == QueryMethod::Voronoi && spec.output != OutputMode::Classify
        {
            if self.scratch.is_none() {
                self.scratch = Some(engine.new_scratch());
            }
            self.scratch.as_mut()
        } else {
            None
        };
        let mut out = match &cached {
            Some(prepared) => {
                // The cache already resolved preparation; run raw on the
                // compiled form.
                let raw_spec = spec.prepare(PrepareMode::Raw);
                engine.run_spec(&raw_spec, prepared.as_ref(), scratch)
            }
            None => engine.run_spec(spec, area, scratch),
        };
        out.stats_mut().prepared_cache = delta;
        self.cache_totals.absorb(delta);
        out
    }

    /// The session funnel body over the generic emission core: resolves
    /// the prepared-area cache, lends the scratch, and runs
    /// [`AreaQueryEngine::run_sink_spec`]. Used by the dynamic engines,
    /// which emit external ids and filter tombstones through `map`.
    /// Sets `stats.prepared_cache` to this query's cache traffic.
    #[allow(clippy::too_many_arguments)] // the emission core's explicit inputs
    pub(crate) fn execute_sink<A, I, K, F>(
        &mut self,
        engine: &AreaQueryEngine,
        spec: &QuerySpec,
        area: &A,
        kind: &K,
        partial: &mut K::Partial,
        map: &F,
        stats: &mut QueryStats,
    ) where
        A: QueryArea + ?Sized,
        I: SinkId,
        K: ResultSink<I>,
        F: Fn(u32) -> Option<I>,
    {
        let mut delta = CacheCounters::default();
        let cached: Option<Arc<dyn QueryArea + Send + Sync>> = match spec.prepare {
            PrepareMode::Cached if self.cache.capacity > 0 => area
                .fingerprint()
                .and_then(|fp| self.cache.get_or_prepare(fp, || area.prepare(), &mut delta)),
            _ => None,
        };
        let scratch = if spec.method == QueryMethod::Voronoi {
            if self.scratch.is_none() {
                self.scratch = Some(engine.new_scratch());
            }
            self.scratch.as_mut()
        } else {
            None
        };
        match &cached {
            Some(prepared) => {
                // The cache already resolved preparation; run raw on the
                // compiled form.
                let raw_spec = spec.prepare(PrepareMode::Raw);
                engine.run_sink(
                    &raw_spec,
                    prepared.as_ref(),
                    scratch,
                    kind,
                    partial,
                    map,
                    stats,
                );
            }
            None => engine.run_sink_spec(spec, area, scratch, kind, partial, map, stats),
        }
        stats.prepared_cache = delta;
        self.cache_totals.absorb(delta);
    }
}

/// Per-caller query state over a borrowed engine: the reusable scratch and
/// the prepared-area cache. Cheap to create; create one per thread (the
/// engine itself is `Sync`, the session is not).
///
/// See the [module docs](self) for the full story and an example.
pub struct QuerySession<'e> {
    engine: &'e AreaQueryEngine,
    state: SessionState,
}

impl<'e> QuerySession<'e> {
    /// Starts a session with the default prepared-area cache capacity
    /// ([`DEFAULT_CACHE_CAPACITY`]).
    pub fn new(engine: &'e AreaQueryEngine) -> QuerySession<'e> {
        QuerySession::with_cache_capacity(engine, DEFAULT_CACHE_CAPACITY)
    }

    /// Starts a session keeping at most `capacity` prepared areas alive
    /// (`0` disables caching: every `Cached` query degrades to
    /// `PrepareOnce`).
    pub fn with_cache_capacity(engine: &'e AreaQueryEngine, capacity: usize) -> QuerySession<'e> {
        QuerySession {
            engine,
            state: SessionState::new(capacity),
        }
    }

    /// The engine this session queries.
    pub fn engine(&self) -> &'e AreaQueryEngine {
        self.engine
    }

    /// Session-lifetime prepared-area cache totals.
    pub fn cache_counters(&self) -> CacheCounters {
        self.state.cache_totals()
    }

    /// Number of prepared areas currently cached.
    pub fn cache_len(&self) -> usize {
        self.state.cache_len()
    }

    /// Executes `spec` over `area` — the single funnel every query runs
    /// through.
    ///
    /// # Panics
    ///
    /// Panics if the spec requests an index the engine did not build
    /// (see `EngineBuilder::with_kdtree` / `with_quadtree`).
    pub fn execute<A: QueryArea + ?Sized>(&mut self, spec: &QuerySpec, area: &A) -> QueryOutput {
        self.state.execute(self.engine, spec, area)
    }
}

impl AreaQueryEngine {
    /// Starts a [`QuerySession`] over this engine — the intended way to
    /// run queries (reusable scratch, prepared-area cache).
    pub fn session(&self) -> QuerySession<'_> {
        QuerySession::new(self)
    }

    /// One-shot convenience: executes `spec` over `area` in a transient
    /// session. For repeated queries prefer [`AreaQueryEngine::session`]
    /// (scratch reuse, prepared-area caching across calls).
    pub fn execute<A: QueryArea + ?Sized>(&self, spec: &QuerySpec, area: &A) -> QueryOutput {
        self.session().execute(spec, area)
    }

    /// The engine-level execution core shared by [`QuerySession::execute`]
    /// and every legacy entrypoint. Handles `Raw`/`PrepareOnce`
    /// (`Cached` without a session degrades to `PrepareOnce`); `scratch`
    /// is used only by the Voronoi method and allocated fresh when absent.
    pub(crate) fn run_spec<A: QueryArea + ?Sized>(
        &self,
        spec: &QuerySpec,
        area: &A,
        scratch: Option<&mut QueryScratch>,
    ) -> QueryOutput {
        if !matches!(spec.prepare, PrepareMode::Raw) {
            if let Some(prepared) = area.prepare() {
                let raw_spec = spec.prepare(PrepareMode::Raw);
                return self.run_raw(&raw_spec, prepared.as_ref(), scratch);
            }
        }
        self.run_raw(spec, area, scratch)
    }

    /// Runs the (already resolved) area through the sink dispatched from
    /// `spec.output`: the `QueryOutput`-shaped entry over the generic
    /// emission core ([`AreaQueryEngine::run_sink`]).
    fn run_raw<A: QueryArea + ?Sized>(
        &self,
        spec: &QuerySpec,
        area: &A,
        scratch: Option<&mut QueryScratch>,
    ) -> QueryOutput {
        dispatch_sink(
            spec.output,
            EngineRun {
                engine: self,
                spec,
                area,
                scratch,
            },
        )
    }

    /// Samples the thread's predicate totals around `body` and returns
    /// the filter/fallback delta it produced — the delta-scan
    /// counterpart of the sampling `run_sink` does for engine queries.
    pub(crate) fn sample_predicates(body: impl FnOnce()) -> crate::stats::PredicateCounters {
        let before = vaq_geom::predicate_totals();
        body();
        let after = vaq_geom::predicate_totals();
        crate::stats::PredicateCounters {
            filter_fast_accepts: after.filter_fast_accepts - before.filter_fast_accepts,
            exact_fallbacks: after.exact_fallbacks - before.exact_fallbacks,
        }
    }

    /// As [`AreaQueryEngine::run_sink`], resolving `PrepareOnce`/`Cached`
    /// preparation first (`Cached` without a session cache degrades to
    /// `PrepareOnce`, exactly as [`AreaQueryEngine::run_spec`] does).
    #[allow(clippy::too_many_arguments)] // the emission core's explicit inputs
    pub(crate) fn run_sink_spec<A, I, K, F>(
        &self,
        spec: &QuerySpec,
        area: &A,
        scratch: Option<&mut QueryScratch>,
        kind: &K,
        partial: &mut K::Partial,
        map: &F,
        stats: &mut QueryStats,
    ) where
        A: QueryArea + ?Sized,
        I: SinkId,
        K: ResultSink<I>,
        F: Fn(u32) -> Option<I>,
    {
        if !matches!(spec.prepare, PrepareMode::Raw) {
            if let Some(prepared) = area.prepare() {
                let raw_spec = spec.prepare(PrepareMode::Raw);
                return self.run_sink(
                    &raw_spec,
                    prepared.as_ref(),
                    scratch,
                    kind,
                    partial,
                    map,
                    stats,
                );
            }
        }
        self.run_sink(spec, area, scratch, kind, partial, map, stats)
    }

    /// The generic emission core behind **every** execution path (single
    /// query, batch worker, shard visit, dynamic base pass): runs
    /// `spec.method` over the area and emits each accepted candidate into
    /// `kind`'s `partial`, with its engine-local index translated through
    /// `map` into the caller's id space (`None` drops the candidate — the
    /// dynamic engines' tombstone filter, applied *before* the sink so a
    /// bounded sink never wastes a slot on a dead point). The thread's
    /// exact-predicate totals are sampled around the run, so
    /// `stats.predicates` reports this query's filter/fallback split (a
    /// query executes on one thread, so the window is exact).
    #[allow(clippy::too_many_arguments)] // the emission core's explicit inputs
    pub(crate) fn run_sink<A, I, K, F>(
        &self,
        spec: &QuerySpec,
        area: &A,
        scratch: Option<&mut QueryScratch>,
        kind: &K,
        partial: &mut K::Partial,
        map: &F,
        stats: &mut QueryStats,
    ) where
        A: QueryArea + ?Sized,
        I: SinkId,
        K: ResultSink<I>,
        F: Fn(u32) -> Option<I>,
    {
        let before = vaq_geom::predicate_totals();
        match spec.method.expect_fixed() {
            QueryMethod::Traditional => {
                self.sink_traditional(spec, area, kind, partial, map, stats)
            }
            QueryMethod::Voronoi => {
                self.sink_voronoi(spec, area, scratch, kind, partial, map, stats);
            }
            QueryMethod::BruteForce => self.sink_brute_force(area, kind, partial, map, stats),
        }
        let after = vaq_geom::predicate_totals();
        stats.predicates.filter_fast_accepts +=
            after.filter_fast_accepts - before.filter_fast_accepts;
        stats.predicates.exact_fallbacks += after.exact_fallbacks - before.exact_fallbacks;
    }

    fn sink_traditional<A, I, K, F>(
        &self,
        spec: &QuerySpec,
        area: &A,
        kind: &K,
        partial: &mut K::Partial,
        map: &F,
        stats: &mut QueryStats,
    ) where
        A: QueryArea + ?Sized,
        I: SinkId,
        K: ResultSink<I>,
        F: Fn(u32) -> Option<I>,
    {
        let mbr = area.mbr();
        let candidates = match spec.filter {
            FilterIndex::RTree => self.rtree.window_with_stats(&mbr, &mut stats.index),
            FilterIndex::KdTree => self
                .kdtree
                .as_ref()
                .expect("kd-tree not built; use EngineBuilder::with_kdtree")
                .window(&mbr),
            FilterIndex::Quadtree => self
                .quadtree
                .as_ref()
                .expect("quadtree not built; use EngineBuilder::with_quadtree")
                .window(&mbr),
        };
        let records = self.records.as_ref();
        refine_each(
            candidates,
            &self.points,
            area,
            records,
            stats,
            |id, stats| {
                if let Some(out) = map(id) {
                    kind.emit(
                        partial,
                        &Emit {
                            id: out,
                            local: id,
                            point: self.points[id as usize],
                            records,
                        },
                        stats,
                    );
                }
            },
        );
    }

    #[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's explicit inputs
    fn sink_voronoi<A, I, K, F>(
        &self,
        spec: &QuerySpec,
        area: &A,
        scratch: Option<&mut QueryScratch>,
        kind: &K,
        partial: &mut K::Partial,
        map: &F,
        stats: &mut QueryStats,
    ) where
        A: QueryArea + ?Sized,
        I: SinkId,
        K: ResultSink<I>,
        F: Fn(u32) -> Option<I>,
    {
        let Some(tri) = self.tri.as_ref() else {
            return;
        };
        let mut owned;
        let scratch = match scratch {
            Some(s) => s,
            None => {
                owned = self.new_scratch();
                &mut owned
            }
        };
        // Line 3–4 of Algorithm 1: seed with NN(P, pA) for an arbitrary
        // position pA inside A.
        let pa = arbitrary_position_in(area);
        let seed = match spec.seed {
            SeedIndex::RTree => {
                let (id, _) = self
                    .rtree
                    .nearest_with_stats(pa, &mut stats.index)
                    .expect("engine is non-empty");
                tri.canonical(id as usize)
            }
            SeedIndex::KdTree => {
                let (id, _) = self
                    .kdtree
                    .as_ref()
                    .expect("kd-tree not built; use EngineBuilder::with_kdtree")
                    .nearest(pa)
                    .expect("engine is non-empty");
                tri.canonical(id as usize)
            }
            SeedIndex::DelaunayWalk => tri.nearest_vertex(pa, None),
        };
        // On a power diagram the R-tree/kd-tree answer the *Euclidean* NN,
        // which may be hidden or may not own the power cell holding `pa`;
        // the BFS invariant (the seed's cell meets the area) needs the
        // true power NN, so descend to it from the index's answer. The
        // walk seed is already the power NN, and on Euclidean diagrams
        // this branch never runs — the seed stays bit-identical.
        let seed = match tri.diagram_kind() {
            vaq_delaunay::DiagramKind::Euclidean => seed,
            vaq_delaunay::DiagramKind::Power => tri.nearest_vertex(pa, Some(seed)),
        };
        stats.seed = Some(seed);
        let window = self.cell_window(area);
        let canonical = voronoi_area_query_with_boundary(
            tri,
            area,
            seed,
            spec.policy,
            &window,
            self.records.as_ref(),
            self.boundary_straddlers.as_deref(),
            scratch,
            stats,
        );
        // Expand canonical vertices back to input indices (duplicates
        // share the canonical vertex's coordinates) and emit each.
        let records = self.records.as_ref();
        for v in canonical {
            let pv = tri.point(v);
            for &i in tri.inputs_of(v) {
                if let Some(out) = map(i) {
                    kind.emit(
                        partial,
                        &Emit {
                            id: out,
                            local: i,
                            point: pv,
                            records,
                        },
                        stats,
                    );
                }
            }
        }
        // Hidden sites (power diagrams only) own no cell and no edges, so
        // the BFS can never reach them — but they are real points of the
        // dataset and must be reported when the area contains them. The
        // engine's hidden-site kd-tree answers the area-MBR window in
        // O(√hidden + hits) instead of rect-scanning every hidden site;
        // the window's closed-rectangle semantics equal the old scan's
        // MBR precheck, and the hits are sorted back into ascending
        // hidden order, so the surviving sites, their emission order and
        // every pre-existing counter are bit-identical to the scan.
        // Survivors go through the same candidate accounting as a BFS
        // visit. `None` on Euclidean diagrams: zero cost there.
        let Some(hidden_index) = self.hidden_index.as_ref() else {
            debug_assert!(tri.hidden_vertices().is_empty());
            return;
        };
        let hidden = tri.hidden_vertices();
        let mut hits = hidden_index.window(&area.mbr());
        hits.sort_unstable();
        stats.hidden_examined += hits.len();
        stats.hidden_pruned += hidden.len() - hits.len();
        for hi in hits {
            let h = hidden[hi as usize];
            stats.candidates += 1;
            stats.containment_tests += 1;
            if let Some(rs) = records {
                // vaq-lint: allow(panic-hygiene) -- every canonical vertex
                // has at least one input point by construction.
                let rep = tri.inputs_of(h)[0];
                stats.payload_checksum = stats.payload_checksum.wrapping_add(rs.read(rep));
            }
            let ph = tri.point(h);
            if area.contains(ph) {
                stats.accepted += 1;
                for &i in tri.inputs_of(h) {
                    if let Some(out) = map(i) {
                        kind.emit(
                            partial,
                            &Emit {
                                id: out,
                                local: i,
                                point: ph,
                                records,
                            },
                            stats,
                        );
                    }
                }
            }
        }
    }

    fn sink_brute_force<A, I, K, F>(
        &self,
        area: &A,
        kind: &K,
        partial: &mut K::Partial,
        map: &F,
        stats: &mut QueryStats,
    ) where
        A: QueryArea + ?Sized,
        I: SinkId,
        K: ResultSink<I>,
        F: Fn(u32) -> Option<I>,
    {
        stats.candidates += self.points.len();
        let records = self.records.as_ref();
        for (i, &p) in self.points.iter().enumerate() {
            stats.containment_tests += 1;
            if let Some(rs) = records {
                stats.payload_checksum = stats.payload_checksum.wrapping_add(rs.read(i as u32));
            }
            if area.contains(p) {
                stats.accepted += 1;
                if let Some(out) = map(i as u32) {
                    kind.emit(
                        partial,
                        &Emit {
                            id: out,
                            local: i as u32,
                            point: p,
                            records,
                        },
                        stats,
                    );
                }
            }
        }
    }
}

/// The single-engine execution path as a sink visitor: one generic run
/// over the emission core, plus the whole-diagram classify branch.
struct EngineRun<'r, A: ?Sized> {
    engine: &'r AreaQueryEngine,
    spec: &'r QuerySpec,
    area: &'r A,
    scratch: Option<&'r mut QueryScratch>,
}

impl<A: QueryArea + ?Sized> SinkVisitor for EngineRun<'_, A> {
    type Out = QueryOutput;

    fn visit<K: EngineSink + DynamicSink>(self, kind: K) -> QueryOutput {
        let mut stats = QueryStats::default();
        let mut partial = ResultSink::<u32>::start(&kind);
        self.engine.run_sink(
            self.spec,
            self.area,
            self.scratch,
            &kind,
            &mut partial,
            &Some,
            &mut stats,
        );
        stats.result_size = ResultSink::<u32>::result_len(&kind, &partial);
        kind.finish_output(partial, stats)
    }

    fn classify(self) -> QueryOutput {
        let Some(tri) = self.engine.tri.as_ref() else {
            return QueryOutput::Classified {
                classes: Vec::new(),
                stats: QueryStats::default(),
            };
        };
        let mut stats = QueryStats::default();
        let mut classes = Vec::new();
        stats.predicates = AreaQueryEngine::sample_predicates(|| {
            let window = self.engine.cell_window(self.area);
            classes = classify_points(tri, self.area, &window);
        });
        QueryOutput::Classified { classes, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::{Point, Polygon, Rect};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn star_polygon(c: Point, r_max: f64, k: usize, seed: u64) -> Polygon {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut angles: Vec<f64> = (0..k)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        angles.sort_by(f64::total_cmp);
        Polygon::new(
            angles
                .iter()
                .map(|&a| {
                    let r = r_max * (0.3 + 0.7 * rng.gen::<f64>());
                    p(c.x + r * a.cos(), c.y + r * a.sin())
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn spec_builder_defaults_match_the_paper() {
        let spec = QuerySpec::new();
        assert_eq!(spec.method, QueryMethod::Voronoi);
        assert_eq!(spec.filter, FilterIndex::RTree);
        assert_eq!(spec.seed, SeedIndex::RTree);
        assert_eq!(spec.policy, ExpansionPolicy::Segment);
        assert_eq!(spec.prepare, PrepareMode::Raw);
        assert_eq!(spec.output, OutputMode::Collect);
        let spec = QuerySpec::traditional()
            .filter(FilterIndex::KdTree)
            .output(OutputMode::Count);
        assert_eq!(spec.method, QueryMethod::Traditional);
        assert_eq!(spec.filter, FilterIndex::KdTree);
        assert_eq!(spec.output, OutputMode::Count);
    }

    #[test]
    fn all_methods_and_outputs_agree() {
        let pts = uniform(500, 11);
        let engine = AreaQueryEngine::build(&pts);
        let mut session = engine.session();
        let area = star_polygon(p(0.5, 0.5), 0.25, 10, 12);
        let want = engine.brute_force(&area);
        let want_sorted = {
            let mut v = want.clone();
            v.sort_unstable();
            v
        };
        for method in [
            QueryMethod::Traditional,
            QueryMethod::Voronoi,
            QueryMethod::BruteForce,
        ] {
            let spec = QuerySpec::new().method(method);
            let collected = session.execute(&spec, &area);
            assert_eq!(
                collected.result().unwrap().sorted_indices(),
                want_sorted,
                "{method:?}"
            );
            let counted = session.execute(&spec.output(OutputMode::Count), &area);
            assert_eq!(counted.count(), want.len(), "{method:?}");
            assert_eq!(
                counted.stats(),
                collected.stats(),
                "count and collect share every counter ({method:?})"
            );
            let classified = session.execute(&spec.output(OutputMode::Classify), &area);
            assert_eq!(classified.count(), want.len(), "{method:?}");
        }
    }

    #[test]
    fn cached_mode_hits_on_repeats_and_matches_raw() {
        let pts = uniform(800, 21);
        let engine = AreaQueryEngine::build(&pts);
        let mut session = engine.session();
        let area = star_polygon(p(0.5, 0.5), 0.25, 24, 22);
        let raw = session.execute(&QuerySpec::voronoi(), &area);
        let spec = QuerySpec::voronoi().prepare(PrepareMode::Cached);
        let first = session.execute(&spec, &area);
        let second = session.execute(&spec, &area);
        assert_eq!(
            first.result().unwrap().indices,
            raw.result().unwrap().indices
        );
        assert_eq!(
            first.stats().prepared_cache,
            CacheCounters { hits: 0, misses: 1 }
        );
        assert_eq!(
            second.stats().prepared_cache,
            CacheCounters { hits: 1, misses: 0 }
        );
        // Everything except the cache counters and the predicate-pipeline
        // split (prepared areas evaluate fewer edges) is bit-identical to
        // raw.
        let mut scrubbed = *second.stats();
        scrubbed.prepared_cache = CacheCounters::default();
        scrubbed.predicates = raw.stats().predicates;
        assert_eq!(scrubbed, *raw.stats());
        assert_eq!(
            session.cache_counters(),
            CacheCounters { hits: 1, misses: 1 }
        );
        assert_eq!(session.cache_len(), 1);
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let pts = uniform(300, 31);
        let engine = AreaQueryEngine::build(&pts);
        let mut session = QuerySession::with_cache_capacity(&engine, 2);
        let spec = QuerySpec::voronoi().prepare(PrepareMode::Cached);
        let areas: Vec<Polygon> = (0..3)
            .map(|i| star_polygon(p(0.5, 0.5), 0.2, 8, 100 + i))
            .collect();
        for a in &areas {
            session.execute(&spec, a);
        }
        assert_eq!(session.cache_len(), 2);
        // areas[0] was evicted: querying it again misses.
        session.execute(&spec, &areas[0]);
        assert_eq!(session.cache_counters().misses, 4);
        // areas[2] is still resident.
        session.execute(&spec, &areas[2]);
        assert_eq!(session.cache_counters().hits, 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let pts = uniform(200, 41);
        let engine = AreaQueryEngine::build(&pts);
        let mut session = QuerySession::with_cache_capacity(&engine, 0);
        let spec = QuerySpec::voronoi().prepare(PrepareMode::Cached);
        let area = star_polygon(p(0.5, 0.5), 0.2, 8, 42);
        let a = session.execute(&spec, &area);
        let b = session.execute(&spec, &area);
        assert_eq!(a.result().unwrap().indices, b.result().unwrap().indices);
        assert_eq!(session.cache_counters(), CacheCounters::default());
        assert_eq!(session.cache_len(), 0);
    }

    #[test]
    fn rect_windows_pass_through_prepare_modes() {
        let pts = uniform(400, 51);
        let engine = AreaQueryEngine::build(&pts);
        let mut session = engine.session();
        let window = Rect::new(p(0.2, 0.2), p(0.6, 0.7));
        let want: Vec<u32> = engine.brute_force(&window);
        for prepare in [
            PrepareMode::Raw,
            PrepareMode::PrepareOnce,
            PrepareMode::Cached,
        ] {
            for method in [QueryMethod::Traditional, QueryMethod::Voronoi] {
                let spec = QuerySpec::new().method(method).prepare(prepare);
                let got = session.execute(&spec, &window);
                assert_eq!(
                    got.result().unwrap().sorted_indices(),
                    want,
                    "{method:?} {prepare:?}"
                );
                // Rects have no prepared form: the cache never engages.
                assert_eq!(got.stats().prepared_cache, CacheCounters::default());
            }
        }
    }

    #[test]
    fn empty_engine_answers_every_output_mode() {
        let engine = AreaQueryEngine::build(&[]);
        let mut session = engine.session();
        let area = star_polygon(p(0.5, 0.5), 0.2, 8, 61);
        for method in [
            QueryMethod::Traditional,
            QueryMethod::Voronoi,
            QueryMethod::BruteForce,
        ] {
            let spec = QuerySpec::new().method(method);
            assert_eq!(session.execute(&spec, &area).count(), 0);
            assert_eq!(
                session
                    .execute(&spec.output(OutputMode::Count), &area)
                    .count(),
                0
            );
            assert!(session
                .execute(&spec.output(OutputMode::Classify), &area)
                .classes()
                .unwrap()
                .is_empty());
        }
    }

    /// Regression: the prepared-area cache must not cost the session (or
    /// the dynamic engine that owns one) its `Send`-ness — both move to
    /// worker threads in serving setups.
    #[test]
    fn sessions_and_dynamic_engines_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<QuerySession<'static>>();
        assert_send::<crate::dynamic::DynamicAreaQueryEngine>();
    }

    #[test]
    fn fingerprints_separate_distinct_areas() {
        let a = star_polygon(p(0.5, 0.5), 0.2, 8, 71);
        let b = star_polygon(p(0.5, 0.5), 0.2, 8, 72);
        assert_eq!(a.fingerprint(), a.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        let r = vaq_geom::Region::from_polygon(a.clone());
        // A hole-free region hashes like its outer polygon — and answers
        // every primitive identically, so sharing a cache slot is sound.
        assert_eq!(a.fingerprint(), r.fingerprint());
    }
}
