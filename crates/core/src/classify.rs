//! Point classification relative to a query area (Section III of the
//! paper, with the obvious typo fixed — the paper's printed definitions of
//! *boundary* and *external* are swapped).
//!
//! * **Internal** — the point is contained in the area.
//! * **Boundary** — the point is outside the area but its Voronoi cell
//!   intersects the area (it "hugs" the boundary).
//! * **External** — the point is outside and its cell misses the area.
//!
//! The paper's Properties 7/8 claim internal and external points are never
//! Voronoi-adjacent. Read literally that is **not true**: when the area is
//! small relative to the local cell size (in the extreme, `A` strictly
//! inside one cell), the single internal point's neighbours all have cells
//! disjoint from `A` and are therefore external. What *does* hold — and
//! what Algorithm 1's correctness actually rests on — is the connectivity
//! lemma: for a connected area `A`, the set `Internal ∪ Boundary` (all
//! points whose cells intersect `A`; internal points qualify because each
//! point lies in its own cell) induces a **connected subgraph** of the
//! Delaunay graph, and it contains the seed. The BFS therefore reaches
//! every internal point without ever expanding from an external one. The
//! tests below verify the connectivity lemma on random inputs, plus the
//! containment consistency of the three classes.

use crate::area::QueryArea;
use crate::voronoi_query::cell_intersects_area;
use vaq_delaunay::{DiagramMetric, Triangulation};
use vaq_geom::Rect;

/// The class of one point relative to a query area.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointClass {
    /// Contained in the (closed) area.
    Internal,
    /// Outside the area, Voronoi cell intersects it.
    Boundary,
    /// Outside the area, Voronoi cell disjoint from it.
    External,
}

/// Classifies every canonical vertex of `tri` relative to `area`.
///
/// `window` clips unbounded cells; it must contain all sites and the area
/// (see `AreaQueryEngine::cell_window`).
///
/// On a power diagram, a *hidden* site (dominated everywhere, owning no
/// cell) classifies as [`PointClass::Internal`] when the area contains its
/// coordinates — matching the query semantics, which still report hidden
/// sites inside the area — and [`PointClass::External`] otherwise (its
/// empty cell can intersect nothing).
pub fn classify_points<M: DiagramMetric, A: QueryArea + ?Sized>(
    tri: &Triangulation<M>,
    area: &A,
    window: &Rect,
) -> Vec<PointClass> {
    (0..tri.vertex_count() as u32)
        .map(|v| {
            if area.contains(tri.point(v)) {
                PointClass::Internal
            } else if cell_intersects_area(tri, v, area, window) {
                PointClass::Boundary
            } else {
                PointClass::External
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use vaq_geom::{Point, Polygon};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn setup(seed: u64, n: usize) -> (Vec<Point>, Triangulation, Polygon, Rect) {
        let pts = uniform(n, seed);
        let tri = Triangulation::new(&pts).unwrap();
        let area = Polygon::new(vec![
            p(0.3, 0.25),
            p(0.75, 0.3),
            p(0.6, 0.55),
            p(0.7, 0.8),
            p(0.35, 0.7),
        ])
        .unwrap();
        let window = Rect::new(p(-2.0, -2.0), p(3.0, 3.0));
        (pts, tri, area, window)
    }

    #[test]
    fn classes_are_consistent_with_containment() {
        let (pts, tri, area, window) = setup(71, 300);
        let classes = classify_points(&tri, &area, &window);
        for (v, class) in classes.iter().enumerate() {
            let inside = area.contains(pts[v]);
            match class {
                PointClass::Internal => assert!(inside),
                PointClass::Boundary | PointClass::External => assert!(!inside),
            }
        }
    }

    /// The connectivity lemma (the sound core of the paper's Properties
    /// 7/8): for a connected area, `Internal ∪ Boundary` induces a
    /// connected subgraph of the Delaunay graph.
    #[test]
    fn internal_and_boundary_points_form_a_connected_subgraph() {
        for seed in [72u64, 73, 74, 75, 76, 77] {
            let (_, tri, area, window) = setup(seed, 250);
            let classes = classify_points(&tri, &area, &window);
            let in_set = |v: u32| classes[v as usize] != PointClass::External;
            let members: Vec<u32> = (0..tri.vertex_count() as u32)
                .filter(|&v| in_set(v))
                .collect();
            if members.is_empty() {
                continue;
            }
            // BFS inside the set from one member must reach all members.
            let mut seen = vec![false; tri.vertex_count()];
            let mut queue = std::collections::VecDeque::from([members[0]]);
            seen[members[0] as usize] = true;
            let mut reached = 0usize;
            while let Some(v) = queue.pop_front() {
                reached += 1;
                for &u in tri.neighbors(v) {
                    if in_set(u) && !seen[u as usize] {
                        seen[u as usize] = true;
                        queue.push_back(u);
                    }
                }
            }
            assert_eq!(
                reached,
                members.len(),
                "internal∪boundary disconnected (seed {seed})"
            );
        }
    }

    /// The paper's Property 7 fails in the extreme case it overlooks: an
    /// area strictly inside one Voronoi cell leaves the single internal
    /// point surrounded by external points. The algorithm still answers
    /// correctly (the seed *is* that point); this test pins the behaviour.
    #[test]
    fn tiny_area_inside_one_cell_breaks_naive_property_7() {
        let pts = vec![
            p(0.5, 0.5),
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
        ];
        let tri = Triangulation::new(&pts).unwrap();
        // A tiny square around the centre point, well inside its cell.
        let area = Polygon::new(vec![
            p(0.49, 0.49),
            p(0.51, 0.49),
            p(0.51, 0.51),
            p(0.49, 0.51),
        ])
        .unwrap();
        let window = Rect::new(p(-2.0, -2.0), p(3.0, 3.0));
        let classes = classify_points(&tri, &area, &window);
        assert_eq!(classes[0], PointClass::Internal);
        for c in &classes[1..] {
            assert_eq!(*c, PointClass::External);
        }
    }

    #[test]
    fn area_covering_all_points_makes_everything_internal() {
        let pts = uniform(50, 78);
        let tri = Triangulation::new(&pts).unwrap();
        let area =
            Polygon::new(vec![p(-1.0, -1.0), p(2.0, -1.0), p(2.0, 2.0), p(-1.0, 2.0)]).unwrap();
        let window = Rect::new(p(-3.0, -3.0), p(4.0, 4.0));
        let classes = classify_points(&tri, &area, &window);
        assert!(classes.iter().all(|&c| c == PointClass::Internal));
    }

    #[test]
    fn distant_area_leaves_most_points_external() {
        let pts = uniform(200, 79);
        let tri = Triangulation::new(&pts).unwrap();
        // Far away but inside the window.
        let area = Polygon::new(vec![p(10.0, 10.0), p(11.0, 10.0), p(10.5, 11.0)]).unwrap();
        let window = Rect::new(p(-1.0, -1.0), p(12.0, 12.0));
        let classes = classify_points(&tri, &area, &window);
        let internal = classes
            .iter()
            .filter(|&&c| c == PointClass::Internal)
            .count();
        let external = classes
            .iter()
            .filter(|&&c| c == PointClass::External)
            .count();
        assert_eq!(internal, 0);
        assert!(external > 150, "most points should be external");
    }
}
