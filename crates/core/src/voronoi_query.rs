//! Algorithm 1 of the paper: Voronoi-diagram-based area query.
//!
//! Starting from a seed (the nearest site to an arbitrary position inside
//! the query area), a breadth-first search over Voronoi neighbours grows
//! the candidate set incrementally:
//!
//! * a candidate **inside** the area goes to the result and enqueues *all*
//!   of its unvisited Voronoi neighbours;
//! * a candidate **outside** the area enqueues only the unvisited
//!   neighbours that pass the **expansion test**.
//!
//! The expansion test is where the paper's heuristic and the provably
//! complete variant differ — see [`ExpansionPolicy`].

use crate::area::QueryArea;
use crate::payload::RecordStore;
use crate::scratch::QueryScratch;
use crate::stats::QueryStats;
use vaq_delaunay::{cell_polygon, DiagramMetric, Triangulation};
use vaq_geom::{Point, Polygon, Rect, Segment};

/// How the BFS expands from a candidate that is *not* inside the area.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExpansionPolicy {
    /// The paper's Algorithm 1, line 21: enqueue neighbour `pn` of the
    /// outside candidate `p` when the **segment `p–pn`** intersects the
    /// area. Cheap (one segment–polygon test), and exact on the paper's
    /// workloads, but in adversarial configurations (a thin area snaking
    /// between sites whose connecting segments all miss it) it can fail to
    /// reach an interior point.
    #[default]
    Segment,
    /// Enqueue neighbour `pn` when **`pn`'s Voronoi cell** intersects the
    /// area. The set of cells meeting a connected area is connected in the
    /// Delaunay graph, so this policy provably visits every internal point;
    /// it costs a convex-cell × polygon intersection per test.
    Cell,
}

/// Runs the Voronoi-based area query over pre-built structures.
///
/// * `tri` — the Delaunay triangulation (the `VN` oracle).
/// * `area` — the query polygon `A`.
/// * `seed` — canonical vertex to start from; must be the nearest site to
///   some point of `A` (Property 2/3 guarantee it is internal or boundary).
/// * `cell_window` — clipping window for on-demand Voronoi cells (cell
///   policy only); must contain all sites *and* the area.
/// * `records` — when present, every validation first materialises the
///   candidate's payload record (the paper's "geometric information
///   loading"); see [`RecordStore`].
///
/// Returns the **canonical** result vertices (callers expand duplicates)
/// and fills `stats`. Result order is BFS discovery order, which is
/// deterministic for a fixed build.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's explicit inputs
pub fn voronoi_area_query<M: DiagramMetric, A: QueryArea + ?Sized>(
    tri: &Triangulation<M>,
    area: &A,
    seed: u32,
    policy: ExpansionPolicy,
    cell_window: &Rect,
    records: Option<&RecordStore>,
    scratch: &mut QueryScratch,
    stats: &mut QueryStats,
) -> Vec<u32> {
    voronoi_area_query_with_boundary(
        tri,
        area,
        seed,
        policy,
        cell_window,
        records,
        None,
        scratch,
        stats,
    )
}

/// [`voronoi_area_query`] with an optional **shard-boundary fallback** for
/// the segment policy.
///
/// `straddlers`, when present, flags every canonical vertex whose Voronoi
/// cell straddles the engine's shard boundary (computed once at shard build
/// time — see `AreaQueryEngine::mark_shard_boundary`). A shard-local
/// segment test only sees the segment between two *local* sites, so an area
/// that enters the shard's territory without crossing any local
/// inter-site segment is unreachable under the plain segment policy — the
/// completeness gap of sharded segment expansion. For a frontier neighbour
/// whose cell straddles the boundary, the plain segment test is not
/// trustworthy: when it fails we fall back to the (complete) cell test for
/// that one neighbour. Interior vertices — the vast majority — keep the
/// cheap segment-only test, so the fallback costs `O(1)` per flagged
/// frontier edge and nothing at all when `straddlers` is `None`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn voronoi_area_query_with_boundary<M: DiagramMetric, A: QueryArea + ?Sized>(
    tri: &Triangulation<M>,
    area: &A,
    seed: u32,
    policy: ExpansionPolicy,
    cell_window: &Rect,
    records: Option<&RecordStore>,
    straddlers: Option<&[bool]>,
    scratch: &mut QueryScratch,
    stats: &mut QueryStats,
) -> Vec<u32> {
    let mut result = Vec::new();
    scratch.begin(tri.vertex_count());
    scratch.mark(seed);
    scratch.queue.push_back(seed);

    while let Some(v) = scratch.queue.pop_front() {
        stats.candidates += 1;
        stats.containment_tests += 1;
        if let Some(rs) = records {
            // Materialise the record of a representative input point before
            // the exact test, as a real refinement step would.
            // vaq-lint: allow(panic-hygiene) -- every canonical vertex has
            // at least one input point by construction (deduplication only
            // merges inputs, never produces an empty group).
            let rep = tri.inputs_of(v)[0];
            stats.payload_checksum = stats.payload_checksum.wrapping_add(rs.read(rep));
        }
        let pv = tri.point(v);
        if area.contains(pv) {
            stats.accepted += 1;
            result.push(v);
            for &u in tri.neighbors(v) {
                if !scratch.is_marked(u) {
                    scratch.mark(u);
                    scratch.queue.push_back(u);
                }
            }
        } else {
            for &u in tri.neighbors(v) {
                if scratch.is_marked(u) {
                    continue;
                }
                let expand = match policy {
                    ExpansionPolicy::Segment => {
                        stats.segment_tests += 1;
                        // `pv` just failed the containment test, so the
                        // segment meets the closed area iff it reaches the
                        // boundary — the containment-free fast path applies.
                        let seg_hit =
                            area.boundary_intersects_segment(&Segment::new(pv, tri.point(u)));
                        if !seg_hit
                            && straddlers
                                .is_some_and(|s| s.get(u as usize).copied().unwrap_or(false))
                        {
                            // Boundary-straddling cell: the shard-local
                            // segment test is not conclusive here, so fall
                            // back to the complete cell test for this one
                            // frontier edge.
                            stats.cell_tests += 1;
                            cell_intersects_area(tri, u, area, cell_window)
                        } else {
                            seg_hit
                        }
                    }
                    ExpansionPolicy::Cell => {
                        stats.cell_tests += 1;
                        cell_intersects_area(tri, u, area, cell_window)
                    }
                };
                if expand {
                    scratch.mark(u);
                    scratch.queue.push_back(u);
                }
            }
        }
    }
    result
}

/// `true` when the (window-clipped) Voronoi cell of `v` intersects `area`.
pub(crate) fn cell_intersects_area<M: DiagramMetric, A: QueryArea + ?Sized>(
    tri: &Triangulation<M>,
    v: u32,
    area: &A,
    window: &Rect,
) -> bool {
    // Cheap accept: the generator inside the area means its cell trivially
    // intersects it.
    if area.contains(tri.point(v)) {
        return true;
    }
    let ring = cell_polygon(tri, v, window);
    if ring.len() < 3 {
        return false;
    }
    area.intersects_polygon(&Polygon::new_unchecked(ring))
}

/// Picks the paper's "arbitrary position in A": a point guaranteed to lie
/// inside the area (for polygons: the centroid when interior, otherwise a
/// point found by midpoint probing — see `Polygon::interior_point`).
pub fn arbitrary_position_in<A: QueryArea + ?Sized>(area: &A) -> Point {
    area.interior_point()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    /// Random star-shaped polygon around `c`: angles sorted, radii random.
    fn star_polygon(c: Point, r_max: f64, k: usize, seed: u64) -> Polygon {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut angles: Vec<f64> = (0..k)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        angles.sort_by(f64::total_cmp);
        let verts = angles
            .iter()
            .map(|&a| {
                let r = r_max * (0.3 + 0.7 * rng.gen::<f64>());
                p(c.x + r * a.cos(), c.y + r * a.sin())
            })
            .collect();
        Polygon::new(verts).expect("star polygons are valid")
    }

    fn brute(pts: &[Point], area: &Polygon) -> Vec<u32> {
        pts.iter()
            .enumerate()
            .filter(|(_, q)| area.contains(**q))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn window_for(pts: &[Point], area: &Polygon) -> Rect {
        let r = Rect::from_points(pts.iter().copied()).union(&area.mbr());
        r.expand(r.width().max(r.height()) + 1.0)
    }

    fn run(pts: &[Point], area: &Polygon, policy: ExpansionPolicy) -> (Vec<u32>, QueryStats) {
        let tri = Triangulation::new(pts).unwrap();
        let pa = arbitrary_position_in(area);
        let seed = tri.nearest_vertex(pa, None);
        let mut scratch = QueryScratch::new(tri.vertex_count());
        let mut stats = QueryStats::default();
        let win = window_for(pts, area);
        let mut got = voronoi_area_query(
            &tri,
            area,
            seed,
            policy,
            &win,
            None,
            &mut scratch,
            &mut stats,
        );
        got.sort_unstable();
        (got, stats)
    }

    #[test]
    fn both_policies_match_brute_on_star_areas() {
        for seed in 0..10u64 {
            let pts = uniform(400, seed);
            let area = star_polygon(p(0.5, 0.5), 0.2, 10, seed ^ 0xBEEF);
            let want = brute(&pts, &area);
            let (got_seg, seg_stats) = run(&pts, &area, ExpansionPolicy::Segment);
            let (got_cell, cell_stats) = run(&pts, &area, ExpansionPolicy::Cell);
            assert_eq!(got_seg, want, "segment policy, seed {seed}");
            assert_eq!(got_cell, want, "cell policy, seed {seed}");
            assert_eq!(seg_stats.accepted, want.len());
            assert!(seg_stats.candidates >= want.len());
            assert!(cell_stats.cell_tests > 0);
            assert_eq!(cell_stats.segment_tests, 0);
        }
    }

    #[test]
    fn candidate_set_is_small_ring_around_result() {
        // The defining claim of the paper: candidates ≈ result + a thin
        // boundary ring, far below the MBR count.
        let pts = uniform(4000, 77);
        let area = star_polygon(p(0.5, 0.5), 0.15, 10, 78);
        let tri = Triangulation::new(&pts).unwrap();
        let seed = tri.nearest_vertex(arbitrary_position_in(&area), None);
        let mut scratch = QueryScratch::new(tri.vertex_count());
        let mut stats = QueryStats::default();
        let win = window_for(&pts, &area);
        let got = voronoi_area_query(
            &tri,
            &area,
            seed,
            ExpansionPolicy::Segment,
            &win,
            None,
            &mut scratch,
            &mut stats,
        );
        let mbr = area.mbr();
        let in_mbr = pts.iter().filter(|q| mbr.contains_point(**q)).count();
        assert_eq!(got.len(), stats.accepted);
        assert!(
            stats.candidates < in_mbr,
            "voronoi candidates {} should undercut MBR count {in_mbr}",
            stats.candidates
        );
    }

    #[test]
    fn area_with_no_points_returns_empty() {
        let pts = uniform(100, 5);
        // A tiny triangle squeezed between grid positions far from points.
        let area = Polygon::new(vec![p(10.0, 10.0), p(10.001, 10.0), p(10.0, 10.001)]).unwrap();
        let (got, stats) = run(&pts, &area, ExpansionPolicy::Segment);
        assert!(got.is_empty());
        assert_eq!(stats.accepted, 0);
        assert!(stats.candidates >= 1, "the seed is always validated");
    }

    #[test]
    fn area_covering_everything_returns_everything() {
        let pts = uniform(200, 6);
        let area =
            Polygon::new(vec![p(-1.0, -1.0), p(2.0, -1.0), p(2.0, 2.0), p(-1.0, 2.0)]).unwrap();
        let want = brute(&pts, &area);
        let (got_seg, stats) = run(&pts, &area, ExpansionPolicy::Segment);
        assert_eq!(got_seg, want);
        assert_eq!(got_seg.len(), 200);
        // All-internal: zero redundant validations.
        assert_eq!(stats.redundant_validations(), 0);
        let (got_cell, _) = run(&pts, &area, ExpansionPolicy::Cell);
        assert_eq!(got_cell, want);
    }

    #[test]
    fn concave_l_shaped_area() {
        let pts = uniform(800, 8);
        // L-shape occupying the left and bottom bands.
        let area = Polygon::new(vec![
            p(0.1, 0.1),
            p(0.9, 0.1),
            p(0.9, 0.3),
            p(0.3, 0.3),
            p(0.3, 0.9),
            p(0.1, 0.9),
        ])
        .unwrap();
        let want = brute(&pts, &area);
        let (got_seg, _) = run(&pts, &area, ExpansionPolicy::Segment);
        let (got_cell, _) = run(&pts, &area, ExpansionPolicy::Cell);
        assert_eq!(got_seg, want);
        assert_eq!(got_cell, want);
    }

    #[test]
    fn cell_policy_survives_thin_snake_area() {
        // A long thin sliver passing between grid rows: the classic case
        // where per-segment tests may fail to bridge, but cell tests must
        // succeed. Grid points at integer coordinates; the sliver runs at
        // y = 0.5 with height 0.2, crossing between rows 0 and 1.
        let mut pts = Vec::new();
        for x in 0..20 {
            for y in 0..3 {
                pts.push(p(f64::from(x), f64::from(y)));
            }
        }
        // Add two isolated interior points inside the sliver at both ends.
        pts.push(p(0.5, 0.5));
        pts.push(p(18.5, 0.5));
        let area =
            Polygon::new(vec![p(0.2, 0.4), p(18.8, 0.4), p(18.8, 0.6), p(0.2, 0.6)]).unwrap();
        let want = brute(&pts, &area);
        assert_eq!(want.len(), 2, "exactly the two sliver points");
        let (got_cell, _) = run(&pts, &area, ExpansionPolicy::Cell);
        assert_eq!(got_cell, want, "cell policy must find both sliver points");
        // The segment policy also succeeds here (segments between the two
        // sliver points' neighbours cross the sliver); assert it so a
        // regression in either policy is caught.
        let (got_seg, _) = run(&pts, &area, ExpansionPolicy::Segment);
        assert_eq!(got_seg, want);
    }

    #[test]
    fn degenerate_collinear_point_set() {
        let pts: Vec<Point> = (0..30).map(|i| p(f64::from(i) * 0.1, 0.5)).collect();
        let area =
            Polygon::new(vec![p(0.55, 0.0), p(1.45, 0.0), p(1.45, 1.0), p(0.55, 1.0)]).unwrap();
        let want = brute(&pts, &area);
        assert!(!want.is_empty());
        let (got_seg, _) = run(&pts, &area, ExpansionPolicy::Segment);
        let (got_cell, _) = run(&pts, &area, ExpansionPolicy::Cell);
        assert_eq!(got_seg, want);
        assert_eq!(got_cell, want);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(40))]

        #[test]
        fn prop_cell_policy_matches_brute(seed in 0u64..4000, n in 3usize..250) {
            let pts = uniform(n, seed);
            let cx = 0.2 + 0.6 * ((seed % 97) as f64 / 97.0);
            let cy = 0.2 + 0.6 * ((seed % 89) as f64 / 89.0);
            let area = star_polygon(p(cx, cy), 0.05 + 0.25 * ((seed % 7) as f64 / 7.0), 10, seed);
            let want = brute(&pts, &area);
            let (got, _) = run(&pts, &area, ExpansionPolicy::Cell);
            proptest::prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_segment_policy_matches_brute_on_stars(seed in 0u64..4000, n in 3usize..250) {
            let pts = uniform(n, seed);
            let area = star_polygon(p(0.5, 0.5), 0.3, 10, seed ^ 0xDEAD);
            let want = brute(&pts, &area);
            let (got, _) = run(&pts, &area, ExpansionPolicy::Segment);
            proptest::prop_assert_eq!(got, want);
        }
    }
}
