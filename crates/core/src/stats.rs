//! Per-query statistics matching what the paper measures.
//!
//! The paper's evaluation reports, per configuration: the **result size**,
//! the **candidate number** (how many points reached the geometric
//! validation step) and the **times of redundant validations** (validated
//! candidates that were *not* in the result — the pure waste each method
//! incurs). These counters reproduce those columns exactly, plus the
//! index-level access counts that explain the time differences.

use vaq_rtree::AccessStats;

/// Hit/miss counters for the per-session prepared-area cache (see
/// `QuerySession`). Per query each counter is 0 or 1 — a query touches the
/// cache at most once; the session also accumulates lifetime totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Cache lookups answered from an already-prepared area.
    pub hits: u64,
    /// Cache lookups that had to prepare (and insert) the area.
    pub misses: u64,
}

impl CacheCounters {
    /// Accumulates `other` into `self` (session-lifetime totals).
    pub fn absorb(&mut self, other: CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Fraction of lookups answered from the cache (`0.0` when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters for the two-stage exact-predicate pipeline (see
/// `vaq_geom::predicates`): orientation evaluations decided by the cheap
/// error-bound **filter** — scalar stage A or the batched
/// `orient2d_filter_batch` lanes — versus evaluations that fell back to
/// the adaptive **exact** stages (expansion arithmetic).
///
/// These count *work per primitive evaluation*, not per query answer, so
/// they legitimately differ across the `PrepareMode` axis (a prepared
/// area evaluates far fewer edges than a raw scan) while every
/// result-bearing counter stays bit-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredicateCounters {
    /// Orientation evaluations whose sign the cheap filter certified.
    pub filter_fast_accepts: u64,
    /// Orientation evaluations that fell through to the adaptive/exact
    /// stages.
    pub exact_fallbacks: u64,
}

impl PredicateCounters {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: PredicateCounters) {
        self.filter_fast_accepts += other.filter_fast_accepts;
        self.exact_fallbacks += other.exact_fallbacks;
    }

    /// Fraction of evaluations the filter decided (`0.0` when none ran).
    pub fn filter_rate(&self) -> f64 {
        let total = self.filter_fast_accepts + self.exact_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.filter_fast_accepts as f64 / total as f64
        }
    }
}

/// Counters for a single area query (either method).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryStats {
    /// Points returned (after duplicate expansion).
    pub result_size: usize,
    /// Candidates that underwent geometric validation. For the traditional
    /// method this is the window-query output ("candidate number" in
    /// Tables I–II); for the Voronoi method it is every point popped from
    /// the candidate queue.
    pub candidates: usize,
    /// Candidates whose validation succeeded (before duplicate expansion).
    pub accepted: usize,
    /// Exact point-in-polygon tests performed.
    pub containment_tests: u64,
    /// Segment–area intersection tests (Voronoi method, segment policy).
    pub segment_tests: u64,
    /// Voronoi-cell–area intersection tests (Voronoi method, cell policy).
    pub cell_tests: u64,
    /// Spatial-index node/entry accesses (window query or seed NN).
    pub index: AccessStats,
    /// The canonical seed vertex of the Voronoi method, when applicable.
    pub seed: Option<u32>,
    /// Checksum of the payload records materialised during validation
    /// (see `EngineBuilder::payload_bytes`). Non-zero only when the engine
    /// simulates record loading; it both proves the bytes were actually
    /// read and keeps the optimiser from eliding the loads.
    pub payload_checksum: u64,
    /// Prepared-area cache traffic of this query (all zero unless the
    /// query ran through a `QuerySession` with `PrepareMode::Cached`).
    /// With [`QueryStats::predicates`], one of the only two stats fields
    /// allowed to differ across the `PrepareMode` axis — everything else
    /// is bit-identical.
    pub prepared_cache: CacheCounters,
    /// Exact-predicate pipeline split of this query: orientation
    /// evaluations decided by the cheap (batched) filter vs. adaptive
    /// fallbacks. Like `prepared_cache`, this measures *how* the answer
    /// was computed, not the answer: prepared areas evaluate fewer edges,
    /// so the counters differ across the `PrepareMode` axis while every
    /// result-bearing counter stays bit-identical.
    pub predicates: PredicateCounters,
    /// Live overlay points linearly scanned by the dynamic engine's delta
    /// pass (zero for static-engine queries). Each scanned point also
    /// counts as a candidate and a containment test, so the classic
    /// identities keep holding on the dynamic path.
    pub delta_scanned: usize,
    /// Hidden sites surfaced by the hidden-site kd window lookup and
    /// geometrically examined against the area (weighted engines only;
    /// zero on Euclidean engines, which hide nothing). Each examined
    /// site also counts as a candidate and a containment test.
    pub hidden_examined: usize,
    /// Hidden sites the kd window lookup skipped without per-site work.
    /// Before the index, the post-BFS sweep rect-scanned **every**
    /// hidden site — `hidden_examined + hidden_pruned` of them — so this
    /// is the before/after saving of the spatial index, per query.
    pub hidden_pruned: usize,
    /// Shards whose MBR intersected the area's MBR and were therefore
    /// queried (sharded engine only; zero otherwise).
    pub shards_visited: usize,
    /// Shards skipped outright because their MBR misses the area's MBR —
    /// or, under [`ShardPruning::Exact`](crate::ShardPruning), because
    /// the area's exact geometry misses the shard's MBR (sharded engine
    /// only).
    pub shards_pruned: usize,
    /// The planner's decision record, set only when the query entered as
    /// [`MethodChoice::Auto`](crate::MethodChoice) — which concrete
    /// method / policy / prepare mode / shard pruning ran, on which
    /// path, at what predicted cost. Like `prepared_cache` and
    /// `predicates`, this describes *how* the answer was computed: an
    /// explicit spec re-running the planned strategy reproduces every
    /// other field bit-for-bit with `plan == None`.
    pub plan: Option<crate::plan::ExecutionPlan>,
}

impl QueryStats {
    /// Validations wasted on points outside the area — the quantity
    /// plotted in the paper's Figures 5 and 7.
    pub fn redundant_validations(&self) -> usize {
        self.candidates - self.accepted
    }

    /// Folds one shard-local query's counters into an aggregate (sharded
    /// execution): every work counter sums. The `seed` is left alone —
    /// each shard seeds independently, so an aggregate has no single
    /// meaningful seed — and the shard-visit counters and the planner's
    /// `plan` record are maintained by the sharded engine itself, not
    /// here.
    pub fn absorb_shard(&mut self, other: &QueryStats) {
        // vaq-lint: allow(stats-conservation) -- `seed` is per-shard: each
        // shard seeds its traversal independently, so an aggregate has no
        // single meaningful seed.
        // vaq-lint: allow(stats-conservation) -- `shards_visited` is
        // maintained by the sharded engine, which counts shards as it
        // dispatches them; summing per-shard copies would double-count.
        // vaq-lint: allow(stats-conservation) -- `shards_pruned` is
        // engine-maintained alongside shards_visited, for the same reason.
        // vaq-lint: allow(stats-conservation) -- `plan` is the planner's
        // one-per-query record, attached by the engine after the merge.
        self.result_size += other.result_size;
        self.candidates += other.candidates;
        self.accepted += other.accepted;
        self.containment_tests += other.containment_tests;
        self.segment_tests += other.segment_tests;
        self.cell_tests += other.cell_tests;
        self.index.absorb(&other.index);
        self.payload_checksum = self.payload_checksum.wrapping_add(other.payload_checksum);
        self.prepared_cache.absorb(other.prepared_cache);
        self.predicates.absorb(other.predicates);
        self.delta_scanned += other.delta_scanned;
        self.hidden_examined += other.hidden_examined;
        self.hidden_pruned += other.hidden_pruned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_shard_sums_work_counters() {
        let mut agg = QueryStats::default();
        let a = QueryStats {
            result_size: 3,
            candidates: 5,
            accepted: 3,
            containment_tests: 5,
            segment_tests: 7,
            seed: Some(4),
            prepared_cache: CacheCounters { hits: 1, misses: 0 },
            predicates: PredicateCounters {
                filter_fast_accepts: 20,
                exact_fallbacks: 2,
            },
            ..QueryStats::default()
        };
        let b = QueryStats {
            result_size: 2,
            candidates: 4,
            accepted: 2,
            containment_tests: 4,
            cell_tests: 9,
            delta_scanned: 6,
            predicates: PredicateCounters {
                filter_fast_accepts: 5,
                exact_fallbacks: 1,
            },
            ..QueryStats::default()
        };
        agg.absorb_shard(&a);
        agg.absorb_shard(&b);
        assert_eq!(agg.result_size, 5);
        assert_eq!(agg.candidates, 9);
        assert_eq!(agg.accepted, 5);
        assert_eq!(agg.containment_tests, 9);
        assert_eq!(agg.segment_tests, 7);
        assert_eq!(agg.cell_tests, 9);
        assert_eq!(agg.delta_scanned, 6);
        assert_eq!(agg.prepared_cache, CacheCounters { hits: 1, misses: 0 });
        assert_eq!(
            agg.predicates,
            PredicateCounters {
                filter_fast_accepts: 25,
                exact_fallbacks: 3,
            }
        );
        assert!((agg.predicates.filter_rate() - 25.0 / 28.0).abs() < 1e-12);
        assert_eq!(agg.seed, None, "aggregates have no single seed");
        assert_eq!(agg.redundant_validations(), 4);
    }

    #[test]
    fn redundant_is_candidates_minus_accepted() {
        let s = QueryStats {
            result_size: 10,
            candidates: 14,
            accepted: 10,
            ..QueryStats::default()
        };
        assert_eq!(s.redundant_validations(), 4);
        assert_eq!(QueryStats::default().redundant_validations(), 0);
    }
}
