//! Cost-model query planner: turn [`QuerySpec::auto()`] into a concrete
//! strategy, per query.
//!
//! The paper's evaluation shows that no single strategy wins everywhere:
//! Voronoi expansion beats the traditional index only while the area is
//! small relative to the local point density, brute force wins once an
//! area swallows most of the data (or the data set is tiny), and the
//! expansion policy and preparation cost flip the ranking again at
//! different polygon complexities. The planner automates that choice.
//!
//! ## How a plan is made
//!
//! [`Planner::resolve`] receives [`PlanFeatures`] — a handful of O(1)
//! per-query signals:
//!
//! * `est_candidates` — expected points under the area's MBR, read from a
//!   [`DensityMap`] (free on sharded engines, a coarse grid on plain
//!   engines);
//! * `vertices` — the polygon's vertex count `k` (every geometric
//!   primitive in the pipeline is `O(k)` raw, `O(log k)` prepared);
//! * `cached` / `cacheable` — whether the area's
//!   [`AreaFingerprint`](crate::AreaFingerprint) is already resident in
//!   the session's prepared-area LRU, and whether the area has a prepared
//!   form at all;
//! * `delta_len`, `shards` — overlay depth on dynamic engines and shard
//!   count on sharded ones;
//! * `in_hull` — whether the area's MBR stays inside the data bounding
//!   box (outside it, segment expansion loses its completeness argument,
//!   so the planner hedges to cell expansion).
//!
//! From these it predicts the work of each `(method, policy)` pair in
//! abstract **work units** — the same deterministic unit
//! [`Planner::observed_cost`] derives from [`QueryStats`] counters after
//! the fact — and picks the argmin. Preparation is planned separately:
//! a cache hit is (nearly) free, otherwise preparing pays only when the
//! predicted number of `O(k)` primitive calls is large enough that the
//! `O(k log k)` compilation amortises. On sharded engines the planner
//! additionally decides between rectangle-only and exact-geometry shard
//! pruning ([`ShardPruning`]).
//!
//! ## Auditability and feedback
//!
//! Every decision is recorded as an [`ExecutionPlan`] in
//! [`QueryStats::plan`](crate::QueryStats): which method/policy/prepare
//! mode ran, on which path, and at what predicted cost. After the query,
//! the engine feeds the observed work back through [`Planner::observe`];
//! an exponentially decayed per-method calibration ratio keeps the
//! analytic model honest when a workload (or machine) disagrees with its
//! constants.
//!
//! Planned queries are **bit-identical** to explicit ones: the planner
//! only rewrites the spec *before* execution, so running the spec named
//! by the plan through an explicit session reproduces the same indices
//! and the same work counters (only the "how was this computed" fields —
//! `prepared_cache`, `plan` — may differ).
//!
//! [`QuerySpec::auto()`]: crate::QuerySpec::auto

use crate::query::{PrepareMode, QueryMethod, QuerySpec, ShardPruning};
use crate::stats::QueryStats;
use crate::voronoi_query::ExpansionPolicy;
use vaq_delaunay::DiagramKind;
use vaq_geom::{Point, Rect};

/// Which execution path carried a planned query. Recorded in
/// [`ExecutionPlan::path`] and checked by the planner's differential
/// tests: the plan must always name the path that actually ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlannedPath {
    /// A single query on [`AreaQueryEngine`](crate::AreaQueryEngine)
    /// (through a [`QuerySession`](crate::QuerySession)).
    #[default]
    Plain,
    /// One query of an
    /// [`AreaQueryEngine::execute_batch`](crate::AreaQueryEngine::execute_batch)
    /// call.
    Batch,
    /// A query on [`DynamicAreaQueryEngine`](crate::DynamicAreaQueryEngine)
    /// (base pass + delta scan).
    Dynamic,
    /// A query on a sharded engine
    /// ([`ShardedAreaQueryEngine`](crate::ShardedAreaQueryEngine) or its
    /// dynamic variant), fanned out over the kd partition.
    Sharded,
}

/// The record of one planning decision, attached to
/// [`QueryStats::plan`](crate::QueryStats) whenever a query entered as
/// [`MethodChoice::Auto`](crate::MethodChoice).
///
/// The four strategy fields name the concrete [`QuerySpec`] knobs the
/// planner chose; re-issuing that explicit spec reproduces the planned
/// query bit-for-bit. The two `predicted_*` fields are the model's
/// forecast in work units, for auditing against
/// [`Planner::observed_cost`] of the same stats.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutionPlan {
    /// The concrete method the planner chose.
    pub method: QueryMethod,
    /// The expansion policy chosen (meaningful for the Voronoi method).
    pub policy: ExpansionPolicy,
    /// The preparation mode chosen.
    pub prepare: PrepareMode,
    /// The shard-pruning rule chosen (meaningful on sharded engines).
    pub shard_pruning: ShardPruning,
    /// The execution path this plan was made for (and ran on).
    pub path: PlannedPath,
    /// Predicted total work in work units (see [`Planner::observed_cost`]).
    pub predicted_cost: f64,
    /// Predicted candidate count (points the chosen method examines).
    pub predicted_candidates: f64,
}

impl ExecutionPlan {
    /// Rewrites `spec` into the explicit spec this plan names: same
    /// filter / seed / output, with method, policy, prepare mode and
    /// shard pruning pinned to the planned choice. Running the returned
    /// spec reproduces the planned query bit-for-bit.
    pub fn apply_to(&self, spec: &QuerySpec) -> QuerySpec {
        spec.method(self.method)
            .policy(self.policy)
            .prepare(self.prepare)
            .shard_pruning(self.shard_pruning)
    }
}

/// The O(1) per-query features the planner decides from. Build one by
/// hand for offline what-if analysis, or let the engines assemble it
/// (they do, on every [`MethodChoice::Auto`](crate::MethodChoice)
/// query).
#[derive(Clone, Copy, Debug)]
pub struct PlanFeatures {
    /// Points indexed by the engine (live points on dynamic engines).
    pub len: usize,
    /// Expected number of points under the area's MBR, from the engine's
    /// [`DensityMap`]. This is exactly the traditional method's expected
    /// candidate count.
    pub est_candidates: f64,
    /// The area's vertex count `k` (see
    /// [`QueryArea::complexity`](crate::QueryArea::complexity)).
    pub vertices: usize,
    /// `true` when the area's fingerprint is already resident in the
    /// executing session's prepared-area cache (a hit is nearly free).
    pub cached: bool,
    /// `true` when the area has a prepared form at all (plain rectangles
    /// do not; preparation can only be planned when this holds).
    pub cacheable: bool,
    /// Delta-buffer depth on dynamic engines (0 elsewhere). The linear
    /// delta scan is method-independent, so this raises every predicted
    /// cost equally — it is recorded for auditability.
    pub delta_len: usize,
    /// Shard count on sharded engines (0 elsewhere).
    pub shards: usize,
    /// `true` when the area's MBR lies inside the data bounding box. An
    /// area wandering outside the hull can defeat segment expansion's
    /// reachability argument, so the planner hedges to cell expansion.
    pub in_hull: bool,
    /// Which diagram the engine's substrate realizes. On a power diagram
    /// ([`DiagramKind::Power`]) the cells shift off the inter-site
    /// midlines, so the segment heuristic loses its empirical footing and
    /// the planner hedges to cell expansion there too.
    pub diagram: DiagramKind,
    /// The path the query will execute on.
    pub path: PlannedPath,
}

impl Default for PlanFeatures {
    fn default() -> PlanFeatures {
        PlanFeatures {
            len: 0,
            est_candidates: 0.0,
            vertices: 8,
            cached: false,
            cacheable: true,
            delta_len: 0,
            shards: 0,
            in_hull: true,
            diagram: DiagramKind::Euclidean,
            path: PlannedPath::Plain,
        }
    }
}

/// A coarse, query-time-O(1) map from a rectangle to an expected point
/// count, backed by weighted regions (a uniform grid on plain engines,
/// the shard MBRs on sharded ones).
///
/// The estimate assumes points are uniform *within* each region:
/// `estimate = Σ count(region) · |region ∩ rect| / |region|`. With a
/// 16×16 grid that is exact at grid granularity and costs at most 256
/// multiply-adds per query — cheap enough to run on every planned
/// query.
#[derive(Clone, Debug, Default)]
pub struct DensityMap {
    regions: Vec<(Rect, f64)>,
    total: f64,
}

/// Grid resolution used for [`DensityMap::from_points`] (16×16 = 256
/// cells: fine enough to see clusters, small enough to scan per query).
const GRID_SIDE: usize = 16;

impl DensityMap {
    /// Builds a 16×16-cell uniform-grid density map over
    /// `points`. `O(n)` once at engine build time.
    pub fn from_points(points: &[Point]) -> DensityMap {
        if points.is_empty() {
            return DensityMap::default();
        }
        let extent = Rect::from_points(points.iter().copied());
        let w = extent.width().max(f64::MIN_POSITIVE);
        let h = extent.height().max(f64::MIN_POSITIVE);
        let side = GRID_SIDE;
        let mut counts = vec![0.0f64; side * side];
        for p in points {
            let ix = (((p.x - extent.min.x) / w * side as f64) as usize).min(side - 1);
            let iy = (((p.y - extent.min.y) / h * side as f64) as usize).min(side - 1);
            counts[iy * side + ix] += 1.0;
        }
        let cw = extent.width() / side as f64;
        let ch = extent.height() / side as f64;
        let mut regions = Vec::with_capacity(side * side);
        for iy in 0..side {
            for ix in 0..side {
                let c = counts[iy * side + ix];
                if c == 0.0 {
                    continue;
                }
                let min = Point::new(extent.min.x + cw * ix as f64, extent.min.y + ch * iy as f64);
                let max = Point::new(min.x + cw, min.y + ch);
                regions.push((Rect::new(min, max), c));
            }
        }
        DensityMap {
            regions,
            total: points.len() as f64,
        }
    }

    /// Builds a density map from pre-aggregated `(region, count)` pairs —
    /// on sharded engines these are the kd partition's tight shard MBRs
    /// and sizes, so the map costs nothing beyond what the build already
    /// computed.
    pub fn from_regions<I: IntoIterator<Item = (Rect, f64)>>(regions: I) -> DensityMap {
        let regions: Vec<(Rect, f64)> = regions
            .into_iter()
            .filter(|&(r, c)| c > 0.0 && !r.is_empty())
            .collect();
        let total = regions.iter().map(|&(_, c)| c).sum();
        DensityMap { regions, total }
    }

    /// The weighted `(region, count)` pairs backing the map, in
    /// insertion order. [`DensityMap::from_regions`] over these pairs
    /// reconstructs the map exactly (both construction paths already
    /// satisfy its non-empty/positive filter), which is how snapshots
    /// persist it.
    pub fn regions(&self) -> &[(Rect, f64)] {
        &self.regions
    }

    /// Total number of points the map covers.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Expected number of points inside `rect`, assuming uniformity
    /// within each region. Degenerate (zero-area) regions contribute
    /// their full count when `rect` intersects them.
    pub fn estimate_count(&self, rect: &Rect) -> f64 {
        let mut sum = 0.0;
        for &(region, count) in &self.regions {
            let Some(overlap) = region.intersection(rect) else {
                continue;
            };
            let ra = region.area();
            if ra > 0.0 {
                sum += count * overlap.area() / ra;
            } else {
                sum += count;
            }
        }
        sum
    }

    /// Expected point density (points per unit area) inside `rect`;
    /// `0.0` for a degenerate rectangle.
    pub fn density_in(&self, rect: &Rect) -> f64 {
        let a = rect.area();
        if a > 0.0 {
            self.estimate_count(rect) / a
        } else {
            0.0
        }
    }
}

/// How quickly the calibration ratios forget old observations: each new
/// observation contributes `1 − DECAY` of the updated ratio.
const DECAY: f64 = 0.8;

/// Per-query overhead charged to index-seeded methods (R-tree descent /
/// seed lookup), in work units per `log₂ n`.
const SEED_UNIT: f64 = 3.0;

/// Work units per traditional-filter candidate beyond its containment
/// test (R-tree node traversal amortised per reported candidate).
const FILTER_UNIT: f64 = 1.5;

/// Multiplier of a cell test over a segment test (cell extraction +
/// polygon–polygon intersection vs one segment–boundary test).
const CELL_FACTOR: f64 = 3.0;

/// Work units per vertex to compile a prepared area (slab index + edge
/// grid construction ≈ `PREPARE_UNIT · k · log₂ k`).
const PREPARE_UNIT: f64 = 6.0;

/// Fraction of the MBR's points assumed inside the polygon itself
/// (the paper's random query polygons fill roughly half their MBR).
const INTERIOR_FRACTION: f64 = 0.55;

/// Expansion frontier size as a multiple of `√(points inside)`.
const RING_FACTOR: f64 = 3.4;

/// Average Delaunay degree: expansion tests per frontier point.
const DEGREE: f64 = 6.0;

/// The cost-model planner. One lives inside every
/// [`QuerySession`](crate::QuerySession) /
/// [`SessionState`](crate::QuerySession) and on each sharded engine;
/// [`Planner::default()`] starts with unit calibration.
///
/// The planner is deliberately small: an analytic model over
/// [`PlanFeatures`] plus three exponentially decayed per-method
/// calibration ratios fed by [`Planner::observe`]. It holds no
/// per-query allocations and resolving a plan is a handful of float
/// operations plus one density-map scan.
#[derive(Clone, Debug)]
pub struct Planner {
    /// Observed/predicted cost ratio per method, exponentially decayed
    /// (indexed by [`Planner::method_slot`]).
    calibration: [f64; 3],
}

impl Default for Planner {
    fn default() -> Planner {
        Planner {
            calibration: [1.0; 3],
        }
    }
}

impl Planner {
    /// Slot of `method` in the calibration table.
    fn method_slot(method: QueryMethod) -> usize {
        match method {
            QueryMethod::Traditional => 0,
            QueryMethod::Voronoi => 1,
            QueryMethod::BruteForce => 2,
        }
    }

    /// The current observed/predicted calibration ratio for `method`
    /// (`1.0` until [`Planner::observe`] has seen that method run).
    pub fn calibration(&self, method: QueryMethod) -> f64 {
        self.calibration[Planner::method_slot(method)]
    }

    /// The raw calibration table (Traditional, Voronoi, BruteForce), for
    /// snapshot persistence.
    pub fn calibration_array(&self) -> [f64; 3] {
        self.calibration
    }

    /// Rebuilds a planner from a persisted calibration table — closing
    /// the loop on calibration that previously reset to `1.0` every
    /// session. Entries are sanitised into the same `[0.05, 20.0]` band
    /// [`Planner::observe`] confines live ratios to (a snapshot from a
    /// buggy or hand-edited writer must not poison every future plan).
    pub fn with_calibration(calibration: [f64; 3]) -> Planner {
        Planner {
            calibration: calibration.map(|c| {
                if c.is_finite() {
                    c.clamp(0.05, 20.0)
                } else {
                    1.0
                }
            }),
        }
    }

    /// Work-unit cost of one raw geometric primitive against a
    /// `k`-vertex area: containment and segment tests are `O(k)`.
    fn primitive_unit(k: usize) -> f64 {
        1.0 + k as f64
    }

    /// The deterministic work-unit cost a finished query actually spent,
    /// derived from its counters: every candidate pays a containment
    /// test, every expansion test pays a segment (or `CELL_FACTOR`×
    /// cell) test, all `O(k)`. Wall-clock never enters, so the same
    /// query costs the same on every machine — this is the unit the
    /// planner predicts in, the unit [`Planner::observe`] calibrates
    /// against, and the unit the planner-vs-oracle differential suite
    /// asserts on.
    pub fn observed_cost(stats: &QueryStats, vertices: usize) -> f64 {
        let unit = Planner::primitive_unit(vertices);
        stats.candidates as f64 * unit
            + stats.segment_tests as f64 * unit
            + stats.cell_tests as f64 * CELL_FACTOR * unit
    }

    /// Predicted `(cost, candidates)` of running `method` with `policy`
    /// under `f`, before calibration.
    fn predict(
        &self,
        method: QueryMethod,
        policy: ExpansionPolicy,
        f: &PlanFeatures,
    ) -> (f64, f64) {
        let k = f.vertices;
        let unit = Planner::primitive_unit(k);
        let n = f.len as f64;
        let m = f.est_candidates.min(n).max(0.0);
        let seed = SEED_UNIT * (n + 2.0).log2();
        let delta = f.delta_len as f64 * unit;
        match method {
            QueryMethod::BruteForce => (n * unit + delta, n),
            QueryMethod::Traditional => (seed + m * (unit + FILTER_UNIT) + delta, m),
            QueryMethod::Voronoi => {
                let inside = m * INTERIOR_FRACTION;
                let ring = RING_FACTOR * (inside + 1.0).sqrt() + DEGREE;
                let candidates = inside + ring;
                let tests = DEGREE * ring;
                let test_unit = match policy {
                    ExpansionPolicy::Segment => unit,
                    ExpansionPolicy::Cell => CELL_FACTOR * unit,
                };
                // Sharded fan-out re-seeds per visited shard; charge a
                // conservative two shards' worth of seeding.
                let fan_out = if f.shards > 1 { 2.0 } else { 1.0 };
                (
                    seed * fan_out + candidates * unit + tests * test_unit + delta,
                    candidates,
                )
            }
        }
    }

    /// Resolves an automatic spec into `(explicit spec, plan)` for the
    /// query described by `features`. The returned spec preserves
    /// `spec`'s filter, seed index and output mode and pins method,
    /// expansion policy, prepare mode and shard pruning; the plan
    /// records the choice and its predicted cost. Resolution is pure:
    /// it neither executes anything nor mutates the planner
    /// (calibration moves only through [`Planner::observe`]).
    pub fn resolve(&self, spec: &QuerySpec, features: &PlanFeatures) -> (QuerySpec, ExecutionPlan) {
        // Segment expansion is the paper's fastest policy; hedge to the
        // provably complete cell policy when the area leaves the data
        // bounding box (the staple counterexample) or the diagram is a
        // power diagram (weighted cells shift off the inter-site
        // midlines) — except under brute force / traditional, where the
        // policy is inert.
        let policy = if features.in_hull && features.diagram == DiagramKind::Euclidean {
            ExpansionPolicy::Segment
        } else {
            ExpansionPolicy::Cell
        };
        let mut best: Option<(QueryMethod, f64, f64)> = None;
        for method in [
            QueryMethod::Voronoi,
            QueryMethod::Traditional,
            QueryMethod::BruteForce,
        ] {
            let (raw, cand) = self.predict(method, policy, features);
            let cost = raw * self.calibration(method);
            if best.is_none_or(|(_, c, _)| cost < c) {
                best = Some((method, cost, cand));
            }
        }
        let (method, predicted_cost, predicted_candidates) =
            best.expect("three methods were scored");
        let prepare = self.plan_prepare(method, predicted_cost, features);
        let shard_pruning = if features.shards >= 4 && features.vertices >= 6 {
            ShardPruning::Exact
        } else {
            ShardPruning::Mbr
        };
        let plan = ExecutionPlan {
            method,
            policy,
            prepare,
            shard_pruning,
            path: features.path,
            predicted_cost,
            predicted_candidates,
        };
        (plan.apply_to(spec), plan)
    }

    /// Picks the prepare mode: a resident cache entry is nearly free
    /// (`Cached`), otherwise compiling the area pays only when the
    /// predicted `O(k)` primitive volume dwarfs the `O(k log k)`
    /// compilation. Paths without a session cache use `PrepareOnce` so
    /// the decision never depends on cache state the path cannot see.
    fn plan_prepare(&self, method: QueryMethod, cost: f64, f: &PlanFeatures) -> PrepareMode {
        if !f.cacheable {
            return PrepareMode::Raw;
        }
        let has_cache = matches!(f.path, PlannedPath::Plain | PlannedPath::Dynamic);
        if f.cached && has_cache {
            return PrepareMode::Cached;
        }
        if method == QueryMethod::BruteForce {
            // The brute scan's contains() calls dominate regardless;
            // preparing only pays on genuinely large scans.
            if f.len < 4096 {
                return PrepareMode::Raw;
            }
        }
        let k = f.vertices as f64;
        let prepare_cost = PREPARE_UNIT * k * (k + 2.0).log2();
        // Prepared primitives run in O(log k) instead of O(k): the saving
        // is roughly the whole O(k) share of the predicted cost.
        let saving = cost * (1.0 - (k + 2.0).log2() / (k + 2.0));
        if saving > prepare_cost {
            if has_cache {
                PrepareMode::Cached
            } else {
                PrepareMode::PrepareOnce
            }
        } else if has_cache && f.vertices >= 16 {
            // Borderline but complex: seed the cache so a repeat query
            // (the LRU signal) gets the hit.
            PrepareMode::Cached
        } else {
            PrepareMode::Raw
        }
    }

    /// Feeds one finished planned query back into the calibration: the
    /// per-method observed/predicted ratio is blended in with
    /// exponential decay, so a handful of queries is enough to re-rank
    /// methods on a workload whose constants disagree with the model.
    pub fn observe(&mut self, plan: &ExecutionPlan, observed_cost: f64) {
        if plan.predicted_cost <= 0.0 || !observed_cost.is_finite() {
            return;
        }
        let ratio = (observed_cost.max(1.0) / plan.predicted_cost).clamp(0.05, 20.0);
        let slot = Planner::method_slot(plan.method);
        self.calibration[slot] = DECAY * self.calibration[slot] + (1.0 - DECAY) * ratio;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(side: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for j in 0..side {
            for i in 0..side {
                pts.push(Point::new(i as f64 / side as f64, j as f64 / side as f64));
            }
        }
        pts
    }

    #[test]
    fn density_map_estimates_uniform_counts() {
        let pts = grid_points(32);
        let map = DensityMap::from_points(&pts);
        assert_eq!(map.total(), 1024.0);
        let whole = Rect::new(Point::new(-0.1, -0.1), Point::new(1.1, 1.1));
        assert!((map.estimate_count(&whole) - 1024.0).abs() < 1e-6);
        let quarter = Rect::new(Point::new(0.0, 0.0), Point::new(0.485, 0.485));
        let est = map.estimate_count(&quarter);
        assert!(
            (200.0..320.0).contains(&est),
            "quarter of a uniform grid ≈ 256, got {est}"
        );
        let empty = Rect::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert_eq!(map.estimate_count(&empty), 0.0);
    }

    #[test]
    fn density_map_from_regions_weighs_overlap() {
        let map = DensityMap::from_regions([
            (Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), 100.0),
            (Rect::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0)), 10.0),
        ]);
        assert_eq!(map.total(), 110.0);
        let left_half = Rect::new(Point::new(0.0, 0.0), Point::new(0.5, 1.0));
        assert!((map.estimate_count(&left_half) - 50.0).abs() < 1e-9);
        let straddle = Rect::new(Point::new(0.5, 0.0), Point::new(1.5, 1.0));
        assert!((map.estimate_count(&straddle) - 55.0).abs() < 1e-9);
    }

    #[test]
    fn planner_prefers_brute_on_tiny_sets_and_voronoi_on_dense_areas() {
        let planner = Planner::default();
        // Tiny set whose area covers most of the data: filtering cannot
        // prune, so the flat scan wins.
        let tiny = PlanFeatures {
            len: 40,
            est_candidates: 38.0,
            ..PlanFeatures::default()
        };
        let (_, plan) = planner.resolve(&QuerySpec::auto(), &tiny);
        assert_eq!(plan.method, QueryMethod::BruteForce, "{plan:?}");

        // A dense slab of a big set: the expansion's interior points are
        // nearly free next to validating every MBR candidate, so the
        // Voronoi method wins once the MBR estimate dwarfs the boundary
        // ring.
        let dense_area = PlanFeatures {
            len: 100_000,
            est_candidates: 5000.0,
            ..PlanFeatures::default()
        };
        let (_, plan) = planner.resolve(&QuerySpec::auto(), &dense_area);
        assert_eq!(plan.method, QueryMethod::Voronoi, "{plan:?}");
        assert_eq!(plan.policy, ExpansionPolicy::Segment);

        let out_of_hull = PlanFeatures {
            in_hull: false,
            ..dense_area
        };
        let (_, plan) = planner.resolve(&QuerySpec::auto(), &out_of_hull);
        assert_eq!(plan.policy, ExpansionPolicy::Cell, "hedge outside the hull");
    }

    #[test]
    fn resolved_spec_matches_the_plan() {
        let planner = Planner::default();
        let features = PlanFeatures {
            len: 10_000,
            est_candidates: 200.0,
            vertices: 12,
            ..PlanFeatures::default()
        };
        let (spec, plan) = planner.resolve(&QuerySpec::auto(), &features);
        assert_eq!(spec.method, plan.method);
        assert_eq!(spec.policy, plan.policy);
        assert_eq!(spec.prepare, plan.prepare);
        assert_eq!(spec.shard_pruning, plan.shard_pruning);
        assert!(!spec.method.is_auto());
        assert!(plan.predicted_cost > 0.0);
    }

    #[test]
    fn cached_fingerprint_prefers_the_cache() {
        let planner = Planner::default();
        let features = PlanFeatures {
            len: 50_000,
            est_candidates: 1000.0,
            vertices: 10,
            cached: true,
            ..PlanFeatures::default()
        };
        let (_, plan) = planner.resolve(&QuerySpec::auto(), &features);
        assert_eq!(plan.prepare, PrepareMode::Cached);

        let uncacheable = PlanFeatures {
            cacheable: false,
            cached: false,
            ..features
        };
        let (_, plan) = planner.resolve(&QuerySpec::auto(), &uncacheable);
        assert_eq!(plan.prepare, PrepareMode::Raw, "rects cannot be prepared");
    }

    #[test]
    fn observe_moves_calibration_toward_the_observed_ratio() {
        let mut planner = Planner::default();
        let features = PlanFeatures {
            len: 100_000,
            est_candidates: 5000.0,
            ..PlanFeatures::default()
        };
        let (_, plan) = planner.resolve(&QuerySpec::auto(), &features);
        assert_eq!(plan.method, QueryMethod::Voronoi);
        // Report Voronoi as 10× more expensive than predicted, repeatedly:
        // the planner should eventually switch away from it.
        for _ in 0..12 {
            planner.observe(&plan, plan.predicted_cost * 10.0);
        }
        assert!(planner.calibration(QueryMethod::Voronoi) > 5.0);
        let (_, plan) = planner.resolve(&QuerySpec::auto(), &features);
        assert_ne!(
            plan.method,
            QueryMethod::Voronoi,
            "calibration re-ranks methods"
        );
    }
}
