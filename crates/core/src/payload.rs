//! Simulated geometry-record storage.
//!
//! The paper's refinement step is expensive because, in a real GIS, every
//! candidate's **full geometry record must be materialised from storage**
//! before the exact test runs ("it is usually more time consuming … because
//! of its geometric information loading and complex geometric
//! calculations"). For an in-memory point set the containment test alone
//! costs ~100 ns, which buries that effect and with it the paper's time
//! figures.
//!
//! [`RecordStore`] restores the paper's cost model as a controlled,
//! documented substitution: each point carries a fixed-size payload record
//! (think: the serialised feature row), and each validation must read the
//! candidate's record in full — a real, checksummed memory traversal whose
//! random-access pattern mirrors fetching rows by id. Payload size 0
//! disables the simulation (pure CPU regime); sizes of a few hundred bytes
//! to a few KiB correspond to realistic feature rows. EXPERIMENTS.md
//! reports both regimes.

/// Fixed-size per-point payload records, read during candidate validation.
#[derive(Clone, Debug)]
pub struct RecordStore {
    data: Vec<u8>,
    record_bytes: usize,
}

impl RecordStore {
    /// Generates `n` records of `record_bytes` bytes each, filled
    /// deterministically from `seed`.
    pub fn generate(n: usize, record_bytes: usize, seed: u64) -> RecordStore {
        // A cheap xorshift fill; contents only matter for checksumming.
        // Golden-ratio mixing keeps adjacent seeds from colliding after
        // the `| 1` non-zero guard.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut data = Vec::with_capacity(n * record_bytes);
        for _ in 0..n * record_bytes {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            data.push(state as u8);
        }
        RecordStore { data, record_bytes }
    }

    /// Size of one record in bytes.
    #[inline]
    pub fn record_bytes(&self) -> usize {
        self.record_bytes
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.record_bytes).unwrap_or(0)
    }

    /// `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises record `id`: reads every byte and returns a checksum.
    ///
    /// The checksum is folded into `QueryStats::payload_checksum` by the
    /// callers, which keeps the loads observable (and thus un-elidable by
    /// the optimiser).
    #[inline]
    pub fn read(&self, id: u32) -> u64 {
        let lo = id as usize * self.record_bytes;
        let hi = lo + self.record_bytes;
        self.data[lo..hi].iter().fold(0u64, |acc, &b| {
            acc.wrapping_mul(31).wrapping_add(u64::from(b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = RecordStore::generate(10, 64, 42);
        let b = RecordStore::generate(10, 64, 42);
        assert_eq!(a.len(), 10);
        assert_eq!(a.record_bytes(), 64);
        for i in 0..10 {
            assert_eq!(a.read(i), b.read(i));
        }
        let c = RecordStore::generate(10, 64, 43);
        assert_ne!(
            (0..10).map(|i| a.read(i)).collect::<Vec<_>>(),
            (0..10).map(|i| c.read(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn distinct_records_have_distinct_checksums_usually() {
        let s = RecordStore::generate(100, 256, 7);
        let sums: std::collections::HashSet<u64> = (0..100).map(|i| s.read(i)).collect();
        assert!(sums.len() > 95, "checksum collisions: {}", 100 - sums.len());
    }

    #[test]
    fn zero_byte_records() {
        let s = RecordStore::generate(5, 0, 1);
        assert!(s.is_empty());
    }
}
