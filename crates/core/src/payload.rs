//! Simulated geometry-record storage.
//!
//! The paper's refinement step is expensive because, in a real GIS, every
//! candidate's **full geometry record must be materialised from storage**
//! before the exact test runs ("it is usually more time consuming … because
//! of its geometric information loading and complex geometric
//! calculations"). For an in-memory point set the containment test alone
//! costs ~100 ns, which buries that effect and with it the paper's time
//! figures.
//!
//! [`RecordStore`] restores the paper's cost model as a controlled,
//! documented substitution: each point carries a fixed-size payload record
//! (think: the serialised feature row), and each validation must read the
//! candidate's record in full — a real, checksummed memory traversal whose
//! random-access pattern mirrors fetching rows by id. Payload size 0
//! disables the simulation (pure CPU regime); sizes of a few hundred bytes
//! to a few KiB correspond to realistic feature rows. EXPERIMENTS.md
//! reports both regimes.
//!
//! Two access regimes exist on top of the store:
//!
//! * **validation loading** — every candidate's record is read before the
//!   exact containment test (the paper's refinement cost), wired through
//!   `refine_each`, the Voronoi BFS and the brute-force scan;
//! * **result materialisation** — the [`Materialize`](crate::OutputMode)
//!   result sink reads each *accepted* candidate's record again, modelling
//!   the final fetch of the full feature row into the response.
//!
//! Sharded engines own **per-shard stores** with shard-local ids, produced
//! by [`RecordStore::split`] from one logical store — record contents are
//! copied exactly once, and checksums stay bit-identical to the unsharded
//! store's.

use std::fmt;

/// Errors reported by the checked [`RecordStore`] accessors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordStoreError {
    /// A record id at or past the end of the store.
    OutOfRange {
        /// The requested record id.
        id: u32,
        /// Number of records the store holds.
        len: usize,
    },
    /// `n * record_bytes` does not fit in `usize` (the store cannot be
    /// allocated).
    SizeOverflow {
        /// Requested record count.
        n: usize,
        /// Requested record size in bytes.
        record_bytes: usize,
    },
}

impl fmt::Display for RecordStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RecordStoreError::OutOfRange { id, len } => {
                write!(f, "record id {id} out of range (store holds {len} records)")
            }
            RecordStoreError::SizeOverflow { n, record_bytes } => write!(
                f,
                "record store size overflows: {n} records x {record_bytes} bytes \
exceeds the address space"
            ),
        }
    }
}

impl std::error::Error for RecordStoreError {}

/// Fixed-size per-point payload records, read during candidate validation
/// and result materialisation.
#[derive(Clone, Debug)]
pub struct RecordStore {
    data: Vec<u8>,
    record_bytes: usize,
}

/// The deterministic seed every engine-attached store is generated from
/// (`EngineBuilder::payload_bytes` and the sharded payload constructors
/// share it, so per-shard stores split from the logical store hold
/// byte-identical records to the unsharded engine's).
pub(crate) const PAYLOAD_SEED: u64 = 0x5EED;

impl RecordStore {
    /// Generates `n` records of `record_bytes` bytes each, filled
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics with a clean diagnostic when `n * record_bytes` overflows
    /// `usize`; use [`RecordStore::try_generate`] for the checked form.
    pub fn generate(n: usize, record_bytes: usize, seed: u64) -> RecordStore {
        match RecordStore::try_generate(n, record_bytes, seed) {
            Ok(store) => store,
            // vaq-lint: allow(panic-hygiene) -- documented panicking
            // wrapper (see `# Panics` above); `try_generate` is the
            // checked form.
            Err(e) => panic!("RecordStore::generate: {e}"),
        }
    }

    /// As [`RecordStore::generate`], returning an error instead of
    /// panicking when the requested size does not fit in memory
    /// arithmetic.
    pub fn try_generate(
        n: usize,
        record_bytes: usize,
        seed: u64,
    ) -> Result<RecordStore, RecordStoreError> {
        let total = n
            .checked_mul(record_bytes)
            .ok_or(RecordStoreError::SizeOverflow { n, record_bytes })?;
        // A cheap xorshift fill; contents only matter for checksumming.
        // Golden-ratio mixing keeps adjacent seeds from colliding after
        // the `| 1` non-zero guard.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut data = Vec::with_capacity(total);
        for _ in 0..total {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            data.push(state as u8);
        }
        Ok(RecordStore { data, record_bytes })
    }

    /// Size of one record in bytes.
    #[inline]
    pub fn record_bytes(&self) -> usize {
        self.record_bytes
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.record_bytes).unwrap_or(0)
    }

    /// `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises record `id`: reads every byte and returns a checksum.
    ///
    /// The checksum is folded into `QueryStats::payload_checksum` by the
    /// callers, which keeps the loads observable (and thus un-elidable by
    /// the optimiser).
    ///
    /// # Panics
    ///
    /// Panics with a clean diagnostic (id and store size) when `id` is out
    /// of range; use [`RecordStore::try_read`] for the checked form.
    #[inline]
    pub fn read(&self, id: u32) -> u64 {
        match self.try_read(id) {
            Ok(sum) => sum,
            // vaq-lint: allow(panic-hygiene) -- documented panicking
            // wrapper (see `# Panics` above); `try_read` is the checked
            // form.
            Err(e) => panic!("RecordStore::read: {e}"),
        }
    }

    /// As [`RecordStore::read`], returning an error instead of panicking
    /// on an out-of-range id.
    #[inline]
    pub fn try_read(&self, id: u32) -> Result<u64, RecordStoreError> {
        if self.record_bytes == 0 || id as usize >= self.len() {
            return Err(RecordStoreError::OutOfRange {
                id,
                len: self.len(),
            });
        }
        let lo = id as usize * self.record_bytes;
        let hi = lo + self.record_bytes;
        Ok(self.data[lo..hi].iter().fold(0u64, |acc, &b| {
            acc.wrapping_mul(31).wrapping_add(u64::from(b))
        }))
    }

    /// The raw backing bytes, for verbatim snapshot storage.
    pub(crate) fn raw_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Rebuilds a store from snapshot-loaded backing bytes. The caller
    /// (the snapshot loader) is responsible for `data.len()` being a
    /// whole number of records.
    pub(crate) fn from_raw(data: Vec<u8>, record_bytes: usize) -> RecordStore {
        RecordStore { data, record_bytes }
    }

    /// Splits one logical store into per-part stores: part `s` of the
    /// result holds, at local id `i`, a byte-identical copy of record
    /// `parts[s][i]` of `self`. This is how a sharded engine turns the
    /// dataset's logical record store into **per-shard stores addressed
    /// by shard-local ids** — each record's bytes are copied exactly
    /// once, straight from the logical store into its shard's store.
    ///
    /// Returns an error when any global id is out of range.
    pub fn split(&self, parts: &[Vec<u32>]) -> Result<Vec<RecordStore>, RecordStoreError> {
        let mut out = Vec::with_capacity(parts.len());
        for part in parts {
            let mut data = Vec::with_capacity(part.len() * self.record_bytes);
            for &g in part {
                if self.record_bytes == 0 || g as usize >= self.len() {
                    return Err(RecordStoreError::OutOfRange {
                        id: g,
                        len: self.len(),
                    });
                }
                let lo = g as usize * self.record_bytes;
                data.extend_from_slice(&self.data[lo..lo + self.record_bytes]);
            }
            out.push(RecordStore {
                data,
                record_bytes: self.record_bytes,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = RecordStore::generate(10, 64, 42);
        let b = RecordStore::generate(10, 64, 42);
        assert_eq!(a.len(), 10);
        assert_eq!(a.record_bytes(), 64);
        for i in 0..10 {
            assert_eq!(a.read(i), b.read(i));
        }
        let c = RecordStore::generate(10, 64, 43);
        assert_ne!(
            (0..10).map(|i| a.read(i)).collect::<Vec<_>>(),
            (0..10).map(|i| c.read(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn distinct_records_have_distinct_checksums_usually() {
        let s = RecordStore::generate(100, 256, 7);
        let sums: std::collections::HashSet<u64> = (0..100).map(|i| s.read(i)).collect();
        assert!(sums.len() > 95, "checksum collisions: {}", 100 - sums.len());
    }

    #[test]
    fn zero_byte_records() {
        let s = RecordStore::generate(5, 0, 1);
        assert!(s.is_empty());
        assert_eq!(
            s.try_read(0),
            Err(RecordStoreError::OutOfRange { id: 0, len: 0 })
        );
    }

    #[test]
    fn out_of_range_reads_are_checked() {
        let s = RecordStore::generate(4, 16, 9);
        assert!(s.try_read(3).is_ok());
        assert_eq!(
            s.try_read(4),
            Err(RecordStoreError::OutOfRange { id: 4, len: 4 })
        );
        assert_eq!(
            s.try_read(u32::MAX),
            Err(RecordStoreError::OutOfRange {
                id: u32::MAX,
                len: 4
            })
        );
        let msg = s.try_read(9).unwrap_err().to_string();
        assert!(msg.contains("record id 9"), "{msg}");
        assert!(msg.contains("4 records"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "RecordStore::read: record id 7 out of range")]
    fn unchecked_read_panics_with_a_diagnostic() {
        let s = RecordStore::generate(2, 8, 1);
        s.read(7);
    }

    #[test]
    fn oversized_generation_is_checked() {
        let err = RecordStore::try_generate(usize::MAX, 2, 1).unwrap_err();
        assert_eq!(
            err,
            RecordStoreError::SizeOverflow {
                n: usize::MAX,
                record_bytes: 2
            }
        );
        assert!(err.to_string().contains("overflows"));
    }

    #[test]
    fn split_preserves_record_contents() {
        let logical = RecordStore::generate(9, 32, 0xFEED);
        let parts = vec![vec![4u32, 1, 8], vec![0u32, 7], vec![]];
        let stores = logical.split(&parts).unwrap();
        assert_eq!(stores.len(), 3);
        for (s, part) in stores.iter().zip(&parts) {
            assert_eq!(s.len(), part.len());
            assert_eq!(s.record_bytes(), 32);
            for (local, &global) in part.iter().enumerate() {
                assert_eq!(
                    s.read(local as u32),
                    logical.read(global),
                    "local {local} of part {part:?}"
                );
            }
        }
        // Out-of-range global ids are rejected, not propagated as panics.
        assert_eq!(
            logical.split(&[vec![9u32]]).unwrap_err(),
            RecordStoreError::OutOfRange { id: 9, len: 9 }
        );
    }
}
