//! Fixture-based self-tests for the rule engine.
//!
//! Each rule gets a violating and a clean fixture under
//! `tests/fixtures/<rule>/`, parsed here at *synthetic* repo paths (a
//! rule's scope is path-derived, so the same bytes can be a violation at
//! one path and fine at another). The real tree's `load_tree` skips
//! `fixtures/` directories and `crates/lint/` itself, so these files only
//! ever reach the engine through this test — and they never compile.

use vaq_lint::check_files;
use vaq_lint::source::{
    Finding, SourceFile, ALLOW_GRAMMAR, ATOMIC_ORDERING, BENCH_PROVENANCE, FLOAT_EXACTNESS,
    LOCK_HYGIENE, PANIC_HYGIENE, SINK_DISPATCH, STATS_CONSERVATION, SYNC_FACADE,
};

/// Parses `(rel-path, text)` pairs and runs the full rule engine.
fn lint(files: &[(&str, &str)]) -> Vec<Finding> {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(rel, text)| SourceFile::parse((*rel).to_owned(), text))
        .collect();
    check_files(&parsed)
}

/// `(line, rule)` pairs of every finding, in report order.
fn tagged(findings: &[Finding]) -> Vec<(usize, &'static str)> {
    findings.iter().map(|f| (f.line, f.rule)).collect()
}

fn assert_clean(findings: &[Finding]) {
    assert!(
        findings.is_empty(),
        "expected no findings, got:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

const FLOAT_BAD: &str = include_str!("fixtures/float-exactness/violating.rs");
const FLOAT_CLEAN: &str = include_str!("fixtures/float-exactness/clean.rs");
const POWER_BAD: &str = include_str!("fixtures/float-exactness/power_violating.rs");
const POWER_CLEAN: &str = include_str!("fixtures/float-exactness/power_clean.rs");
const SINK_BAD: &str = include_str!("fixtures/sink-dispatch/violating.rs");
const SINK_CLEAN: &str = include_str!("fixtures/sink-dispatch/clean.rs");
const STATS_BAD: &str = include_str!("fixtures/stats-conservation/violating.rs");
const STATS_CLEAN: &str = include_str!("fixtures/stats-conservation/clean.rs");
const PANIC_BAD: &str = include_str!("fixtures/panic-hygiene/violating.rs");
const PANIC_CLEAN: &str = include_str!("fixtures/panic-hygiene/clean.rs");
const BENCH_BAD: &str = include_str!("fixtures/bench-provenance/violating.rs");
const BENCH_CLEAN: &str = include_str!("fixtures/bench-provenance/clean.rs");
const BENCH_DOC: &str = include_str!("fixtures/bench-provenance/doc_mention.rs");
const SNAP_BAD: &str = include_str!("fixtures/bench-provenance/snapshot_violating.rs");
const SNAP_CLEAN: &str = include_str!("fixtures/bench-provenance/snapshot_clean.rs");
const ALLOW_BAD: &str = include_str!("fixtures/allow-grammar/bad.rs");
const ATOMIC_BAD: &str = include_str!("fixtures/atomic-ordering/violating.rs");
const ATOMIC_CLEAN: &str = include_str!("fixtures/atomic-ordering/clean.rs");
const LOCK_BAD: &str = include_str!("fixtures/lock-hygiene/violating.rs");
const LOCK_CLEAN: &str = include_str!("fixtures/lock-hygiene/clean.rs");
const FACADE_BAD: &str = include_str!("fixtures/sync-facade/violating.rs");
const FACADE_CLEAN: &str = include_str!("fixtures/sync-facade/clean.rs");

// --- float-exactness -------------------------------------------------------

#[test]
fn float_exactness_flags_each_hazard_class() {
    let findings = lint(&[("crates/geom/src/polygon.rs", FLOAT_BAD)]);
    assert_eq!(
        tagged(&findings),
        vec![
            (4, FLOAT_EXACTNESS),  // x == 0.0
            (8, FLOAT_EXACTNESS),  // partial_cmp
            (12, FLOAT_EXACTNESS), // as f64
            (16, FLOAT_EXACTNESS), // float -> usize narrowing
        ]
    );
}

#[test]
fn float_exactness_only_audits_predicate_modules() {
    // same bytes outside crates/geom's predicate modules: out of scope
    assert_clean(&lint(&[("crates/core/src/engine.rs", FLOAT_BAD)]));
    assert_clean(&lint(&[("crates/geom/src/point.rs", FLOAT_BAD)]));
}

#[test]
fn float_exactness_accepts_routed_and_annotated_code() {
    // same-line orient2d call, let-bound orient2d result, allow-comment,
    // and stored-value comparison are all non-findings
    assert_clean(&lint(&[("crates/geom/src/segment.rs", FLOAT_CLEAN)]));
}

#[test]
fn float_exactness_audits_the_weighted_predicate_module() {
    let findings = lint(&[("crates/geom/src/power.rs", POWER_BAD)]);
    assert_eq!(
        tagged(&findings),
        vec![
            (6, FLOAT_EXACTNESS),  // power_dist(x) <= 0.0
            (10, FLOAT_EXACTNESS), // as f64
            (14, FLOAT_EXACTNESS), // float -> usize narrowing
        ]
    );
    // the same bytes outside the audited module set stay out of scope
    assert_clean(&lint(&[("crates/geom/src/point.rs", POWER_BAD)]));
}

#[test]
fn float_exactness_treats_power_incircle_as_exact_sign() {
    // same-line power_incircle call, let-bound power_incircle result,
    // literal-free filter comparison, and allow-comment all pass
    assert_clean(&lint(&[("crates/geom/src/power.rs", POWER_CLEAN)]));
}

// --- sink-dispatch ---------------------------------------------------------

#[test]
fn sink_dispatch_flags_matches_outside_the_sink() {
    let findings = lint(&[("crates/core/src/engine.rs", SINK_BAD)]);
    assert_eq!(
        tagged(&findings),
        vec![
            (6, SINK_DISPATCH),  // OutputMode::Collect => …
            (7, SINK_DISPATCH),  // OutputMode::Count => …
            (13, SINK_DISPATCH), // matches!(…)
            (17, SINK_DISPATCH), // if let OutputMode::…
        ]
    );
}

#[test]
fn sink_dispatch_permits_the_sink_module_itself() {
    // the exact same dispatch code is legal where dispatch belongs
    assert_clean(&lint(&[("crates/core/src/sink.rs", SINK_BAD)]));
}

#[test]
fn sink_dispatch_ignores_mode_construction() {
    // `… => OutputMode::Collect` builds a mode in an arm body — not dispatch
    assert_clean(&lint(&[("crates/core/src/engine.rs", SINK_CLEAN)]));
}

// --- stats-conservation ----------------------------------------------------

#[test]
fn stats_conservation_catches_a_dropped_counter() {
    let findings = lint(&[("crates/core/src/stats.rs", STATS_BAD)]);
    assert_eq!(tagged(&findings), vec![(10, STATS_CONSERVATION)]);
    assert!(
        findings[0].message.contains("`accepted`"),
        "finding should name the dropped field: {}",
        findings[0]
    );
}

#[test]
fn stats_conservation_accepts_in_body_exemptions() {
    // `seed` is absent from the merge but exempted by an in-body allow
    // whose justification names it
    assert_clean(&lint(&[("crates/core/src/stats.rs", STATS_CLEAN)]));
}

// --- panic-hygiene ---------------------------------------------------------

#[test]
fn panic_hygiene_flags_each_panic_class() {
    let findings = lint(&[("crates/core/src/engine.rs", PANIC_BAD)]);
    assert_eq!(
        tagged(&findings),
        vec![
            (4, PANIC_HYGIENE),  // .unwrap()
            (8, PANIC_HYGIENE),  // points[0]
            (15, PANIC_HYGIENE), // panic!
            (20, PANIC_HYGIENE), // .expect("")
        ]
    );
}

#[test]
fn panic_hygiene_exempts_binaries_and_the_bench_crate() {
    assert_clean(&lint(&[("src/bin/vaq.rs", PANIC_BAD)]));
    assert_clean(&lint(&[("crates/bench/src/lib.rs", PANIC_BAD)]));
}

#[test]
fn panic_hygiene_accepts_annotated_and_test_gated_code() {
    // allow-comment on the literal index, messageful expect, and an
    // unwrap inside #[cfg(test)] are all non-findings
    assert_clean(&lint(&[("crates/core/src/engine.rs", PANIC_CLEAN)]));
}

// --- bench-provenance ------------------------------------------------------

#[test]
fn bench_provenance_flags_writers_without_provenance() {
    let findings = lint(&[("crates/bench/src/report.rs", BENCH_BAD)]);
    assert_eq!(tagged(&findings), vec![(4, BENCH_PROVENANCE)]);
}

#[test]
fn bench_provenance_accepts_writers_with_provenance() {
    assert_clean(&lint(&[("crates/bench/src/report.rs", BENCH_CLEAN)]));
}

#[test]
fn bench_provenance_ignores_doc_comment_mentions() {
    // naming a baseline in a doc comment is not writing one
    assert_clean(&lint(&[("crates/bench/src/compare.rs", BENCH_DOC)]));
}

#[test]
fn bench_provenance_only_audits_the_bench_crate() {
    assert_clean(&lint(&[("crates/core/src/engine.rs", BENCH_BAD)]));
}

#[test]
fn bench_provenance_flags_snapshot_writers_with_unpopulated_headers() {
    // `git_revision` / `build_params` appear only in comments — the
    // `code` view blanks those, so the writer is still a finding, and
    // the arm applies outside `crates/bench/` too.
    let findings = lint(&[("crates/core/src/snapfile.rs", SNAP_BAD)]);
    assert_eq!(tagged(&findings), vec![(8, BENCH_PROVENANCE)]);
}

#[test]
fn bench_provenance_accepts_snapshot_writers_embedding_provenance() {
    assert_clean(&lint(&[("crates/core/src/snapfile.rs", SNAP_CLEAN)]));
}

// --- atomic-ordering -------------------------------------------------------

#[test]
fn atomic_ordering_flags_unjustified_sites_and_stray_relaxed() {
    let findings = lint(&[("crates/core/src/batch.rs", ATOMIC_BAD)]);
    assert_eq!(
        tagged(&findings),
        vec![
            (4, ATOMIC_ORDERING),  // SeqCst without a `// ordering:` note
            (8, ATOMIC_ORDERING),  // Release without a note
            (13, ATOMIC_ORDERING), // Relaxed outside the facade, note or not
        ]
    );
    assert!(
        findings[2].message.contains("facade"),
        "Relaxed finding should point at the facade idiom: {}",
        findings[2]
    );
}

#[test]
fn atomic_ordering_permits_commented_relaxed_only_in_the_facade() {
    // same bytes inside the facade: Relaxed's comment now counts, but
    // the two unjustified sites still need their `// ordering:` notes
    let findings = lint(&[("crates/core/src/sync/model.rs", ATOMIC_BAD)]);
    assert_eq!(
        tagged(&findings),
        vec![(4, ATOMIC_ORDERING), (8, ATOMIC_ORDERING)]
    );
}

#[test]
fn atomic_ordering_accepts_justified_and_cmp_orderings() {
    // comment-run justification, same-line justification, std::cmp
    // arms, and bare orderings under #[cfg(test)] are all non-findings
    assert_clean(&lint(&[("crates/core/src/batch.rs", ATOMIC_CLEAN)]));
}

// --- lock-hygiene ----------------------------------------------------------

#[test]
fn lock_hygiene_flags_crossings_and_unordered_nesting() {
    let findings = lint(&[("crates/core/src/shard.rs", LOCK_BAD)]);
    assert_eq!(
        tagged(&findings),
        vec![
            (5, LOCK_HYGIENE),  // .merge( under a live guard
            (10, LOCK_HYGIENE), // nested .lock( without a lock-order note
            (16, LOCK_HYGIENE), // .execute_batch( under a live guard
        ]
    );
}

#[test]
fn lock_hygiene_accepts_scoped_dropped_and_ordered_guards() {
    // block-scoped guard, explicit drop() before emit, lock-order
    // comment on nesting, chained temporary, and test-gated code are
    // all non-findings
    assert_clean(&lint(&[("crates/core/src/shard.rs", LOCK_CLEAN)]));
}

// --- sync-facade -----------------------------------------------------------

#[test]
fn sync_facade_confines_raw_primitives() {
    let findings = lint(&[("crates/core/src/engine.rs", FACADE_BAD)]);
    assert_eq!(
        tagged(&findings),
        vec![
            (1, SYNC_FACADE), // std::sync::atomic import
            (2, SYNC_FACADE), // std::sync::Mutex import
            (3, SYNC_FACADE), // Condvar inside a grouped import
            (6, SYNC_FACADE), // crossbeam scope
            (7, SYNC_FACADE), // path-qualified RwLock
        ]
    );
}

#[test]
fn sync_facade_permits_the_facade_itself() {
    // the facade module is where the raw primitives are supposed to live
    assert_clean(&lint(&[("crates/core/src/sync/model.rs", FACADE_BAD)]));
}

#[test]
fn sync_facade_accepts_facade_imports_arc_and_oncelock() {
    assert_clean(&lint(&[("crates/core/src/engine.rs", FACADE_CLEAN)]));
}

// --- allow grammar ---------------------------------------------------------

#[test]
fn malformed_allows_are_findings_and_do_not_suppress() {
    let findings = lint(&[("crates/core/src/engine.rs", ALLOW_BAD)]);
    assert_eq!(
        tagged(&findings),
        vec![
            (5, ALLOW_GRAMMAR),  // allow(…) with no `--` clause
            (6, PANIC_HYGIENE),  // …and the finding underneath survives
            (10, ALLOW_GRAMMAR), // unknown rule name
            (11, PANIC_HYGIENE),
            (15, ALLOW_GRAMMAR), // empty justification
            (16, PANIC_HYGIENE),
        ]
    );
}

// --- the real tree ---------------------------------------------------------

#[test]
fn real_tree_has_zero_findings() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = vaq_lint::find_root(manifest).expect("workspace root above crates/lint");
    let findings = vaq_lint::check_tree(&root).expect("tree should load");
    assert_clean(&findings);
}
