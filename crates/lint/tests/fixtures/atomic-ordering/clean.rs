use crate::sync::{AtomicUsize, Ordering};
use std::cmp::Ordering as CmpOrdering;

pub fn bump(counter: &AtomicUsize) -> usize {
    // ordering: SeqCst — the claimed index sequence is itself the
    // asserted invariant, so every claim must be totally ordered.
    counter.fetch_add(1, Ordering::SeqCst)
}

pub fn publish(flag: &AtomicUsize) {
    flag.store(1, Ordering::Release); // ordering: pairs with the Acquire load in wait()
}

pub fn classify(a: usize, b: usize) -> CmpOrdering {
    // std::cmp::Ordering arms are out of scope for the atomic rule
    match a.cmp(&b) {
        CmpOrdering::Equal => CmpOrdering::Equal,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_orderings_are_fine_under_cfg_test() {
        let c = AtomicUsize::new(0);
        c.store(3, Ordering::SeqCst);
        assert_eq!(c.load(Ordering::SeqCst), 3);
    }
}
