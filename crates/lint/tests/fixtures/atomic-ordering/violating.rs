use crate::sync::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::SeqCst)
}

pub fn publish(flag: &AtomicUsize) {
    flag.store(1, Ordering::Release);
}

pub fn sneak(counter: &AtomicUsize) -> usize {
    // ordering: a comment does not legalise Relaxed outside the facade
    counter.fetch_add(1, Ordering::Relaxed)
}
