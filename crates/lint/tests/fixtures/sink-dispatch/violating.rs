//! Deliberate OutputMode dispatch outside the sink layer (fixture;
//! never compiled).

pub fn count_mode(mode: OutputMode) -> usize {
    match mode {
        OutputMode::Collect => 0,
        OutputMode::Count => 1,
        _ => 2,
    }
}

pub fn is_materialize(mode: &OutputMode) -> bool {
    matches!(mode, OutputMode::Materialize)
}

pub fn top_k(mode: &OutputMode) -> Option<usize> {
    if let OutputMode::TopKNearest { k } = mode {
        Some(*k)
    } else {
        None
    }
}
