//! Mode construction is not dispatch (fixture; never compiled).

pub fn default_mode() -> OutputMode {
    OutputMode::Collect
}

pub fn parse(token: Option<usize>) -> OutputMode {
    match token {
        Some(k) => OutputMode::TopKNearest { k },
        None => OutputMode::Collect,
    }
}
