//! Malformed allow comments (fixture; never compiled). None of these
//! suppress the finding they sit on.

pub fn first(points: &[u32]) -> u32 {
    // vaq-lint: allow(panic-hygiene)
    points[0]
}

pub fn second(points: &[u32]) -> u32 {
    // vaq-lint: allow(no-such-rule) -- never fires
    points[1]
}

pub fn third(points: &[u32]) -> u32 {
    // vaq-lint: allow(panic-hygiene) --
    points[2]
}
