//! Compares a fresh run against the recorded `BENCH_area_query.json`
//! baseline without writing it (fixture; never compiled).

pub fn regressed(previous: &Report, current: &Report) -> bool {
    current.mean_ns > previous.mean_ns * 2
}
