//! Baseline writer without provenance (fixture; never compiled).

pub fn write_baseline(dir: &std::path::Path, json: &str) -> std::io::Result<()> {
    std::fs::write(dir.join("BENCH_area_query.json"), json)
}
