//! Snapshot header writer that embeds save-time provenance (fixture;
//! never compiled).

pub fn write_header(buf: &mut Vec<u8>, version: u32) {
    buf.extend_from_slice(b"VAQSNAP1");
    buf.extend_from_slice(&version.to_le_bytes());
    write_padded(buf, &git_revision(), 24);
    write_padded(buf, &build_params(), 56);
}
