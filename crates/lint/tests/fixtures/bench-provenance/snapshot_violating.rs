//! Snapshot header writer that never populates the provenance fields
//! (fixture; never compiled).

// The container header reserves bytes for git_revision and build_params,
// but this writer ships them zeroed — mentioning the fields here must
// not count as embedding them.
pub fn write_header(buf: &mut Vec<u8>, version: u32) {
    buf.extend_from_slice(b"VAQSNAP1");
    buf.extend_from_slice(&version.to_le_bytes());
    buf.resize(128, 0);
}
