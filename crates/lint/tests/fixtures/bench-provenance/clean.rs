//! Baseline writer that records provenance (fixture; never compiled).

pub fn write_baseline(dir: &std::path::Path, report: &Report) -> std::io::Result<()> {
    let payload = render_json(&report.results, &report.provenance);
    std::fs::write(dir.join("BENCH_area_query.json"), payload)
}
