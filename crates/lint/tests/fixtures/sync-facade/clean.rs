use crate::sync::{scope, ClaimCounter, Mutex};
use std::sync::Arc;
use std::sync::OnceLock;

pub fn fan_out(items: Arc<Vec<u64>>) -> u64 {
    static TOTAL: OnceLock<u64> = OnceLock::new();
    let next = ClaimCounter::new();
    let total = Mutex::new(0u64);
    scope(|s| {
        let _ = (&items, &next, &total, s);
    });
    *TOTAL.get_or_init(|| 0)
}

#[cfg(test)]
mod tests {
    use std::sync::mpsc;

    #[test]
    fn raw_channels_stay_fine_in_tests() {
        let (tx, rx) = mpsc::channel();
        tx.send(1u8).expect("receiver alive");
        assert_eq!(rx.recv().expect("sender alive"), 1);
    }
}
