use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::sync::{Arc, Condvar};

pub fn spawn_workers(items: &[u64]) {
    crossbeam::scope(|s| {
        let shared = std::sync::RwLock::new(0u64);
        let _ = (items, s, &shared);
    });
}
