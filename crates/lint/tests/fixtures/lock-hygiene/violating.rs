use crate::sync::Mutex;

pub fn merge_under_lock(stats: &Mutex<Vec<u64>>, sink: &mut CollectSink) {
    let guard = stats.lock().expect("stats mutex poisoned");
    sink.merge(&guard);
}

pub fn nested_without_order(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let left = a.lock().expect("left mutex poisoned");
    let right = b.lock().expect("right mutex poisoned");
    *left + *right
}

pub fn execute_under_lock(planner: &Mutex<Planner>, engine: &Engine, areas: &[Rect]) {
    let plan = planner.lock().expect("planner mutex poisoned");
    engine.execute_batch(&plan, areas);
}
