use crate::sync::Mutex;

pub fn merge_after_scope(stats: &Mutex<Vec<u64>>, sink: &mut CollectSink) {
    let snapshot = {
        let guard = stats.lock().expect("stats mutex poisoned");
        guard.clone()
    };
    sink.merge(&snapshot);
}

pub fn emit_after_drop(stats: &Mutex<u64>, sink: &mut CollectSink) {
    let guard = stats.lock().expect("stats mutex poisoned");
    let total = *guard;
    drop(guard);
    sink.emit(total);
}

pub fn ordered_nesting(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let left = a.lock().expect("left mutex poisoned");
    // lock-order: `a` is always taken before `b` (module invariant).
    let right = b.lock().expect("right mutex poisoned");
    *left + *right
}

pub fn chained_temporary(planner: &Mutex<Planner>, spec: &QuerySpec) -> ExecutionPlan {
    planner.lock().expect("planner mutex poisoned").resolve(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_across_merges_are_fine_in_tests() {
        let stats = Mutex::new(vec![1u64]);
        let guard = stats.lock().expect("stats mutex poisoned");
        CollectSink::default().merge(&guard);
    }
}
