//! QueryStats merge conserving every counter (fixture; never compiled).

pub struct QueryStats {
    pub result_size: usize,
    pub candidates: usize,
    pub seed: Option<u32>,
}

impl QueryStats {
    pub fn absorb_shard(&mut self, other: &QueryStats) {
        // vaq-lint: allow(stats-conservation) -- `seed` is per-shard; an
        // aggregate has no single meaningful seed.
        self.result_size += other.result_size;
        self.candidates += other.candidates;
    }
}
