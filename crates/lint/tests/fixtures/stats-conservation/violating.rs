//! QueryStats whose merge drops a counter (fixture; never compiled).

pub struct QueryStats {
    pub result_size: usize,
    pub candidates: usize,
    pub accepted: usize,
}

impl QueryStats {
    pub fn absorb_shard(&mut self, other: &QueryStats) {
        self.result_size += other.result_size;
        self.candidates += other.candidates;
    }
}
