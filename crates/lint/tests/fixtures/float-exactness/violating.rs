//! Deliberate float-exactness violations (fixture; never compiled).

pub fn bad_zero_test(x: f64) -> bool {
    x == 0.0
}

pub fn bad_partial(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}

pub fn bad_cast(n: usize) -> f64 {
    n as f64
}

pub fn bad_narrow(x: f64) -> usize {
    (x * 2.0) as usize
}
