//! Deliberate float-exactness violations in weighted-predicate code
//! (fixture; never compiled).

pub fn bad_hidden_test(site: WeightedPoint, x: Point) -> bool {
    // raw power distance compared against a literal: ties break wrongly
    site.power_dist(x) <= 0.0
}

pub fn bad_weight_cast(w: u64) -> f64 {
    w as f64
}

pub fn bad_radius_bucket(w: f64) -> usize {
    (w.sqrt() * 10.0) as usize
}
