//! Exact-pipeline routing and annotated tolerances (fixture; never
//! compiled).

pub fn routed(a: Point, b: Point, c: Point) -> bool {
    orient2d(a, b, c) > 0.0
}

pub fn tainted(a: Point, b: Point, c: Point) -> bool {
    let d = orient2d(a, b, c);
    d == 0.0
}

pub fn annotated(x: f64) -> bool {
    // vaq-lint: allow(float-exactness) -- documented approximation knob
    x < 0.125
}

pub fn stored_compare(a: Point, b: Point) -> bool {
    a.y > b.y
}
