//! Weighted-predicate code routed through the exact pipeline (fixture;
//! never compiled).

pub fn routed_conflict(a: S, b: S, c: S, d: S) -> bool {
    power_incircle(a.p, b.p, c.p, d.p, a.w, b.w, c.w, d.w) > 0.0
}

pub fn bound_conflict(a: S, b: S, c: S, d: S) -> bool {
    let det = power_incircle(a.p, b.p, c.p, d.p, a.w, b.w, c.w, d.w);
    det == 0.0
}

pub fn filtered(det: f64, errbound: f64) -> bool {
    // two computed values, no literal: exact as an operation
    det > errbound || -det > errbound
}

pub fn annotated(w: f64) -> bool {
    // vaq-lint: allow(float-exactness) -- documented heaviness threshold
    w > 0.25
}
