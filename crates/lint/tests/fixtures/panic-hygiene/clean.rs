//! Panic-free library idioms (fixture; never compiled).

pub fn first_point(points: &[u32]) -> Option<u32> {
    points.first().copied()
}

pub fn head(points: &[u32]) -> u32 {
    // vaq-lint: allow(panic-hygiene) -- callers guarantee non-empty input
    points[0]
}

pub fn load(text: &str) -> u32 {
    text.parse().expect("workload header should be an integer")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
