//! Deliberate panic-hygiene violations (fixture; never compiled).

pub fn first_point(points: &[u32]) -> u32 {
    points.first().copied().unwrap()
}

pub fn head(points: &[u32]) -> u32 {
    points[0]
}

pub fn classify(flag: bool) -> u8 {
    if flag {
        1
    } else {
        panic!("bad flag")
    }
}

pub fn strip(s: &str) -> &str {
    s.strip_prefix('#').expect("")
}
