//! `vaq-lint` — repo-specific static analysis for the voronoi-area-query
//! workspace.
//!
//! The engine's correctness story rests on invariants that `rustc` and
//! clippy cannot see: exact geometric predicates must not be bypassed by
//! raw float comparisons, `OutputMode` dispatch must stay confined to the
//! sink layer, merged `QueryStats` must conserve every counter, library
//! code must not panic on user input, benchmark baselines must carry
//! provenance, atomic orderings must be justified where they are chosen,
//! lock guards must not be held across emit/merge paths, and raw
//! `std::sync` primitives stay confined to the `vaq_core::sync` facade so
//! the `--cfg vaq_race` model checker sees every interleaving that
//! matters. This crate turns those conventions into machine-checked
//! rules (see [`rules`] for each rule's exact contract) with a uniform
//! escape hatch:
//!
//! ```text
//! // vaq-lint: allow(<rule>) -- <justification>
//! ```
//!
//! placed on the offending line or on a comment line directly above it.
//! An allow-comment without a justification is itself a finding, so every
//! exception stays visible and argued in the diff.
//!
//! Run `cargo run -p vaq-lint -- check` for machine-readable findings
//! (`file:line: [rule] message`, non-zero exit on violations) and
//! `cargo run -p vaq-lint -- fix --annotate` to insert TODO-annotations
//! for triage. The scanner walks `crates/` and `src/` under the workspace
//! root; `crates/lint` itself is excluded (its sources and fixtures are
//! made of deliberate rule violations).

pub mod rules;
pub mod source;

use source::{AllowParse, Finding, SourceFile, ALLOW_GRAMMAR};
use std::fs;
use std::path::{Path, PathBuf};

/// Reads and parses every `.rs` file the lint covers, relative to `root`.
pub fn load_tree(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if rel.starts_with("crates/lint/") {
            continue;
        }
        let text = fs::read_to_string(&p)?;
        files.push(SourceFile::parse(rel, &text));
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == ".git" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every rule over the tree rooted at `root` and returns the
/// surviving (non-suppressed) findings plus all allow-grammar findings,
/// sorted by file and line.
pub fn check_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let files = load_tree(root)?;
    Ok(check_files(&files))
}

/// The rule engine proper: runs every rule over an already-parsed file
/// set. Separated from [`check_tree`] so the fixture self-tests can lint
/// synthetic trees without touching the filesystem.
pub fn check_files(files: &[SourceFile]) -> Vec<Finding> {
    let mut raw_findings: Vec<Finding> = Vec::new();
    for file in files {
        let kind = rules::classify(&file.rel);
        rules::float_exactness(file, &kind, &mut raw_findings);
        rules::sink_dispatch(file, &mut raw_findings);
        rules::panic_hygiene(file, &kind, &mut raw_findings);
        rules::bench_provenance(file, &kind, &mut raw_findings);
        rules::atomic_ordering(file, &mut raw_findings);
        rules::lock_hygiene(file, &mut raw_findings);
        rules::sync_facade(file, &mut raw_findings);
    }
    rules::stats_conservation(files, &mut raw_findings);

    let mut findings: Vec<Finding> = Vec::new();
    for f in raw_findings {
        let file = files
            .iter()
            .find(|sf| sf.rel == f.file)
            .expect("finding points at a loaded file");
        // stats-conservation handles its in-body exemptions itself; the
        // generic line-level allow applies to every rule uniformly.
        if !file.allowed(f.line - 1, f.rule) {
            findings.push(f);
        }
    }
    // malformed allow comments are findings in their own right
    for file in files {
        for (idx, allow) in file.allows.iter().enumerate() {
            if let Some(AllowParse::Bad(bad)) = allow {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: idx + 1,
                    rule: ALLOW_GRAMMAR,
                    message: bad.problem.clone(),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// `fix --annotate`: inserts a TODO allow-comment above every finding so
/// a human can triage each site (replace the TODO with a justification,
/// or fix the code and delete the comment). Returns the number of
/// annotations inserted. Allow-grammar findings are not annotatable and
/// are skipped.
pub fn annotate_tree(root: &Path) -> std::io::Result<usize> {
    let findings = check_tree(root)?;
    let mut by_file: std::collections::BTreeMap<String, Vec<&Finding>> =
        std::collections::BTreeMap::new();
    for f in &findings {
        if f.rule != ALLOW_GRAMMAR {
            by_file.entry(f.file.clone()).or_default().push(f);
        }
    }
    let mut inserted = 0usize;
    for (rel, file_findings) in by_file {
        let path = root.join(&rel);
        let text = fs::read_to_string(&path)?;
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        // distinct (line, rule) targets, inserted bottom-up so earlier
        // line numbers stay valid
        let mut targets: Vec<(usize, &'static str)> =
            file_findings.iter().map(|f| (f.line - 1, f.rule)).collect();
        targets.sort();
        targets.dedup();
        for (line, rule) in targets.into_iter().rev() {
            let indent: String = lines[line]
                .chars()
                .take_while(|c| *c == ' ' || *c == '\t')
                .collect();
            lines.insert(
                line,
                format!("{indent}// vaq-lint: allow({rule}) -- TODO(vaq-lint): justify or fix"),
            );
            inserted += 1;
        }
        let mut out = lines.join("\n");
        if text.ends_with('\n') {
            out.push('\n');
        }
        fs::write(&path, out)?;
    }
    Ok(inserted)
}

/// Locates the workspace root by walking up from `start` until a
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
