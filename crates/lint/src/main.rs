//! CLI for `vaq-lint`. See the library docs for the rules and the
//! allow-comment grammar.
//!
//! ```text
//! vaq-lint check [--root <dir>] [--format text|json] [--rule <name>]
//! vaq-lint fix --annotate [--root <dir>]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    root: Option<PathBuf>,
    format: String,
    rule: Option<String>,
    annotate: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vaq-lint check [--root <dir>] [--format text|json] [--rule <name>]\n\
         \x20      vaq-lint fix --annotate [--root <dir>]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut it = std::env::args().skip(1);
    let Some(command) = it.next() else {
        return Err(usage());
    };
    let mut args = Args {
        command,
        root: None,
        format: "text".to_owned(),
        rule: None,
        annotate: false,
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => match it.next() {
                Some(v) => args.root = Some(PathBuf::from(v)),
                None => return Err(usage()),
            },
            "--format" => match it.next() {
                Some(v) if v == "text" || v == "json" => args.format = v,
                _ => return Err(usage()),
            },
            "--rule" => match it.next() {
                Some(v) => args.rule = Some(v),
                None => return Err(usage()),
            },
            "--annotate" => args.annotate = true,
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = args.root.clone().or_else(|| vaq_lint::find_root(&cwd)) else {
        eprintln!("vaq-lint: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };

    match args.command.as_str() {
        "check" => {
            let findings = match vaq_lint::check_tree(&root) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("vaq-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            let findings: Vec<_> = findings
                .into_iter()
                .filter(|f| args.rule.as_deref().is_none_or(|r| r == f.rule))
                .collect();
            if args.format == "json" {
                println!("[");
                for (i, f) in findings.iter().enumerate() {
                    let comma = if i + 1 < findings.len() { "," } else { "" };
                    println!(
                        "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{comma}",
                        json_escape(&f.file),
                        f.line,
                        f.rule,
                        json_escape(&f.message)
                    );
                }
                println!("]");
            } else {
                for f in &findings {
                    println!("{f}");
                }
                let mut per_rule: std::collections::BTreeMap<&str, usize> =
                    std::collections::BTreeMap::new();
                for f in &findings {
                    *per_rule.entry(f.rule).or_default() += 1;
                }
                let breakdown = per_rule
                    .iter()
                    .map(|(r, n)| format!("{r}: {n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                if findings.is_empty() {
                    println!("vaq-lint: clean ({} rules)", vaq_lint::source::RULES.len());
                } else {
                    println!("vaq-lint: {} finding(s) ({breakdown})", findings.len());
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "fix" => {
            if !args.annotate {
                eprintln!("vaq-lint: `fix` currently only supports --annotate");
                return ExitCode::from(2);
            }
            match vaq_lint::annotate_tree(&root) {
                Ok(n) => {
                    println!(
                        "vaq-lint: inserted {n} TODO annotation(s) — replace each TODO with a \
                         justification, or fix the site and delete the comment"
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("vaq-lint: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
