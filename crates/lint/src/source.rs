//! Source model: a lexed-enough view of one Rust file.
//!
//! The scanner is deliberately not a parser. Every rule in this crate only
//! needs three things a token-level pass can provide reliably:
//!
//! 1. **code text** — the file with comments and string/char-literal
//!    *contents* blanked to spaces (delimiters kept), so pattern matches
//!    never fire inside a doc comment or a diagnostic message;
//! 2. **test regions** — which lines sit inside a `#[cfg(test)]`- or
//!    `#[test]`-gated item, tracked by brace depth over the blanked text;
//! 3. **allow comments** — parsed `// vaq-lint: allow(<rule>) -- <why>`
//!    escape hatches, including malformed ones (those become findings of
//!    their own).

use std::fmt;

/// Rule identifiers. Kept as string constants so findings, allow-comments
/// and the CLI all speak the same names.
pub const FLOAT_EXACTNESS: &str = "float-exactness";
pub const SINK_DISPATCH: &str = "sink-dispatch";
pub const STATS_CONSERVATION: &str = "stats-conservation";
pub const PANIC_HYGIENE: &str = "panic-hygiene";
pub const BENCH_PROVENANCE: &str = "bench-provenance";
pub const ATOMIC_ORDERING: &str = "atomic-ordering";
pub const LOCK_HYGIENE: &str = "lock-hygiene";
pub const SYNC_FACADE: &str = "sync-facade";
/// Meta-rule: a `vaq-lint:` comment that does not parse, names an unknown
/// rule, or carries no justification. Not suppressible.
pub const ALLOW_GRAMMAR: &str = "allow-grammar";

/// The eight suppressible rules (ALLOW_GRAMMAR is intentionally absent).
pub const RULES: [&str; 8] = [
    FLOAT_EXACTNESS,
    SINK_DISPATCH,
    STATS_CONSERVATION,
    PANIC_HYGIENE,
    BENCH_PROVENANCE,
    ATOMIC_ORDERING,
    LOCK_HYGIENE,
    SYNC_FACADE,
];

/// A parsed `// vaq-lint: allow(rule) -- justification` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub justification: String,
}

/// A `vaq-lint:` marker that failed to parse; `problem` says how.
#[derive(Debug, Clone)]
pub struct BadAllow {
    pub problem: String,
}

#[derive(Debug, Clone)]
pub enum AllowParse {
    Ok(Allow),
    Bad(BadAllow),
}

/// One finding. `line` is 1-based.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A scanned file: raw lines, blanked code lines, per-line flags.
pub struct SourceFile {
    /// Path relative to the scanned root, `/`-separated.
    pub rel: String,
    pub raw: Vec<String>,
    /// Comments and literal contents blanked to spaces; delimiters kept.
    pub code: Vec<String>,
    /// Comments blanked, string contents kept — for rules that inspect
    /// what a file *names* (e.g. `BENCH_*.json` artifact paths).
    pub strings: Vec<String>,
    /// Line is inside a `#[cfg(test)]` / `#[test]`-gated item.
    pub in_test: Vec<bool>,
    /// Allow comment (well- or mal-formed) on this line, if any.
    pub allows: Vec<Option<AllowParse>>,
}

impl SourceFile {
    pub fn parse(rel: String, text: &str) -> SourceFile {
        let code_text = sanitize(text, false);
        let strings_text = sanitize(text, true);
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let code: Vec<String> = code_text.lines().map(str::to_owned).collect();
        let strings: Vec<String> = strings_text.lines().map(str::to_owned).collect();
        debug_assert_eq!(raw.len(), code.len());
        let in_test = mark_test_regions(&code);
        let allows = raw.iter().map(|l| parse_allow_comment(l)).collect();
        SourceFile {
            rel,
            raw,
            code,
            strings,
            in_test,
            allows,
        }
    }

    /// True when `line` (0-based) is covered by an allow for `rule`: either
    /// an allow comment on the line itself, or on a run of comment-only
    /// lines directly above it.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        let matches =
            |a: &Option<AllowParse>| matches!(a, Some(AllowParse::Ok(al)) if al.rule == rule);
        if matches(&self.allows[line]) {
            return true;
        }
        let mut i = line;
        while i > 0 {
            i -= 1;
            let trimmed = self.raw[i].trim_start();
            if !trimmed.starts_with("//") {
                return false;
            }
            if matches(&self.allows[i]) {
                return true;
            }
        }
        false
    }
}

/// Replaces comments — and, unless `keep_strings`, string/char-literal
/// *contents* — with spaces, preserving newlines, string delimiters and
/// everything else. Handles line comments, nested block comments,
/// escapes, raw strings (`r"…"`, `r#"…"#`, byte variants) and
/// char-vs-lifetime `'`.
pub fn sanitize(text: &str, keep_strings: bool) -> String {
    let b: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    let mut prev_ident = false; // previous emitted code char was ident-ish
    while i < b.len() {
        let c = b[i];
        match c {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let mut depth = 1usize;
                out.push_str("  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        if keep_strings {
                            out.push('\\');
                            out.push(b[i + 1]);
                        } else {
                            out.push(' ');
                            out.push(if b[i + 1] == '\n' { '\n' } else { ' ' });
                        }
                        i += 2;
                    } else if b[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(if keep_strings || b[i] == '\n' {
                            b[i]
                        } else {
                            ' '
                        });
                        i += 1;
                    }
                }
                prev_ident = false;
            }
            'r' | 'b' if !prev_ident && starts_raw_string(&b, i) => {
                // prefix chars (r / br / rb…) up to and incl. the hashes
                let mut j = i;
                while j < b.len() && (b[j] == 'r' || b[j] == 'b') {
                    out.push(b[j]);
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < b.len() && b[j] == '#' {
                    out.push('#');
                    hashes += 1;
                    j += 1;
                }
                out.push('"'); // opening quote (starts_raw_string guarantees it)
                j += 1;
                'raw: while j < b.len() {
                    if b[j] == '"' {
                        let mut k = 0usize;
                        while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    out.push(if keep_strings || b[j] == '\n' {
                        b[j]
                    } else {
                        ' '
                    });
                    j += 1;
                }
                i = j;
                prev_ident = false;
            }
            '\'' => {
                // char literal vs lifetime: a literal is '\…' or 'x' with a
                // closing quote right after one (possibly escaped) char.
                let is_char_lit = if i + 1 < b.len() && b[i + 1] == '\\' {
                    true
                } else {
                    i + 2 < b.len() && b[i + 1] != '\'' && b[i + 2] == '\''
                };
                if is_char_lit {
                    out.push('\'');
                    i += 1;
                    while i < b.len() {
                        if b[i] == '\\' && i + 1 < b.len() {
                            out.push(' ');
                            out.push(if b[i + 1] == '\n' { '\n' } else { ' ' });
                            i += 2;
                        } else if b[i] == '\'' {
                            out.push('\'');
                            i += 1;
                            break;
                        } else {
                            out.push(' ');
                            i += 1;
                        }
                    }
                } else {
                    out.push('\''); // lifetime tick
                    i += 1;
                }
                prev_ident = false;
            }
            _ => {
                out.push(c);
                prev_ident = c.is_alphanumeric() || c == '_';
                i += 1;
            }
        }
    }
    out
}

fn starts_raw_string(b: &[char], i: usize) -> bool {
    // at `r` or `b`: accept r" r#" br" rb…  — prefix letters, hashes, quote
    let mut j = i;
    let mut seen_r = false;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') {
        seen_r |= b[j] == 'r';
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    if !seen_r {
        return false;
    }
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// Marks lines inside `#[cfg(test)]`- or `#[test]`-gated items by brace
/// counting over the blanked code lines. An armed attribute covers the
/// following item up to its closing brace (or terminating `;`).
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut exit_depth: i64 = 0;
    let mut in_region = false;
    for (idx, line) in code.iter().enumerate() {
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        let before = depth;
        depth += opens - closes;

        if in_region {
            flags[idx] = true;
            if depth <= exit_depth {
                in_region = false;
            }
            continue;
        }
        if armed {
            flags[idx] = true;
            if opens > 0 {
                if depth > before || (opens == closes && opens > 0 && depth == before) {
                    // either the block stays open past this line, or the
                    // whole item opened and closed here (single-line item).
                    if depth > before {
                        in_region = true;
                        exit_depth = before;
                    }
                    armed = false;
                }
            } else if line.contains(';') {
                armed = false; // `#[cfg(test)] use …;` / `mod tests;`
            }
            continue;
        }
        if is_test_attr(line) {
            armed = true;
            flags[idx] = true;
        }
    }
    flags
}

fn is_test_attr(code_line: &str) -> bool {
    let t = code_line.trim_start();
    t.starts_with("#[cfg(test)]")
        || t.starts_with("#[cfg(all(test")
        || t.starts_with("#[cfg(any(test")
        || t.starts_with("#[test]")
        || t.starts_with("#[bench]")
}

/// Parses a `vaq-lint:` marker on one raw line. Returns `None` when the
/// line carries no marker; `Bad` when it does but the grammar
/// `// vaq-lint: allow(<known-rule>) -- <non-empty justification>` is
/// violated.
pub fn parse_allow_comment(raw_line: &str) -> Option<AllowParse> {
    let marker = "vaq-lint:";
    let pos = raw_line.find(marker)?;
    // must live in a line comment
    let before = &raw_line[..pos];
    if !before.contains("//") {
        return None;
    }
    let rest = raw_line[pos + marker.len()..].trim_start();
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Some(AllowParse::Bad(BadAllow {
            problem: format!(
                "expected `allow(<rule>) -- <justification>` after `vaq-lint:`, found `{}`",
                rest.trim_end()
            ),
        }));
    };
    let Some(close) = inner.find(')') else {
        return Some(AllowParse::Bad(BadAllow {
            problem: "unterminated `allow(` — missing `)`".to_owned(),
        }));
    };
    let rule = inner[..close].trim().to_owned();
    if !RULES.contains(&rule.as_str()) {
        return Some(AllowParse::Bad(BadAllow {
            problem: format!(
                "unknown rule `{rule}` (expected one of: {})",
                RULES.join(", ")
            ),
        }));
    }
    let after = inner[close + 1..].trim_start();
    let Some(just) = after.strip_prefix("--") else {
        return Some(AllowParse::Bad(BadAllow {
            problem: format!("allow({rule}) without a `-- <justification>` clause"),
        }));
    };
    let just = just.trim();
    if just.is_empty() {
        return Some(AllowParse::Bad(BadAllow {
            problem: format!("allow({rule}) with an empty justification"),
        }));
    }
    Some(AllowParse::Ok(Allow {
        rule,
        justification: just.to_owned(),
    }))
}
