//! The eight repo invariants, as token-level checks over [`SourceFile`]s.
//!
//! Each rule documents its exact scope — what it fires on, what it
//! deliberately does not — because a lexical lint lives or dies by a
//! precisely-stated contract, not by aspiration.

use crate::source::{
    Finding, SourceFile, ATOMIC_ORDERING, BENCH_PROVENANCE, FLOAT_EXACTNESS, LOCK_HYGIENE,
    PANIC_HYGIENE, SINK_DISPATCH, STATS_CONSERVATION, SYNC_FACADE,
};

/// File classification derived from the root-relative path.
pub struct FileKind {
    /// `src/bin/**` or `crates/*/src/bin/**` — binaries may panic freely.
    pub is_bin: bool,
    /// Anywhere under `crates/bench/` — the benchmark harness.
    pub is_bench_crate: bool,
    /// One of the `vaq_geom` predicate modules the float rule audits.
    pub is_predicate_module: bool,
}

pub fn classify(rel: &str) -> FileKind {
    let is_bin = rel.contains("/bin/") || rel == "src/main.rs";
    let is_bench_crate = rel.starts_with("crates/bench/");
    let is_predicate_module = rel.starts_with("crates/geom/src/")
        && rel
            .rsplit('/')
            .next()
            .map(|f| {
                f == "segment.rs"
                    || f == "triangle.rs"
                    || f == "polygon.rs"
                    || f == "power.rs"
                    || f.starts_with("prepared")
            })
            .unwrap_or(false);
    FileKind {
        is_bin,
        is_bench_crate,
        is_predicate_module,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True when `needle` occurs in `hay` with no ident char butted against
/// either end (a whole-token match).
fn has_token(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(hay[..at].chars().next_back().unwrap());
        let after = at + needle.len();
        let after_ok = after >= hay.len() || !is_ident_char(hay[after..].chars().next().unwrap());
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 1: float-exactness
// ---------------------------------------------------------------------------

/// **float-exactness** — inside the `vaq_geom` predicate modules
/// (`segment.rs`, `triangle.rs`, `polygon.rs`, `power.rs`,
/// `prepared*.rs`), flags:
///
/// * a comparison operator (`==` `!=` `<` `>` `<=` `>=`) with a float
///   *literal* on either side — the classic "compare a computed float
///   against 0.0" hazard — **unless the comparison is routed through the
///   exact pipeline**: the line calls `orient2d`/`incircle` directly, or
///   the compared identifier is `let`-bound from one of them earlier in
///   the file (their results carry the exact sign, so a zero test on them
///   is the robust predicate itself). `orient2d_filter` results are
///   deliberately *not* exempt: the value is only certified when the
///   paired `ok` flag is true, which a token scanner cannot check — those
///   sites carry an allow-comment stating the guard. Comparisons between
///   two stored values (`a.y > b.y`) are exact as operations and are
///   deliberately not flagged, and `total_cmp` is always fine;
/// * `.partial_cmp(` — NaN-propagating ordering in predicate code;
/// * an `as f64` cast (int→float is lossy past 2^53, and in predicate
///   code it usually marks a computation leaving the exact pipeline);
/// * an `as usize` / `as u64` / `as i64` / `as u32` / `as i32` cast on a
///   line with float provenance (a float literal, `as f64`, or a
///   `.sqrt()`/`.ceil()`/`.floor()`/`.round()` call) — i.e. a candidate
///   float→int narrowing. Plain integer index widening (`ei as usize`)
///   is not flagged.
///
/// Every survivor must be routed through `orient2d`/expansion arithmetic
/// or carry an allow-comment justifying why the raw operation is exact.
pub fn float_exactness(file: &SourceFile, kind: &FileKind, out: &mut Vec<Finding>) {
    if !kind.is_predicate_module {
        return;
    }
    let exact_idents = exact_sign_idents(file);
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let mut msgs: Vec<String> = Vec::new();
        if line_has_unrouted_float_comparison(code, &exact_idents) {
            msgs.push(
                "raw comparison against a float literal in a predicate module \
                 (route through orient2d/expansion or annotate why it is exact)"
                    .to_owned(),
            );
        }
        if code.contains(".partial_cmp(") {
            msgs.push(
                "partial_cmp in a predicate module (use total_cmp or an exact comparator)"
                    .to_owned(),
            );
        }
        if has_token(code, "as") {
            if cast_to(code, "f64") {
                msgs.push(
                    "`as f64` cast in a predicate module (lossy past 2^53; annotate or \
                     compute in the exact pipeline)"
                        .to_owned(),
                );
            }
            let float_provenance = contains_float_literal(code)
                || cast_to(code, "f64")
                || [".sqrt(", ".ceil(", ".floor(", ".round("]
                    .iter()
                    .any(|m| code.contains(m));
            if float_provenance {
                for ty in ["usize", "u64", "i64", "u32", "i32"] {
                    if cast_to(code, ty) {
                        msgs.push(format!(
                            "`as {ty}` narrowing cast on a float-bearing line in a \
                             predicate module (truncation; annotate or avoid)"
                        ));
                        break;
                    }
                }
            }
        }
        for m in msgs {
            out.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule: FLOAT_EXACTNESS,
                message: m,
            });
        }
    }
}

/// `… as <ty>` with token boundaries on both `as` and the type.
fn cast_to(code: &str, ty: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(" as ") {
        let at = start + pos;
        let rest = code[at + 4..].trim_start();
        if let Some(after) = rest.strip_prefix(ty) {
            if after.is_empty() || !is_ident_char(after.chars().next().unwrap()) {
                return true;
            }
        }
        start = at + 4;
    }
    false
}

fn contains_float_literal(code: &str) -> bool {
    find_float_literals(code).next().is_some()
}

/// Yields `(start, end)` byte ranges of float literals (`12.`, `12.5`,
/// `0.0`) in a code line. Stops the mantissa before a second `.` so range
/// syntax (`0.0..1.0`) yields two literals, not a mangled one.
fn find_float_literals(code: &str) -> impl Iterator<Item = (usize, usize)> + '_ {
    let b = code.as_bytes();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        while i < b.len() {
            if b[i].is_ascii_digit() && (i == 0 || !is_ident_char(b[i - 1] as char)) {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                // field access / method call / range: only a `.` followed by
                // a digit (or end-of-number `.`) makes this a float literal
                if i < b.len() && b[i] == b'.' && !(i + 1 < b.len() && b[i + 1] == b'.') {
                    let frac_is_digits = i + 1 < b.len() && b[i + 1].is_ascii_digit();
                    let ends_number = i + 1 >= b.len() || !is_ident_char(b[i + 1] as char);
                    if frac_is_digits || ends_number {
                        i += 1;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                        return Some((start, i));
                    }
                }
                // plain integer: skip any suffix and keep scanning
                while i < b.len() && is_ident_char(b[i] as char) {
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        None
    })
}

/// Exact-sign predicate calls: results carry the true sign of the
/// underlying exact value, so comparing them against zero is robust.
/// `power_incircle` is its own token here — `has_token` treats the `_`
/// as an ident char, so the `incircle` entry does not match inside it.
const EXACT_SIGN_FNS: [&str; 4] = ["orient2d", "incircle", "expansion_sign", "power_incircle"];

/// Identifiers `let`-bound (as a plain name, not a tuple pattern) from a
/// direct `orient2d(...)`/`incircle(...)` call anywhere in the file.
/// File-scoped and flow-insensitive — a rebinding of the same name to an
/// unfiltered float later in the file would slip through — but predicate
/// code consistently names these `d1`/`o`/…, and the escape hatch exists
/// for anything the heuristic mis-judges.
fn exact_sign_idents(file: &SourceFile) -> Vec<String> {
    let mut idents: Vec<String> = Vec::new();
    for code in &file.code {
        let t = code.trim_start();
        let Some(rest) = t.strip_prefix("let ") else {
            continue;
        };
        let Some(eq) = rest.find('=') else {
            continue;
        };
        // `let d1 = …` / `let d1: f64 = …`; tuple patterns (orient2d_filter
        // destructuring) intentionally do not match.
        let name = rest[..eq].split(':').next().unwrap_or("").trim();
        if name.is_empty() || !name.chars().all(is_ident_char) {
            continue;
        }
        let rhs = &rest[eq + 1..];
        if EXACT_SIGN_FNS.iter().any(|f| has_token(rhs, f)) && !idents.iter().any(|i| i == name) {
            idents.push(name.to_owned());
        }
    }
    idents
}

/// A comparison operator directly adjacent (modulo spaces) to a float
/// literal on either side, where the compared expression is neither a
/// same-line exact-predicate call nor an exact-sign identifier.
fn line_has_unrouted_float_comparison(code: &str, exact_idents: &[String]) -> bool {
    if EXACT_SIGN_FNS.iter().any(|f| has_token(code, f)) {
        return false; // routed: the line computes the exact sign itself
    }
    for (start, end) in find_float_literals(code) {
        let before = code[..start].trim_end();
        let after = code[end..].trim_start();
        if ends_with_comparison(before) {
            let operand = trailing_ident(strip_comparison_suffix(before).trim_end());
            if !exact_idents.iter().any(|i| i == operand) {
                return true;
            }
        } else if starts_with_comparison(after) {
            let operand = leading_ident(strip_comparison_prefix(after).trim_start());
            if !exact_idents.iter().any(|i| i == operand) {
                return true;
            }
        }
    }
    false
}

fn strip_comparison_suffix(s: &str) -> &str {
    for op in ["==", "!=", "<=", ">="] {
        if let Some(rest) = s.strip_suffix(op) {
            return rest;
        }
    }
    s.strip_suffix(['<', '>']).unwrap_or(s)
}

fn strip_comparison_prefix(s: &str) -> &str {
    for op in ["==", "!=", "<=", ">="] {
        if let Some(rest) = s.strip_prefix(op) {
            return rest;
        }
    }
    s.strip_prefix(['<', '>']).unwrap_or(s)
}

/// The maximal ident-char run ending `s` (`""` when `s` ends in anything
/// else — a call, a close-paren — which never matches an exact ident).
fn trailing_ident(s: &str) -> &str {
    let start = s
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    &s[start..]
}

fn leading_ident(s: &str) -> &str {
    let end = s
        .char_indices()
        .find(|(_, c)| !is_ident_char(*c))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    &s[..end]
}

fn ends_with_comparison(s: &str) -> bool {
    // two-char ops first; lone `<`/`>` must not be `<<`/`>>`/`->`/`=>`
    if s.ends_with("==") || s.ends_with("!=") || s.ends_with("<=") || s.ends_with(">=") {
        return true;
    }
    if (s.ends_with('<') && !s.ends_with("<<"))
        || (s.ends_with('>') && !s.ends_with(">>") && !s.ends_with("->") && !s.ends_with("=>"))
    {
        return true;
    }
    false
}

fn starts_with_comparison(s: &str) -> bool {
    if s.starts_with("==") || s.starts_with("!=") || s.starts_with("<=") || s.starts_with(">=") {
        return true;
    }
    (s.starts_with('<') && !s.starts_with("<<")) || (s.starts_with('>') && !s.starts_with(">>"))
}

// ---------------------------------------------------------------------------
// Rule 2: sink-dispatch
// ---------------------------------------------------------------------------

/// **sink-dispatch** — the single `match` over `OutputMode` lives in
/// `crates/core/src/sink.rs` (`dispatch_sink`); everywhere else, flags:
///
/// * `match` and `OutputMode` on the same line (matching the scrutinee),
/// * an `OutputMode::…  =>` match arm — with `OutputMode::` in *pattern*
///   position (before the `=>`); `… => Ok(OutputMode::Collect)` merely
///   constructs a mode in an arm body and is fine,
/// * `matches!(…OutputMode…)` / `if let OutputMode::…`.
///
/// This codifies the PR-5 invariant that execution paths stay generic
/// over `ResultSink` instead of re-growing per-mode branches.
pub fn sink_dispatch(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.rel == "crates/core/src/sink.rs" {
        return;
    }
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        if !code.contains("OutputMode") {
            continue;
        }
        let pattern_arm = match (code.find("OutputMode::"), code.find("=>")) {
            (Some(om), Some(arrow)) => om < arrow,
            _ => false,
        };
        let dispatchy = (has_token(code, "match") && code.contains("OutputMode"))
            || pattern_arm
            || (code.contains("matches!") && code.contains("OutputMode"))
            || (code.contains("if let") && code.contains("OutputMode::"));
        if dispatchy {
            out.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule: SINK_DISPATCH,
                message: "OutputMode dispatch outside crates/core/src/sink.rs — route \
                          through sink::dispatch_sink / a ResultSink instead"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: stats-conservation
// ---------------------------------------------------------------------------

/// **stats-conservation** — every public field of `QueryStats`, and of
/// any field type that itself defines an `absorb`/`absorb_shard`/`merge`
/// method (`CacheCounters`, `PredicateCounters`, `AccessStats`, …), must
/// be *mentioned* in that struct's merge body. A counter a merge never
/// touches is exactly the dropped-counter/double-count bug class the
/// `maybe_compact` regression exposed.
///
/// Exemptions are declared where they are decided: an allow-comment
/// inside the merge body (or on the field declaration) whose
/// justification names the field.
pub fn stats_conservation(files: &[SourceFile], out: &mut Vec<Finding>) {
    let mut visited: Vec<String> = Vec::new();
    check_struct_merge(files, "QueryStats", &mut visited, out);
}

struct StructDef<'a> {
    file: &'a SourceFile,
    /// (0-based line, field name, field type token)
    fields: Vec<(usize, String, String)>,
}

fn check_struct_merge(
    files: &[SourceFile],
    name: &str,
    visited: &mut Vec<String>,
    out: &mut Vec<Finding>,
) {
    if visited.iter().any(|v| v == name) {
        return;
    }
    visited.push(name.to_owned());
    let Some(def) = find_struct(files, name) else {
        return;
    };
    let merge = find_merge_body(def.file, name);
    match merge {
        None => {
            if name == "QueryStats" {
                out.push(Finding {
                    file: def.file.rel.clone(),
                    line: 1,
                    rule: STATS_CONSERVATION,
                    message: format!("struct {name} has no absorb_shard/absorb/merge method"),
                });
            }
        }
        Some((fn_line, body_range, fn_name)) => {
            let body_code: Vec<&str> = def.file.code[body_range.clone()]
                .iter()
                .map(|s| s.as_str())
                .collect();
            for (field_line, field, _ty) in &def.fields {
                let mentioned = body_code.iter().any(|l| has_token(l, field));
                if mentioned {
                    continue;
                }
                // in-body exemption whose justification names the field
                let exempted = def.file.raw[body_range.clone()].iter().any(|raw| {
                    match crate::source::parse_allow_comment(raw) {
                        Some(crate::source::AllowParse::Ok(a)) => {
                            a.rule == STATS_CONSERVATION && has_token(&a.justification, field)
                        }
                        _ => false,
                    }
                }) || def.file.allowed(*field_line, STATS_CONSERVATION);
                if !exempted {
                    out.push(Finding {
                        file: def.file.rel.clone(),
                        line: fn_line + 1,
                        rule: STATS_CONSERVATION,
                        message: format!(
                            "field `{field}` of {name} is never referenced in {name}::{fn_name} \
                             — sum it, or add an in-body allow naming `{field}`"
                        ),
                    });
                }
            }
        }
    }
    // recurse into mergeable field types
    for (_, _, ty) in &def.fields {
        let inner = ty
            .trim()
            .trim_start_matches("Option<")
            .trim_end_matches('>')
            .rsplit("::")
            .next()
            .unwrap_or("")
            .trim()
            .to_owned();
        if !inner.is_empty() && inner.chars().next().unwrap().is_ascii_uppercase() {
            check_struct_merge(files, &inner, visited, out);
        }
    }
}

fn find_struct<'a>(files: &'a [SourceFile], name: &str) -> Option<StructDef<'a>> {
    for file in files {
        for (idx, code) in file.code.iter().enumerate() {
            if file.in_test[idx] {
                continue;
            }
            let t = code.trim_start();
            let decl = format!("pub struct {name}");
            if !t.starts_with(&decl) {
                continue;
            }
            let after = &t[decl.len()..];
            if after.chars().next().map(is_ident_char).unwrap_or(false) {
                continue; // prefix of a longer name
            }
            if !code.contains('{') {
                return None; // tuple/unit struct: nothing to check
            }
            let mut fields = Vec::new();
            let mut depth = 0i64;
            for (j, line) in file.code.iter().enumerate().skip(idx) {
                depth += line.matches('{').count() as i64;
                depth -= line.matches('}').count() as i64;
                if j > idx {
                    let lt = line.trim_start();
                    if let Some(rest) = lt.strip_prefix("pub ") {
                        if let Some(colon) = rest.find(':') {
                            let fname = rest[..colon].trim();
                            if fname.chars().all(is_ident_char) && !fname.is_empty() {
                                let ty = rest[colon + 1..].trim().trim_end_matches(',').to_owned();
                                fields.push((j, fname.to_owned(), ty));
                            }
                        }
                    }
                }
                if depth <= 0 {
                    break;
                }
            }
            return Some(StructDef { file, fields });
        }
    }
    None
}

/// Finds `fn absorb_shard` / `fn absorb` / `fn merge` inside `impl <name>`
/// in the struct's file. Returns (fn line, body line range, fn name).
fn find_merge_body(
    file: &SourceFile,
    name: &str,
) -> Option<(usize, std::ops::Range<usize>, &'static str)> {
    let impl_decl = format!("impl {name}");
    let mut in_impl = false;
    let mut impl_exit = 0i64;
    let mut depth = 0i64;
    for fn_name in ["absorb_shard", "absorb", "merge"] {
        let needle = format!("fn {fn_name}(");
        depth = 0;
        in_impl = false;
        for (idx, code) in file.code.iter().enumerate() {
            let opens = code.matches('{').count() as i64;
            let closes = code.matches('}').count() as i64;
            if !in_impl {
                let t = code.trim_start();
                if t.starts_with(&impl_decl)
                    && !t[impl_decl.len()..]
                        .chars()
                        .next()
                        .map(is_ident_char)
                        .unwrap_or(false)
                {
                    in_impl = true;
                    impl_exit = depth;
                }
            } else if code.contains(&needle) {
                // body: from this line's `{` to the matching close
                let mut d = 0i64;
                let mut started = false;
                for (j, l) in file.code.iter().enumerate().skip(idx) {
                    d += l.matches('{').count() as i64 - l.matches('}').count() as i64;
                    if l.contains('{') {
                        started = true;
                    }
                    if started && d <= 0 {
                        return Some((idx, idx..j + 1, fn_name));
                    }
                }
                return Some((idx, idx..file.code.len(), fn_name));
            }
            depth += opens - closes;
            if in_impl && depth <= impl_exit && closes > 0 {
                in_impl = false;
            }
        }
    }
    let _ = (in_impl, impl_exit, depth);
    None
}

// ---------------------------------------------------------------------------
// Rule 4: panic-hygiene
// ---------------------------------------------------------------------------

/// **panic-hygiene** — in library code (everything except binaries, the
/// bench harness crate, `tests/`/`benches/`/`examples/` trees and
/// `#[cfg(test)]` regions), flags:
///
/// * `.unwrap()` — always; convert to `?`/`expect` with an actionable
///   message, or annotate why it is infallible;
/// * `.expect("")` / `.expect()` — an expect that explains nothing is an
///   unwrap with extra steps (a non-empty message is allowed);
/// * `panic!` / `unreachable!` / `todo!` / `unimplemented!` — annotate
///   the contract that makes them unreachable, or return an error;
/// * indexing whose index starts with an integer literal (`v[0]`,
///   `&s[1..]`) — the empty-input panic class; `v[i]` with a computed
///   index is not flagged (the scanner cannot see bounds either way, and
///   loop indices are overwhelmingly bounds-derived).
///
/// `assert!`-family macros are deliberately allowed: they state
/// contracts, and the differential suites rely on them.
pub fn panic_hygiene(file: &SourceFile, kind: &FileKind, out: &mut Vec<Finding>) {
    if kind.is_bin || kind.is_bench_crate {
        return;
    }
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let mut msgs: Vec<String> = Vec::new();
        if code.contains(".unwrap()") {
            msgs.push(
                "naked unwrap() in library code (use ?/expect with an actionable message, \
                 or annotate why this cannot fail)"
                    .to_owned(),
            );
        }
        if let Some(pos) = code.find(".expect(") {
            let arg = code[pos + ".expect(".len()..].trim_start();
            if arg.starts_with(')') || arg.starts_with("\"\"") {
                msgs.push("expect() without a message is an unwrap with extra steps".to_owned());
            }
        }
        for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            if has_token(code, &mac[..mac.len() - 1]) && code.contains(mac) {
                msgs.push(format!(
                    "{mac} in library code (return an error, or annotate the invariant \
                     that makes this unreachable)"
                ));
            }
        }
        if has_literal_index(code) {
            msgs.push(
                "slice indexing with a literal index/range start in library code \
                 (panics on short input; use get()/first(), or annotate the length invariant)"
                    .to_owned(),
            );
        }
        for m in msgs {
            out.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule: PANIC_HYGIENE,
                message: m,
            });
        }
    }
}

/// `expr[<digit>…` where `expr` ends in an ident char, `)` or `]` —
/// i.e. indexing, not array literals/types (`[0u8; 4]`), attributes or
/// macro brackets (`vec![0; n]`).
fn has_literal_index(code: &str) -> bool {
    let b = code.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' || i == 0 {
            continue;
        }
        let prev = b[i - 1] as char;
        if !(is_ident_char(prev) || prev == ')' || prev == ']') {
            continue;
        }
        let mut j = i + 1;
        while j < b.len() && b[j] == b' ' {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 5: bench-provenance
// ---------------------------------------------------------------------------

/// **bench-provenance** — artifacts that outlive the process must carry
/// their own provenance. Two writer classes are audited:
///
/// * any file under `crates/bench/` that names a `BENCH_*.json`
///   artifact (a baseline writer) must also reference the `provenance`
///   machinery, so every recorded number stays attributable to a git
///   revision, workload size and thread count;
/// * any file, in any crate, that embeds the snapshot container magic
///   (`VAQSNAP…`) in a literal (a container writer) must reference the
///   `git_revision` and `build_params` identifiers **in code** — the
///   container header reserves fields for both, and a writer that does
///   not populate them produces snapshots nobody can trace back to a
///   build. Comments promising provenance do not count.
pub fn bench_provenance(file: &SourceFile, kind: &FileKind, out: &mut Vec<Finding>) {
    if kind.is_bench_crate {
        // Writer detection looks at string literals only (`strings`
        // view): a doc comment *mentioning* a baseline is not a writer.
        let bench_line = file.strings.iter().enumerate().find_map(|(idx, line)| {
            (!file.in_test[idx] && line.contains("BENCH_") && line.contains(".json")).then_some(idx)
        });
        if let Some(idx) = bench_line {
            // The reference must be real — an identifier or a serialized
            // key (`strings` view: comments blanked, literal contents
            // kept). A doc comment promising provenance does not count.
            let has_provenance = file
                .strings
                .iter()
                .any(|l| has_token(l, "provenance") || has_token(l, "Provenance"));
            if !has_provenance {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: idx + 1,
                    rule: BENCH_PROVENANCE,
                    message: "BENCH_*.json writer without a `provenance` object — record git \
                              rev, workload sizes and thread count alongside the numbers"
                        .to_owned(),
                });
            }
        }
    }
    // Snapshot-container arm: the magic in a (byte-)string literal marks
    // a writer of the on-disk header, whatever crate it lives in.
    let magic_line =
        file.strings.iter().enumerate().find_map(|(idx, line)| {
            (!file.in_test[idx] && line.contains("VAQSNAP")).then_some(idx)
        });
    if let Some(idx) = magic_line {
        // `code` view (literals and comments blanked): the identifiers
        // must appear in executable code, not in a comment or a doc
        // string describing the header.
        let embeds_both = file.code.iter().any(|l| has_token(l, "git_revision"))
            && file.code.iter().any(|l| has_token(l, "build_params"));
        if !embeds_both {
            out.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule: BENCH_PROVENANCE,
                message: "snapshot container writer that never populates the header's \
                          provenance fields — embed `git_revision` and `build_params` in \
                          code, not comments"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 6: atomic-ordering
// ---------------------------------------------------------------------------

/// The memory-ordering variants of `std::sync::atomic::Ordering`. Matching
/// on these (rather than bare `Ordering::`) keeps `std::cmp::Ordering`
/// arms (`Ordering::Less`, …) out of scope.
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The sync facade: the one module allowed to touch raw `std::sync`
/// primitives, and the only home of the documented `Relaxed` idiom.
fn is_sync_facade(rel: &str) -> bool {
    rel == "crates/core/src/sync.rs" || rel.starts_with("crates/core/src/sync/")
}

/// **atomic-ordering** — outside `#[cfg(test)]` regions, every use of a
/// memory-ordering constant (`Ordering::Relaxed` / `Acquire` / `Release`
/// / `AcqRel` / `SeqCst`) must carry a `// ordering:` justification — on
/// the line itself or in the run of comment lines directly above — that
/// argues why that strength suffices. Additionally, `Ordering::Relaxed`
/// is permitted only inside the sync facade (`crates/core/src/sync*`),
/// where the claim-counter idiom documents why no cross-thread ordering
/// is needed; anywhere else `Relaxed` is a finding even when commented
/// (promote to the facade's `ClaimCounter`, use a stronger ordering, or
/// carry a justified allow).
///
/// `std::cmp::Ordering` (`Less`/`Equal`/`Greater`) never matches, and a
/// comment merely *mentioning* `Ordering::Relaxed` does not count as a
/// justification — the marker is the lowercase `ordering:` tag.
pub fn atomic_ordering(file: &SourceFile, out: &mut Vec<Finding>) {
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        let Some(variant) = ATOMIC_ORDERINGS
            .iter()
            .find(|v| code.contains(&format!("Ordering::{v}")))
        else {
            continue;
        };
        if *variant == "Relaxed" && !is_sync_facade(&file.rel) {
            out.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule: ATOMIC_ORDERING,
                message: "Ordering::Relaxed outside the sync facade — the only sanctioned \
                          Relaxed idiom is the facade's ClaimCounter; use it, pick a \
                          stronger ordering, or carry a justified allow"
                    .to_owned(),
            });
            continue;
        }
        if !has_comment_tag(file, idx, "ordering:") {
            out.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule: ATOMIC_ORDERING,
                message: format!(
                    "Ordering::{variant} without a `// ordering:` justification — state why \
                     this strength suffices on the line or directly above it"
                ),
            });
        }
    }
}

/// True when 0-based `line` carries a `// <tag>` justification: the tag
/// appears inside a trailing comment on the line itself, or anywhere in
/// the run of comment-only lines directly above (the same shape
/// [`SourceFile::allowed`] uses for allow comments).
fn has_comment_tag(file: &SourceFile, line: usize, tag: &str) -> bool {
    let on_line = file.raw[line]
        .find("//")
        .map(|p| file.raw[line][p..].contains(tag))
        .unwrap_or(false);
    if on_line {
        return true;
    }
    let mut i = line;
    while i > 0 {
        i -= 1;
        let trimmed = file.raw[i].trim_start();
        if !trimmed.starts_with("//") {
            return false;
        }
        if trimmed.contains(tag) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 7: lock-hygiene
// ---------------------------------------------------------------------------

/// Calls that enter a user-visible emit/merge/execute path. Holding a
/// lock guard across any of these serialises result production (and, for
/// sinks that call back into user code, risks re-entrant deadlock).
const GUARD_CROSSING: [&str; 6] = [
    ".emit(",
    ".merge(",
    ".run_sink(",
    "dispatch_sink(",
    ".execute(",
    ".execute_batch(",
];

/// **lock-hygiene** — tracks lock guards bound by a single-line statement
/// `let <name> = <expr>.lock()…;` (with an optional trailing
/// `.expect("…")`/`.unwrap()`). While such a guard is live — until a
/// `drop(<name>)` or the end of its enclosing block — non-test code must
/// not:
///
/// * call into an emit/merge/execute path (`.emit(` / `.merge(` /
///   `.run_sink(` / `dispatch_sink(` / `.execute(` / `.execute_batch(`)
///   — compute under the lock, release, then emit;
/// * acquire another lock (`.lock(`) without a `// lock-order:` comment
///   on the line or directly above declaring the global acquisition
///   order that makes the nesting deadlock-free.
///
/// Chained temporaries (`m.lock().expect("…").resolve(x)`) release their
/// guard at the end of the statement and are deliberately not tracked;
/// so are guards bound inside `if let`/`match` heads, which a line
/// scanner cannot scope reliably. The rule is about the *named-guard*
/// idiom the hot paths use.
pub fn lock_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut depth = 0i64;
    // (guard name, brace depth at binding)
    let mut guards: Vec<(String, i64)> = Vec::new();
    for (idx, code) in file.code.iter().enumerate() {
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if file.in_test[idx] {
            depth += opens - closes;
            guards.retain(|(_, d)| depth >= *d);
            continue;
        }
        guards.retain(|(name, _)| !code.contains(&format!("drop({name})")));
        if !guards.is_empty() {
            let held: Vec<&str> = guards.iter().map(|(n, _)| n.as_str()).collect();
            let held = held.join("`, `");
            for tok in GUARD_CROSSING {
                if code.contains(tok) {
                    out.push(Finding {
                        file: file.rel.clone(),
                        line: idx + 1,
                        rule: LOCK_HYGIENE,
                        message: format!(
                            "`{tok}…)` while lock guard `{held}` is held — drop the guard \
                             (or narrow its scope) before entering an emit/merge/execute path"
                        ),
                    });
                }
            }
            if code.contains(".lock(") && !has_comment_tag(file, idx, "lock-order:") {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: idx + 1,
                    rule: LOCK_HYGIENE,
                    message: format!(
                        "nested lock acquisition while guard `{held}` is held, without a \
                         `// lock-order:` comment declaring the acquisition order"
                    ),
                });
            }
        }
        if let Some(name) = guard_binding(code) {
            if name != "_" {
                guards.push((name, depth));
            }
        }
        depth += opens - closes;
        guards.retain(|(_, d)| depth >= *d);
    }
}

/// `let <name> = <expr>.lock()…;` on one line, where the tail after
/// stripping `.unwrap()` / `.expect(…)` wrappers is the `.lock()` call
/// itself — i.e. the binding captures a guard, not a projection through
/// one. Returns the bound name.
fn guard_binding(code: &str) -> Option<String> {
    let t = code.trim();
    let rest = t.strip_prefix("let ")?;
    let stmt = rest.trim_end().strip_suffix(';')?;
    let eq = stmt.find('=')?;
    let name = stmt[..eq]
        .trim()
        .trim_start_matches("mut ")
        .split(':')
        .next()
        .unwrap_or("")
        .trim()
        .to_owned();
    if name.is_empty() || !name.chars().all(is_ident_char) {
        return None;
    }
    let mut expr = stmt[eq + 1..].trim_end();
    loop {
        if let Some(s) = expr.strip_suffix(".unwrap()") {
            expr = s.trim_end();
            continue;
        }
        if let Some(s) = strip_trailing_simple_call(expr, ".expect(") {
            expr = s.trim_end();
            continue;
        }
        break;
    }
    if expr.ends_with(".lock()") {
        Some(name)
    } else {
        None
    }
}

/// When `expr` ends with `<opener>…)` and the `…` contains no nested
/// parens (string contents are blanked in the code view, so a message
/// argument qualifies), returns `expr` with that trailing call removed.
fn strip_trailing_simple_call<'a>(expr: &'a str, opener: &str) -> Option<&'a str> {
    let at = expr.rfind(opener)?;
    let inner = expr[at + opener.len()..].strip_suffix(')')?;
    if inner.contains('(') || inner.contains(')') {
        return None;
    }
    Some(&expr[..at])
}

// ---------------------------------------------------------------------------
// Rule 8: sync-facade
// ---------------------------------------------------------------------------

/// **sync-facade** — raw concurrency primitives live in one place:
/// `crates/core/src/sync.rs` (and its `sync/` submodules). Everywhere
/// else, non-test code must not reference:
///
/// * `std::sync::atomic` (including `Ordering` imports — the facade
///   re-exports it),
/// * `std::sync::Mutex` / `RwLock` / `Condvar` / `Barrier` / `mpsc`,
///   whether path-qualified, in a `use std::sync::{…}` group, or via a
///   glob import,
/// * `crossbeam` (scoped threads and channels route through
///   `vaq_core::sync::{scope, channel}`).
///
/// `Arc`, `Weak`, `Once*` and `LazyLock` are plain sharing/init tools
/// with no scheduling behaviour to model and stay allowed. The point of
/// the confinement (same shape as sink-dispatch) is that building with
/// `--cfg vaq_race` swaps *every* primitive the engine actually uses
/// onto the model-checked implementation — a raw import anywhere else
/// would silently escape the explorer.
pub fn sync_facade(file: &SourceFile, out: &mut Vec<Finding>) {
    if is_sync_facade(&file.rel) {
        return;
    }
    for (idx, code) in file.code.iter().enumerate() {
        if file.in_test[idx] {
            continue;
        }
        if let Some(what) = facade_banned(code) {
            out.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule: SYNC_FACADE,
                message: format!(
                    "raw std::sync {what} reference outside the sync facade — import it \
                     from vaq_core::sync (crates/core/src/sync.rs) so `--cfg vaq_race` \
                     can swap in the model-checked implementation"
                ),
            });
        }
        if has_token(code, "crossbeam") {
            out.push(Finding {
                file: file.rel.clone(),
                line: idx + 1,
                rule: SYNC_FACADE,
                message: "crossbeam use outside the sync facade — route scoped threads and \
                          channels through vaq_core::sync::{scope, channel} instead"
                    .to_owned(),
            });
        }
    }
}

/// The concrete `std::sync` item a line reaches for, when it is one the
/// facade confines. `Arc`/`Weak`/`Once`/`OnceLock`/`LazyLock` return
/// `None`.
fn facade_banned(code: &str) -> Option<&'static str> {
    const CONFINED: [&str; 6] = ["atomic", "mpsc", "Mutex", "RwLock", "Condvar", "Barrier"];
    let mut start = 0;
    while let Some(pos) = code[start..].find("std::sync::") {
        let at = start + pos + "std::sync::".len();
        let rest = &code[at..];
        for prim in CONFINED {
            if rest.starts_with(prim) {
                return Some(prim);
            }
        }
        if rest.starts_with('*') {
            return Some("glob import");
        }
        if rest.starts_with('{') {
            for prim in CONFINED {
                if has_token(rest, prim) {
                    return Some(prim);
                }
            }
        }
        start = at;
    }
    None
}
