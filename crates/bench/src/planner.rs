//! Planner-vs-oracle measurements and the `BENCH_planner.json` baseline.
//!
//! The point of the cost-model planner is that no fixed strategy wins a
//! *mixed* workload: tiny dense areas favour Voronoi expansion, huge
//! areas favour the flat scan, and the index sits in between. This
//! harness sweeps area size × polygon vertex count × point distribution
//! and, per sweep cell, runs
//!
//! * the **planner** (`QuerySpec::auto()`, one persistent session so the
//!   observed-cost feedback calibrates), and
//! * every **fixed strategy** (Voronoi-segment, Voronoi-cell,
//!   traditional, brute force),
//!
//! recording both deterministic work units ([`Planner::observed_cost`] —
//! machine-independent, the planner's own currency) and wall-clock
//! throughput. The **oracle** is the per-query minimum over the fixed
//! strategies in work units — a lower bound no online planner can beat.
//! The headline numbers: the planner's total stays within 1.5× of the
//! oracle and below *every* fixed strategy's total on the mixed sweep.

use crate::provenance::Provenance;
use crate::{polygon_batch_with, time_qps, HARNESS_SEED};
use std::fmt::Write as _;
use vaq_core::{AreaQueryEngine, ExpansionPolicy, Planner, QueryArea, QuerySpec};
use vaq_geom::Polygon;
use vaq_workload::{generate, Distribution};

/// The fixed strategies the planner is raced against (and the oracle is
/// the per-query best of).
pub fn fixed_strategies() -> [(&'static str, QuerySpec); 4] {
    [
        (
            "voronoi_segment",
            QuerySpec::voronoi().policy(ExpansionPolicy::Segment),
        ),
        (
            "voronoi_cell",
            QuerySpec::voronoi().policy(ExpansionPolicy::Cell),
        ),
        ("traditional", QuerySpec::traditional()),
        ("brute", QuerySpec::brute_force()),
    ]
}

/// Workload shape of one planner measurement.
#[derive(Clone, Debug)]
pub struct PlannerBenchConfig {
    /// Engine size (points per distribution).
    pub data_size: usize,
    /// `area(MBR) / area(space)` sweep axis.
    pub query_sizes: Vec<f64>,
    /// Query-polygon vertex-count sweep axis.
    pub vertex_counts: Vec<usize>,
    /// Point distributions swept (the density axis).
    pub distributions: Vec<(&'static str, Distribution)>,
    /// Distinct areas per sweep cell.
    pub areas_per_cell: usize,
    /// Sweeps per timed run.
    pub rounds: usize,
    /// Timing batches (best-of).
    pub reps: usize,
}

impl PlannerBenchConfig {
    /// The standard baseline configuration.
    pub fn standard() -> PlannerBenchConfig {
        PlannerBenchConfig {
            data_size: 60_000,
            query_sizes: vec![0.005, 0.02, 0.08, 0.25],
            vertex_counts: vec![6, 24, 96],
            distributions: vec![
                ("uniform", Distribution::Uniform),
                (
                    "clustered",
                    Distribution::Clustered {
                        clusters: 20,
                        sigma: 0.02,
                    },
                ),
            ],
            areas_per_cell: 8,
            rounds: 3,
            reps: 3,
        }
    }

    /// A tiny configuration for smoke tests (`--quick`).
    pub fn quick() -> PlannerBenchConfig {
        PlannerBenchConfig {
            data_size: 5_000,
            // One cell each side of the Voronoi/traditional break-even,
            // so even the smoke sweep is a genuinely mixed workload.
            query_sizes: vec![0.01, 0.35],
            vertex_counts: vec![8, 32],
            distributions: vec![("uniform", Distribution::Uniform)],
            areas_per_cell: 4,
            rounds: 2,
            reps: 2,
        }
    }
}

/// One sweep cell: the planner against every fixed strategy on the same
/// areas, in work units and in wall-clock throughput.
#[derive(Clone, Debug)]
pub struct PlannerCell {
    /// Point distribution of the engine.
    pub distribution: &'static str,
    /// Query size of the cell's areas.
    pub query_size: f64,
    /// Vertex count of the cell's areas.
    pub vertices: usize,
    /// Planner total work units over the cell.
    pub planner_units: f64,
    /// Per-query-best fixed strategy total (the oracle lower bound).
    pub oracle_units: f64,
    /// Work-unit totals per fixed strategy (indexed like
    /// [`fixed_strategies`]).
    pub fixed_units: [f64; 4],
    /// Planner throughput (queries/s, best-of-reps).
    pub planner_qps: f64,
    /// Throughput of the cell's best fixed strategy.
    pub best_fixed_qps: f64,
    /// Index (into [`fixed_strategies`]) of the cell's best fixed
    /// strategy by work units.
    pub best_fixed: usize,
}

/// Aggregates of the whole sweep — the headline numbers.
#[derive(Clone, Copy, Debug)]
pub struct PlannerTotals {
    /// Planner work units over the mixed workload.
    pub planner_units: f64,
    /// Oracle work units (per-query best fixed strategy).
    pub oracle_units: f64,
    /// Work units of each fixed strategy over the same mixed workload.
    pub fixed_units: [f64; 4],
}

impl PlannerTotals {
    /// Planner cost over oracle cost (1.0 = perfect; the differential
    /// suite enforces ≤ 1.5).
    pub fn vs_oracle(&self) -> f64 {
        self.planner_units / self.oracle_units
    }

    /// `true` when the planner's total beats every fixed strategy on the
    /// mixed workload.
    pub fn beats_all_fixed(&self) -> bool {
        self.fixed_units.iter().all(|&u| self.planner_units < u)
    }
}

/// Sums the cells into the headline totals.
pub fn planner_totals(cells: &[PlannerCell]) -> PlannerTotals {
    let mut t = PlannerTotals {
        planner_units: 0.0,
        oracle_units: 0.0,
        fixed_units: [0.0; 4],
    };
    for c in cells {
        t.planner_units += c.planner_units;
        t.oracle_units += c.oracle_units;
        for (acc, u) in t.fixed_units.iter_mut().zip(c.fixed_units) {
            *acc += u;
        }
    }
    t
}

fn cell_areas(cfg: &PlannerBenchConfig, query_size: f64, vertices: usize) -> Vec<Polygon> {
    polygon_batch_with(query_size, cfg.areas_per_cell, vertices)
}

/// Runs the full sweep. Results are cross-checked while measuring: every
/// strategy (and the planner) must report the same result count per
/// area.
pub fn measure_planner(cfg: &PlannerBenchConfig) -> Vec<PlannerCell> {
    let strategies = fixed_strategies();
    let mut cells = Vec::new();
    for &(dist_name, dist) in &cfg.distributions {
        let pts = generate(cfg.data_size, dist, HARNESS_SEED ^ dist_name.len() as u64);
        let engine = AreaQueryEngine::build(&pts);
        for &query_size in &cfg.query_sizes {
            for &vertices in &cfg.vertex_counts {
                let areas = cell_areas(cfg, query_size, vertices);

                // Work units (deterministic; also the correctness
                // cross-check). One persistent session for the planner
                // so calibration feedback applies.
                let mut planner_units = 0.0f64;
                let mut oracle_units = 0.0f64;
                let mut fixed_units = [0.0f64; 4];
                let mut session = engine.session();
                for area in &areas {
                    let k = area.complexity();
                    let planned = session.execute(&QuerySpec::auto(), area);
                    planner_units += Planner::observed_cost(planned.stats(), k);
                    let mut best = f64::INFINITY;
                    for (i, (name, spec)) in strategies.iter().enumerate() {
                        let out = engine.execute(spec, area);
                        assert_eq!(
                            out.count(),
                            planned.count(),
                            "strategy {name} diverged from the planner"
                        );
                        let units = Planner::observed_cost(out.stats(), k);
                        fixed_units[i] += units;
                        best = best.min(units);
                    }
                    oracle_units += best;
                }
                let best_fixed = fixed_units
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("four strategies");

                // Wall clock: the planner vs the cell's best fixed
                // strategy on the identical area loop.
                let queries = areas.len() * cfg.rounds;
                let planner_qps = time_qps(queries, cfg.reps, &mut || {
                    let mut session = engine.session();
                    let mut sink = 0usize;
                    for _ in 0..cfg.rounds {
                        for area in &areas {
                            sink = sink
                                .wrapping_add(session.execute(&QuerySpec::auto(), area).count());
                        }
                    }
                    sink
                });
                let best_spec = strategies[best_fixed].1;
                let best_fixed_qps = time_qps(queries, cfg.reps, &mut || {
                    let mut session = engine.session();
                    let mut sink = 0usize;
                    for _ in 0..cfg.rounds {
                        for area in &areas {
                            sink = sink.wrapping_add(session.execute(&best_spec, area).count());
                        }
                    }
                    sink
                });

                cells.push(PlannerCell {
                    distribution: dist_name,
                    query_size,
                    vertices,
                    planner_units,
                    oracle_units,
                    fixed_units,
                    planner_qps,
                    best_fixed_qps,
                    best_fixed,
                });
            }
        }
    }
    cells
}

/// Renders the sweep as the `BENCH_planner.json` baseline document.
pub fn planner_report_json(
    cfg: &PlannerBenchConfig,
    cells: &[PlannerCell],
    prov: &Provenance,
) -> String {
    let names: Vec<&str> = fixed_strategies().iter().map(|&(n, _)| n).collect();
    let totals = planner_totals(cells);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"benchmark\": \"cost_model_query_planner\",");
    let _ = writeln!(s, "  \"provenance\": {},", prov.json_object());
    let _ = writeln!(
        s,
        "  \"workload\": {{\"data_size\": {}, \"query_sizes\": {:?}, \"vertex_counts\": {:?}, \
\"distributions\": {:?}, \"areas_per_cell\": {}, \"rounds\": {}}},",
        cfg.data_size,
        cfg.query_sizes,
        cfg.vertex_counts,
        cfg.distributions
            .iter()
            .map(|&(n, _)| n)
            .collect::<Vec<_>>(),
        cfg.areas_per_cell,
        cfg.rounds
    );
    let _ = writeln!(s, "  \"units\": \"deterministic work units (see vaq_core::Planner::observed_cost) and queries_per_second\",");
    let _ = writeln!(s, "  \"strategies\": {names:?},");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"distribution\": \"{}\", \"query_size\": {}, \"vertices\": {}, \
\"planner_units\": {:.0}, \"oracle_units\": {:.0}, \"fixed_units\": [{:.0}, {:.0}, {:.0}, {:.0}], \
\"best_fixed\": \"{}\", \"planner_qps\": {:.1}, \"best_fixed_qps\": {:.1}}}{sep}",
            c.distribution,
            c.query_size,
            c.vertices,
            c.planner_units,
            c.oracle_units,
            c.fixed_units[0],
            c.fixed_units[1],
            c.fixed_units[2],
            c.fixed_units[3],
            names[c.best_fixed],
            c.planner_qps,
            c.best_fixed_qps,
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"totals\": {{\"planner_units\": {:.0}, \"oracle_units\": {:.0}, \
\"fixed_units\": [{:.0}, {:.0}, {:.0}, {:.0}]}},",
        totals.planner_units,
        totals.oracle_units,
        totals.fixed_units[0],
        totals.fixed_units[1],
        totals.fixed_units[2],
        totals.fixed_units[3],
    );
    let _ = writeln!(s, "  \"planner_vs_oracle\": {:.3},", totals.vs_oracle());
    let _ = writeln!(
        s,
        "  \"planner_beats_all_fixed\": {}",
        totals.beats_all_fixed()
    );
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_meets_the_headline_bounds() {
        let cfg = PlannerBenchConfig::quick();
        let cells = measure_planner(&cfg);
        assert_eq!(cells.len(), cfg.query_sizes.len() * cfg.vertex_counts.len());
        let totals = planner_totals(&cells);
        assert!(totals.oracle_units > 0.0);
        assert!(
            totals.vs_oracle() <= 1.5,
            "planner {:.0} units vs oracle {:.0} (ratio {:.2})",
            totals.planner_units,
            totals.oracle_units,
            totals.vs_oracle()
        );
        assert!(
            totals.beats_all_fixed(),
            "planner {:.0} units vs fixed {:?}",
            totals.planner_units,
            totals.fixed_units
        );
    }

    #[test]
    fn json_report_shape() {
        let cfg = PlannerBenchConfig::quick();
        let cells = vec![PlannerCell {
            distribution: "uniform",
            query_size: 0.01,
            vertices: 8,
            planner_units: 1000.0,
            oracle_units: 900.0,
            fixed_units: [1200.0, 1400.0, 1300.0, 9000.0],
            planner_qps: 5000.0,
            best_fixed_qps: 5200.0,
            best_fixed: 0,
        }];
        let prov = Provenance::capture(cfg.data_size as u64, 8, 1);
        let json = planner_report_json(&cfg, &cells, &prov);
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"planner_vs_oracle\": 1.111"));
        assert!(json.contains("\"planner_beats_all_fixed\": true"));
        assert!(json.contains("\"best_fixed\": \"voronoi_segment\""));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
