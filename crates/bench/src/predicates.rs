//! Exact-predicate pipeline measurements and the `BENCH_predicates.json`
//! baseline report.
//!
//! Two experiments back the `reproduce predicates` subcommand:
//!
//! 1. a **fig6-style contains-heavy workload** — star query polygons of
//!    `k` vertices, probe points concentrated inside each polygon's MBR
//!    (the refine-step regime, where containment cannot bail out early) —
//!    timing the three containment paths: the raw scan
//!    (`Polygon::contains`), the pure linear slab scan
//!    (`PreparedPolygon::contains_linear` — the pre-change path *minus*
//!    its `max_x` prefix skip, which the left-to-right reordering of
//!    dense slabs makes unreproducible there; the true pre-change path
//!    measured ~10% faster than this column at k = 1024, so read
//!    `ordered_speedup` 1.74× as ~1.6× against the real predecessor)
//!    and the threshold-adaptive prepared path
//!    (`PreparedPolygon::contains` — ordered-slab binary search on
//!    dense slabs, prefix-skip scan elsewhere) — plus the one-off
//!    preparation cost, which guards the order-proof build against
//!    regressions;
//! 2. a **filter micro-benchmark** — the scalar `orient2d` loop against
//!    `orient2d_filter_batch` lanes (plus scalar fallback for undecided
//!    lanes) over identical operands: the dense-lane regime where the
//!    structure-of-arrays filter shines (gathering *sparse* candidates
//!    out of a raw containment scan was measured slower than the scalar
//!    prechecks, which is why `Polygon::contains` stays sequential).
//!
//! Every path is exact and bit-identical (enforced by a riding assert);
//! only the work per answer changes. The headline `pipeline_speedup` is
//! raw over adaptive-prepared at each `k`.

use crate::provenance::Provenance;
use crate::{polygon_batch_with, HARNESS_SEED};
use std::fmt::Write as _;
use std::time::Instant;
use vaq_geom::{orient2d, orient2d_filter_batch, Point, Polygon, PreparedPolygon};

/// Workload shape for the predicate-pipeline benchmark.
#[derive(Clone, Debug)]
pub struct PredicateBenchConfig {
    /// Query-polygon vertex counts to sweep.
    pub ks: Vec<usize>,
    /// Probe points per polygon per timed batch.
    pub probes: usize,
    /// Distinct polygons averaged per `k`.
    pub polys_per_k: usize,
    /// Lanes evaluated by the filter micro-benchmark.
    pub filter_lanes: usize,
}

impl PredicateBenchConfig {
    /// The standard sweep (the committed baseline).
    pub fn standard() -> PredicateBenchConfig {
        PredicateBenchConfig {
            ks: vec![16, 64, 256, 1024],
            probes: 4096,
            polys_per_k: 4,
            filter_lanes: 1 << 16,
        }
    }

    /// A smoke-test sweep for CI.
    pub fn quick() -> PredicateBenchConfig {
        PredicateBenchConfig {
            ks: vec![16, 64],
            probes: 512,
            polys_per_k: 2,
            filter_lanes: 1 << 12,
        }
    }
}

/// Timings for one query-polygon vertex count (ns per `contains` call).
#[derive(Clone, Copy, Debug)]
pub struct PredicateBenchRow {
    /// Query-polygon vertex count.
    pub k: usize,
    /// Raw crossing-number scan (`Polygon::contains`).
    pub contains_raw_ns: f64,
    /// Prepared slab + pure linear candidate scan (the pre-change path
    /// minus its `max_x` prefix skip — see the module docs for how to
    /// read speedups against it).
    pub prepared_scan_ns: f64,
    /// Threshold-adaptive prepared path (ordered binary search on dense
    /// slabs, prefix-skip scan elsewhere).
    pub prepared_ordered_ns: f64,
    /// One-off preparation cost (slab build including the order proof).
    pub prepare_ns: f64,
}

impl PredicateBenchRow {
    /// Speedup of the adaptive prepared path over the linear slab scan.
    pub fn ordered_speedup(&self) -> f64 {
        self.prepared_scan_ns / self.prepared_ordered_ns
    }

    /// End-to-end pipeline speedup: raw → adaptive prepared.
    pub fn pipeline_speedup(&self) -> f64 {
        self.contains_raw_ns / self.prepared_ordered_ns
    }
}

/// Filter micro-benchmark timings (ns per orientation evaluation).
#[derive(Clone, Copy, Debug)]
pub struct FilterBenchRow {
    /// Scalar `orient2d` loop.
    pub scalar_ns: f64,
    /// `orient2d_filter_batch` lanes + scalar fallback for undecided.
    pub batch_ns: f64,
    /// Lanes the filter decided without fallback.
    pub decided: u64,
    /// Total lanes evaluated.
    pub lanes: u64,
}

impl FilterBenchRow {
    /// Speedup of the batched filter over the scalar loop.
    pub fn speedup(&self) -> f64 {
        self.scalar_ns / self.batch_ns
    }
}

/// Deterministic probe battery concentrated inside the polygon's MBR —
/// the refine-step regime where `contains` cannot bail out on the MBR.
fn probes(poly: &Polygon, n: usize) -> Vec<Point> {
    let mbr = poly.mbr();
    (0..n)
        .map(|i| {
            let t = (i as f64 + 0.5) / n as f64;
            let u = ((i * 7919) % n) as f64 / n as f64;
            Point::new(mbr.min.x + t * mbr.width(), mbr.min.y + u * mbr.height())
        })
        .collect()
}

/// Times `f` over `reps` batches, best per-call ns (best-of rejects
/// scheduler noise; inputs are identical across batches).
fn time_per_call(calls: usize, reps: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        let dt = t0.elapsed().as_secs_f64() * 1e9 / calls as f64;
        if dt < best {
            best = dt;
        }
    }
    std::hint::black_box(sink);
    best
}

/// Runs the contains-heavy sweep.
pub fn measure_contains_paths(cfg: &PredicateBenchConfig) -> Vec<PredicateBenchRow> {
    let reps = 5;
    cfg.ks
        .iter()
        .map(|&k| {
            let polygons = polygon_batch_with(0.05, cfg.polys_per_k, k);
            let mut row = PredicateBenchRow {
                k,
                contains_raw_ns: 0.0,
                prepared_scan_ns: 0.0,
                prepared_ordered_ns: 0.0,
                prepare_ns: 0.0,
            };
            for poly in &polygons {
                let pts = probes(poly, cfg.probes);
                let t0 = Instant::now();
                let prep = PreparedPolygon::new(poly.clone());
                row.prepare_ns += t0.elapsed().as_secs_f64() * 1e9;
                row.contains_raw_ns += time_per_call(pts.len(), reps, || {
                    pts.iter().filter(|&&p| poly.contains(p)).count()
                });
                row.prepared_scan_ns += time_per_call(pts.len(), reps, || {
                    pts.iter().filter(|&&p| prep.contains_linear(p)).count()
                });
                row.prepared_ordered_ns += time_per_call(pts.len(), reps, || {
                    pts.iter().filter(|&&p| prep.contains(p)).count()
                });
                // Exactness spot-check riding along with every run.
                for &p in &pts {
                    let want = poly.contains(p);
                    assert_eq!(prep.contains(p), want, "adaptive contains diverged");
                    assert_eq!(prep.contains_linear(p), want, "linear contains diverged");
                }
            }
            let n = cfg.polys_per_k as f64;
            row.contains_raw_ns /= n;
            row.prepared_scan_ns /= n;
            row.prepared_ordered_ns /= n;
            row.prepare_ns /= n;
            row
        })
        .collect()
}

/// Runs the filter micro-benchmark over `cfg.filter_lanes` deterministic
/// orientation evaluations.
pub fn measure_filter_batch(cfg: &PredicateBenchConfig) -> FilterBenchRow {
    let n = cfg.filter_lanes;
    let mut state = HARNESS_SEED | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let ax: Vec<f64> = (0..n).map(|_| next()).collect();
    let ay: Vec<f64> = (0..n).map(|_| next()).collect();
    let bx: Vec<f64> = (0..n).map(|_| next()).collect();
    let by: Vec<f64> = (0..n).map(|_| next()).collect();
    let c = Point::new(0.5, 0.5);

    let reps = 7;
    let scalar_ns = time_per_call(n, reps, || {
        let mut pos = 0usize;
        for i in 0..n {
            let o = orient2d(Point::new(ax[i], ay[i]), Point::new(bx[i], by[i]), c);
            pos += usize::from(o > 0.0);
        }
        pos
    });
    let mut det = [0.0f64; 64];
    let mut dec = [false; 64];
    let mut decided = 0u64;
    let batch_ns = time_per_call(n, reps, || {
        let mut pos = 0usize;
        decided = 0;
        let mut i = 0;
        while i < n {
            let m = (n - i).min(64);
            orient2d_filter_batch(
                &ax[i..i + m],
                &ay[i..i + m],
                &bx[i..i + m],
                &by[i..i + m],
                c.x,
                c.y,
                &mut det[..m],
                &mut dec[..m],
            );
            for l in 0..m {
                let o = if dec[l] {
                    decided += 1;
                    det[l]
                } else {
                    orient2d(
                        Point::new(ax[i + l], ay[i + l]),
                        Point::new(bx[i + l], by[i + l]),
                        c,
                    )
                };
                pos += usize::from(o > 0.0);
            }
            i += m;
        }
        pos
    });
    FilterBenchRow {
        scalar_ns,
        batch_ns,
        decided,
        lanes: n as u64,
    }
}

/// Renders the rows as the `BENCH_predicates.json` baseline document.
pub fn predicates_report_json(
    rows: &[PredicateBenchRow],
    filter: &FilterBenchRow,
    prov: &Provenance,
) -> String {
    let headline = rows
        .iter()
        .map(PredicateBenchRow::pipeline_speedup)
        .fold(0.0, f64::max);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"benchmark\": \"exact_predicate_pipeline\",");
    let _ = writeln!(s, "  \"harness_seed\": {HARNESS_SEED},");
    let _ = writeln!(s, "  \"provenance\": {},", prov.json_object());
    let _ = writeln!(s, "  \"units\": {{\"time\": \"ns_per_call\"}},");
    let _ = writeln!(s, "  \"headline_pipeline_speedup\": {headline:.2},");
    let _ = writeln!(
        s,
        "  \"filter_batch\": {{\"scalar\": {:.2}, \"batch\": {:.2}, \"speedup\": {:.2}, \
\"decided\": {}, \"lanes\": {}}},",
        filter.scalar_ns,
        filter.batch_ns,
        filter.speedup(),
        filter.decided,
        filter.lanes,
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"k\": {}, \"contains_raw\": {:.1}, \"prepared_scan\": {:.1}, \
\"prepared_ordered\": {:.1}, \"ordered_speedup\": {:.2}, \"pipeline_speedup\": {:.2}, \
\"prepare\": {:.0}}}",
            r.k,
            r.contains_raw_ns,
            r.prepared_scan_ns,
            r.prepared_ordered_ns,
            r.ordered_speedup(),
            r.pipeline_speedup(),
            r.prepare_ns,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_rows_are_sane() {
        let cfg = PredicateBenchConfig {
            ks: vec![8, 24],
            probes: 64,
            polys_per_k: 2,
            filter_lanes: 512,
        };
        let rows = measure_contains_paths(&cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.contains_raw_ns > 0.0);
            assert!(r.prepared_scan_ns > 0.0);
            assert!(r.prepared_ordered_ns > 0.0);
            assert!(r.prepare_ns > 0.0);
        }
        let f = measure_filter_batch(&cfg);
        assert!(f.scalar_ns > 0.0 && f.batch_ns > 0.0);
        assert!(f.decided > 0, "generic lanes must be filter-decided");
        assert_eq!(f.lanes, 512);
    }

    #[test]
    fn json_report_shape() {
        let rows = [PredicateBenchRow {
            k: 64,
            contains_raw_ns: 400.0,
            prepared_scan_ns: 50.0,
            prepared_ordered_ns: 25.0,
            prepare_ns: 1000.0,
        }];
        let filter = FilterBenchRow {
            scalar_ns: 10.0,
            batch_ns: 5.0,
            decided: 100,
            lanes: 128,
        };
        let prov = Provenance {
            git_rev: String::from("deadbeef"),
            points: 0,
            queries: 4096,
            threads: 1,
            available_parallelism: 8,
        };
        let json = predicates_report_json(&rows, &filter, &prov);
        assert!(json.contains("\"headline_pipeline_speedup\": 16.00"));
        assert!(json.contains("\"ordered_speedup\": 2.00"));
        assert!(json.contains("\"git_rev\": \"deadbeef\""));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
