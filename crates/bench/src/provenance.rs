//! Run provenance recorded in every `results/BENCH_*.json` baseline.
//!
//! A perf baseline without provenance cannot be compared across machines
//! or revisions: the numbers drift and nobody knows whether the code or
//! the box changed. Every JSON writer therefore embeds a `provenance`
//! object with the git revision the benchmark ran at, the workload scale
//! (point and query counts), and the threading situation (worker threads
//! used and hardware parallelism available).

use std::fmt::Write as _;
use std::process::Command;

/// Provenance of one benchmark run.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// `git rev-parse --short=12 HEAD` at run time (`"unknown"` when git
    /// or the repository is unavailable — e.g. running from a tarball).
    pub git_rev: String,
    /// Points indexed by the benchmark's engine(s).
    pub points: u64,
    /// Queries (or primitive calls, for micro-benchmarks) timed.
    pub queries: u64,
    /// Worker threads the benchmark drove explicitly (1 = sequential).
    pub threads: usize,
    /// `std::thread::available_parallelism()` on the machine.
    pub available_parallelism: usize,
}

/// Best-effort git revision of the working tree.
pub fn git_revision() -> String {
    Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| String::from("unknown"))
}

impl Provenance {
    /// Captures provenance for a run over `points` points and `queries`
    /// timed queries on `threads` worker threads.
    pub fn capture(points: u64, queries: u64, threads: usize) -> Provenance {
        Provenance {
            git_rev: git_revision(),
            points,
            queries,
            threads,
            available_parallelism: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
        }
    }

    /// The provenance as one JSON object line (no trailing comma).
    pub fn json_object(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"git_rev\": \"{}\", \"points\": {}, \"queries\": {}, \"threads\": {}, \
\"available_parallelism\": {}}}",
            self.git_rev.replace('"', ""),
            self.points,
            self.queries,
            self.threads,
            self.available_parallelism,
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_object_shape() {
        let p = Provenance {
            git_rev: String::from("abc123"),
            points: 1000,
            queries: 64,
            threads: 8,
            available_parallelism: 16,
        };
        let json = p.json_object();
        assert!(json.contains("\"git_rev\": \"abc123\""));
        assert!(json.contains("\"points\": 1000"));
        assert!(json.contains("\"queries\": 64"));
        assert!(json.contains("\"threads\": 8"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn capture_fills_every_field() {
        let p = Provenance::capture(10, 20, 2);
        assert!(!p.git_rev.is_empty());
        assert_eq!(p.points, 10);
        assert_eq!(p.queries, 20);
        assert_eq!(p.threads, 2);
        assert!(p.available_parallelism >= 1);
    }
}
