//! Payload-materialisation measurements and the `BENCH_payload.json`
//! baseline.
//!
//! The paper's point about refinement cost is that *loading the
//! geometry record* dominates validation in a real GIS. The engine
//! simulates that two ways: validation loading (every candidate's
//! record read before the exact test) and, new with the sink layer,
//! **result materialisation** — the `Materialize` sink re-reads each
//! *accepted* candidate's record while building the response. This
//! bench quantifies the cost per record size:
//!
//! * **collect throughput** — validation loading only;
//! * **materialise throughput** — validation loading + per-result
//!   record reads through the same store;
//! * **sharded materialise throughput** — the same sink through
//!   per-shard record stores split from one logical store.
//!
//! Cross-checks before timing: indices identical across all three
//! paths, and the materialisation checksum delta (materialise −
//! collect) identical between the sharded and unsharded engines — the
//! split stores hold byte-identical records. All paths run the **cell
//! expansion policy**: the segment heuristic loses completeness on
//! shard-local Voronoi diagrams (see the `vaq_core::shard` docs), and
//! the checksum cross-check needs identical accepted sets.

use crate::provenance::Provenance;
use crate::{polygon_batch_with, time_qps, HARNESS_SEED};
use std::fmt::Write as _;
use vaq_core::{AreaQueryEngine, ExpansionPolicy, OutputMode, QuerySpec, ShardedAreaQueryEngine};
use vaq_workload::{generate, Distribution};

/// Workload shape of one payload-materialisation measurement.
#[derive(Clone, Debug)]
pub struct PayloadBenchConfig {
    /// Engine size (uniform points).
    pub data_size: usize,
    /// Record sizes (bytes per point) swept.
    pub payload_bytes: Vec<usize>,
    /// Distinct query areas per timed sweep.
    pub distinct_areas: usize,
    /// `area(MBR) / area(space)` of each query polygon.
    pub query_size: f64,
    /// Shard count of the sharded engine.
    pub shards: usize,
    /// How many times the area set is swept per timed batch.
    pub rounds: usize,
    /// Timing batches (best-of, rejects scheduler noise).
    pub reps: usize,
}

impl PayloadBenchConfig {
    /// The standard baseline configuration.
    pub fn standard() -> PayloadBenchConfig {
        PayloadBenchConfig {
            data_size: 200_000,
            payload_bytes: vec![256, 1024, 4096],
            distinct_areas: 64,
            query_size: 0.01,
            shards: 8,
            rounds: 4,
            reps: 3,
        }
    }

    /// A tiny configuration for smoke tests (`--quick`).
    pub fn quick() -> PayloadBenchConfig {
        PayloadBenchConfig {
            data_size: 20_000,
            payload_bytes: vec![256, 1024],
            distinct_areas: 8,
            query_size: 0.01,
            shards: 4,
            rounds: 2,
            reps: 1,
        }
    }
}

/// One record size of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct PayloadBenchRow {
    /// Bytes per record.
    pub payload_bytes: usize,
    /// Collecting-sink throughput (validation loading only), q/s.
    pub collect_qps: f64,
    /// Materialising-sink throughput (validation + result reads), q/s.
    pub materialize_qps: f64,
    /// Materialising through per-shard stores, q/s.
    pub sharded_materialize_qps: f64,
    /// Mean result size per query (records materialised per answer).
    pub mean_results: f64,
}

impl PayloadBenchRow {
    /// Throughput retained when materialising every result record.
    pub fn materialize_vs_collect(&self) -> f64 {
        self.materialize_qps / self.collect_qps
    }
}

/// Runs the payload sweep: cross-checks indices and checksum deltas
/// across the plain and sharded materialisation paths, then times each
/// record size.
pub fn measure_payload(cfg: &PayloadBenchConfig) -> Vec<PayloadBenchRow> {
    let pts = generate(
        cfg.data_size,
        Distribution::Uniform,
        HARNESS_SEED ^ cfg.data_size as u64,
    );
    let areas = polygon_batch_with(cfg.query_size, cfg.distinct_areas, 10);
    let collect_spec = QuerySpec::new().policy(ExpansionPolicy::Cell);
    let mat_spec = collect_spec.output(OutputMode::Materialize);
    let queries = cfg.distinct_areas * cfg.rounds;

    let mut rows = Vec::with_capacity(cfg.payload_bytes.len());
    for &bytes in &cfg.payload_bytes {
        let engine = AreaQueryEngine::builder(&pts).payload_bytes(bytes).build();
        let sharded = ShardedAreaQueryEngine::build_with_payload(&pts, cfg.shards, bytes);

        // Cross-check (outside the timed region).
        let mut results = 0usize;
        let mut session = engine.session();
        for (i, area) in areas.iter().enumerate() {
            let collected = session.execute(&collect_spec, area);
            let materialized = session.execute(&mat_spec, area);
            let r = materialized.result().expect("materialize output");
            assert_eq!(
                r.sorted_indices(),
                collected.result().expect("collect output").sorted_indices(),
                "materialize changed the answer on area {i}"
            );
            let delta = r
                .stats
                .payload_checksum
                .wrapping_sub(collected.stats().payload_checksum);
            let sharded_mat = sharded.execute(&mat_spec, area);
            let sharded_collect = sharded.execute(&collect_spec, area);
            assert_eq!(sharded_mat.indices, r.sorted_indices(), "area {i}");
            assert_eq!(
                sharded_mat
                    .stats
                    .payload_checksum
                    .wrapping_sub(sharded_collect.stats.payload_checksum),
                delta,
                "sharded materialisation checksum diverged on area {i}"
            );
            results += r.indices.len();
        }

        let collect_qps = time_qps(queries, cfg.reps, &mut || {
            let mut session = engine.session();
            let mut n = 0usize;
            for _ in 0..cfg.rounds {
                for area in &areas {
                    n += session.execute(&collect_spec, area).count();
                }
            }
            n
        });
        let materialize_qps = time_qps(queries, cfg.reps, &mut || {
            let mut session = engine.session();
            let mut n = 0usize;
            for _ in 0..cfg.rounds {
                for area in &areas {
                    n += session.execute(&mat_spec, area).count();
                }
            }
            n
        });
        let sharded_materialize_qps = time_qps(queries, cfg.reps, &mut || {
            let mut n = 0usize;
            for _ in 0..cfg.rounds {
                for area in &areas {
                    n += sharded.execute(&mat_spec, area).count;
                }
            }
            n
        });
        rows.push(PayloadBenchRow {
            payload_bytes: bytes,
            collect_qps,
            materialize_qps,
            sharded_materialize_qps,
            mean_results: results as f64 / cfg.distinct_areas as f64,
        });
    }
    rows
}

/// Renders the sweep as the `BENCH_payload.json` baseline document.
pub fn payload_report_json(
    cfg: &PayloadBenchConfig,
    rows: &[PayloadBenchRow],
    prov: &Provenance,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"benchmark\": \"payload_materialisation\",");
    let _ = writeln!(s, "  \"provenance\": {},", prov.json_object());
    let _ = writeln!(
        s,
        "  \"workload\": {{\"data_size\": {}, \"distinct_areas\": {}, \"query_size\": {}, \
\"shards\": {}, \"rounds\": {}}},",
        cfg.data_size, cfg.distinct_areas, cfg.query_size, cfg.shards, cfg.rounds
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"payload_bytes\": {}, \"collect_qps\": {:.1}, \"materialize_qps\": {:.1}, \
\"sharded_materialize_qps\": {:.1}, \"materialize_vs_collect\": {:.3}, \"mean_results\": {:.1}}}",
            r.payload_bytes,
            r.collect_qps,
            r.materialize_qps,
            r.sharded_materialize_qps,
            r.materialize_vs_collect(),
            r.mean_results,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_sane() {
        let cfg = PayloadBenchConfig::quick();
        let rows = measure_payload(&cfg);
        assert_eq!(rows.len(), cfg.payload_bytes.len());
        for r in &rows {
            assert!(r.collect_qps > 0.0);
            assert!(r.materialize_qps > 0.0);
            assert!(r.sharded_materialize_qps > 0.0);
            assert!(r.mean_results > 0.0, "1% areas over 20k points match");
        }
    }

    #[test]
    fn json_report_shape() {
        let cfg = PayloadBenchConfig::quick();
        let rows = vec![PayloadBenchRow {
            payload_bytes: 1024,
            collect_qps: 200.0,
            materialize_qps: 150.0,
            sharded_materialize_qps: 140.0,
            mean_results: 33.0,
        }];
        let prov = Provenance::capture(cfg.data_size as u64, 8, 1);
        let json = payload_report_json(&cfg, &rows, &prov);
        assert!(json.contains("\"benchmark\": \"payload_materialisation\""));
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"materialize_vs_collect\": 0.750"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
