//! kNN-within-area measurements and the `BENCH_knn.json` baseline.
//!
//! The question the sink layer answers for kNN: what does keeping only
//! the k nearest matches (bounded max-heap in the emission path, merged
//! across shards) cost or save relative to collecting everything? Three
//! quantities per `k`, measured on the same engine and area workload:
//!
//! * **collect throughput** — the plain collecting sink (baseline);
//! * **kNN throughput** — the `TopKNearest` sink on the same engine
//!   (same candidate generation, bounded materialisation);
//! * **sharded kNN throughput** — the same sink through the sharded
//!   engine's per-shard partial merge.
//!
//! Every timed workload is cross-checked first: the sink's answer must
//! equal sort-by-distance over the collected indices (ties by index),
//! and the sharded answer must equal the unsharded one. All paths run
//! the **cell expansion policy**: the paper's segment heuristic loses
//! completeness on shard-local Voronoi diagrams (cells stretch near the
//! kd cuts — see the `vaq_core::shard` docs), and a throughput baseline
//! whose sharded and unsharded answers can differ would cross-check
//! nothing.

use crate::provenance::Provenance;
use crate::{polygon_batch_with, time_qps, HARNESS_SEED};
use std::fmt::Write as _;
use vaq_core::{AreaQueryEngine, ExpansionPolicy, OutputMode, QuerySpec, ShardedAreaQueryEngine};
use vaq_geom::Point;
use vaq_workload::{generate, unit_space, Distribution};

/// Workload shape of one kNN-within-area measurement.
#[derive(Clone, Debug)]
pub struct KnnBenchConfig {
    /// Engine size (uniform points).
    pub data_size: usize,
    /// Distinct query areas per timed sweep.
    pub distinct_areas: usize,
    /// `area(MBR) / area(space)` of each query polygon.
    pub query_size: f64,
    /// The `k` values swept.
    pub ks: Vec<usize>,
    /// Shard count of the sharded engine.
    pub shards: usize,
    /// How many times the area set is swept per timed batch.
    pub rounds: usize,
    /// Timing batches (best-of, rejects scheduler noise).
    pub reps: usize,
}

impl KnnBenchConfig {
    /// The standard baseline configuration.
    pub fn standard() -> KnnBenchConfig {
        KnnBenchConfig {
            data_size: 200_000,
            distinct_areas: 64,
            query_size: 0.01,
            ks: vec![1, 16, 256],
            shards: 8,
            rounds: 4,
            reps: 3,
        }
    }

    /// A tiny configuration for smoke tests (`--quick`).
    pub fn quick() -> KnnBenchConfig {
        KnnBenchConfig {
            data_size: 20_000,
            distinct_areas: 8,
            query_size: 0.01,
            ks: vec![1, 16],
            shards: 4,
            rounds: 2,
            reps: 1,
        }
    }
}

/// One `k` of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct KnnBenchRow {
    /// The swept `k`.
    pub k: usize,
    /// Collecting-sink throughput, queries/second (baseline).
    pub collect_qps: f64,
    /// `TopKNearest` throughput on the unsharded engine.
    pub knn_qps: f64,
    /// `TopKNearest` throughput through the sharded engine's merge.
    pub sharded_knn_qps: f64,
    /// Mean neighbours actually kept per query (`min(k, matches)`).
    pub mean_kept: f64,
}

impl KnnBenchRow {
    /// kNN throughput relative to collecting everything.
    pub fn knn_vs_collect(&self) -> f64 {
        self.knn_qps / self.collect_qps
    }
}

/// Runs the kNN sweep: cross-checks the sink against sort-by-distance
/// over collected indices (and sharded against unsharded), then times
/// the three paths per `k`.
pub fn measure_knn(cfg: &KnnBenchConfig) -> Vec<KnnBenchRow> {
    let pts = generate(
        cfg.data_size,
        Distribution::Uniform,
        HARNESS_SEED ^ cfg.data_size as u64,
    );
    let areas = polygon_batch_with(cfg.query_size, cfg.distinct_areas, 10);
    let engine = AreaQueryEngine::build(&pts);
    let sharded = ShardedAreaQueryEngine::build(&pts, cfg.shards);
    let space = unit_space();
    let origin = Point::new(
        (space.min.x + space.max.x) / 2.0,
        (space.min.y + space.max.y) / 2.0,
    );
    let collect_spec = QuerySpec::new().policy(ExpansionPolicy::Cell);
    let queries = cfg.distinct_areas * cfg.rounds;

    let mut rows = Vec::with_capacity(cfg.ks.len());
    for &k in &cfg.ks {
        let spec = collect_spec.output(OutputMode::TopKNearest { k, origin });

        // Cross-check (outside the timed region): the sink equals
        // sort-by-distance over the collected result, and the sharded
        // merge equals the unsharded heap.
        let mut kept = 0usize;
        let mut session = engine.session();
        for (i, area) in areas.iter().enumerate() {
            let collected = session.execute(&collect_spec, area);
            let mut want: Vec<(f64, u32)> = collected
                .result()
                .expect("collect output")
                .indices
                .iter()
                .map(|&id| {
                    let q = pts[id as usize];
                    let (dx, dy) = (q.x - origin.x, q.y - origin.y);
                    (dx * dx + dy * dy, id)
                })
                .collect();
            want.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            want.truncate(k);
            let got = session.execute(&spec, area);
            let got: Vec<(f64, u32)> = got
                .neighbors()
                .expect("knn output")
                .iter()
                .map(|n| (n.dist_sq, n.id))
                .collect();
            assert_eq!(got, want, "knn diverged from sorted collect on area {i}");
            let sharded_got: Vec<(f64, u32)> = sharded
                .execute(&spec, area)
                .neighbors
                .iter()
                .map(|n| (n.dist_sq, n.id))
                .collect();
            assert_eq!(sharded_got, got, "sharded knn diverged on area {i}");
            kept += got.len();
        }

        let collect_qps = time_qps(queries, cfg.reps, &mut || {
            let mut session = engine.session();
            let mut n = 0usize;
            for _ in 0..cfg.rounds {
                for area in &areas {
                    n += session.execute(&collect_spec, area).count();
                }
            }
            n
        });
        let knn_qps = time_qps(queries, cfg.reps, &mut || {
            let mut session = engine.session();
            let mut n = 0usize;
            for _ in 0..cfg.rounds {
                for area in &areas {
                    n += session.execute(&spec, area).count();
                }
            }
            n
        });
        let sharded_knn_qps = time_qps(queries, cfg.reps, &mut || {
            let mut n = 0usize;
            for _ in 0..cfg.rounds {
                for area in &areas {
                    n += sharded.execute(&spec, area).count;
                }
            }
            n
        });
        rows.push(KnnBenchRow {
            k,
            collect_qps,
            knn_qps,
            sharded_knn_qps,
            mean_kept: kept as f64 / cfg.distinct_areas as f64,
        });
    }
    rows
}

/// Renders the sweep as the `BENCH_knn.json` baseline document.
pub fn knn_report_json(cfg: &KnnBenchConfig, rows: &[KnnBenchRow], prov: &Provenance) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"benchmark\": \"knn_within_area\",");
    let _ = writeln!(s, "  \"provenance\": {},", prov.json_object());
    let _ = writeln!(
        s,
        "  \"workload\": {{\"data_size\": {}, \"distinct_areas\": {}, \"query_size\": {}, \
\"shards\": {}, \"rounds\": {}}},",
        cfg.data_size, cfg.distinct_areas, cfg.query_size, cfg.shards, cfg.rounds
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"k\": {}, \"collect_qps\": {:.1}, \"knn_qps\": {:.1}, \
\"sharded_knn_qps\": {:.1}, \"knn_vs_collect\": {:.3}, \"mean_kept\": {:.1}}}",
            r.k,
            r.collect_qps,
            r.knn_qps,
            r.sharded_knn_qps,
            r.knn_vs_collect(),
            r.mean_kept,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_sane() {
        let cfg = KnnBenchConfig::quick();
        let rows = measure_knn(&cfg);
        assert_eq!(rows.len(), cfg.ks.len());
        for r in &rows {
            assert!(r.collect_qps > 0.0);
            assert!(r.knn_qps > 0.0);
            assert!(r.sharded_knn_qps > 0.0);
            assert!(r.mean_kept <= r.k as f64 + 1e-9);
        }
    }

    #[test]
    fn json_report_shape() {
        let cfg = KnnBenchConfig::quick();
        let rows = vec![KnnBenchRow {
            k: 16,
            collect_qps: 100.0,
            knn_qps: 120.0,
            sharded_knn_qps: 90.0,
            mean_kept: 12.5,
        }];
        let prov = Provenance::capture(cfg.data_size as u64, 8, 1);
        let json = knn_report_json(&cfg, &rows, &prov);
        assert!(json.contains("\"benchmark\": \"knn_within_area\""));
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"knn_vs_collect\": 1.200"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
