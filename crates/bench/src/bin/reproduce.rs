//! Reproduction driver: regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [all|table1|table2|fig4|fig5|fig6|fig7] [--reps N] [--quick] [--out DIR]
//! ```
//!
//! * **table1** (also fig4/fig5): data-size sweep 1E5…1E6 at query size 1 %.
//! * **table2** (also fig6/fig7): query-size sweep 1 %…32 % at 1E5 points.
//! * **ablation**: candidate-level design ablations (expansion policy,
//!   point distribution, query-polygon vertex count) → `ablation_*.csv`.
//! * **sharded**: sharded vs single-engine build time, batch query
//!   throughput and MBR shard pruning at 10⁶ points →
//!   `BENCH_sharded.json` (not part of `all`; run explicitly).
//! * **power**: weighted (power-diagram) vs Euclidean build time, batch
//!   query throughput and hidden-site count at 10⁶ points →
//!   `BENCH_power.json` (not part of `all`; run explicitly).
//! * **snapshot**: cold-start load vs fresh rebuild for plain, weighted
//!   and sharded engines at 10⁵ and 10⁶ points →
//!   `BENCH_snapshot.json` (not part of `all`; run explicitly).
//! * `--reps N` — repetitions per configuration (default 200; the paper
//!   uses 1000 — pass `--reps 1000` for the exact protocol).
//! * `--quick` — divide data sizes by 10 and reps by 4 (smoke run).
//! * `--payload N` — simulated geometry-record size in bytes per point
//!   (default 1024, which restores the validation-dominated cost model of
//!   the paper's GIS setting; pass `--payload 0` for the pure in-memory
//!   regime, where the candidate counts still reproduce but raw Rust
//!   containment tests are too cheap for the filter savings to dominate
//!   wall time).
//! * `--out DIR` — output directory (default `results/`).
//!
//! Prints the tables in the paper's layout and writes one CSV per table
//! and per figure. Figures 4–7 plot columns of the tables, so their CSVs
//! are column pairs (x, traditional, voronoi) ready for any plotting tool.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use vaq_workload::report::{figure_csv, to_csv, to_markdown};
use vaq_workload::{
    data_size_sweep, paper_data_sizes, paper_query_sizes, query_size_sweep, ConfigResult,
    SweepConfig,
};

struct Args {
    what: String,
    reps: usize,
    quick: bool,
    payload: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut what = String::from("all");
    let mut reps = 200usize;
    let mut quick = false;
    let mut payload = 1024usize;
    let mut out = PathBuf::from("results");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "all" | "table1" | "table2" | "fig4" | "fig5" | "fig6" | "fig7" | "ablation"
            | "prepared" | "query-cache" | "sharded" | "predicates" | "knn" | "payload"
            | "planner" | "power" | "snapshot" => {
                what = arg;
            }
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                reps = v.parse().map_err(|_| format!("bad --reps value: {v}"))?;
            }
            "--quick" => quick = true,
            "--payload" => {
                let v = it.next().ok_or("--payload needs a value")?;
                payload = v.parse().map_err(|_| format!("bad --payload value: {v}"))?;
            }
            "--out" => {
                out = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: reproduce \
[all|table1|table2|fig4|fig5|fig6|fig7|ablation|prepared|query-cache|sharded|predicates|knn|payload|planner|power|snapshot] \
[--reps N] [--quick] [--payload BYTES] [--out DIR]",
                ));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        what,
        reps,
        quick,
        payload,
        out,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::create_dir_all(&args.out) {
        eprintln!("cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    let cfg = SweepConfig {
        reps: if args.quick {
            args.reps.div_ceil(4)
        } else {
            args.reps
        },
        payload_bytes: args.payload,
        ..SweepConfig::default()
    };

    let data_sizes: Vec<usize> = if args.quick {
        paper_data_sizes().iter().map(|n| n / 10).collect()
    } else {
        paper_data_sizes()
    };
    let table2_n = if args.quick { 10_000 } else { 100_000 };

    let need_t1 = matches!(args.what.as_str(), "all" | "table1" | "fig4" | "fig5");
    let need_t2 = matches!(args.what.as_str(), "all" | "table2" | "fig6" | "fig7");
    let need_ablation = matches!(args.what.as_str(), "all" | "ablation");

    if need_t1 {
        eprintln!(
            "== Table I / Figs 4-5: data size sweep {:?} at query size 1% ({} reps) ==",
            data_sizes, cfg.reps
        );
        let rows = data_size_sweep(&data_sizes, 0.01, &cfg, |r| {
            eprintln!(
                "  n={:>8}  result {:8.2}  trad {:9.2} cand {:9.1} us  voro {:9.2} cand {:9.1} us  (saved {:4.1}% time, {:4.1}% cand)",
                r.data_size,
                r.result_size,
                r.traditional.candidates,
                r.traditional.time_us,
                r.voronoi.candidates,
                r.voronoi.time_us,
                r.time_saving_pct(),
                r.candidate_saving_pct()
            );
        });
        emit_table(&args, "table1", "Data size", &rows);
        emit_figure(&args, "fig4", &rows, "data_size", "time_us", |r| {
            (r.data_size as f64, r.traditional.time_us, r.voronoi.time_us)
        });
        emit_figure(
            &args,
            "fig5",
            &rows,
            "data_size",
            "redundant_validations",
            |r| {
                (
                    r.data_size as f64,
                    r.traditional.redundant,
                    r.voronoi.redundant,
                )
            },
        );
    }

    if need_t2 {
        let query_sizes = paper_query_sizes();
        eprintln!(
            "== Table II / Figs 6-7: query size sweep {:?} at n={} ({} reps) ==",
            query_sizes, table2_n, cfg.reps
        );
        let rows = query_size_sweep(table2_n, &query_sizes, &cfg, |r| {
            eprintln!(
                "  qs={:>4.0}%  result {:9.2}  trad {:9.2} cand {:9.1} us  voro {:9.2} cand {:9.1} us  (saved {:4.1}% time, {:4.1}% cand)",
                r.query_size * 100.0,
                r.result_size,
                r.traditional.candidates,
                r.traditional.time_us,
                r.voronoi.candidates,
                r.voronoi.time_us,
                r.time_saving_pct(),
                r.candidate_saving_pct()
            );
        });
        emit_table(&args, "table2", "Query size", &rows);
        emit_figure(&args, "fig6", &rows, "query_size_pct", "time_us", |r| {
            (
                r.query_size * 100.0,
                r.traditional.time_us,
                r.voronoi.time_us,
            )
        });
        emit_figure(
            &args,
            "fig7",
            &rows,
            "query_size_pct",
            "redundant_validations",
            |r| {
                (
                    r.query_size * 100.0,
                    r.traditional.redundant,
                    r.voronoi.redundant,
                )
            },
        );
    }

    if need_ablation {
        run_ablations(&args, &cfg);
    }

    if matches!(args.what.as_str(), "all" | "prepared") {
        run_prepared_baseline(&args);
    }

    if matches!(args.what.as_str(), "all" | "query-cache") {
        run_query_cache_baseline(&args);
    }

    if matches!(args.what.as_str(), "all" | "predicates") {
        run_predicates_baseline(&args);
    }

    // The sharded baseline builds a 10⁶-point engine twice; it runs only
    // when asked for (`reproduce sharded`), not under `all`.
    if args.what == "sharded" {
        run_sharded_baseline(&args);
    }

    // Sink-layer baselines (kNN-within-area, payload materialisation) —
    // explicit targets, like `sharded`, to keep `all` at its cost.
    if args.what == "knn" {
        run_knn_baseline(&args);
    }
    if args.what == "payload" {
        run_payload_baseline(&args);
    }
    // Planner-vs-oracle sweep — explicit target, like `sharded`.
    if args.what == "planner" {
        run_planner_baseline(&args);
    }
    // Weighted-vs-Euclidean diagram baseline — explicit target, like
    // `sharded` (it builds two 10⁶-point engines).
    if args.what == "power" {
        run_power_baseline(&args);
    }
    // Snapshot cold-start baseline — explicit target; the full run
    // builds three 10⁶-point engines.
    if args.what == "snapshot" {
        run_snapshot_baseline(&args);
    }

    eprintln!("done; outputs in {}", args.out.display());
    ExitCode::SUCCESS
}

/// Measures the exact-predicate pipeline (batched filter + ordered-slab
/// containment vs their pre-change baselines) and records the
/// `BENCH_predicates.json` baseline.
fn run_predicates_baseline(args: &Args) {
    use vaq_bench::predicates::{
        measure_contains_paths, measure_filter_batch, predicates_report_json, PredicateBenchConfig,
    };
    use vaq_bench::provenance::Provenance;

    let cfg = if args.quick {
        PredicateBenchConfig::quick()
    } else {
        PredicateBenchConfig::standard()
    };
    eprintln!(
        "== Predicate pipeline: contains-heavy sweep k = {:?} ({} probes x {} polygons), \
filter micro-bench over {} lanes ==",
        cfg.ks, cfg.probes, cfg.polys_per_k, cfg.filter_lanes
    );
    let rows = measure_contains_paths(&cfg);
    for r in &rows {
        eprintln!(
            "  k={:>5}  raw {:8.1} ns   prepared scan {:7.1} -> adaptive {:7.1} ns ({:4.2}x)   \
pipeline {:6.1}x   prepare {:9.0} ns",
            r.k,
            r.contains_raw_ns,
            r.prepared_scan_ns,
            r.prepared_ordered_ns,
            r.ordered_speedup(),
            r.pipeline_speedup(),
            r.prepare_ns,
        );
    }
    let filter = measure_filter_batch(&cfg);
    eprintln!(
        "  filter: scalar {:.2} ns -> batch {:.2} ns ({:.2}x), {}/{} lanes decided",
        filter.scalar_ns,
        filter.batch_ns,
        filter.speedup(),
        filter.decided,
        filter.lanes,
    );
    let queries = (cfg.ks.len() * cfg.polys_per_k * cfg.probes) as u64 + filter.lanes;
    let prov = Provenance::capture(0, queries, 1);
    let json = predicates_report_json(&rows, &filter, &prov);
    let path = args.out.join("BENCH_predicates.json");
    fs::write(&path, json).expect("write BENCH_predicates.json");
    eprintln!("wrote {}", path.display());
}

/// Measures the kNN-within-area sink against the collecting baseline
/// (plain + sharded) and records the `BENCH_knn.json` baseline.
fn run_knn_baseline(args: &Args) {
    use vaq_bench::knn::{knn_report_json, measure_knn, KnnBenchConfig};
    use vaq_bench::provenance::Provenance;

    let cfg = if args.quick {
        KnnBenchConfig::quick()
    } else {
        KnnBenchConfig::standard()
    };
    eprintln!(
        "== kNN-within-area: {} points, {} areas (query size {}), k = {:?}, {} shards ==",
        cfg.data_size, cfg.distinct_areas, cfg.query_size, cfg.ks, cfg.shards
    );
    let rows = measure_knn(&cfg);
    for r in &rows {
        eprintln!(
            "  k={:>5}  collect {:9.1} q/s   knn {:9.1} q/s ({:.2}x)   sharded knn {:9.1} q/s   kept {:7.1}",
            r.k,
            r.collect_qps,
            r.knn_qps,
            r.knn_vs_collect(),
            r.sharded_knn_qps,
            r.mean_kept,
        );
    }
    let prov = Provenance::capture(
        cfg.data_size as u64,
        (cfg.distinct_areas * cfg.rounds * cfg.ks.len()) as u64,
        1,
    );
    let json = knn_report_json(&cfg, &rows, &prov);
    let path = args.out.join("BENCH_knn.json");
    fs::write(&path, json).expect("write BENCH_knn.json");
    eprintln!("wrote {}", path.display());
}

/// Measures the payload-materialising sink across record sizes (plain +
/// sharded per-shard stores) and records the `BENCH_payload.json`
/// baseline.
fn run_payload_baseline(args: &Args) {
    use vaq_bench::payload::{measure_payload, payload_report_json, PayloadBenchConfig};
    use vaq_bench::provenance::Provenance;

    let cfg = if args.quick {
        PayloadBenchConfig::quick()
    } else {
        PayloadBenchConfig::standard()
    };
    eprintln!(
        "== Payload materialisation: {} points, {} areas (query size {}), record sizes {:?}, {} shards ==",
        cfg.data_size, cfg.distinct_areas, cfg.query_size, cfg.payload_bytes, cfg.shards
    );
    let rows = measure_payload(&cfg);
    for r in &rows {
        eprintln!(
            "  {:>5} B/record  collect {:9.1} q/s   materialize {:9.1} q/s ({:.2}x)   sharded {:9.1} q/s   results {:7.1}",
            r.payload_bytes,
            r.collect_qps,
            r.materialize_qps,
            r.materialize_vs_collect(),
            r.sharded_materialize_qps,
            r.mean_results,
        );
    }
    let prov = Provenance::capture(
        cfg.data_size as u64,
        (cfg.distinct_areas * cfg.rounds * cfg.payload_bytes.len()) as u64,
        1,
    );
    let json = payload_report_json(&cfg, &rows, &prov);
    let path = args.out.join("BENCH_payload.json");
    fs::write(&path, json).expect("write BENCH_payload.json");
    eprintln!("wrote {}", path.display());
}

/// Measures snapshot cold-start (load from container) against a fresh
/// rebuild for plain, weighted and sharded engines, and records the
/// `BENCH_snapshot.json` baseline.
fn run_snapshot_baseline(args: &Args) {
    use vaq_bench::provenance::Provenance;
    use vaq_bench::snapshot::{measure_snapshots, snapshot_report_json, SnapshotBenchConfig};

    let cfg = if args.quick {
        SnapshotBenchConfig::quick()
    } else {
        SnapshotBenchConfig::standard()
    };
    eprintln!(
        "== Snapshot cold start: plain/weighted/sharded at {:?} points, best of {} loads ==",
        cfg.data_sizes, cfg.reps
    );
    let rows = measure_snapshots(&cfg);
    for r in &rows {
        eprintln!(
            "  {:>8} n={:>8}  build {:8.3} s  save {:7.3} s  {:>11} B  load {:7.4} s  ({:6.1}x)",
            r.variant,
            r.data_size,
            r.build_s,
            r.save_s,
            r.file_bytes,
            r.load_s,
            r.load_speedup()
        );
    }
    let prov = Provenance::capture(
        *cfg.data_sizes.iter().max().expect("sizes") as u64,
        cfg.check_areas as u64,
        1,
    );
    let json = snapshot_report_json(&cfg, &rows, &prov);
    let path = args.out.join("BENCH_snapshot.json");
    fs::write(&path, json).expect("write BENCH_snapshot.json");
    eprintln!("wrote {}", path.display());
}

/// Measures the weighted (power-diagram) engine against the Euclidean
/// engine over the same points — build time, batch query throughput and
/// hidden-site count — and records the `BENCH_power.json` baseline.
fn run_power_baseline(args: &Args) {
    use vaq_bench::power::{measure_power, power_report_json, PowerBenchConfig};
    use vaq_bench::provenance::Provenance;

    let cfg = if args.quick {
        PowerBenchConfig::quick()
    } else {
        PowerBenchConfig::standard()
    };
    eprintln!(
        "== Power diagram: {} points, max radius {}, {} areas (query size {}), {} threads ==",
        cfg.data_size, cfg.max_radius, cfg.distinct_areas, cfg.query_size, cfg.threads
    );
    let row = measure_power(&cfg);
    eprintln!(
        "  build: euclidean {:.3} s -> weighted {:.3} s ({:.2}x), {} hidden site(s)",
        row.euclidean_build_s,
        row.power_build_s,
        row.build_overhead(),
        row.hidden_sites,
    );
    eprintln!(
        "  query: euclidean {:9.1} q/s -> weighted {:9.1} q/s ({:.2}x cost)",
        row.euclidean_qps,
        row.power_qps,
        row.query_overhead(),
    );
    let prov = Provenance::capture(
        cfg.data_size as u64,
        (cfg.distinct_areas * cfg.rounds) as u64,
        cfg.threads,
    );
    let json = power_report_json(&row, &prov);
    let path = args.out.join("BENCH_power.json");
    fs::write(&path, json).expect("write BENCH_power.json");
    eprintln!("wrote {}", path.display());
}

/// Races the cost-model planner against every fixed strategy (and the
/// per-query oracle) over an area-size × vertex-count × distribution
/// sweep, and records the `BENCH_planner.json` baseline.
fn run_planner_baseline(args: &Args) {
    use vaq_bench::planner::{
        fixed_strategies, measure_planner, planner_report_json, planner_totals, PlannerBenchConfig,
    };
    use vaq_bench::provenance::Provenance;

    let cfg = if args.quick {
        PlannerBenchConfig::quick()
    } else {
        PlannerBenchConfig::standard()
    };
    eprintln!(
        "== Query planner: {} points x {:?}, areas {:?} x k {:?}, {} areas/cell ==",
        cfg.data_size,
        cfg.distributions
            .iter()
            .map(|&(n, _)| n)
            .collect::<Vec<_>>(),
        cfg.query_sizes,
        cfg.vertex_counts,
        cfg.areas_per_cell
    );
    let names: Vec<&str> = fixed_strategies().iter().map(|&(n, _)| n).collect();
    let cells = measure_planner(&cfg);
    for c in &cells {
        eprintln!(
            "  {:9} qs={:5.3} k={:3}  planner {:10.0} u ({:8.1} q/s)   oracle {:10.0} u   best fixed {:15} {:10.0} u ({:8.1} q/s)",
            c.distribution,
            c.query_size,
            c.vertices,
            c.planner_units,
            c.planner_qps,
            c.oracle_units,
            names[c.best_fixed],
            c.fixed_units[c.best_fixed],
            c.best_fixed_qps,
        );
    }
    let totals = planner_totals(&cells);
    eprintln!(
        "  totals: planner {:.0} u, oracle {:.0} u (ratio {:.3}); fixed {:?} -> beats all: {}",
        totals.planner_units,
        totals.oracle_units,
        totals.vs_oracle(),
        totals.fixed_units.map(|u| u.round()),
        totals.beats_all_fixed(),
    );
    let queries =
        cells.len() as u64 * cfg.areas_per_cell as u64 * (1 + fixed_strategies().len() as u64);
    let prov = Provenance::capture(cfg.data_size as u64, queries, 1);
    let json = planner_report_json(&cfg, &cells, &prov);
    let path = args.out.join("BENCH_planner.json");
    fs::write(&path, json).expect("write BENCH_planner.json");
    eprintln!("wrote {}", path.display());
}

/// Measures sharded vs single-engine build time, batch query throughput
/// and MBR shard pruning, and records the `BENCH_sharded.json` baseline.
fn run_sharded_baseline(args: &Args) {
    use vaq_bench::sharded::{measure_sharded, sharded_report_json, ShardedBenchConfig};

    let cfg = if args.quick {
        ShardedBenchConfig::quick()
    } else {
        ShardedBenchConfig::standard()
    };
    eprintln!(
        "== Sharded serving: {} points x {} shards, {} small areas (query size {}) x {} rounds, {} threads ==",
        cfg.data_size, cfg.shards, cfg.distinct_areas, cfg.query_size, cfg.rounds, cfg.threads
    );
    let row = measure_sharded(&cfg);
    eprintln!(
        "  build: single {:8.3} s   sharded {:8.3} s ({:.2}x)",
        row.single_build_s,
        row.sharded_build_s,
        row.build_speedup()
    );
    eprintln!(
        "  batch: single {:8.1} q/s  sharded {:8.1} q/s ({:.2}x)",
        row.single_qps,
        row.sharded_qps,
        row.throughput_ratio()
    );
    eprintln!(
        "  pruning: {:.2} of {} shards visited per query ({:.1}% pruned)",
        row.mean_shards_visited,
        cfg.shards,
        100.0 * row.prune_fraction()
    );
    let prov = vaq_bench::provenance::Provenance::capture(
        cfg.data_size as u64,
        (cfg.distinct_areas * cfg.rounds) as u64,
        cfg.threads,
    );
    let json = sharded_report_json(&row, &prov);
    let path = args.out.join("BENCH_sharded.json");
    fs::write(&path, json).expect("write BENCH_sharded.json");
    eprintln!("wrote {}", path.display());
}

/// Measures raw vs prepared query-area primitives across vertex counts
/// and records the `BENCH_prepared.json` baseline.
fn run_prepared_baseline(args: &Args) {
    use vaq_bench::prepared::{measure_prepared_primitives, prepared_report_json, standard_ks};

    let ks = if args.quick {
        vec![8, 64, 256]
    } else {
        standard_ks()
    };
    let probes = if args.quick { 512 } else { 4096 };
    eprintln!("== Prepared-area primitives: raw vs prepared, k = {ks:?} ==");
    let rows = measure_prepared_primitives(&ks, probes);
    for r in &rows {
        eprintln!(
            "  k={:>5}  contains {:8.1} -> {:7.1} ns ({:5.1}x)   segment {:8.1} -> {:7.1} ns ({:5.1}x)   prepare {:9.0} ns",
            r.k,
            r.contains_raw_ns,
            r.contains_prepared_ns,
            r.contains_speedup(),
            r.segment_raw_ns,
            r.segment_prepared_ns,
            r.segment_speedup(),
            r.prepare_ns,
        );
    }
    let prov = vaq_bench::provenance::Provenance::capture(0, (ks.len() * probes) as u64, 1);
    let json = prepared_report_json(&rows, &prov);
    let path = args.out.join("BENCH_prepared.json");
    fs::write(&path, json).expect("write BENCH_prepared.json");
    eprintln!("wrote {}", path.display());
}

/// Measures the repeated-areas (dashboard) workload under the three
/// prepare modes and records the `BENCH_query_cache.json` baseline.
fn run_query_cache_baseline(args: &Args) {
    use vaq_bench::query_cache::{
        measure_repeated_areas, query_cache_report_json, RepeatedAreasConfig,
    };

    let cfg = if args.quick {
        RepeatedAreasConfig::quick()
    } else {
        RepeatedAreasConfig::standard()
    };
    eprintln!(
        "== Prepared-area cache: {} areas (k={}) x {} rounds over {} points ==",
        cfg.distinct_areas, cfg.vertices, cfg.rounds, cfg.data_size
    );
    let row = measure_repeated_areas(&cfg);
    eprintln!(
        "  raw {:9.1} us/query   prepare-once {:9.1} us/query   cached {:9.1} us/query",
        row.raw_us, row.prepare_once_us, row.cached_us
    );
    eprintln!(
        "  cached speedup: {:.2}x vs raw, {:.2}x vs prepare-once ({} hits / {} misses, {:.1}% hit rate)",
        row.speedup_vs_raw(),
        row.speedup_vs_prepare_once(),
        row.cache.hits,
        row.cache.misses,
        100.0 * row.cache.hit_rate(),
    );
    let prov = vaq_bench::provenance::Provenance::capture(
        cfg.data_size as u64,
        (cfg.distinct_areas * cfg.rounds * 3) as u64,
        1,
    );
    let json = query_cache_report_json(&row, &prov);
    let path = args.out.join("BENCH_query_cache.json");
    fs::write(&path, json).expect("write BENCH_query_cache.json");
    eprintln!("wrote {}", path.display());
}

/// Candidate-level ablations (the Criterion benches cover timing; these
/// report the machine-independent counters).
fn run_ablations(args: &Args, cfg: &SweepConfig) {
    use vaq_core::ExpansionPolicy;
    use vaq_workload::Distribution;

    let n = if args.quick { 10_000 } else { 100_000 };
    eprintln!(
        "== Ablations at n={n}, query size 1% ({} reps) ==",
        cfg.reps
    );

    // 1. Expansion policy: identical results, different boundary tests.
    let mut rows =
        String::from("policy,result_size,candidates,redundant,segment_tests,cell_tests\n");
    for (name, policy) in [
        ("segment", ExpansionPolicy::Segment),
        ("cell", ExpansionPolicy::Cell),
    ] {
        let sub = SweepConfig { policy, ..*cfg };
        let engine = vaq_workload::build_engine(n, &sub);
        let stats = ablation_stats(&engine, &sub);
        eprintln!(
            "  policy {name:8}: result {:.1} candidates {:.1} segment_tests {:.1} cell_tests {:.1}",
            stats.0, stats.1, stats.3, stats.4
        );
        rows.push_str(&format!(
            "{name},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
            stats.0, stats.1, stats.2, stats.3, stats.4
        ));
    }
    fs::write(args.out.join("ablation_policy.csv"), &rows).expect("write csv");

    // 2. Distribution: uniform vs clustered.
    let mut rows = String::from(
        "distribution,result_size,trad_candidates,voro_candidates,candidate_saving_pct\n",
    );
    for (name, dist) in [
        ("uniform", Distribution::Uniform),
        (
            "clustered",
            Distribution::Clustered {
                clusters: 20,
                sigma: 0.02,
            },
        ),
    ] {
        let sub = SweepConfig {
            distribution: dist,
            ..*cfg
        };
        let engine = vaq_workload::build_engine(n, &sub);
        let row = vaq_workload::run_config(&engine, 0.01, &sub);
        eprintln!(
            "  distribution {name:10}: trad {:.1} voro {:.1} (saved {:.1}%)",
            row.traditional.candidates,
            row.voronoi.candidates,
            row.candidate_saving_pct()
        );
        rows.push_str(&format!(
            "{name},{:.2},{:.2},{:.2},{:.1}\n",
            row.result_size,
            row.traditional.candidates,
            row.voronoi.candidates,
            row.candidate_saving_pct()
        ));
    }
    fs::write(args.out.join("ablation_distribution.csv"), &rows).expect("write csv");

    // 3. Query-polygon vertex count (the paper fixes 10).
    let mut rows =
        String::from("vertices,result_size,trad_candidates,voro_candidates,candidate_saving_pct\n");
    let engine = vaq_workload::build_engine(n, cfg);
    for k in [4usize, 10, 20, 40] {
        let sub = SweepConfig {
            polygon_vertices: k,
            ..*cfg
        };
        let row = vaq_workload::run_config(&engine, 0.01, &sub);
        eprintln!(
            "  {k:2}-gon queries: result {:.1} trad {:.1} voro {:.1} (saved {:.1}%)",
            row.result_size,
            row.traditional.candidates,
            row.voronoi.candidates,
            row.candidate_saving_pct()
        );
        rows.push_str(&format!(
            "{k},{:.2},{:.2},{:.2},{:.1}\n",
            row.result_size,
            row.traditional.candidates,
            row.voronoi.candidates,
            row.candidate_saving_pct()
        ));
    }
    fs::write(args.out.join("ablation_vertices.csv"), &rows).expect("write csv");
}

/// Runs the Voronoi method only, returning mean (result, candidates,
/// redundant, segment_tests, cell_tests).
fn ablation_stats(
    engine: &vaq_core::AreaQueryEngine,
    cfg: &SweepConfig,
) -> (f64, f64, f64, f64, f64) {
    use vaq_core::QuerySpec;
    use vaq_workload::{random_query_polygon, unit_space, PolygonSpec};
    let spec = PolygonSpec {
        vertices: cfg.polygon_vertices,
        query_size: 0.01,
        min_radius_ratio: cfg.min_radius_ratio,
    };
    let space = unit_space();
    let mut session = engine.session();
    let query_spec = QuerySpec::voronoi().policy(cfg.policy);
    let mut acc = (0.0, 0.0, 0.0, 0.0, 0.0);
    for rep in 0..cfg.reps as u64 {
        let poly = random_query_polygon(&space, &spec, cfg.base_seed.wrapping_add(rep * 31));
        let out = session.execute(&query_spec, &poly);
        let stats = out.stats();
        acc.0 += stats.result_size as f64;
        acc.1 += stats.candidates as f64;
        acc.2 += stats.redundant_validations() as f64;
        acc.3 += stats.segment_tests as f64;
        acc.4 += stats.cell_tests as f64;
    }
    let k = cfg.reps as f64;
    (acc.0 / k, acc.1 / k, acc.2 / k, acc.3 / k, acc.4 / k)
}

fn emit_table(args: &Args, name: &str, sweep_col: &str, rows: &[ConfigResult]) {
    let csv_path = args.out.join(format!("{name}.csv"));
    fs::write(&csv_path, to_csv(rows)).expect("write table csv");
    let md = to_markdown(rows, sweep_col);
    fs::write(args.out.join(format!("{name}.md")), &md).expect("write table md");
    println!("\n### {name} ({sweep_col} sweep)\n\n{md}");
}

fn emit_figure(
    args: &Args,
    name: &str,
    rows: &[ConfigResult],
    x: &str,
    y: &str,
    pick: impl Fn(&ConfigResult) -> (f64, f64, f64),
) {
    let csv = figure_csv(rows, x, y, pick);
    fs::write(args.out.join(format!("{name}.csv")), csv).expect("write figure csv");
}
