//! Weighted-vs-Euclidean measurements and the `BENCH_power.json` baseline.
//!
//! The generalization question: what does the power-diagram substrate
//! cost relative to the Euclidean diagram it degenerates to? Three
//! quantities, measured on the same points and the same query workload:
//!
//! * **build time** — the Euclidean `AreaQueryEngine` vs the weighted
//!   engine over the same points with clustered-radius weights (the
//!   regular triangulation runs `power_incircle` instead of `incircle`
//!   and must detect hidden sites);
//! * **batch query throughput** — the Voronoi-method batch on each
//!   engine (power cells change the seed walks and BFS frontiers, never
//!   the answers);
//! * **hidden sites** — how many sites the weight distribution swallows
//!   (the structural difference the weighted build pays for).
//!
//! Before timing, the harness cross-checks the two invariants the
//! differential suite pins: a uniform weight vector normalises to the
//! Euclidean diagram, and weighted answers are bit-identical to the
//! Euclidean answers (membership is point-in-area — weights shape
//! cells, not results). The same measurement backs the `reproduce
//! power` subcommand, which records the JSON baseline.

use crate::provenance::Provenance;
use crate::{polygon_batch_with, time_qps, HARNESS_SEED};
use std::fmt::Write as _;
use std::time::Instant;
use vaq_core::{AreaQueryEngine, QuerySpec};
use vaq_delaunay::DiagramKind;
use vaq_workload::{generate, generate_weights, Distribution, WeightDistribution};

/// Workload shape of one weighted-vs-Euclidean measurement.
#[derive(Clone, Copy, Debug)]
pub struct PowerBenchConfig {
    /// Engine size (uniform points).
    pub data_size: usize,
    /// Largest site service radius (weights are squared radii, drawn
    /// from four clustered radius classes). Around the mean point
    /// spacing, so heavy sites really do swallow light neighbours.
    pub max_radius: f64,
    /// Distinct query areas in the batch.
    pub distinct_areas: usize,
    /// `area(MBR) / area(space)` of each query polygon.
    pub query_size: f64,
    /// How many times the area set is swept per timed batch.
    pub rounds: usize,
    /// Worker threads for both engines' batch paths.
    pub threads: usize,
    /// Timing batches (best-of, rejects scheduler noise).
    pub reps: usize,
}

impl PowerBenchConfig {
    /// The standard baseline configuration (10⁶ points — the top of the
    /// paper's data-size sweep).
    pub fn standard() -> PowerBenchConfig {
        PowerBenchConfig {
            data_size: 1_000_000,
            max_radius: 0.001,
            distinct_areas: 64,
            query_size: 0.001,
            rounds: 4,
            threads: 8,
            reps: 2,
        }
    }

    /// A tiny configuration for smoke tests (`--quick`).
    pub fn quick() -> PowerBenchConfig {
        PowerBenchConfig {
            data_size: 20_000,
            max_radius: 0.007,
            distinct_areas: 8,
            query_size: 0.01,
            rounds: 2,
            threads: 2,
            reps: 1,
        }
    }
}

/// One weighted-vs-Euclidean measurement row.
#[derive(Clone, Copy, Debug)]
pub struct PowerBenchRow {
    /// The measured workload.
    pub config: PowerBenchConfig,
    /// Euclidean engine build, seconds.
    pub euclidean_build_s: f64,
    /// Weighted (power-diagram) engine build, seconds.
    pub power_build_s: f64,
    /// Euclidean-engine batch throughput, queries/second.
    pub euclidean_qps: f64,
    /// Weighted-engine batch throughput, queries/second.
    pub power_qps: f64,
    /// Sites hidden by heavier neighbours in the weighted build.
    pub hidden_sites: usize,
}

impl PowerBenchRow {
    /// Weighted build cost relative to the Euclidean build.
    pub fn build_overhead(&self) -> f64 {
        self.power_build_s / self.euclidean_build_s
    }

    /// Weighted query cost relative to the Euclidean engine (time per
    /// query, so `> 1` means the power diagram is slower to query).
    pub fn query_overhead(&self) -> f64 {
        self.euclidean_qps / self.power_qps
    }
}

/// Runs the weighted-vs-Euclidean workload: builds both engines over
/// the same points (timed), cross-checks the uniform-normalisation and
/// answer-identity invariants, then times each engine's batch
/// throughput.
pub fn measure_power(cfg: &PowerBenchConfig) -> PowerBenchRow {
    let pts = generate(
        cfg.data_size,
        Distribution::Uniform,
        HARNESS_SEED ^ cfg.data_size as u64,
    );
    let ws = generate_weights(
        cfg.data_size,
        WeightDistribution::ClusteredRadii {
            groups: 4,
            max_radius: cfg.max_radius,
            jitter: 0.3,
        },
        HARNESS_SEED.rotate_left(17),
    );
    let areas = polygon_batch_with(cfg.query_size, cfg.distinct_areas, 10);
    let spec = QuerySpec::voronoi();

    let t0 = Instant::now();
    let euclid = AreaQueryEngine::build(&pts);
    let euclidean_build_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let power = AreaQueryEngine::build_weighted(&pts, &ws);
    let power_build_s = t1.elapsed().as_secs_f64();
    assert_eq!(power.diagram_kind(), DiagramKind::Power);
    let hidden_sites = power
        .triangulation()
        .map_or(0, |tri| tri.hidden_vertices().len());

    // Cross-checks (outside the timed region): uniform weights
    // normalise to the Euclidean diagram, and weighted answers are
    // bit-identical to Euclidean answers on every benched area.
    let m = cfg.data_size.min(4096);
    let uniform = AreaQueryEngine::build_weighted(&pts[..m], &vec![0.25; m]);
    assert_eq!(uniform.diagram_kind(), DiagramKind::Euclidean);
    let euclid_outs = euclid.execute_batch(&spec, &areas, cfg.threads);
    let power_outs = power.execute_batch(&spec, &areas, cfg.threads);
    for (i, (a, b)) in euclid_outs.iter().zip(&power_outs).enumerate() {
        assert_eq!(
            a.result().expect("collect-mode batch").sorted_indices(),
            b.result().expect("collect-mode batch").sorted_indices(),
            "weighted result diverged on area {i}"
        );
    }

    let queries = cfg.distinct_areas * cfg.rounds;
    let run_batch = |engine: &AreaQueryEngine| -> f64 {
        time_qps(queries, cfg.reps, &mut || {
            (0..cfg.rounds)
                .map(|_| {
                    engine
                        .execute_batch(&spec, &areas, cfg.threads)
                        .iter()
                        .map(|o| o.count())
                        .sum::<usize>()
                })
                .sum()
        })
    };
    let euclidean_qps = run_batch(&euclid);
    let power_qps = run_batch(&power);

    PowerBenchRow {
        config: *cfg,
        euclidean_build_s,
        power_build_s,
        euclidean_qps,
        power_qps,
        hidden_sites,
    }
}

/// Renders the measurement as the `BENCH_power.json` baseline document.
pub fn power_report_json(row: &PowerBenchRow, prov: &Provenance) -> String {
    let c = &row.config;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"benchmark\": \"power_vs_euclidean_diagram\",");
    let _ = writeln!(s, "  \"provenance\": {},", prov.json_object());
    let _ = writeln!(
        s,
        "  \"workload\": {{\"data_size\": {}, \"max_radius\": {}, \"distinct_areas\": {}, \
\"query_size\": {}, \"rounds\": {}, \"threads\": {}}},",
        c.data_size, c.max_radius, c.distinct_areas, c.query_size, c.rounds, c.threads
    );
    let _ = writeln!(s, "  \"euclidean_build_s\": {:.3},", row.euclidean_build_s);
    let _ = writeln!(s, "  \"power_build_s\": {:.3},", row.power_build_s);
    let _ = writeln!(s, "  \"build_overhead\": {:.2},", row.build_overhead());
    let _ = writeln!(s, "  \"euclidean_qps\": {:.1},", row.euclidean_qps);
    let _ = writeln!(s, "  \"power_qps\": {:.1},", row.power_qps);
    let _ = writeln!(s, "  \"query_overhead\": {:.2},", row.query_overhead());
    let _ = writeln!(s, "  \"hidden_sites\": {}", row.hidden_sites);
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_sane_and_hides_sites() {
        let row = measure_power(&PowerBenchConfig::quick());
        assert!(row.euclidean_build_s > 0.0);
        assert!(row.power_build_s > 0.0);
        assert!(row.euclidean_qps > 0.0);
        assert!(row.power_qps > 0.0);
        assert!(
            row.hidden_sites > 0,
            "a max radius well past the mean spacing must hide some sites"
        );
        assert!(
            row.hidden_sites < row.config.data_size / 2,
            "hiding {} of {} sites means the radii are out of scale",
            row.hidden_sites,
            row.config.data_size
        );
    }

    #[test]
    fn json_report_shape() {
        let row = PowerBenchRow {
            config: PowerBenchConfig::quick(),
            euclidean_build_s: 1.0,
            power_build_s: 1.5,
            euclidean_qps: 200.0,
            power_qps: 160.0,
            hidden_sites: 42,
        };
        let prov = Provenance::capture(row.config.data_size as u64, 16, row.config.threads);
        let json = power_report_json(&row, &prov);
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"build_overhead\": 1.50"));
        assert!(json.contains("\"query_overhead\": 1.25"));
        assert!(json.contains("\"hidden_sites\": 42"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
