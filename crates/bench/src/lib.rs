//! # vaq-bench — benchmark harness
//!
//! Regenerates every table and figure of the evaluation section of *Area
//! Queries Based on Voronoi Diagrams* (ICDE 2020), plus the ablation
//! studies called out in DESIGN.md.
//!
//! * `cargo run --release -p vaq-bench --bin reproduce` — runs the paper's
//!   two sweeps, prints Table I / Table II in the paper's layout, and
//!   writes `results/table1.csv`, `results/table2.csv` and
//!   `results/fig{4,5,6,7}.csv` (each figure is a column pair of the
//!   corresponding table, exactly as in the paper).
//! * `cargo bench -p vaq-bench` — Criterion timing benches:
//!   `fig4_time_vs_data_size`, `fig6_time_vs_query_size`, `components`
//!   (substrate micro-benches), `ablations` (design-choice comparisons).
//!
//! This library crate holds the small helpers the benches and the binary
//! share: pre-generated polygon batches and engine construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod knn;
pub mod payload;
pub mod planner;
pub mod power;
pub mod predicates;
pub mod prepared;
pub mod provenance;
pub mod query_cache;
pub mod sharded;
pub mod snapshot;

use vaq_core::AreaQueryEngine;
use vaq_geom::Polygon;
use vaq_workload::{generate, random_query_polygon, unit_space, Distribution, PolygonSpec};

/// Deterministic base seed shared by the whole harness.
pub const HARNESS_SEED: u64 = 0x1CDE_2020;

/// Best-of-`reps` throughput of `run` (which answers `queries` queries
/// per call and returns a sink value kept observable via `black_box`).
/// Shared by the sink-layer baselines so their timing methodology cannot
/// drift apart.
pub fn time_qps(queries: usize, reps: usize, run: &mut dyn FnMut() -> usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        let n = run();
        let qps = queries as f64 / t.elapsed().as_secs_f64();
        std::hint::black_box(n);
        best = best.max(qps);
    }
    best
}

/// Builds the standard engine (uniform points, STR R-tree + Delaunay) for
/// a benchmark dataset of `n` points.
pub fn standard_engine(n: usize) -> AreaQueryEngine {
    let pts = generate(n, Distribution::Uniform, HARNESS_SEED ^ n as u64);
    AreaQueryEngine::build(&pts)
}

/// Pre-generates `count` random 10-gon query polygons of the given query
/// size, so polygon generation stays out of the timed region.
pub fn polygon_batch(query_size: f64, count: usize) -> Vec<Polygon> {
    polygon_batch_with(query_size, count, 10)
}

/// As [`polygon_batch`] with an explicit vertex count — the sweep axis of
/// the prepared-area benchmarks (raw primitives are `O(k)` in the vertex
/// count; prepared ones are not).
pub fn polygon_batch_with(query_size: f64, count: usize, vertices: usize) -> Vec<Polygon> {
    let space = unit_space();
    let spec = PolygonSpec {
        vertices,
        ..PolygonSpec::with_query_size(query_size)
    };
    (0..count as u64)
        .map(|i| {
            random_query_polygon(
                &space,
                &spec,
                HARNESS_SEED.wrapping_add(i * 7919) ^ vertices as u64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_deterministic() {
        let a = polygon_batch(0.01, 3);
        let b = polygon_batch(0.01, 3);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.vertices(), y.vertices());
        }
        let e = standard_engine(500);
        assert_eq!(e.len(), 500);
    }
}
