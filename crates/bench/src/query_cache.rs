//! Repeated-areas measurements and the `BENCH_query_cache.json` baseline.
//!
//! The dashboard workload: a handful of (large, irregular) query areas
//! asked over and over against one engine. The prepared-area primitives
//! are the entire per-candidate cost (the paper's point), so how the area
//! gets prepared dominates:
//!
//! * [`PrepareMode::Raw`] — no preparation, `O(k)` primitives per
//!   candidate, every query.
//! * [`PrepareMode::PrepareOnce`] — fast primitives, but the slab/grid
//!   build is paid on *every* query.
//! * [`PrepareMode::Cached`] — the session's LRU pays the build once per
//!   distinct area; every repeat runs on fast primitives for free.
//!
//! The same measurement backs the `reproduce query-cache` subcommand
//! (which records the JSON baseline), the `repeated_areas` Criterion
//! bench, and sanity tests. Timing is a best-of-batches loop over a
//! deterministic workload; the interesting outputs are the *ratios*.

use crate::provenance::Provenance;
use crate::{polygon_batch_with, standard_engine};
use std::fmt::Write as _;
use std::time::Instant;
use vaq_core::{CacheCounters, PrepareMode, QuerySession, QuerySpec};

/// Workload shape of one repeated-areas measurement.
#[derive(Clone, Copy, Debug)]
pub struct RepeatedAreasConfig {
    /// Engine size (uniform points).
    pub data_size: usize,
    /// Distinct query areas in the dashboard.
    pub distinct_areas: usize,
    /// Query-polygon vertex count (preparation matters at large `k`).
    pub vertices: usize,
    /// `area(MBR) / area(space)` of each query polygon.
    pub query_size: f64,
    /// How many times the full set of areas is swept per batch.
    pub rounds: usize,
    /// Timing batches (best-of, rejects scheduler noise).
    pub reps: usize,
}

impl RepeatedAreasConfig {
    /// The standard baseline configuration.
    pub fn standard() -> RepeatedAreasConfig {
        RepeatedAreasConfig {
            data_size: 50_000,
            distinct_areas: 8,
            vertices: 256,
            query_size: 0.02,
            rounds: 25,
            reps: 5,
        }
    }

    /// A tiny configuration for smoke tests (`--quick`).
    pub fn quick() -> RepeatedAreasConfig {
        RepeatedAreasConfig {
            data_size: 5_000,
            distinct_areas: 4,
            vertices: 64,
            query_size: 0.02,
            rounds: 5,
            reps: 2,
        }
    }
}

/// Mean per-query times of the three prepare modes on the same repeated
/// workload, plus the cached run's hit/miss totals.
#[derive(Clone, Copy, Debug)]
pub struct RepeatedAreasRow {
    /// The measured workload.
    pub config: RepeatedAreasConfig,
    /// Mean µs/query, raw areas.
    pub raw_us: f64,
    /// Mean µs/query, preparing per query.
    pub prepare_once_us: f64,
    /// Mean µs/query, session prepared-area cache.
    pub cached_us: f64,
    /// Cache traffic of the (timed) cached run.
    pub cache: CacheCounters,
}

impl RepeatedAreasRow {
    /// Speedup of the cache over raw areas.
    pub fn speedup_vs_raw(&self) -> f64 {
        self.raw_us / self.cached_us
    }

    /// Speedup of the cache over per-query preparation.
    pub fn speedup_vs_prepare_once(&self) -> f64 {
        self.prepare_once_us / self.cached_us
    }
}

/// Runs the repeated-areas workload under each prepare mode and returns
/// the mean per-query times. Results are cross-checked for equality while
/// measuring (outside the timed region).
pub fn measure_repeated_areas(cfg: &RepeatedAreasConfig) -> RepeatedAreasRow {
    let engine = standard_engine(cfg.data_size);
    let areas = polygon_batch_with(cfg.query_size, cfg.distinct_areas, cfg.vertices);
    let queries = cfg.distinct_areas * cfg.rounds;

    // Cross-check: all three modes answer identically on this workload.
    {
        let mut session = engine.session();
        for area in &areas {
            let raw = session.execute(&QuerySpec::voronoi(), area);
            for prepare in [PrepareMode::PrepareOnce, PrepareMode::Cached] {
                let out = session.execute(&QuerySpec::voronoi().prepare(prepare), area);
                assert_eq!(
                    out.result().unwrap().indices,
                    raw.result().unwrap().indices,
                    "prepare modes diverged"
                );
            }
        }
    }

    let time_mode = |prepare: PrepareMode| -> (f64, CacheCounters) {
        let spec = QuerySpec::voronoi().prepare(prepare);
        let mut best = f64::INFINITY;
        let mut cache = CacheCounters::default();
        for _ in 0..cfg.reps {
            // A fresh session per batch: the first sweep of a cached batch
            // pays the misses, the remaining `rounds - 1` sweeps hit —
            // exactly a dashboard warming up.
            let mut session = QuerySession::new(&engine);
            let mut sink = 0usize;
            let t0 = Instant::now();
            for _ in 0..cfg.rounds {
                for area in &areas {
                    sink = sink.wrapping_add(session.execute(&spec, area).count());
                }
            }
            let us = t0.elapsed().as_secs_f64() * 1e6 / queries as f64;
            std::hint::black_box(sink);
            if us < best {
                best = us;
                cache = session.cache_counters();
            }
        }
        (best, cache)
    };

    let (raw_us, _) = time_mode(PrepareMode::Raw);
    let (prepare_once_us, _) = time_mode(PrepareMode::PrepareOnce);
    let (cached_us, cache) = time_mode(PrepareMode::Cached);
    RepeatedAreasRow {
        config: *cfg,
        raw_us,
        prepare_once_us,
        cached_us,
        cache,
    }
}

/// Renders the measurement as the `BENCH_query_cache.json` baseline
/// document.
pub fn query_cache_report_json(row: &RepeatedAreasRow, prov: &Provenance) -> String {
    let c = &row.config;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"benchmark\": \"prepared_area_cache_repeated_areas\","
    );
    let _ = writeln!(s, "  \"provenance\": {},", prov.json_object());
    let _ = writeln!(
        s,
        "  \"workload\": {{\"data_size\": {}, \"distinct_areas\": {}, \"vertices\": {}, \
\"query_size\": {}, \"rounds\": {}}},",
        c.data_size, c.distinct_areas, c.vertices, c.query_size, c.rounds
    );
    let _ = writeln!(s, "  \"units\": \"us_per_query\",");
    let _ = writeln!(s, "  \"raw\": {:.1},", row.raw_us);
    let _ = writeln!(s, "  \"prepare_once\": {:.1},", row.prepare_once_us);
    let _ = writeln!(s, "  \"cached\": {:.1},", row.cached_us);
    let _ = writeln!(
        s,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},",
        row.cache.hits,
        row.cache.misses,
        row.cache.hit_rate()
    );
    let _ = writeln!(s, "  \"speedup_vs_raw\": {:.2},", row.speedup_vs_raw());
    let _ = writeln!(
        s,
        "  \"speedup_vs_prepare_once\": {:.2}",
        row.speedup_vs_prepare_once()
    );
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_sane() {
        let row = measure_repeated_areas(&RepeatedAreasConfig::quick());
        assert!(row.raw_us > 0.0);
        assert!(row.prepare_once_us > 0.0);
        assert!(row.cached_us > 0.0);
        // 4 distinct areas, 5 rounds: 4 misses, 16 hits.
        assert_eq!(row.cache.misses, 4);
        assert_eq!(row.cache.hits, 16);
        assert!(row.cache.hit_rate() > 0.75);
    }

    #[test]
    fn json_report_shape() {
        let row = RepeatedAreasRow {
            config: RepeatedAreasConfig::quick(),
            raw_us: 100.0,
            prepare_once_us: 60.0,
            cached_us: 20.0,
            cache: CacheCounters {
                hits: 16,
                misses: 4,
            },
        };
        let prov = Provenance::capture(row.config.data_size as u64, 64, 1);
        let json = query_cache_report_json(&row, &prov);
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"speedup_vs_raw\": 5.00"));
        assert!(json.contains("\"speedup_vs_prepare_once\": 3.00"));
        assert!(json.contains("\"hits\": 16"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
