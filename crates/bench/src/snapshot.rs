//! Snapshot cold-start measurements and the `BENCH_snapshot.json`
//! baseline.
//!
//! The serving question behind `vaq_core::snapshot`: a process that has
//! to answer queries *now* should not pay the `O(n log n)` triangulation
//! again when an identical engine was already built, checked and saved.
//! For each engine shape (plain Euclidean, power-weighted, sharded) at
//! each data size this module measures, on the same points:
//!
//! * **build time** — the full fresh build (triangulation, R-tree,
//!   density map, hidden-site index), the median of `reps` runs — a
//!   single build sample on a shared box swings by tens of percent,
//!   and the median is a fair estimator where best-of would flatter
//!   the snapshot and worst-of would flatter the rebuild;
//! * **save time and container size** — flat-encode plus write;
//! * **cold-start load time** — read the container from disk and hand
//!   the flat arrays back to a ready engine (best of `reps`, rejecting
//!   scheduler noise);
//! * **load speedup** — build time over load time, the number the
//!   snapshot subsystem exists for.
//!
//! Before anything is timed, the loaded engine is cross-checked for
//! bit-identical result sets against the freshly built one on a small
//! polygon batch — a snapshot that loads fast but answers differently
//! is worthless. The same measurement backs the `reproduce snapshot`
//! subcommand, which records the JSON baseline.

use crate::provenance::Provenance;
use crate::{polygon_batch_with, HARNESS_SEED};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use vaq_core::{snapshot, AreaQueryEngine, QuerySpec, ShardedAreaQueryEngine};
use vaq_workload::{generate, Distribution};

/// Workload shape of one snapshot cold-start measurement.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotBenchConfig {
    /// Engine sizes (uniform points) to measure, ascending.
    pub data_sizes: [usize; 2],
    /// Shard count of the sharded variant.
    pub shards: usize,
    /// Measurement repetitions: loads take the best (cold-start floor),
    /// builds the median (noise-resistant rebuild cost).
    pub reps: usize,
    /// Distinct areas in the bit-identity cross-check batch.
    pub check_areas: usize,
}

impl SnapshotBenchConfig {
    /// The standard baseline configuration (10⁵ and 10⁶ points).
    pub fn standard() -> SnapshotBenchConfig {
        SnapshotBenchConfig {
            data_sizes: [100_000, 1_000_000],
            shards: 8,
            reps: 3,
            check_areas: 8,
        }
    }

    /// A tiny configuration for smoke tests (`--quick`).
    pub fn quick() -> SnapshotBenchConfig {
        SnapshotBenchConfig {
            data_sizes: [5_000, 20_000],
            shards: 4,
            reps: 2,
            check_areas: 4,
        }
    }
}

/// One engine-shape × data-size measurement.
#[derive(Clone, Debug)]
pub struct SnapshotBenchRow {
    /// Engine shape: `"plain"`, `"weighted"` or `"sharded"`.
    pub variant: &'static str,
    /// Points in the engine.
    pub data_size: usize,
    /// Fresh build, seconds; median of `reps` builds.
    pub build_s: f64,
    /// Flat-encode plus file write, seconds.
    pub save_s: f64,
    /// Container size on disk, bytes.
    pub file_bytes: u64,
    /// Cold-start load (read + decode + reassemble), seconds, best of
    /// `reps`.
    pub load_s: f64,
}

impl SnapshotBenchRow {
    /// Build time over load time — how much faster a process is ready
    /// to serve from the snapshot than from raw points.
    pub fn load_speedup(&self) -> f64 {
        self.build_s / self.load_s
    }

    /// Container bytes per indexed point.
    pub fn bytes_per_point(&self) -> f64 {
        self.file_bytes as f64 / self.data_size as f64
    }
}

/// Weights that force a power diagram with a few hidden sites, matching
/// the differential suite's shape at benchmark scale.
fn power_weights(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if i % 5003 == 0 {
                0.02
            } else {
                1e-4 * ((i % 11) as f64)
            }
        })
        .collect()
}

fn scratch_path(tag: &str, n: usize) -> PathBuf {
    std::env::temp_dir().join(format!("vaq-bench-{tag}-{n}.snap"))
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        best = best.min(run());
    }
    best
}

/// Runs `build` `reps` times and returns the last product with the
/// median wall time (the upper median on even counts).
fn median_build<T, F: FnMut() -> T>(reps: usize, mut build: F) -> (T, f64) {
    let mut times = Vec::new();
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        out = Some(build());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (out.expect("reps >= 1"), times[times.len() / 2])
}

/// Measures one plain or weighted engine: build, save, cross-check,
/// cold-start load.
fn measure_plain(
    variant: &'static str,
    n: usize,
    weighted: bool,
    cfg: &SnapshotBenchConfig,
) -> SnapshotBenchRow {
    let pts = generate(n, Distribution::Uniform, HARNESS_SEED ^ n as u64);
    let (fresh, build_s) = median_build(cfg.reps, || {
        if weighted {
            AreaQueryEngine::build_weighted(&pts, &power_weights(n))
        } else {
            AreaQueryEngine::build(&pts)
        }
    });

    let path = scratch_path(variant, n);
    let t1 = Instant::now();
    snapshot::save_engine(&fresh, &path).expect("save snapshot");
    let save_s = t1.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&path).expect("stat snapshot").len();

    // Bit-identity gate before any timing: same sorted indices on a
    // small polygon batch.
    let loaded = snapshot::load_engine(&path).expect("load snapshot");
    let areas = polygon_batch_with(0.001, cfg.check_areas, 10);
    let spec = QuerySpec::voronoi();
    for (i, area) in areas.iter().enumerate() {
        let a = fresh.session().execute(&spec, area);
        let b = loaded.session().execute(&spec, area);
        assert_eq!(
            a.result().expect("collect").sorted_indices(),
            b.result().expect("collect").sorted_indices(),
            "{variant} snapshot diverged on area {i}"
        );
    }
    drop(loaded);

    let load_s = best_of(cfg.reps, || {
        let t = Instant::now();
        let engine = snapshot::load_engine(&path).expect("load snapshot");
        let s = t.elapsed().as_secs_f64();
        std::hint::black_box(engine.len());
        s
    });
    let _ = std::fs::remove_file(&path);

    SnapshotBenchRow {
        variant,
        data_size: n,
        build_s,
        save_s,
        file_bytes,
        load_s,
    }
}

/// Measures the sharded engine the same way.
fn measure_sharded_snapshot(n: usize, cfg: &SnapshotBenchConfig) -> SnapshotBenchRow {
    let pts = generate(n, Distribution::Uniform, HARNESS_SEED ^ n as u64);
    let (fresh, build_s) =
        median_build(cfg.reps, || ShardedAreaQueryEngine::build(&pts, cfg.shards));

    let path = scratch_path("sharded", n);
    let t1 = Instant::now();
    snapshot::save_sharded(&fresh, &path).expect("save snapshot");
    let save_s = t1.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&path).expect("stat snapshot").len();

    let loaded = snapshot::load_sharded(&path).expect("load snapshot");
    let areas = polygon_batch_with(0.001, cfg.check_areas, 10);
    let spec = QuerySpec::voronoi();
    for (i, area) in areas.iter().enumerate() {
        let a = fresh.execute(&spec, area);
        let b = loaded.execute(&spec, area);
        assert_eq!(
            a.indices, b.indices,
            "sharded snapshot diverged on area {i}"
        );
    }
    drop(loaded);

    let load_s = best_of(cfg.reps, || {
        let t = Instant::now();
        let engine = snapshot::load_sharded(&path).expect("load snapshot");
        let s = t.elapsed().as_secs_f64();
        std::hint::black_box(engine.len());
        s
    });
    let _ = std::fs::remove_file(&path);

    SnapshotBenchRow {
        variant: "sharded",
        data_size: n,
        build_s,
        save_s,
        file_bytes,
        load_s,
    }
}

/// Runs the full sweep: plain, weighted and sharded at each configured
/// data size. Rows come out grouped by variant, ascending size.
pub fn measure_snapshots(cfg: &SnapshotBenchConfig) -> Vec<SnapshotBenchRow> {
    let mut rows = Vec::new();
    for &n in &cfg.data_sizes {
        rows.push(measure_plain("plain", n, false, cfg));
    }
    for &n in &cfg.data_sizes {
        rows.push(measure_plain("weighted", n, true, cfg));
    }
    for &n in &cfg.data_sizes {
        rows.push(measure_sharded_snapshot(n, cfg));
    }
    rows
}

/// Renders the sweep as the `BENCH_snapshot.json` baseline document.
/// The headline number is `plain_load_speedup_at_max`: cold-start load
/// vs rebuild for the plain Euclidean engine at the largest size.
pub fn snapshot_report_json(
    cfg: &SnapshotBenchConfig,
    rows: &[SnapshotBenchRow],
    prov: &Provenance,
) -> String {
    let headline = rows
        .iter()
        .filter(|r| r.variant == "plain")
        .max_by_key(|r| r.data_size)
        .map_or(0.0, SnapshotBenchRow::load_speedup);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"benchmark\": \"snapshot_cold_start\",");
    let _ = writeln!(s, "  \"provenance\": {},", prov.json_object());
    let _ = writeln!(
        s,
        "  \"workload\": {{\"data_sizes\": [{}, {}], \"shards\": {}, \"reps\": {}, \
\"check_areas\": {}}},",
        cfg.data_sizes[0], cfg.data_sizes[1], cfg.shards, cfg.reps, cfg.check_areas
    );
    let _ = writeln!(s, "  \"plain_load_speedup_at_max\": {headline:.1},");
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"variant\": \"{}\", \"data_size\": {}, \"build_s\": {:.4}, \
\"save_s\": {:.4}, \"file_bytes\": {}, \"bytes_per_point\": {:.1}, \"load_s\": {:.4}, \
\"load_speedup\": {:.1}}}{comma}",
            r.variant,
            r.data_size,
            r.build_s,
            r.save_s,
            r.file_bytes,
            r.bytes_per_point(),
            r.load_s,
            r.load_speedup()
        );
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_sane() {
        let cfg = SnapshotBenchConfig {
            data_sizes: [500, 1500],
            shards: 3,
            reps: 1,
            check_areas: 2,
        };
        let rows = measure_snapshots(&cfg);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.build_s > 0.0, "{}: build timed", r.variant);
            assert!(r.load_s > 0.0, "{}: load timed", r.variant);
            assert!(r.file_bytes > 0, "{}: container written", r.variant);
            assert!(
                r.bytes_per_point() > 8.0,
                "{}: container holds at least the coordinates",
                r.variant
            );
        }
    }

    #[test]
    fn json_report_shape() {
        let cfg = SnapshotBenchConfig::quick();
        let rows = vec![SnapshotBenchRow {
            variant: "plain",
            data_size: 20_000,
            build_s: 1.0,
            save_s: 0.01,
            file_bytes: 1 << 20,
            load_s: 0.05,
        }];
        let prov = Provenance::capture(20_000, 4, 1);
        let json = snapshot_report_json(&cfg, &rows, &prov);
        assert!(json.contains("\"benchmark\": \"snapshot_cold_start\""));
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"plain_load_speedup_at_max\": 20.0"));
        assert!(json.contains("\"load_speedup\": 20.0"));
    }
}
