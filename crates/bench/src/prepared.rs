//! Prepared-area primitive measurements and the `BENCH_prepared.json`
//! baseline report.
//!
//! Measures the two hot-path primitives — `Contains(A, p)` and
//! `Intersects(segment, A)` — on raw vs prepared query polygons across a
//! sweep of vertex counts `k`, plus the one-off preparation cost. The
//! same measurement backs the `reproduce prepared` subcommand (which
//! records the JSON baseline) and sanity tests.
//!
//! Timing is a simple best-of-batches loop over deterministic inputs; the
//! interesting output is the *ratio* raw/prepared, which is robust to
//! machine noise at the measured magnitudes.

use crate::provenance::Provenance;
use crate::{polygon_batch_with, HARNESS_SEED};
use std::fmt::Write as _;
use std::time::Instant;
use vaq_geom::{Point, PreparedPolygon, Segment};

/// Measurements for one query-polygon vertex count.
#[derive(Clone, Copy, Debug)]
pub struct PreparedBenchRow {
    /// Query-polygon vertex count.
    pub k: usize,
    /// Mean ns per raw `contains` call.
    pub contains_raw_ns: f64,
    /// Mean ns per prepared `contains` call.
    pub contains_prepared_ns: f64,
    /// Mean ns per raw `boundary_intersects_segment` call.
    pub segment_raw_ns: f64,
    /// Mean ns per prepared `boundary_intersects_segment` call.
    pub segment_prepared_ns: f64,
    /// One-off preparation cost, ns.
    pub prepare_ns: f64,
}

impl PreparedBenchRow {
    /// Speedup of prepared over raw `contains`.
    pub fn contains_speedup(&self) -> f64 {
        self.contains_raw_ns / self.contains_prepared_ns
    }

    /// Speedup of prepared over raw segment tests.
    pub fn segment_speedup(&self) -> f64 {
        self.segment_raw_ns / self.segment_prepared_ns
    }
}

/// Deterministic probe battery: points spread over the unit space plus
/// points concentrated inside the polygon's MBR (the regime of refine
/// steps, where raw `contains` cannot bail out early).
fn probes(mbr: &vaq_geom::Rect, n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            if i % 2 == 0 {
                Point::new(
                    mbr.min.x + t * mbr.width(),
                    mbr.min.y + (1.0 - t) * mbr.height(),
                )
            } else {
                Point::new((i % 97) as f64 / 97.0, (i % 83) as f64 / 83.0)
            }
        })
        .collect()
}

/// Short probe segments shaped like Voronoi expansion edges near the MBR.
fn segments(mbr: &vaq_geom::Rect, n: usize) -> Vec<Segment> {
    let d = (mbr.width() + mbr.height()) * 0.02;
    probes(mbr, n)
        .into_iter()
        .enumerate()
        .map(|(i, a)| {
            let dir = (i % 7) as f64 / 7.0 * std::f64::consts::TAU;
            Segment::new(a, Point::new(a.x + d * dir.cos(), a.y + d * dir.sin()))
        })
        .collect()
}

/// Times `f` over `reps` batches and returns the best per-call ns (best,
/// not mean: rejects scheduler noise; inputs are identical across
/// batches).
fn time_per_call(calls: usize, reps: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        let dt = t0.elapsed().as_secs_f64() * 1e9 / calls as f64;
        if dt < best {
            best = dt;
        }
    }
    std::hint::black_box(sink);
    best
}

/// Measures raw vs prepared primitives for each vertex count in `ks`.
///
/// `probes_per_poly` probes/segments are evaluated per polygon per batch;
/// results are averaged over `polys` distinct polygons.
pub fn measure_prepared_primitives(ks: &[usize], probes_per_poly: usize) -> Vec<PreparedBenchRow> {
    let reps = 5;
    let polys_per_k = 4;
    ks.iter()
        .map(|&k| {
            let polygons = polygon_batch_with(0.05, polys_per_k, k);
            let mut row = PreparedBenchRow {
                k,
                contains_raw_ns: 0.0,
                contains_prepared_ns: 0.0,
                segment_raw_ns: 0.0,
                segment_prepared_ns: 0.0,
                prepare_ns: 0.0,
            };
            for poly in &polygons {
                let mbr = poly.mbr();
                let pts = probes(&mbr, probes_per_poly);
                let segs = segments(&mbr, probes_per_poly);
                let t0 = Instant::now();
                let prep = PreparedPolygon::new(poly.clone());
                row.prepare_ns += t0.elapsed().as_secs_f64() * 1e9;

                row.contains_raw_ns += time_per_call(pts.len(), reps, || {
                    pts.iter().filter(|&&p| poly.contains(p)).count()
                });
                row.contains_prepared_ns += time_per_call(pts.len(), reps, || {
                    pts.iter().filter(|&&p| prep.contains(p)).count()
                });
                row.segment_raw_ns += time_per_call(segs.len(), reps, || {
                    segs.iter()
                        .filter(|s| poly.boundary_intersects_segment(s))
                        .count()
                });
                row.segment_prepared_ns += time_per_call(segs.len(), reps, || {
                    segs.iter()
                        .filter(|s| prep.boundary_intersects_segment(s))
                        .count()
                });
                // Exactness spot-check riding along with every measurement.
                for &p in &pts {
                    assert_eq!(prep.contains(p), poly.contains(p), "prepared diverged");
                }
            }
            let n = polys_per_k as f64;
            row.contains_raw_ns /= n;
            row.contains_prepared_ns /= n;
            row.segment_raw_ns /= n;
            row.segment_prepared_ns /= n;
            row.prepare_ns /= n;
            row
        })
        .collect()
}

/// The standard `k` sweep of the prepared-area benchmark.
pub fn standard_ks() -> Vec<usize> {
    vec![8, 16, 32, 64, 128, 256, 512, 1024]
}

/// Renders rows as the `BENCH_prepared.json` baseline document.
pub fn prepared_report_json(rows: &[PreparedBenchRow], prov: &Provenance) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"benchmark\": \"prepared_query_area_primitives\",");
    let _ = writeln!(s, "  \"harness_seed\": {HARNESS_SEED},");
    let _ = writeln!(s, "  \"provenance\": {},", prov.json_object());
    let _ = writeln!(
        s,
        "  \"units\": {{\"time\": \"ns_per_call\", \"prepare\": \"ns_per_build\"}},"
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"k\": {}, \"contains_raw\": {:.1}, \"contains_prepared\": {:.1}, \
\"contains_speedup\": {:.2}, \"segment_raw\": {:.1}, \"segment_prepared\": {:.1}, \
\"segment_speedup\": {:.2}, \"prepare\": {:.0}}}",
            r.k,
            r.contains_raw_ns,
            r.contains_prepared_ns,
            r.contains_speedup(),
            r.segment_raw_ns,
            r.segment_prepared_ns,
            r.segment_speedup(),
            r.prepare_ns,
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_rows_are_sane() {
        // Tiny configuration: correctness of the plumbing, not timing.
        let rows = measure_prepared_primitives(&[8, 32], 64);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.contains_raw_ns > 0.0);
            assert!(r.contains_prepared_ns > 0.0);
            assert!(r.segment_raw_ns > 0.0);
            assert!(r.segment_prepared_ns > 0.0);
            assert!(r.prepare_ns > 0.0);
        }
    }

    #[test]
    fn json_report_shape() {
        let rows = [PreparedBenchRow {
            k: 8,
            contains_raw_ns: 100.0,
            contains_prepared_ns: 50.0,
            segment_raw_ns: 80.0,
            segment_prepared_ns: 40.0,
            prepare_ns: 1000.0,
        }];
        let prov = Provenance::capture(0, 4096, 1);
        let json = prepared_report_json(&rows, &prov);
        assert!(json.contains("\"k\": 8"));
        assert!(json.contains("\"contains_speedup\": 2.00"));
        assert!(json.contains("\"segment_speedup\": 2.00"));
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"git_rev\""));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
