//! Sharded-vs-single measurements and the `BENCH_sharded.json` baseline.
//!
//! The serving-scale question: past the paper's 10⁶-point ceiling, what
//! does partitioning the point set buy? Three quantities, measured on
//! the same dataset and the same query workload:
//!
//! * **build time** — one monolithic `AreaQueryEngine` vs `S` per-shard
//!   engines built in parallel (`O(n log n)` triangulation paid on
//!   `n/S`-point slices);
//! * **batch query throughput** — the work-stealing batch of the single
//!   engine vs the sharded engine's `(area, shard)` work items;
//! * **shard pruning** — mean shards visited per query; small areas
//!   should touch a small fraction of `S` (the MBR prune is the whole
//!   point of spatially tight shards).
//!
//! Every timed workload is cross-checked for bit-identical result sets
//! between the two engines before timing. The same measurement backs the
//! `reproduce sharded` subcommand, which records the JSON baseline.

use crate::provenance::Provenance;
use crate::{polygon_batch_with, HARNESS_SEED};
use std::fmt::Write as _;
use std::time::Instant;
use vaq_core::{AreaQueryEngine, QuerySpec, ShardedAreaQueryEngine};
use vaq_workload::{generate, Distribution};

/// Workload shape of one sharded-vs-single measurement.
#[derive(Clone, Copy, Debug)]
pub struct ShardedBenchConfig {
    /// Engine size (uniform points).
    pub data_size: usize,
    /// Shard count of the sharded engine.
    pub shards: usize,
    /// Distinct query areas in the batch.
    pub distinct_areas: usize,
    /// `area(MBR) / area(space)` of each query polygon (small, so the
    /// MBR prune has room to work).
    pub query_size: f64,
    /// How many times the area set is swept per timed batch.
    pub rounds: usize,
    /// Worker threads for both engines' batch paths.
    pub threads: usize,
    /// Timing batches (best-of, rejects scheduler noise).
    pub reps: usize,
}

impl ShardedBenchConfig {
    /// The standard baseline configuration (10⁶ points, 8 shards).
    pub fn standard() -> ShardedBenchConfig {
        ShardedBenchConfig {
            data_size: 1_000_000,
            shards: 8,
            distinct_areas: 64,
            query_size: 0.001,
            rounds: 4,
            threads: 8,
            reps: 2,
        }
    }

    /// A tiny configuration for smoke tests (`--quick`).
    pub fn quick() -> ShardedBenchConfig {
        ShardedBenchConfig {
            data_size: 20_000,
            shards: 4,
            distinct_areas: 8,
            query_size: 0.01,
            rounds: 2,
            threads: 2,
            reps: 1,
        }
    }
}

/// One sharded-vs-single measurement row.
#[derive(Clone, Copy, Debug)]
pub struct ShardedBenchRow {
    /// The measured workload.
    pub config: ShardedBenchConfig,
    /// Monolithic engine build, seconds.
    pub single_build_s: f64,
    /// Sharded engine build (parallel per-shard builds), seconds.
    pub sharded_build_s: f64,
    /// Single-engine batch throughput, queries/second.
    pub single_qps: f64,
    /// Sharded-engine batch throughput, queries/second.
    pub sharded_qps: f64,
    /// Mean shards visited per query (pruning effectiveness; the prune
    /// is working when this sits well under `shards`).
    pub mean_shards_visited: f64,
    /// Mean shards pruned per query.
    pub mean_shards_pruned: f64,
}

impl ShardedBenchRow {
    /// Sharded build speedup over the monolithic build.
    pub fn build_speedup(&self) -> f64 {
        self.single_build_s / self.sharded_build_s
    }

    /// Sharded batch throughput relative to the single engine.
    pub fn throughput_ratio(&self) -> f64 {
        self.sharded_qps / self.single_qps
    }

    /// Fraction of shards pruned per query on average.
    pub fn prune_fraction(&self) -> f64 {
        let total = self.mean_shards_visited + self.mean_shards_pruned;
        if total == 0.0 {
            0.0
        } else {
            self.mean_shards_pruned / total
        }
    }
}

/// Runs the sharded-vs-single workload: builds both engines over the
/// same points (timed), cross-checks bit-identical results, then times
/// the batch query throughput of each.
pub fn measure_sharded(cfg: &ShardedBenchConfig) -> ShardedBenchRow {
    let pts = generate(
        cfg.data_size,
        Distribution::Uniform,
        HARNESS_SEED ^ cfg.data_size as u64,
    );
    let areas = polygon_batch_with(cfg.query_size, cfg.distinct_areas, 10);
    let spec = QuerySpec::voronoi();

    let t0 = Instant::now();
    let single = AreaQueryEngine::build(&pts);
    let single_build_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let sharded = ShardedAreaQueryEngine::build(&pts, cfg.shards);
    let sharded_build_s = t1.elapsed().as_secs_f64();

    // Cross-check (outside the timed region): bit-identical result sets,
    // and collect the pruning counters.
    let single_outs = single.execute_batch(&spec, &areas, cfg.threads);
    let sharded_outs = sharded.execute_batch(&spec, &areas, cfg.threads);
    let mut visited = 0usize;
    let mut pruned = 0usize;
    for (i, (a, b)) in single_outs.iter().zip(&sharded_outs).enumerate() {
        assert_eq!(
            a.result().expect("collect-mode batch").sorted_indices(),
            b.indices,
            "sharded result diverged on area {i}"
        );
        visited += b.stats.shards_visited;
        pruned += b.stats.shards_pruned;
    }

    let queries = cfg.distinct_areas * cfg.rounds;
    let time_batches = |run: &mut dyn FnMut() -> usize| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..cfg.reps {
            let t = Instant::now();
            let mut sink = 0usize;
            for _ in 0..cfg.rounds {
                sink = sink.wrapping_add(run());
            }
            let qps = queries as f64 / t.elapsed().as_secs_f64();
            std::hint::black_box(sink);
            best = best.max(qps);
        }
        best
    };
    let single_qps = time_batches(&mut || {
        single
            .execute_batch(&spec, &areas, cfg.threads)
            .iter()
            .map(|o| o.count())
            .sum()
    });
    let sharded_qps = time_batches(&mut || {
        sharded
            .execute_batch(&spec, &areas, cfg.threads)
            .iter()
            .map(|o| o.count)
            .sum()
    });

    ShardedBenchRow {
        config: *cfg,
        single_build_s,
        sharded_build_s,
        single_qps,
        sharded_qps,
        mean_shards_visited: visited as f64 / cfg.distinct_areas as f64,
        mean_shards_pruned: pruned as f64 / cfg.distinct_areas as f64,
    }
}

/// Renders the measurement as the `BENCH_sharded.json` baseline document.
pub fn sharded_report_json(row: &ShardedBenchRow, prov: &Provenance) -> String {
    let c = &row.config;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"benchmark\": \"sharded_vs_single_engine\",");
    let _ = writeln!(s, "  \"provenance\": {},", prov.json_object());
    let _ = writeln!(
        s,
        "  \"workload\": {{\"data_size\": {}, \"shards\": {}, \"distinct_areas\": {}, \
\"query_size\": {}, \"rounds\": {}, \"threads\": {}}},",
        c.data_size, c.shards, c.distinct_areas, c.query_size, c.rounds, c.threads
    );
    let _ = writeln!(s, "  \"single_build_s\": {:.3},", row.single_build_s);
    let _ = writeln!(s, "  \"sharded_build_s\": {:.3},", row.sharded_build_s);
    let _ = writeln!(s, "  \"build_speedup\": {:.2},", row.build_speedup());
    let _ = writeln!(s, "  \"single_qps\": {:.1},", row.single_qps);
    let _ = writeln!(s, "  \"sharded_qps\": {:.1},", row.sharded_qps);
    let _ = writeln!(s, "  \"throughput_ratio\": {:.2},", row.throughput_ratio());
    let _ = writeln!(
        s,
        "  \"pruning\": {{\"mean_shards_visited\": {:.2}, \"mean_shards_pruned\": {:.2}, \
\"prune_fraction\": {:.4}}}",
        row.mean_shards_visited,
        row.mean_shards_pruned,
        row.prune_fraction()
    );
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_sane_and_prunes() {
        let row = measure_sharded(&ShardedBenchConfig::quick());
        assert!(row.single_build_s > 0.0);
        assert!(row.sharded_build_s > 0.0);
        assert!(row.single_qps > 0.0);
        assert!(row.sharded_qps > 0.0);
        let total = row.mean_shards_visited + row.mean_shards_pruned;
        assert!((total - row.config.shards as f64).abs() < 1e-9);
        assert!(
            row.mean_shards_visited < row.config.shards as f64,
            "small areas must prune at least some shards on average \
             (visited {:.2} of {})",
            row.mean_shards_visited,
            row.config.shards
        );
    }

    #[test]
    fn json_report_shape() {
        let row = ShardedBenchRow {
            config: ShardedBenchConfig::quick(),
            single_build_s: 2.0,
            sharded_build_s: 1.0,
            single_qps: 100.0,
            sharded_qps: 150.0,
            mean_shards_visited: 1.5,
            mean_shards_pruned: 2.5,
        };
        let prov = Provenance::capture(row.config.data_size as u64, 16, row.config.threads);
        let json = sharded_report_json(&row, &prov);
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"build_speedup\": 2.00"));
        assert!(json.contains("\"throughput_ratio\": 1.50"));
        assert!(json.contains("\"prune_fraction\": 0.6250"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
