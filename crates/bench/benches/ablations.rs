//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! Each group pins one axis of the design and compares the alternatives on
//! the standard workload (uniform 1E5 points, 1 % star 10-gons):
//!
//! * **expansion_policy** — the paper's segment heuristic vs the provably
//!   complete cell test.
//! * **seed_index** — R-tree NN (paper) vs kd-tree NN vs the Delaunay
//!   greedy walk (no second index).
//! * **filter_index** — traditional method over R-tree vs kd-tree vs PR
//!   quadtree.
//! * **rtree_build** — query time on an STR-bulk-loaded tree vs a tree
//!   grown by one-at-a-time Guttman inserts.
//! * **scratch_reuse** — reusing the epoch-stamped visited set vs paying a
//!   fresh allocation per query.
//! * **distribution** — both methods on uniform vs clustered data.
//! * **insertion_order** — Delaunay construction with Hilbert ordering vs
//!   input order.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vaq_bench::{polygon_batch, standard_engine, HARNESS_SEED};
use vaq_core::{AreaQueryEngine, ExpansionPolicy, FilterIndex, SeedIndex};
use vaq_delaunay::{InsertionOrder, Triangulation};
use vaq_geom::PreparedPolygon;
use vaq_rtree::SplitAlgorithm;
use vaq_workload::{generate, Distribution};

const N: usize = 100_000;

fn expansion_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_expansion_policy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let engine = standard_engine(N);
    let mut scratch = engine.new_scratch();
    let polygons = polygon_batch(0.01, 64);
    for (name, policy) in [
        ("segment", ExpansionPolicy::Segment),
        ("cell", ExpansionPolicy::Cell),
    ] {
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(
                    engine
                        .voronoi_with(poly, policy, SeedIndex::RTree, &mut scratch)
                        .indices
                        .len(),
                )
            });
        });
    }
    group.finish();
}

fn seed_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_seed_index");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let pts = generate(N, Distribution::Uniform, HARNESS_SEED ^ N as u64);
    let engine = AreaQueryEngine::builder(&pts).with_kdtree().build();
    let mut scratch = engine.new_scratch();
    let polygons = polygon_batch(0.01, 64);
    for (name, seed) in [
        ("rtree_nn", SeedIndex::RTree),
        ("kdtree_nn", SeedIndex::KdTree),
        ("delaunay_walk", SeedIndex::DelaunayWalk),
    ] {
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(
                    engine
                        .voronoi_with(poly, ExpansionPolicy::Segment, seed, &mut scratch)
                        .indices
                        .len(),
                )
            });
        });
    }
    group.finish();
}

fn filter_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_filter_index");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let pts = generate(N, Distribution::Uniform, HARNESS_SEED ^ N as u64);
    let engine = AreaQueryEngine::builder(&pts)
        .with_kdtree()
        .with_quadtree()
        .build();
    let polygons = polygon_batch(0.01, 64);
    for (name, filter) in [
        ("rtree", FilterIndex::RTree),
        ("kdtree", FilterIndex::KdTree),
        ("quadtree", FilterIndex::Quadtree),
    ] {
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(engine.traditional_with(poly, filter).indices.len())
            });
        });
    }
    group.finish();
}

fn rtree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rtree_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let pts = generate(N, Distribution::Uniform, HARNESS_SEED ^ N as u64);
    let bulk = AreaQueryEngine::build(&pts);
    let incremental = AreaQueryEngine::builder(&pts).incremental_rtree().build();
    let rstar = AreaQueryEngine::builder(&pts)
        .incremental_rtree()
        .rtree_algorithm(SplitAlgorithm::RStar)
        .build();
    let polygons = polygon_batch(0.01, 64);
    for (name, engine) in [
        ("str_bulk", &bulk),
        ("guttman_inserts", &incremental),
        ("rstar_inserts", &rstar),
    ] {
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(engine.traditional(poly).indices.len())
            });
        });
    }
    group.finish();
}

fn scratch_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scratch_reuse");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let engine = standard_engine(N);
    let polygons = polygon_batch(0.01, 64);
    group.bench_function("reused_scratch", |b| {
        let mut scratch = engine.new_scratch();
        let mut i = 0;
        b.iter(|| {
            let poly = &polygons[i % polygons.len()];
            i += 1;
            black_box(
                engine
                    .voronoi_with(
                        poly,
                        ExpansionPolicy::Segment,
                        SeedIndex::RTree,
                        &mut scratch,
                    )
                    .indices
                    .len(),
            )
        });
    });
    group.bench_function("fresh_scratch_per_query", |b| {
        let mut i = 0;
        b.iter(|| {
            let poly = &polygons[i % polygons.len()];
            i += 1;
            black_box(engine.voronoi(poly).indices.len())
        });
    });
    group.finish();
}

fn distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_distribution");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let polygons = polygon_batch(0.01, 64);
    for (name, dist) in [
        ("uniform", Distribution::Uniform),
        (
            "clustered",
            Distribution::Clustered {
                clusters: 20,
                sigma: 0.02,
            },
        ),
    ] {
        let pts = generate(N, dist, HARNESS_SEED);
        let engine = AreaQueryEngine::build(&pts);
        let mut scratch = engine.new_scratch();
        group.bench_function(format!("traditional_{name}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(engine.traditional(poly).indices.len())
            });
        });
        group.bench_function(format!("voronoi_{name}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(
                    engine
                        .voronoi_with(
                            poly,
                            ExpansionPolicy::Segment,
                            SeedIndex::RTree,
                            &mut scratch,
                        )
                        .indices
                        .len(),
                )
            });
        });
    }
    group.finish();
}

fn insertion_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_insertion_order");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let pts = generate(N, Distribution::Uniform, HARNESS_SEED ^ N as u64);
    for (name, order) in [
        ("hilbert", InsertionOrder::Hilbert),
        ("input_order", InsertionOrder::Input),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    Triangulation::with_order(&pts, order)
                        .unwrap()
                        .triangle_count(),
                )
            });
        });
    }
    group.finish();
}

/// Raw vs prepared query areas, end to end, at a large vertex count
/// (k = 256): the regime where `O(k)` per-candidate primitives dominate.
/// `prepared_once` prepares outside the timed region (the serving path);
/// `prepared_per_query` includes the build, bounding the break-even.
fn prepared_area(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_prepared_area");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let engine = standard_engine(N);
    let mut scratch = engine.new_scratch();
    let polygons = vaq_bench::polygon_batch_with(0.01, 64, 256);
    group.bench_function("raw", |b| {
        let mut i = 0;
        b.iter(|| {
            let poly = &polygons[i % polygons.len()];
            i += 1;
            black_box(
                engine
                    .voronoi_with(
                        poly,
                        ExpansionPolicy::Segment,
                        SeedIndex::RTree,
                        &mut scratch,
                    )
                    .indices
                    .len(),
            )
        });
    });
    let prepared: Vec<PreparedPolygon> = polygons
        .iter()
        .map(|p| PreparedPolygon::new(p.clone()))
        .collect();
    group.bench_function("prepared_once", |b| {
        let mut i = 0;
        b.iter(|| {
            let poly = &prepared[i % prepared.len()];
            i += 1;
            black_box(
                engine
                    .voronoi_with(
                        poly,
                        ExpansionPolicy::Segment,
                        SeedIndex::RTree,
                        &mut scratch,
                    )
                    .indices
                    .len(),
            )
        });
    });
    group.bench_function("prepared_per_query", |b| {
        let mut i = 0;
        b.iter(|| {
            let poly = &polygons[i % polygons.len()];
            i += 1;
            black_box(engine.voronoi_prepared(poly).indices.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    expansion_policy,
    seed_index,
    filter_index,
    rtree_build,
    scratch_reuse,
    distribution,
    insertion_order,
    prepared_area
);
criterion_main!(benches);
