//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! Each group pins one axis of the design and compares the alternatives on
//! the standard workload (uniform 1E5 points, 1 % star 10-gons):
//!
//! * **expansion_policy** — the paper's segment heuristic vs the provably
//!   complete cell test.
//! * **seed_index** — R-tree NN (paper) vs kd-tree NN vs the Delaunay
//!   greedy walk (no second index).
//! * **filter_index** — traditional method over R-tree vs kd-tree vs PR
//!   quadtree.
//! * **rtree_build** — query time on an STR-bulk-loaded tree vs a tree
//!   grown by one-at-a-time Guttman inserts.
//! * **scratch_reuse** — reusing the epoch-stamped visited set vs paying a
//!   fresh allocation per query.
//! * **distribution** — both methods on uniform vs clustered data.
//! * **insertion_order** — Delaunay construction with Hilbert ordering vs
//!   input order.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vaq_bench::{polygon_batch, standard_engine, HARNESS_SEED};
use vaq_core::{AreaQueryEngine, ExpansionPolicy, FilterIndex, PrepareMode, QuerySpec, SeedIndex};
use vaq_delaunay::{InsertionOrder, Triangulation};
use vaq_rtree::SplitAlgorithm;
use vaq_workload::{generate, Distribution};

const N: usize = 100_000;

fn expansion_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_expansion_policy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let engine = standard_engine(N);
    let mut session = engine.session();
    let polygons = polygon_batch(0.01, 64);
    for (name, policy) in [
        ("segment", ExpansionPolicy::Segment),
        ("cell", ExpansionPolicy::Cell),
    ] {
        let spec = QuerySpec::voronoi().policy(policy);
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(session.execute(&spec, poly).count())
            });
        });
    }
    group.finish();
}

fn seed_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_seed_index");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let pts = generate(N, Distribution::Uniform, HARNESS_SEED ^ N as u64);
    let engine = AreaQueryEngine::builder(&pts).with_kdtree().build();
    let mut session = engine.session();
    let polygons = polygon_batch(0.01, 64);
    for (name, seed) in [
        ("rtree_nn", SeedIndex::RTree),
        ("kdtree_nn", SeedIndex::KdTree),
        ("delaunay_walk", SeedIndex::DelaunayWalk),
    ] {
        let spec = QuerySpec::voronoi().seed(seed);
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(session.execute(&spec, poly).count())
            });
        });
    }
    group.finish();
}

fn filter_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_filter_index");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let pts = generate(N, Distribution::Uniform, HARNESS_SEED ^ N as u64);
    let engine = AreaQueryEngine::builder(&pts)
        .with_kdtree()
        .with_quadtree()
        .build();
    let mut session = engine.session();
    let polygons = polygon_batch(0.01, 64);
    for (name, filter) in [
        ("rtree", FilterIndex::RTree),
        ("kdtree", FilterIndex::KdTree),
        ("quadtree", FilterIndex::Quadtree),
    ] {
        let spec = QuerySpec::traditional().filter(filter);
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(session.execute(&spec, poly).count())
            });
        });
    }
    group.finish();
}

fn rtree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rtree_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let pts = generate(N, Distribution::Uniform, HARNESS_SEED ^ N as u64);
    let bulk = AreaQueryEngine::build(&pts);
    let incremental = AreaQueryEngine::builder(&pts).incremental_rtree().build();
    let rstar = AreaQueryEngine::builder(&pts)
        .incremental_rtree()
        .rtree_algorithm(SplitAlgorithm::RStar)
        .build();
    let polygons = polygon_batch(0.01, 64);
    for (name, engine) in [
        ("str_bulk", &bulk),
        ("guttman_inserts", &incremental),
        ("rstar_inserts", &rstar),
    ] {
        let mut session = engine.session();
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(session.execute(&QuerySpec::traditional(), poly).count())
            });
        });
    }
    group.finish();
}

fn scratch_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scratch_reuse");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let engine = standard_engine(N);
    let polygons = polygon_batch(0.01, 64);
    group.bench_function("reused_session", |b| {
        let mut session = engine.session();
        let mut i = 0;
        b.iter(|| {
            let poly = &polygons[i % polygons.len()];
            i += 1;
            black_box(session.execute(&QuerySpec::voronoi(), poly).count())
        });
    });
    group.bench_function("fresh_session_per_query", |b| {
        let mut i = 0;
        b.iter(|| {
            let poly = &polygons[i % polygons.len()];
            i += 1;
            black_box(engine.execute(&QuerySpec::voronoi(), poly).count())
        });
    });
    group.finish();
}

fn distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_distribution");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let polygons = polygon_batch(0.01, 64);
    for (name, dist) in [
        ("uniform", Distribution::Uniform),
        (
            "clustered",
            Distribution::Clustered {
                clusters: 20,
                sigma: 0.02,
            },
        ),
    ] {
        let pts = generate(N, dist, HARNESS_SEED);
        let engine = AreaQueryEngine::build(&pts);
        let mut session = engine.session();
        group.bench_function(format!("traditional_{name}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(session.execute(&QuerySpec::traditional(), poly).count())
            });
        });
        group.bench_function(format!("voronoi_{name}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(session.execute(&QuerySpec::voronoi(), poly).count())
            });
        });
    }
    group.finish();
}

fn insertion_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_insertion_order");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let pts = generate(N, Distribution::Uniform, HARNESS_SEED ^ N as u64);
    for (name, order) in [
        ("hilbert", InsertionOrder::Hilbert),
        ("input_order", InsertionOrder::Input),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    Triangulation::with_order(&pts, order)
                        .unwrap()
                        .triangle_count(),
                )
            });
        });
    }
    group.finish();
}

/// Raw vs prepared query areas, end to end, at a large vertex count
/// (k = 256): the regime where `O(k)` per-candidate primitives dominate.
/// `PrepareMode::Cached` is the serving path (prepare on first sight,
/// reuse thereafter); `PrepareMode::PrepareOnce` re-prepares per query,
/// bounding the break-even.
fn prepared_area(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_prepared_area");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let engine = standard_engine(N);
    let mut session = engine.session();
    let polygons = vaq_bench::polygon_batch_with(0.01, 64, 256);
    for (name, prepare) in [
        ("raw", PrepareMode::Raw),
        ("prepared_cached", PrepareMode::Cached),
        ("prepared_per_query", PrepareMode::PrepareOnce),
    ] {
        let spec = QuerySpec::voronoi().prepare(prepare);
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let poly = &polygons[i % polygons.len()];
                i += 1;
                black_box(session.execute(&spec, poly).count())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    expansion_policy,
    seed_index,
    filter_index,
    rtree_build,
    scratch_reuse,
    distribution,
    insertion_order,
    prepared_area
);
criterion_main!(benches);
