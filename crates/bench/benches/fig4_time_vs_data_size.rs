//! Figure 4 (and the time columns of Table I): query time vs data size.
//!
//! Data sizes 1E5…1E6, query size fixed at 1 %, both methods timed on the
//! same pre-generated random 10-gon stream through the unified
//! `QuerySpec`/`QuerySession` surface. The paper's claim to check: both
//! methods grow roughly linearly and the Voronoi method's advantage
//! widens with data size (10.6 % at 1E5 → 31.3 % at 1E6 in the paper's
//! Python setting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vaq_bench::{polygon_batch, standard_engine};
use vaq_core::QuerySpec;

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_time_vs_data_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let polygons = polygon_batch(0.01, 64);
    for k in 1..=10usize {
        let n = k * 100_000;
        let engine = standard_engine(n);
        let mut session = engine.session();
        for (name, spec) in [
            ("traditional", QuerySpec::traditional()),
            ("voronoi", QuerySpec::voronoi()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let poly = &polygons[i % polygons.len()];
                    i += 1;
                    black_box(session.execute(&spec, poly).count())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
