//! Component micro-benches: the cost of each substrate operation the two
//! area-query methods are built from. These explain *why* the end-to-end
//! numbers look the way they do (e.g. how much of a query is index
//! traversal vs containment testing vs neighbour expansion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vaq_bench::{polygon_batch, HARNESS_SEED};
use vaq_delaunay::{cell_polygon, Triangulation};
use vaq_geom::{Point, PreparedPolygon, Rect, Segment};
use vaq_kdtree::KdTree;
use vaq_quadtree::Quadtree;
use vaq_rtree::RTree;
use vaq_workload::{generate, Distribution};

const N: usize = 100_000;

fn points() -> Vec<Point> {
    generate(N, Distribution::Uniform, HARNESS_SEED ^ N as u64)
}

fn build_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let pts = points();
    group.bench_function(BenchmarkId::new("delaunay", N), |b| {
        b.iter(|| black_box(Triangulation::new(&pts).unwrap().triangle_count()));
    });
    group.bench_function(BenchmarkId::new("rtree_str_bulk", N), |b| {
        b.iter(|| black_box(RTree::bulk_load(&pts).len()));
    });
    group.bench_function(BenchmarkId::new("rtree_guttman_inserts", N), |b| {
        b.iter(|| {
            let mut t = RTree::new();
            for (i, &p) in pts.iter().enumerate() {
                t.insert(i as u32, p);
            }
            black_box(t.len())
        });
    });
    group.bench_function(BenchmarkId::new("kdtree", N), |b| {
        b.iter(|| black_box(KdTree::build(&pts).len()));
    });
    group.bench_function(BenchmarkId::new("quadtree", N), |b| {
        b.iter(|| black_box(Quadtree::bulk_load(&pts).len()));
    });
    group.finish();
}

fn query_primitive_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let pts = points();
    let rtree = RTree::bulk_load(&pts);
    let tri = Triangulation::new(&pts).unwrap();
    let polygons = polygon_batch(0.01, 32);
    let window = Rect::new(Point::new(-2.0, -2.0), Point::new(3.0, 3.0));

    group.bench_function("rtree_window_1pct", |b| {
        let mut i = 0;
        b.iter(|| {
            let poly = &polygons[i % polygons.len()];
            i += 1;
            black_box(rtree.window(&poly.mbr()).len())
        });
    });
    group.bench_function("rtree_nn", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let q = Point::new((i % 997) as f64 / 997.0, (i % 787) as f64 / 787.0);
            black_box(rtree.nearest(q).unwrap().0)
        });
    });
    group.bench_function("delaunay_walk_nn", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let q = Point::new((i % 997) as f64 / 997.0, (i % 787) as f64 / 787.0);
            black_box(tri.nearest_vertex(q, None))
        });
    });
    group.bench_function("point_in_10gon", |b| {
        let poly = &polygons[0];
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let q = Point::new((i % 991) as f64 / 991.0, (i % 773) as f64 / 773.0);
            black_box(poly.contains(q))
        });
    });
    group.bench_function("segment_intersects_10gon", |b| {
        let poly = &polygons[0];
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let a = Point::new((i % 991) as f64 / 991.0, (i % 773) as f64 / 773.0);
            let d = Point::new((i % 13) as f64 / 1300.0, (i % 7) as f64 / 700.0);
            black_box(poly.intersects_segment(&Segment::new(a, a + d)))
        });
    });
    group.bench_function("neighbor_scan", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % tri.vertex_count() as u32;
            black_box(tri.neighbors(v).len())
        });
    });
    group.bench_function("voronoi_cell_extraction", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % tri.vertex_count() as u32;
            black_box(cell_polygon(&tri, v, &window).len())
        });
    });
    group.finish();
}

/// Raw vs prepared query-area primitives across query-polygon vertex
/// counts: the regime of the paper's Fig. 6 (query time vs query size),
/// where the per-candidate `contains` and per-frontier segment tests
/// dominate. The raw primitives are `O(k)`; prepared are `O(log k)`-ish.
fn prepared_area_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepared_area");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for k in [8usize, 64, 256, 1024] {
        let poly = &vaq_bench::polygon_batch_with(0.05, 1, k)[0];
        let prep = PreparedPolygon::new(poly.clone());
        let mbr = poly.mbr();
        group.bench_function(BenchmarkId::new("contains_raw", k), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let q = Point::new(
                    mbr.min.x + (i % 991) as f64 / 991.0 * mbr.width(),
                    mbr.min.y + (i % 773) as f64 / 773.0 * mbr.height(),
                );
                black_box(poly.contains(q))
            });
        });
        group.bench_function(BenchmarkId::new("contains_prepared", k), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let q = Point::new(
                    mbr.min.x + (i % 991) as f64 / 991.0 * mbr.width(),
                    mbr.min.y + (i % 773) as f64 / 773.0 * mbr.height(),
                );
                black_box(prep.contains(q))
            });
        });
        let d = (mbr.width() + mbr.height()) * 0.02;
        group.bench_function(BenchmarkId::new("segment_raw", k), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let a = Point::new(
                    mbr.min.x + (i % 991) as f64 / 991.0 * mbr.width(),
                    mbr.min.y + (i % 773) as f64 / 773.0 * mbr.height(),
                );
                black_box(
                    poly.boundary_intersects_segment(&Segment::new(
                        a,
                        Point::new(a.x + d, a.y + d),
                    )),
                )
            });
        });
        group.bench_function(BenchmarkId::new("segment_prepared", k), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let a = Point::new(
                    mbr.min.x + (i % 991) as f64 / 991.0 * mbr.width(),
                    mbr.min.y + (i % 773) as f64 / 773.0 * mbr.height(),
                );
                black_box(
                    prep.boundary_intersects_segment(&Segment::new(
                        a,
                        Point::new(a.x + d, a.y + d),
                    )),
                )
            });
        });
        group.bench_function(BenchmarkId::new("prepare_build", k), |b| {
            b.iter(|| black_box(PreparedPolygon::new(poly.clone()).len()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    build_benches,
    query_primitive_benches,
    prepared_area_benches
);
criterion_main!(benches);
