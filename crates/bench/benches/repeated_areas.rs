//! Repeated-areas bench: the same handful of areas queried many times —
//! the dashboard-serving workload the session's prepared-area cache
//! targets. Compares the three `PrepareMode`s on an identical query
//! stream; `cached` should win by roughly the per-query preparation cost
//! once the cache is warm (see `results/BENCH_query_cache.json` for the
//! recorded baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vaq_bench::{polygon_batch_with, standard_engine};
use vaq_core::{PrepareMode, QuerySpec};

fn repeated_areas(c: &mut Criterion) {
    let mut group = c.benchmark_group("repeated_areas");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let engine = standard_engine(50_000);
    // 8 distinct dashboards' worth of large (k = 256) areas, cycled.
    for k in [64usize, 256] {
        let areas = polygon_batch_with(0.02, 8, k);
        for (name, prepare) in [
            ("raw", PrepareMode::Raw),
            ("prepare_once", PrepareMode::PrepareOnce),
            ("cached", PrepareMode::Cached),
        ] {
            let spec = QuerySpec::voronoi().prepare(prepare);
            group.bench_function(BenchmarkId::new(name, k), |b| {
                // One warm session per mode: the steady-state regime.
                let mut session = engine.session();
                let mut i = 0;
                b.iter(|| {
                    let area = &areas[i % areas.len()];
                    i += 1;
                    black_box(session.execute(&spec, area).count())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, repeated_areas);
criterion_main!(benches);
