//! Figure 6 (and the time columns of Table II): query time vs query size.
//!
//! Data size fixed at 1E5, query size swept 1 %…32 %, every configuration
//! expressed as a `QuerySpec` over one `QuerySession`. The paper's claim
//! to check: both methods scale linearly in the query size and the
//! Voronoi method's saving grows with the query size (11.7 % → 37.9 % in
//! the paper's Python setting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vaq_bench::{polygon_batch, standard_engine};
use vaq_core::{PrepareMode, QuerySpec};

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_time_vs_query_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let engine = standard_engine(100_000);
    let mut session = engine.session();
    for qs_pct in [1u32, 2, 4, 8, 16, 32] {
        let polygons = polygon_batch(f64::from(qs_pct) / 100.0, 64);
        // The `Cached` rows are the serving-path configuration: areas are
        // query-compiled on first sight and every repeat of the 64-polygon
        // stream is served from the session's prepared-area cache.
        for (name, spec) in [
            ("traditional", QuerySpec::traditional()),
            ("voronoi", QuerySpec::voronoi()),
            (
                "voronoi_prepared",
                QuerySpec::voronoi().prepare(PrepareMode::Cached),
            ),
            (
                "traditional_prepared",
                QuerySpec::traditional().prepare(PrepareMode::Cached),
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(name, qs_pct), &qs_pct, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let poly = &polygons[i % polygons.len()];
                    i += 1;
                    black_box(session.execute(&spec, poly).count())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
