//! # vaq-geom — computational-geometry kernel
//!
//! The geometry substrate for the reproduction of *Area Queries Based on
//! Voronoi Diagrams* (ICDE 2020). Everything higher in the stack — the
//! Delaunay/Voronoi structures, the spatial indexes, and the area-query
//! engine — is built on the primitives in this crate:
//!
//! * [`Point`] — a 2-D point / vector with `f64` coordinates.
//! * [`Rect`] — an axis-aligned rectangle (used as MBR throughout).
//! * [`Segment`] — a line segment with exact intersection tests.
//! * [`Polygon`] — a simple polygon with containment, area, MBR and
//!   segment/rect/polygon intersection tests. Query areas are `Polygon`s.
//! * [`predicates`] — **robust** adaptive-precision `orient2d` / `incircle`
//!   after Shewchuk. A Delaunay triangulation of 10⁶ near-degenerate points
//!   is not achievable with naive floating-point predicates; these decide
//!   orientation and in-circle questions exactly, falling back from a cheap
//!   filtered evaluation to expansion arithmetic only when the error bound
//!   cannot certify the sign.
//! * [`expansion`] — the floating-point expansion arithmetic backing the
//!   predicates (two-sum, two-product, zero-eliminating expansion sums).
//! * [`power`] — weighted sites ([`WeightedPoint`]) and the exact
//!   [`power_incircle`] conflict predicate behind power diagrams /
//!   regular triangulations, built on the same filter-then-expansion
//!   discipline.
//! * [`triangle`] — circumcenter / circumradius / containment helpers.
//! * [`convex_hull`] — Andrew's monotone chain, used by tests and the
//!   triangulation hull bookkeeping.
//! * [`clip`] — Sutherland–Hodgman half-plane clipping, used to clip
//!   unbounded Voronoi cells to a bounding rectangle.
//! * [`prepared`] — **query-compiled areas**: [`PreparedPolygon`] /
//!   [`PreparedRegion`] preprocess a query area once (slab decomposition +
//!   edge-bucket grid + cached MBR/interior point) so the hot-path
//!   primitives `contains` and `boundary_intersects_segment` stop scanning
//!   all edges, while returning bit-identical results to the raw types.
//!
//! ## Conventions
//!
//! * Counter-clockwise (CCW) orientation is positive, matching
//!   [`predicates::orient2d`].
//! * All inputs are expected to be finite; [`Polygon::new`] validates this
//!   and returns [`GeomError`] otherwise.
//! * Containment tests on polygons treat boundary points as **inside**
//!   (closed point set), matching the paper's definition of an area query
//!   ("find all elements contained in a specified area").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clip;
pub mod convex_hull;
pub mod expansion;
pub mod point;
pub mod polygon;
pub mod power;
pub mod predicates;
pub mod prepared;
pub mod rect;
pub mod region;
pub mod segment;
pub mod triangle;

pub use clip::{clip_bisector, clip_halfplane, clip_power_bisector, clip_rect};
pub use convex_hull::{convex_hull_indices, convex_hull_points};
pub use point::Point;
pub use polygon::Polygon;
pub use power::{power_incircle, WeightedPoint};
pub use predicates::{
    in_circle, incircle, orient2d, orient2d_filter_batch, orient2d_filter_batch_points,
    orientation, predicate_totals, Orientation, PredicateTotals, FILTER_MAX_LANES,
};
pub use prepared::{PreparedPolygon, PreparedRegion};
pub use rect::Rect;
pub use region::Region;
pub use segment::Segment;

use std::fmt;

/// Errors produced when constructing or validating geometric objects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GeomError {
    /// A polygon needs at least three vertices; the payload is the number
    /// supplied.
    TooFewVertices(usize),
    /// A coordinate was NaN or infinite; the payload is the offending point.
    NonFiniteCoordinate(Point),
    /// All vertices were collinear (or coincident), so the polygon has zero
    /// area and no interior.
    DegeneratePolygon,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::TooFewVertices(n) => {
                write!(f, "polygon needs at least 3 vertices, got {n}")
            }
            GeomError::NonFiniteCoordinate(p) => {
                write!(f, "non-finite coordinate in {p}")
            }
            GeomError::DegeneratePolygon => {
                write!(f, "polygon is degenerate (zero area)")
            }
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geom_error_display() {
        assert_eq!(
            GeomError::TooFewVertices(2).to_string(),
            "polygon needs at least 3 vertices, got 2"
        );
        assert!(GeomError::NonFiniteCoordinate(Point::new(f64::NAN, 0.0))
            .to_string()
            .contains("non-finite"));
        assert_eq!(
            GeomError::DegeneratePolygon.to_string(),
            "polygon is degenerate (zero area)"
        );
    }

    #[test]
    fn reexports_are_usable() {
        let p = Point::new(0.25, 0.25);
        let poly = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap();
        assert!(poly.contains(p));
        let r: Rect = poly.mbr();
        assert!(r.contains_point(p));
        assert_eq!(
            orientation(
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0)
            ),
            Orientation::Ccw
        );
    }
}
