//! Polygon clipping: Sutherland–Hodgman against half-planes and rectangles.
//!
//! Used to materialise Voronoi cells: a cell is the intersection of the
//! half-planes towards its generator, clipped to a finite bounding window.

use crate::point::Point;
use crate::rect::Rect;

/// Clips `poly` (a convex or star-shaped ring) to the closed half-plane on
/// the **left** of the directed line `a → b`.
///
/// Sutherland–Hodgman step. The sidedness test uses the plain floating-point
/// cross product: clipping introduces approximate intersection vertices
/// anyway, so exact predicates would buy nothing here.
pub fn clip_halfplane(poly: &[Point], a: Point, b: Point) -> Vec<Point> {
    let d = b - a;
    let side = |p: Point| d.cross(p - a); // > 0 left, < 0 right
    let n = poly.len();
    let mut out = Vec::with_capacity(n + 2);
    if n == 0 {
        return out;
    }
    for i in 0..n {
        let cur = poly[i];
        let nxt = poly[(i + 1) % n];
        let sc = side(cur);
        let sn = side(nxt);
        if sc >= 0.0 {
            out.push(cur);
            if sn < 0.0 {
                out.push(line_crossing(cur, nxt, sc, sn));
            }
        } else if sn >= 0.0 {
            out.push(line_crossing(cur, nxt, sc, sn));
        }
    }
    out
}

/// Intersection of the segment `cur → nxt` with the clip line, given the
/// signed side values of the endpoints (of opposite sign).
#[inline]
fn line_crossing(cur: Point, nxt: Point, sc: f64, sn: f64) -> Point {
    let t = sc / (sc - sn);
    cur.lerp(nxt, t)
}

/// Clips a ring to an axis-aligned rectangle (four half-plane passes).
pub fn clip_rect(poly: &[Point], rect: &Rect) -> Vec<Point> {
    let c = rect.corners();
    let mut out = poly.to_vec();
    for i in 0..4 {
        if out.is_empty() {
            break;
        }
        out = clip_halfplane(&out, c[i], c[(i + 1) % 4]);
    }
    out
}

/// Clips a ring to the half-plane of points at least as close to `p` as to
/// `q` (the perpendicular-bisector half-plane containing `p`).
///
/// This is the primitive that carves a Voronoi cell out of a window:
/// `cell(p) = window ∩ ⋂_q bisector_halfplane(p, q)`.
pub fn clip_bisector(poly: &[Point], p: Point, q: Point) -> Vec<Point> {
    let m = p.midpoint(q);
    // Direction along the bisector such that `p` lies on the left.
    let dir = (q - p).perp();
    clip_halfplane(poly, m, m + dir)
}

/// Clips a ring to the half-plane of points whose power distance to the
/// weighted site `(p, wp)` is at most that to `(q, wq)` — the
/// **radical-axis** half-plane containing `p`.
///
/// The radical axis of two weighted sites is the perpendicular bisector
/// shifted along `q − p` by `(wp − wq) / (2 |q − p|²)`: the heavier site's
/// cell grows. With `wp == wq` the shift vanishes and the call delegates
/// to [`clip_bisector`], keeping the Euclidean path bit-identical.
pub fn clip_power_bisector(poly: &[Point], p: Point, wp: f64, q: Point, wq: f64) -> Vec<Point> {
    if wp == wq {
        return clip_bisector(poly, p, q);
    }
    let d = q - p;
    let len_sq = d.dot(d);
    if len_sq == 0.0 {
        // Coincident sites: no axis exists — the lighter site loses the
        // whole plane, the heavier keeps it.
        return if wp < wq { Vec::new() } else { poly.to_vec() };
    }
    let m = p.midpoint(q) + d * ((wp - wq) / (2.0 * len_sq));
    clip_halfplane(poly, m, m + d.perp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn unit_square() -> Vec<Point> {
        vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)]
    }

    fn area(ring: &[Point]) -> f64 {
        Polygon::new_unchecked(ring.to_vec()).area()
    }

    #[test]
    fn clip_square_by_vertical_line() {
        // Keep left of upward line x = 0.5 → keeps x <= 0.5 half.
        let out = clip_halfplane(&unit_square(), p(0.5, 0.0), p(0.5, 1.0));
        assert!((area(&out) - 0.5).abs() < 1e-12);
        assert!(out.iter().all(|v| v.x <= 0.5 + 1e-12));
    }

    #[test]
    fn clip_away_everything() {
        let out = clip_halfplane(&unit_square(), p(2.0, 0.0), p(2.0, 1.0));
        // Line x=2 keeps left side (x <= 2): everything stays.
        assert_eq!(out.len(), 4);
        // Opposite direction keeps x >= 2: nothing remains.
        let out = clip_halfplane(&unit_square(), p(2.0, 1.0), p(2.0, 0.0));
        assert!(out.is_empty());
    }

    #[test]
    fn clip_diagonal() {
        // Keep the half-plane left of the line from (0,1) to (1,0):
        // that is the lower-left triangle x + y <= 1.
        let out = clip_halfplane(&unit_square(), p(0.0, 1.0), p(1.0, 0.0));
        assert!((area(&out) - 0.5).abs() < 1e-12);
        // Reversed direction keeps the other half.
        let out2 = clip_halfplane(&unit_square(), p(1.0, 0.0), p(0.0, 1.0));
        assert!((area(&out2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clip_rect_window() {
        let big = vec![p(-1.0, -1.0), p(3.0, -1.0), p(3.0, 3.0), p(-1.0, 3.0)];
        let window = Rect::new(p(0.0, 0.0), p(1.0, 1.0));
        let out = clip_rect(&big, &window);
        assert!((area(&out) - 1.0).abs() < 1e-12);
        // Disjoint polygon clips to nothing.
        let off = vec![p(5.0, 5.0), p(6.0, 5.0), p(6.0, 6.0)];
        assert!(clip_rect(&off, &window).is_empty());
    }

    #[test]
    fn bisector_keeps_generator_side() {
        let gen = p(0.25, 0.5);
        let other = p(0.75, 0.5);
        let out = clip_bisector(&unit_square(), gen, other);
        // Remaining region: x <= 0.5.
        assert!((area(&out) - 0.5).abs() < 1e-12);
        assert!(out.iter().all(|v| v.x <= 0.5 + 1e-12));
        // Every remaining vertex is at least as close to gen as to other.
        for &v in &out {
            assert!(v.dist_sq(gen) <= v.dist_sq(other) + 1e-9);
        }
    }

    #[test]
    fn successive_bisectors_form_cell() {
        // Generator in the middle of four neighbours → cell is the centred
        // half-unit square.
        let gen = p(0.5, 0.5);
        let neighbours = [p(0.0, 0.5), p(1.0, 0.5), p(0.5, 0.0), p(0.5, 1.0)];
        let mut cell = unit_square();
        for &q in &neighbours {
            cell = clip_bisector(&cell, gen, q);
        }
        assert!((area(&cell) - 0.25).abs() < 1e-12);
        let poly = Polygon::new_unchecked(cell);
        assert!(poly.contains(gen));
    }
}
