//! Robust geometric predicates: exact-sign `orient2d` and `incircle`.
//!
//! These are adaptive-precision predicates in the style of Shewchuk: a cheap
//! floating-point evaluation with a forward error bound handles the vast
//! majority of inputs, and progressively more precise (ultimately exact)
//! stages run only when the result is too close to zero to trust.
//!
//! * [`orient2d`] is a full port of Shewchuk's four-stage adaptive routine.
//! * [`incircle`] uses Shewchuk's A and B stages plus his C-stage correction,
//!   then falls back to a straightforward exact evaluation built on the
//!   [`crate::expansion`] `Vec` arithmetic. The fallback is reached only for
//!   (near-)cocircular inputs — e.g. points on a regular grid — where a few
//!   allocations are irrelevant next to correctness.
//!
//! A correct Delaunay triangulation of 10⁶ points is not achievable with
//! naive `f64` predicates; this module is the foundation the rest of the
//! workspace stands on.

use crate::expansion::{
    estimate, expansion_diff, expansion_product, expansion_sign, expansion_sum,
    fast_expansion_sum_zeroelim, scale_expansion_zeroelim, two_diff, two_diff_tail, two_product,
    two_two_diff, EPSILON,
};
use crate::point::Point;
use std::cell::Cell;

/// Per-thread running totals of the two stages of the orientation
/// pipeline: evaluations decided by the cheap error-bound **filter**
/// (stage A — scalar or batched) and evaluations that had to **fall
/// back** to the adaptive/exact stages.
///
/// The totals only ever grow; callers measure a region of interest by
/// subtracting two [`predicate_totals`] snapshots (each thread sees only
/// its own counters, so a single-threaded query window is exact).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredicateTotals {
    /// Orientation evaluations whose sign was certified by the cheap
    /// floating-point filter.
    pub filter_fast_accepts: u64,
    /// Orientation evaluations that fell through to the adaptive
    /// (expansion-arithmetic) stages.
    pub exact_fallbacks: u64,
}

thread_local! {
    static PREDICATE_TOTALS: Cell<PredicateTotals> = const {
        Cell::new(PredicateTotals {
            filter_fast_accepts: 0,
            exact_fallbacks: 0,
        })
    };
}

/// Snapshot of this thread's [`PredicateTotals`].
#[inline]
pub fn predicate_totals() -> PredicateTotals {
    PREDICATE_TOTALS.with(Cell::get)
}

#[inline]
pub(crate) fn bump_fast(n: u64) {
    PREDICATE_TOTALS.with(|t| {
        let mut v = t.get();
        v.filter_fast_accepts += n;
        t.set(v);
    });
}

#[inline]
pub(crate) fn bump_exact() {
    PREDICATE_TOTALS.with(|t| {
        let mut v = t.get();
        v.exact_fallbacks += 1;
        t.set(v);
    });
}

// Error bound coefficients from Shewchuk's predicates.c.
const RESULTERRBOUND: f64 = (3.0 + 8.0 * EPSILON) * EPSILON;
const CCWERRBOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;
const CCWERRBOUND_B: f64 = (2.0 + 12.0 * EPSILON) * EPSILON;
const CCWERRBOUND_C: f64 = (9.0 + 64.0 * EPSILON) * EPSILON * EPSILON;
const ICCERRBOUND_A: f64 = (10.0 + 96.0 * EPSILON) * EPSILON;
const ICCERRBOUND_B: f64 = (4.0 + 48.0 * EPSILON) * EPSILON;
const ICCERRBOUND_C: f64 = (44.0 + 576.0 * EPSILON) * EPSILON * EPSILON;

/// Sign of the orientation of the triangle `(pa, pb, pc)`.
///
/// Returns a value whose **sign is exact**:
/// * `> 0` — `pa`, `pb`, `pc` occur in counter-clockwise order
///   (`pc` lies to the left of the directed line `pa → pb`);
/// * `< 0` — clockwise;
/// * `== 0` — exactly collinear.
///
/// The magnitude approximates twice the signed triangle area.
pub fn orient2d(pa: Point, pb: Point, pc: Point) -> f64 {
    let detleft = (pa.x - pc.x) * (pb.y - pc.y);
    let detright = (pa.y - pc.y) * (pb.x - pc.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            bump_fast(1);
            return det;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            bump_fast(1);
            return det;
        }
        -detleft - detright
    } else {
        bump_fast(1);
        return det;
    };

    let errbound = CCWERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        bump_fast(1);
        return det;
    }

    bump_exact();
    orient2d_adapt(pa, pb, pc, detsum)
}

/// Maximum lane count accepted by the batched filter entry points.
pub const FILTER_MAX_LANES: usize = 64;

/// The branch-free stage-A criterion for one lane. Bit-identical to the
/// decisions [`orient2d`] makes before calling into the adaptive stages:
/// opposite (or zero) factor signs decide immediately, otherwise the
/// forward error bound must certify `det`. `detleft.abs() +
/// detright.abs()` equals the scalar code's `detsum` exactly in the
/// same-sign case (and is unused otherwise).
#[inline]
fn filter_lane(ax: f64, ay: f64, bx: f64, by: f64, cx: f64, cy: f64) -> (f64, bool) {
    let detleft = (ax - cx) * (by - cy);
    let detright = (ay - cy) * (bx - cx);
    let det = detleft - detright;
    let opposite = (detleft <= 0.0 && detright >= 0.0) || (detleft >= 0.0 && detright <= 0.0);
    let errbound = CCWERRBOUND_A * (detleft.abs() + detright.abs());
    let certified = det >= errbound || -det >= errbound;
    (det, opposite || certified)
}

/// Single-lane stage-A orientation filter: the determinant estimate and
/// whether its **sign is certified exact** (the cases where [`orient2d`]
/// would return without touching the expansion stages; the value then
/// equals the scalar return bit for bit). The branch-free filter-first
/// shape for call sites that want to try the cheap stage before paying
/// for a full exact test; undecided results must be re-evaluated with
/// [`orient2d`]. Decided calls count as filter fast-accepts in
/// [`predicate_totals`]; undecided ones are counted by the fallback.
#[inline]
pub fn orient2d_filter(pa: Point, pb: Point, pc: Point) -> (f64, bool) {
    let (det, ok) = filter_lane(pa.x, pa.y, pb.x, pb.y, pc.x, pc.y);
    if ok {
        bump_fast(1);
    }
    (det, ok)
}

/// Batched stage-A orientation filter over up to [`FILTER_MAX_LANES`]
/// candidate edges against one common point `(cx, cy)`.
///
/// Lane `i` evaluates the determinant of `orient2d((ax[i], ay[i]),
/// (bx[i], by[i]), (cx, cy))` with the cheap floating-point filter only —
/// no branches, structure-of-arrays operands, auto-vectorizable. On
/// return, `det[i]` holds the stage-A determinant and `decided[i]` is
/// `true` when its **sign is certified exact** (the cases where the
/// scalar [`orient2d`] would return without touching the expansion
/// stages; the value then equals the scalar return bit for bit).
/// Undecided lanes must be re-evaluated with [`orient2d`].
///
/// Decided lanes are counted as filter fast-accepts in
/// [`predicate_totals`]; undecided lanes are *not* counted here (the
/// scalar fallback counts them).
///
/// # Panics
///
/// Panics if the slices have mismatched lengths or more than
/// [`FILTER_MAX_LANES`] lanes.
#[allow(clippy::too_many_arguments)] // six SoA operand slices + two outputs IS the shape
pub fn orient2d_filter_batch(
    ax: &[f64],
    ay: &[f64],
    bx: &[f64],
    by: &[f64],
    cx: f64,
    cy: f64,
    det: &mut [f64],
    decided: &mut [bool],
) {
    let n = ax.len();
    assert!(n <= FILTER_MAX_LANES, "too many filter lanes: {n}");
    assert!(
        ay.len() == n && bx.len() == n && by.len() == n && det.len() == n && decided.len() == n,
        "mismatched filter lane slices"
    );
    let mut fast = 0u64;
    for i in 0..n {
        let (d, ok) = filter_lane(ax[i], ay[i], bx[i], by[i], cx, cy);
        det[i] = d;
        decided[i] = ok;
        fast += u64::from(ok);
    }
    bump_fast(fast);
}

/// Batched stage-A orientation filter of up to [`FILTER_MAX_LANES`]
/// points against one common directed line `pa → pb`.
///
/// Lane `i` evaluates `orient2d(pa, pb, (cx[i], cy[i]))` under the same
/// contract as [`orient2d_filter_batch`]: `decided[i]` certifies that
/// `det[i]`'s sign is exact and equal to the scalar result. This is the
/// shape of the segment-expansion tests, where many candidate edge
/// endpoints are classified against one query segment.
///
/// # Panics
///
/// Panics if the slices have mismatched lengths or more than
/// [`FILTER_MAX_LANES`] lanes.
pub fn orient2d_filter_batch_points(
    pa: Point,
    pb: Point,
    cx: &[f64],
    cy: &[f64],
    det: &mut [f64],
    decided: &mut [bool],
) {
    let n = cx.len();
    assert!(n <= FILTER_MAX_LANES, "too many filter lanes: {n}");
    assert!(
        cy.len() == n && det.len() == n && decided.len() == n,
        "mismatched filter lane slices"
    );
    let mut fast = 0u64;
    for i in 0..n {
        let (d, ok) = filter_lane(pa.x, pa.y, pb.x, pb.y, cx[i], cy[i]);
        det[i] = d;
        decided[i] = ok;
        fast += u64::from(ok);
    }
    bump_fast(fast);
}

/// Stages B–D of the adaptive orientation test.
fn orient2d_adapt(pa: Point, pb: Point, pc: Point, detsum: f64) -> f64 {
    let acx = pa.x - pc.x;
    let bcx = pb.x - pc.x;
    let acy = pa.y - pc.y;
    let bcy = pb.y - pc.y;

    let (detleft, detlefttail) = two_product(acx, bcy);
    let (detright, detrighttail) = two_product(acy, bcx);
    let b = two_two_diff(detleft, detlefttail, detright, detrighttail);

    let mut det = estimate(&b);
    let errbound = CCWERRBOUND_B * detsum;
    if det >= errbound || -det >= errbound {
        return det;
    }

    let acxtail = two_diff_tail(pa.x, pc.x, acx);
    let bcxtail = two_diff_tail(pb.x, pc.x, bcx);
    let acytail = two_diff_tail(pa.y, pc.y, acy);
    let bcytail = two_diff_tail(pb.y, pc.y, bcy);

    if acxtail == 0.0 && acytail == 0.0 && bcxtail == 0.0 && bcytail == 0.0 {
        return det;
    }

    let errbound = CCWERRBOUND_C * detsum + RESULTERRBOUND * det.abs();
    det += (acx * bcytail + bcy * acxtail) - (acy * bcxtail + bcx * acytail);
    if det >= errbound || -det >= errbound {
        return det;
    }

    // Exact stage D.
    let (s1, s0) = two_product(acxtail, bcy);
    let (t1, t0) = two_product(acytail, bcx);
    let u = two_two_diff(s1, s0, t1, t0);
    let mut c1 = [0.0; 8];
    let c1len = fast_expansion_sum_zeroelim(&b, &u, &mut c1);

    let (s1, s0) = two_product(acx, bcytail);
    let (t1, t0) = two_product(acy, bcxtail);
    let u = two_two_diff(s1, s0, t1, t0);
    let mut c2 = [0.0; 12];
    let c2len = fast_expansion_sum_zeroelim(&c1[..c1len], &u, &mut c2);

    let (s1, s0) = two_product(acxtail, bcytail);
    let (t1, t0) = two_product(acytail, bcxtail);
    let u = two_two_diff(s1, s0, t1, t0);
    let mut d = [0.0; 16];
    let dlen = fast_expansion_sum_zeroelim(&c2[..c2len], &u, &mut d);

    d[dlen - 1]
}

/// Orientation as a three-way sign, for call sites that branch on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise (positive orientation).
    Ccw,
    /// Clockwise (negative orientation).
    Cw,
    /// Exactly collinear.
    Collinear,
}

/// [`orient2d`] classified into an [`Orientation`].
#[inline]
pub fn orientation(pa: Point, pb: Point, pc: Point) -> Orientation {
    let det = orient2d(pa, pb, pc);
    if det > 0.0 {
        Orientation::Ccw
    } else if det < 0.0 {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

/// Sign of the incircle determinant for `(pa, pb, pc)` against `pd`.
///
/// Assuming `pa, pb, pc` in **counter-clockwise** order, returns a value
/// whose sign is exact:
/// * `> 0` — `pd` lies strictly **inside** the circle through `pa, pb, pc`;
/// * `< 0` — strictly outside;
/// * `== 0` — exactly cocircular.
///
/// If `pa, pb, pc` are clockwise the sign is inverted.
pub fn incircle(pa: Point, pb: Point, pc: Point, pd: Point) -> f64 {
    let adx = pa.x - pd.x;
    let bdx = pb.x - pd.x;
    let cdx = pc.x - pd.x;
    let ady = pa.y - pd.y;
    let bdy = pb.y - pd.y;
    let cdy = pc.y - pd.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICCERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return det;
    }

    incircle_adapt(pa, pb, pc, pd, permanent)
}

/// Stage B (plus the C-stage correction term) of the adaptive incircle test,
/// falling back to [`incircle_exact`] when still undecided.
fn incircle_adapt(pa: Point, pb: Point, pc: Point, pd: Point, permanent: f64) -> f64 {
    let adx = pa.x - pd.x;
    let bdx = pb.x - pd.x;
    let cdx = pc.x - pd.x;
    let ady = pa.y - pd.y;
    let bdy = pb.y - pd.y;
    let cdy = pc.y - pd.y;

    // B stage: exact determinant of the rounded differences.
    let (bdxcdy1, bdxcdy0) = two_product(bdx, cdy);
    let (cdxbdy1, cdxbdy0) = two_product(cdx, bdy);
    let bc = two_two_diff(bdxcdy1, bdxcdy0, cdxbdy1, cdxbdy0);
    let mut axbc = [0.0; 8];
    let axbclen = scale_expansion_zeroelim(&bc, adx, &mut axbc);
    let mut axxbc = [0.0; 16];
    let axxbclen = scale_expansion_zeroelim(&axbc[..axbclen], adx, &mut axxbc);
    let mut aybc = [0.0; 8];
    let aybclen = scale_expansion_zeroelim(&bc, ady, &mut aybc);
    let mut ayybc = [0.0; 16];
    let ayybclen = scale_expansion_zeroelim(&aybc[..aybclen], ady, &mut ayybc);
    let mut adet = [0.0; 32];
    let alen = fast_expansion_sum_zeroelim(&axxbc[..axxbclen], &ayybc[..ayybclen], &mut adet);

    let (cdxady1, cdxady0) = two_product(cdx, ady);
    let (adxcdy1, adxcdy0) = two_product(adx, cdy);
    let ca = two_two_diff(cdxady1, cdxady0, adxcdy1, adxcdy0);
    let mut bxca = [0.0; 8];
    let bxcalen = scale_expansion_zeroelim(&ca, bdx, &mut bxca);
    let mut bxxca = [0.0; 16];
    let bxxcalen = scale_expansion_zeroelim(&bxca[..bxcalen], bdx, &mut bxxca);
    let mut byca = [0.0; 8];
    let bycalen = scale_expansion_zeroelim(&ca, bdy, &mut byca);
    let mut byyca = [0.0; 16];
    let byycalen = scale_expansion_zeroelim(&byca[..bycalen], bdy, &mut byyca);
    let mut bdet = [0.0; 32];
    let blen = fast_expansion_sum_zeroelim(&bxxca[..bxxcalen], &byyca[..byycalen], &mut bdet);

    let (adxbdy1, adxbdy0) = two_product(adx, bdy);
    let (bdxady1, bdxady0) = two_product(bdx, ady);
    let ab = two_two_diff(adxbdy1, adxbdy0, bdxady1, bdxady0);
    let mut cxab = [0.0; 8];
    let cxablen = scale_expansion_zeroelim(&ab, cdx, &mut cxab);
    let mut cxxab = [0.0; 16];
    let cxxablen = scale_expansion_zeroelim(&cxab[..cxablen], cdx, &mut cxxab);
    let mut cyab = [0.0; 8];
    let cyablen = scale_expansion_zeroelim(&ab, cdy, &mut cyab);
    let mut cyyab = [0.0; 16];
    let cyyablen = scale_expansion_zeroelim(&cyab[..cyablen], cdy, &mut cyyab);
    let mut cdet = [0.0; 32];
    let clen = fast_expansion_sum_zeroelim(&cxxab[..cxxablen], &cyyab[..cyyablen], &mut cdet);

    let mut abdet = [0.0; 64];
    let ablen = fast_expansion_sum_zeroelim(&adet[..alen], &bdet[..blen], &mut abdet);
    let mut fin1 = [0.0; 96];
    let finlen = fast_expansion_sum_zeroelim(&abdet[..ablen], &cdet[..clen], &mut fin1);

    let mut det = estimate(&fin1[..finlen]);
    let errbound = ICCERRBOUND_B * permanent;
    if det >= errbound || -det >= errbound {
        return det;
    }

    // C stage: first-order correction with the difference tails.
    let adxtail = two_diff_tail(pa.x, pd.x, adx);
    let adytail = two_diff_tail(pa.y, pd.y, ady);
    let bdxtail = two_diff_tail(pb.x, pd.x, bdx);
    let bdytail = two_diff_tail(pb.y, pd.y, bdy);
    let cdxtail = two_diff_tail(pc.x, pd.x, cdx);
    let cdytail = two_diff_tail(pc.y, pd.y, cdy);
    if adxtail == 0.0
        && bdxtail == 0.0
        && cdxtail == 0.0
        && adytail == 0.0
        && bdytail == 0.0
        && cdytail == 0.0
    {
        return det;
    }

    let errbound = ICCERRBOUND_C * permanent + RESULTERRBOUND * det.abs();
    det += ((adx * adx + ady * ady)
        * ((bdx * cdytail + cdy * bdxtail) - (bdy * cdxtail + cdx * bdytail))
        + 2.0 * (adx * adxtail + ady * adytail) * (bdx * cdy - bdy * cdx))
        + ((bdx * bdx + bdy * bdy)
            * ((cdx * adytail + ady * cdxtail) - (cdy * adxtail + adx * cdytail))
            + 2.0 * (bdx * bdxtail + bdy * bdytail) * (cdx * ady - cdy * adx))
        + ((cdx * cdx + cdy * cdy)
            * ((adx * bdytail + bdy * adxtail) - (ady * bdxtail + bdx * adytail))
            + 2.0 * (cdx * cdxtail + cdy * cdytail) * (adx * bdy - ady * bdx));
    if det >= errbound || -det >= errbound {
        return det;
    }

    incircle_exact(pa, pb, pc, pd)
}

/// Fully exact incircle evaluation via expansion `Vec` arithmetic.
///
/// Computes the 3×3 determinant
/// `| adx ady adx²+ady² ; bdx bdy bdx²+bdy² ; cdx cdy cdx²+cdy² |`
/// where each difference is carried as an exact 2-component expansion, so the
/// result sign is exact for all finite inputs. Only invoked on
/// (near-)degenerate configurations.
fn incircle_exact(pa: Point, pb: Point, pc: Point, pd: Point) -> f64 {
    #[inline]
    fn diff2(a: f64, b: f64) -> [f64; 2] {
        let (x, y) = two_diff(a, b);
        [y, x]
    }

    let adx = diff2(pa.x, pd.x);
    let ady = diff2(pa.y, pd.y);
    let bdx = diff2(pb.x, pd.x);
    let bdy = diff2(pb.y, pd.y);
    let cdx = diff2(pc.x, pd.x);
    let cdy = diff2(pc.y, pd.y);

    let lift = |dx: &[f64], dy: &[f64]| -> Vec<f64> {
        expansion_sum(&expansion_product(dx, dx), &expansion_product(dy, dy))
    };
    let alift = lift(&adx, &ady);
    let blift = lift(&bdx, &bdy);
    let clift = lift(&cdx, &cdy);

    // Minor determinants: bc = bdx*cdy - cdx*bdy, etc.
    let bc = expansion_diff(
        &expansion_product(&bdx, &cdy),
        &expansion_product(&cdx, &bdy),
    );
    let ca = expansion_diff(
        &expansion_product(&cdx, &ady),
        &expansion_product(&adx, &cdy),
    );
    let ab = expansion_diff(
        &expansion_product(&adx, &bdy),
        &expansion_product(&bdx, &ady),
    );

    let det = expansion_sum(
        &expansion_sum(
            &expansion_product(&alift, &bc),
            &expansion_product(&blift, &ca),
        ),
        &expansion_product(&clift, &ab),
    );
    expansion_sign(&det)
}

/// `true` when `pd` is strictly inside the circumcircle of the CCW triangle
/// `(pa, pb, pc)`.
#[inline]
pub fn in_circle(pa: Point, pb: Point, pc: Point, pd: Point) -> bool {
    incircle(pa, pb, pc, pd) > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// Three-way sign (f64::signum returns ±1 for ±0, which is wrong here).
    fn sgn(x: f64) -> i32 {
        if x > 0.0 {
            1
        } else if x < 0.0 {
            -1
        } else {
            0
        }
    }

    fn sgn_i(x: i128) -> i32 {
        x.signum() as i32
    }

    // Exact i128 oracle for integer-coordinate points.
    fn orient2d_i128(pa: Point, pb: Point, pc: Point) -> i128 {
        let (ax, ay) = (pa.x as i128, pa.y as i128);
        let (bx, by) = (pb.x as i128, pb.y as i128);
        let (cx, cy) = (pc.x as i128, pc.y as i128);
        (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    }

    fn incircle_i128(pa: Point, pb: Point, pc: Point, pd: Point) -> i128 {
        let d = |p: Point| (p.x as i128 - pd.x as i128, p.y as i128 - pd.y as i128);
        let (adx, ady) = d(pa);
        let (bdx, bdy) = d(pb);
        let (cdx, cdy) = d(pc);
        let alift = adx * adx + ady * ady;
        let blift = bdx * bdx + bdy * bdy;
        let clift = cdx * cdx + cdy * cdy;
        alift * (bdx * cdy - cdx * bdy)
            + blift * (cdx * ady - adx * cdy)
            + clift * (adx * bdy - bdx * ady)
    }

    #[test]
    fn orient2d_basic_signs() {
        assert!(orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)) > 0.0);
        assert!(orient2d(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)) < 0.0);
        assert_eq!(orient2d(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)), 0.0);
    }

    #[test]
    fn orient2d_exact_collinear_detection() {
        // Points on the line y = x with coordinates that stress rounding.
        let a = p(0.1, 0.1);
        let b = p(0.2, 0.2);
        // 0.3 is not representable: (0.3, 0.3) is *not quite* on the fl line,
        // yet a, b and the point must still be classified consistently.
        let c = p(0.3, 0.3);
        let d1 = orient2d(a, b, c);
        let d2 = orient2d(b, c, a);
        let d3 = orient2d(c, a, b);
        assert_eq!(sgn(d1), sgn(d2));
        assert_eq!(sgn(d2), sgn(d3));
        // Swapping two arguments must flip the sign exactly.
        assert_eq!(sgn(orient2d(a, c, b)), -sgn(d1));
    }

    #[test]
    fn orient2d_near_degenerate_grid() {
        // Shewchuk's classic stress: tiny perturbations off a diagonal.
        let base = p(0.5, 0.5);
        for i in 0..64 {
            for j in 0..64 {
                let pa = p(
                    0.5 + (i as f64) * f64::EPSILON,
                    0.5 + (j as f64) * f64::EPSILON,
                );
                let pb = p(12.0, 12.0);
                let pc = p(24.0, 24.0);
                let det = orient2d(pa, pb, pc);
                // Compare against exact evaluation through the expansion path:
                // scale so coordinates become exact integers (multiples of eps).
                let s = 1.0 / f64::EPSILON;
                let ia = p((pa.x - base.x) * s, (pa.y - base.y) * s);
                // pb - base = 11.5, pc - base = 23.5; scale by 2 for integers.
                let exact = {
                    let a2 = p(ia.x * 2.0, ia.y * 2.0);
                    let b2 = p(11.5 * s * 2.0, 11.5 * s * 2.0);
                    let c2 = p(23.5 * s * 2.0, 23.5 * s * 2.0);
                    orient2d_i128(a2, b2, c2)
                };
                assert_eq!(sgn(det), sgn_i(exact), "mismatch at i={i} j={j}");
            }
        }
    }

    #[test]
    fn incircle_basic_signs() {
        // Unit circle through (1,0), (0,1), (-1,0); origin is inside.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        assert!(incircle(a, b, c, p(0.0, 0.0)) > 0.0);
        assert!(incircle(a, b, c, p(2.0, 0.0)) < 0.0);
        // (0,-1) is exactly on the circle.
        assert_eq!(incircle(a, b, c, p(0.0, -1.0)), 0.0);
    }

    #[test]
    fn incircle_orientation_flip() {
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        let inside = p(0.1, 0.1);
        assert!(incircle(a, b, c, inside) > 0.0); // CCW triangle
        assert!(incircle(a, c, b, inside) < 0.0); // CW triangle flips sign
    }

    #[test]
    fn incircle_cocircular_grid() {
        // The four corners of a unit square are cocircular: every orientation
        // of three corners against the fourth must return exactly 0.
        let q = [p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)];
        assert_eq!(incircle(q[0], q[1], q[2], q[3]), 0.0);
        assert_eq!(incircle(q[1], q[2], q[3], q[0]), 0.0);
        // Tiny inward perturbation must be detected as inside.
        let eps = f64::EPSILON;
        let inside = p(eps, eps); // nudged toward the centre from (0, 0)... on circle?
                                  // (eps, eps) vs circle centred (0.5, 0.5) radius sqrt(0.5):
                                  // dist² = 2*(0.5-eps)² < 0.5, so strictly inside.
        assert!(incircle(q[0], q[1], q[2], inside) > 0.0);
    }

    #[test]
    fn incircle_against_i128_oracle_small_grid() {
        // Exhaustive-ish sweep over a small integer grid.
        let coords: Vec<Point> = (0..4)
            .flat_map(|x| (0..4).map(move |y| p(x as f64, y as f64)))
            .collect();
        let mut checked = 0u32;
        for (i, &a) in coords.iter().enumerate() {
            for (j, &b) in coords.iter().enumerate() {
                if j == i {
                    continue;
                }
                for (k, &c) in coords.iter().enumerate() {
                    if k == i || k == j {
                        continue;
                    }
                    if orient2d_i128(a, b, c) <= 0 {
                        continue; // incircle convention needs CCW triangles
                    }
                    for &d in coords.iter().step_by(3) {
                        let fast = incircle(a, b, c, d);
                        let exact = incircle_i128(a, b, c, d);
                        assert_eq!(sgn(fast), sgn_i(exact), "a={a} b={b} c={c} d={d}");
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 1000);
    }

    #[test]
    fn orient2d_against_i128_oracle_small_grid() {
        let coords: Vec<Point> = (-3..3)
            .flat_map(|x| (-3..3).map(move |y| p(x as f64, y as f64)))
            .collect();
        for &a in &coords {
            for &b in &coords {
                for &c in coords.iter().step_by(5) {
                    let fast = orient2d(a, b, c);
                    let exact = orient2d_i128(a, b, c);
                    assert_eq!(sgn(fast), sgn_i(exact));
                }
            }
        }
    }

    /// The batched filter must agree with the i128 oracle on every decided
    /// lane (and the scalar fallback on every undecided one) — the same
    /// sweep as `orient2d_against_i128_oracle_small_grid`, batched.
    #[test]
    fn filter_batch_against_i128_oracle_small_grid() {
        let coords: Vec<Point> = (-3..3)
            .flat_map(|x| (-3..3).map(move |y| p(x as f64, y as f64)))
            .collect();
        let mut lanes: Vec<(Point, Point, Point)> = Vec::new();
        for &a in &coords {
            for &b in &coords {
                for &c in coords.iter().step_by(5) {
                    lanes.push((a, b, c));
                }
            }
        }
        let mut decided_total = 0usize;
        for chunk in lanes.chunks(FILTER_MAX_LANES) {
            // Fixed-c variant: group by c within the chunk.
            for (i, &(a, b, c)) in chunk.iter().enumerate() {
                let (ax, ay) = ([a.x], [a.y]);
                let (bx, by) = ([b.x], [b.y]);
                let mut det = [0.0f64];
                let mut dec = [false];
                orient2d_filter_batch(&ax, &ay, &bx, &by, c.x, c.y, &mut det, &mut dec);
                let got = if dec[0] { det[0] } else { orient2d(a, b, c) };
                assert_eq!(
                    sgn(got),
                    sgn_i(orient2d_i128(a, b, c)),
                    "lane {i}: a={a} b={b} c={c}"
                );
                if dec[0] {
                    decided_total += 1;
                    // A decided lane equals the scalar result bit for bit.
                    assert_eq!(det[0].to_bits(), orient2d(a, b, c).to_bits());
                }
            }
            // Fixed-line variant over the whole chunk.
            let (pa, pb) = (chunk[0].0, chunk[0].1);
            let cx: Vec<f64> = chunk.iter().map(|l| l.2.x).collect();
            let cy: Vec<f64> = chunk.iter().map(|l| l.2.y).collect();
            let mut det = vec![0.0f64; chunk.len()];
            let mut dec = vec![false; chunk.len()];
            orient2d_filter_batch_points(pa, pb, &cx, &cy, &mut det, &mut dec);
            for (i, &(_, _, c)) in chunk.iter().enumerate() {
                let got = if dec[i] { det[i] } else { orient2d(pa, pb, c) };
                assert_eq!(sgn(got), sgn_i(orient2d_i128(pa, pb, c)));
            }
        }
        assert!(
            decided_total > 1000,
            "filter should decide the vast majority"
        );
    }

    /// Near-degenerate lanes: tiny perturbations off a diagonal, where the
    /// filter must either certify the exact sign or punt — never lie.
    #[test]
    fn filter_batch_near_degenerate_grid() {
        let s = 1.0 / f64::EPSILON;
        let mut undecided = 0usize;
        for i in 0..32 {
            for j in 0..32 {
                let a = p(
                    0.5 + (i as f64) * f64::EPSILON,
                    0.5 + (j as f64) * f64::EPSILON,
                );
                let b = p(12.0, 12.0);
                let c = p(24.0, 24.0);
                let mut det = [0.0f64];
                let mut dec = [false];
                orient2d_filter_batch(&[a.x], &[a.y], &[b.x], &[b.y], c.x, c.y, &mut det, &mut dec);
                let got = if dec[0] { det[0] } else { orient2d(a, b, c) };
                let exact = {
                    let a2 = p((a.x - 0.5) * s * 2.0, (a.y - 0.5) * s * 2.0);
                    let b2 = p(11.5 * s * 2.0, 11.5 * s * 2.0);
                    let c2 = p(23.5 * s * 2.0, 23.5 * s * 2.0);
                    orient2d_i128(a2, b2, c2)
                };
                assert_eq!(sgn(got), sgn_i(exact), "i={i} j={j}");
                undecided += usize::from(!dec[0]);
            }
        }
        assert!(undecided > 0, "this grid must exercise the fallback");
    }

    /// The pipeline counters: fast accepts on generic inputs, exact
    /// fallbacks on (near-)degenerate ones, batched accepts in bulk.
    #[test]
    fn predicate_totals_track_both_stages() {
        let t0 = predicate_totals();
        assert!(orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)) > 0.0);
        let t1 = predicate_totals();
        assert_eq!(t1.filter_fast_accepts - t0.filter_fast_accepts, 1);
        assert_eq!(t1.exact_fallbacks, t0.exact_fallbacks);
        // Exactly collinear points with non-trivial coordinates force the
        // adaptive stages.
        assert_eq!(orient2d(p(0.1, 0.1), p(0.2, 0.2), p(0.4, 0.4)), 0.0);
        let t2 = predicate_totals();
        assert_eq!(t2.exact_fallbacks - t1.exact_fallbacks, 1);
        // A decided batch lane counts as a fast accept.
        let mut det = [0.0f64; 2];
        let mut dec = [false; 2];
        orient2d_filter_batch(
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[1.0, 1.0],
            &[0.0, 0.0],
            0.25,
            1.0,
            &mut det,
            &mut dec,
        );
        let t3 = predicate_totals();
        assert_eq!(
            t3.filter_fast_accepts - t2.filter_fast_accepts,
            dec.iter().filter(|&&d| d).count() as u64
        );
    }

    #[test]
    fn orientation_enum() {
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)),
            Orientation::Ccw
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)),
            Orientation::Cw
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn incircle_exact_fallback_direct() {
        // Force the exact path with a deliberately brutal cocircular case
        // where all fast paths are inconclusive: four points on a circle with
        // irrational-ish coordinates scaled to kill the filters.
        let a = p(1e-30 + 1.0, 0.0);
        let b = p(0.0, 1.0 + 1e-30);
        let c = p(-1.0, 0.0);
        let d = p(0.0, -1.0);
        let sign = incircle(a, b, c, d);
        // Exact evaluation must be deterministic and finite.
        assert!(sign.is_finite());
        // Sanity: perturbing d inward flips to strictly positive.
        assert!(incircle(a, b, c, p(0.0, -0.5)) > 0.0);
    }
}
