//! Robust geometric predicates: exact-sign `orient2d` and `incircle`.
//!
//! These are adaptive-precision predicates in the style of Shewchuk: a cheap
//! floating-point evaluation with a forward error bound handles the vast
//! majority of inputs, and progressively more precise (ultimately exact)
//! stages run only when the result is too close to zero to trust.
//!
//! * [`orient2d`] is a full port of Shewchuk's four-stage adaptive routine.
//! * [`incircle`] uses Shewchuk's A and B stages plus his C-stage correction,
//!   then falls back to a straightforward exact evaluation built on the
//!   [`crate::expansion`] `Vec` arithmetic. The fallback is reached only for
//!   (near-)cocircular inputs — e.g. points on a regular grid — where a few
//!   allocations are irrelevant next to correctness.
//!
//! A correct Delaunay triangulation of 10⁶ points is not achievable with
//! naive `f64` predicates; this module is the foundation the rest of the
//! workspace stands on.

use crate::expansion::{
    estimate, expansion_diff, expansion_product, expansion_sign, expansion_sum,
    fast_expansion_sum_zeroelim, scale_expansion_zeroelim, two_diff, two_diff_tail, two_product,
    two_two_diff, EPSILON,
};
use crate::point::Point;

// Error bound coefficients from Shewchuk's predicates.c.
const RESULTERRBOUND: f64 = (3.0 + 8.0 * EPSILON) * EPSILON;
const CCWERRBOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;
const CCWERRBOUND_B: f64 = (2.0 + 12.0 * EPSILON) * EPSILON;
const CCWERRBOUND_C: f64 = (9.0 + 64.0 * EPSILON) * EPSILON * EPSILON;
const ICCERRBOUND_A: f64 = (10.0 + 96.0 * EPSILON) * EPSILON;
const ICCERRBOUND_B: f64 = (4.0 + 48.0 * EPSILON) * EPSILON;
const ICCERRBOUND_C: f64 = (44.0 + 576.0 * EPSILON) * EPSILON * EPSILON;

/// Sign of the orientation of the triangle `(pa, pb, pc)`.
///
/// Returns a value whose **sign is exact**:
/// * `> 0` — `pa`, `pb`, `pc` occur in counter-clockwise order
///   (`pc` lies to the left of the directed line `pa → pb`);
/// * `< 0` — clockwise;
/// * `== 0` — exactly collinear.
///
/// The magnitude approximates twice the signed triangle area.
pub fn orient2d(pa: Point, pb: Point, pc: Point) -> f64 {
    let detleft = (pa.x - pc.x) * (pb.y - pc.y);
    let detright = (pa.y - pc.y) * (pb.x - pc.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return det;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return det;
        }
        -detleft - detright
    } else {
        return det;
    };

    let errbound = CCWERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return det;
    }

    orient2d_adapt(pa, pb, pc, detsum)
}

/// Stages B–D of the adaptive orientation test.
fn orient2d_adapt(pa: Point, pb: Point, pc: Point, detsum: f64) -> f64 {
    let acx = pa.x - pc.x;
    let bcx = pb.x - pc.x;
    let acy = pa.y - pc.y;
    let bcy = pb.y - pc.y;

    let (detleft, detlefttail) = two_product(acx, bcy);
    let (detright, detrighttail) = two_product(acy, bcx);
    let b = two_two_diff(detleft, detlefttail, detright, detrighttail);

    let mut det = estimate(&b);
    let errbound = CCWERRBOUND_B * detsum;
    if det >= errbound || -det >= errbound {
        return det;
    }

    let acxtail = two_diff_tail(pa.x, pc.x, acx);
    let bcxtail = two_diff_tail(pb.x, pc.x, bcx);
    let acytail = two_diff_tail(pa.y, pc.y, acy);
    let bcytail = two_diff_tail(pb.y, pc.y, bcy);

    if acxtail == 0.0 && acytail == 0.0 && bcxtail == 0.0 && bcytail == 0.0 {
        return det;
    }

    let errbound = CCWERRBOUND_C * detsum + RESULTERRBOUND * det.abs();
    det += (acx * bcytail + bcy * acxtail) - (acy * bcxtail + bcx * acytail);
    if det >= errbound || -det >= errbound {
        return det;
    }

    // Exact stage D.
    let (s1, s0) = two_product(acxtail, bcy);
    let (t1, t0) = two_product(acytail, bcx);
    let u = two_two_diff(s1, s0, t1, t0);
    let mut c1 = [0.0; 8];
    let c1len = fast_expansion_sum_zeroelim(&b, &u, &mut c1);

    let (s1, s0) = two_product(acx, bcytail);
    let (t1, t0) = two_product(acy, bcxtail);
    let u = two_two_diff(s1, s0, t1, t0);
    let mut c2 = [0.0; 12];
    let c2len = fast_expansion_sum_zeroelim(&c1[..c1len], &u, &mut c2);

    let (s1, s0) = two_product(acxtail, bcytail);
    let (t1, t0) = two_product(acytail, bcxtail);
    let u = two_two_diff(s1, s0, t1, t0);
    let mut d = [0.0; 16];
    let dlen = fast_expansion_sum_zeroelim(&c2[..c2len], &u, &mut d);

    d[dlen - 1]
}

/// Orientation as a three-way sign, for call sites that branch on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise (positive orientation).
    Ccw,
    /// Clockwise (negative orientation).
    Cw,
    /// Exactly collinear.
    Collinear,
}

/// [`orient2d`] classified into an [`Orientation`].
#[inline]
pub fn orientation(pa: Point, pb: Point, pc: Point) -> Orientation {
    let det = orient2d(pa, pb, pc);
    if det > 0.0 {
        Orientation::Ccw
    } else if det < 0.0 {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

/// Sign of the incircle determinant for `(pa, pb, pc)` against `pd`.
///
/// Assuming `pa, pb, pc` in **counter-clockwise** order, returns a value
/// whose sign is exact:
/// * `> 0` — `pd` lies strictly **inside** the circle through `pa, pb, pc`;
/// * `< 0` — strictly outside;
/// * `== 0` — exactly cocircular.
///
/// If `pa, pb, pc` are clockwise the sign is inverted.
pub fn incircle(pa: Point, pb: Point, pc: Point, pd: Point) -> f64 {
    let adx = pa.x - pd.x;
    let bdx = pb.x - pd.x;
    let cdx = pc.x - pd.x;
    let ady = pa.y - pd.y;
    let bdy = pb.y - pd.y;
    let cdy = pc.y - pd.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICCERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return det;
    }

    incircle_adapt(pa, pb, pc, pd, permanent)
}

/// Stage B (plus the C-stage correction term) of the adaptive incircle test,
/// falling back to [`incircle_exact`] when still undecided.
fn incircle_adapt(pa: Point, pb: Point, pc: Point, pd: Point, permanent: f64) -> f64 {
    let adx = pa.x - pd.x;
    let bdx = pb.x - pd.x;
    let cdx = pc.x - pd.x;
    let ady = pa.y - pd.y;
    let bdy = pb.y - pd.y;
    let cdy = pc.y - pd.y;

    // B stage: exact determinant of the rounded differences.
    let (bdxcdy1, bdxcdy0) = two_product(bdx, cdy);
    let (cdxbdy1, cdxbdy0) = two_product(cdx, bdy);
    let bc = two_two_diff(bdxcdy1, bdxcdy0, cdxbdy1, cdxbdy0);
    let mut axbc = [0.0; 8];
    let axbclen = scale_expansion_zeroelim(&bc, adx, &mut axbc);
    let mut axxbc = [0.0; 16];
    let axxbclen = scale_expansion_zeroelim(&axbc[..axbclen], adx, &mut axxbc);
    let mut aybc = [0.0; 8];
    let aybclen = scale_expansion_zeroelim(&bc, ady, &mut aybc);
    let mut ayybc = [0.0; 16];
    let ayybclen = scale_expansion_zeroelim(&aybc[..aybclen], ady, &mut ayybc);
    let mut adet = [0.0; 32];
    let alen = fast_expansion_sum_zeroelim(&axxbc[..axxbclen], &ayybc[..ayybclen], &mut adet);

    let (cdxady1, cdxady0) = two_product(cdx, ady);
    let (adxcdy1, adxcdy0) = two_product(adx, cdy);
    let ca = two_two_diff(cdxady1, cdxady0, adxcdy1, adxcdy0);
    let mut bxca = [0.0; 8];
    let bxcalen = scale_expansion_zeroelim(&ca, bdx, &mut bxca);
    let mut bxxca = [0.0; 16];
    let bxxcalen = scale_expansion_zeroelim(&bxca[..bxcalen], bdx, &mut bxxca);
    let mut byca = [0.0; 8];
    let bycalen = scale_expansion_zeroelim(&ca, bdy, &mut byca);
    let mut byyca = [0.0; 16];
    let byycalen = scale_expansion_zeroelim(&byca[..bycalen], bdy, &mut byyca);
    let mut bdet = [0.0; 32];
    let blen = fast_expansion_sum_zeroelim(&bxxca[..bxxcalen], &byyca[..byycalen], &mut bdet);

    let (adxbdy1, adxbdy0) = two_product(adx, bdy);
    let (bdxady1, bdxady0) = two_product(bdx, ady);
    let ab = two_two_diff(adxbdy1, adxbdy0, bdxady1, bdxady0);
    let mut cxab = [0.0; 8];
    let cxablen = scale_expansion_zeroelim(&ab, cdx, &mut cxab);
    let mut cxxab = [0.0; 16];
    let cxxablen = scale_expansion_zeroelim(&cxab[..cxablen], cdx, &mut cxxab);
    let mut cyab = [0.0; 8];
    let cyablen = scale_expansion_zeroelim(&ab, cdy, &mut cyab);
    let mut cyyab = [0.0; 16];
    let cyyablen = scale_expansion_zeroelim(&cyab[..cyablen], cdy, &mut cyyab);
    let mut cdet = [0.0; 32];
    let clen = fast_expansion_sum_zeroelim(&cxxab[..cxxablen], &cyyab[..cyyablen], &mut cdet);

    let mut abdet = [0.0; 64];
    let ablen = fast_expansion_sum_zeroelim(&adet[..alen], &bdet[..blen], &mut abdet);
    let mut fin1 = [0.0; 96];
    let finlen = fast_expansion_sum_zeroelim(&abdet[..ablen], &cdet[..clen], &mut fin1);

    let mut det = estimate(&fin1[..finlen]);
    let errbound = ICCERRBOUND_B * permanent;
    if det >= errbound || -det >= errbound {
        return det;
    }

    // C stage: first-order correction with the difference tails.
    let adxtail = two_diff_tail(pa.x, pd.x, adx);
    let adytail = two_diff_tail(pa.y, pd.y, ady);
    let bdxtail = two_diff_tail(pb.x, pd.x, bdx);
    let bdytail = two_diff_tail(pb.y, pd.y, bdy);
    let cdxtail = two_diff_tail(pc.x, pd.x, cdx);
    let cdytail = two_diff_tail(pc.y, pd.y, cdy);
    if adxtail == 0.0
        && bdxtail == 0.0
        && cdxtail == 0.0
        && adytail == 0.0
        && bdytail == 0.0
        && cdytail == 0.0
    {
        return det;
    }

    let errbound = ICCERRBOUND_C * permanent + RESULTERRBOUND * det.abs();
    det += ((adx * adx + ady * ady)
        * ((bdx * cdytail + cdy * bdxtail) - (bdy * cdxtail + cdx * bdytail))
        + 2.0 * (adx * adxtail + ady * adytail) * (bdx * cdy - bdy * cdx))
        + ((bdx * bdx + bdy * bdy)
            * ((cdx * adytail + ady * cdxtail) - (cdy * adxtail + adx * cdytail))
            + 2.0 * (bdx * bdxtail + bdy * bdytail) * (cdx * ady - cdy * adx))
        + ((cdx * cdx + cdy * cdy)
            * ((adx * bdytail + bdy * adxtail) - (ady * bdxtail + bdx * adytail))
            + 2.0 * (cdx * cdxtail + cdy * cdytail) * (adx * bdy - ady * bdx));
    if det >= errbound || -det >= errbound {
        return det;
    }

    incircle_exact(pa, pb, pc, pd)
}

/// Fully exact incircle evaluation via expansion `Vec` arithmetic.
///
/// Computes the 3×3 determinant
/// `| adx ady adx²+ady² ; bdx bdy bdx²+bdy² ; cdx cdy cdx²+cdy² |`
/// where each difference is carried as an exact 2-component expansion, so the
/// result sign is exact for all finite inputs. Only invoked on
/// (near-)degenerate configurations.
fn incircle_exact(pa: Point, pb: Point, pc: Point, pd: Point) -> f64 {
    #[inline]
    fn diff2(a: f64, b: f64) -> [f64; 2] {
        let (x, y) = two_diff(a, b);
        [y, x]
    }

    let adx = diff2(pa.x, pd.x);
    let ady = diff2(pa.y, pd.y);
    let bdx = diff2(pb.x, pd.x);
    let bdy = diff2(pb.y, pd.y);
    let cdx = diff2(pc.x, pd.x);
    let cdy = diff2(pc.y, pd.y);

    let lift = |dx: &[f64], dy: &[f64]| -> Vec<f64> {
        expansion_sum(&expansion_product(dx, dx), &expansion_product(dy, dy))
    };
    let alift = lift(&adx, &ady);
    let blift = lift(&bdx, &bdy);
    let clift = lift(&cdx, &cdy);

    // Minor determinants: bc = bdx*cdy - cdx*bdy, etc.
    let bc = expansion_diff(
        &expansion_product(&bdx, &cdy),
        &expansion_product(&cdx, &bdy),
    );
    let ca = expansion_diff(
        &expansion_product(&cdx, &ady),
        &expansion_product(&adx, &cdy),
    );
    let ab = expansion_diff(
        &expansion_product(&adx, &bdy),
        &expansion_product(&bdx, &ady),
    );

    let det = expansion_sum(
        &expansion_sum(
            &expansion_product(&alift, &bc),
            &expansion_product(&blift, &ca),
        ),
        &expansion_product(&clift, &ab),
    );
    expansion_sign(&det)
}

/// `true` when `pd` is strictly inside the circumcircle of the CCW triangle
/// `(pa, pb, pc)`.
#[inline]
pub fn in_circle(pa: Point, pb: Point, pc: Point, pd: Point) -> bool {
    incircle(pa, pb, pc, pd) > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// Three-way sign (f64::signum returns ±1 for ±0, which is wrong here).
    fn sgn(x: f64) -> i32 {
        if x > 0.0 {
            1
        } else if x < 0.0 {
            -1
        } else {
            0
        }
    }

    fn sgn_i(x: i128) -> i32 {
        x.signum() as i32
    }

    // Exact i128 oracle for integer-coordinate points.
    fn orient2d_i128(pa: Point, pb: Point, pc: Point) -> i128 {
        let (ax, ay) = (pa.x as i128, pa.y as i128);
        let (bx, by) = (pb.x as i128, pb.y as i128);
        let (cx, cy) = (pc.x as i128, pc.y as i128);
        (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    }

    fn incircle_i128(pa: Point, pb: Point, pc: Point, pd: Point) -> i128 {
        let d = |p: Point| (p.x as i128 - pd.x as i128, p.y as i128 - pd.y as i128);
        let (adx, ady) = d(pa);
        let (bdx, bdy) = d(pb);
        let (cdx, cdy) = d(pc);
        let alift = adx * adx + ady * ady;
        let blift = bdx * bdx + bdy * bdy;
        let clift = cdx * cdx + cdy * cdy;
        alift * (bdx * cdy - cdx * bdy)
            + blift * (cdx * ady - adx * cdy)
            + clift * (adx * bdy - bdx * ady)
    }

    #[test]
    fn orient2d_basic_signs() {
        assert!(orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)) > 0.0);
        assert!(orient2d(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)) < 0.0);
        assert_eq!(orient2d(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)), 0.0);
    }

    #[test]
    fn orient2d_exact_collinear_detection() {
        // Points on the line y = x with coordinates that stress rounding.
        let a = p(0.1, 0.1);
        let b = p(0.2, 0.2);
        // 0.3 is not representable: (0.3, 0.3) is *not quite* on the fl line,
        // yet a, b and the point must still be classified consistently.
        let c = p(0.3, 0.3);
        let d1 = orient2d(a, b, c);
        let d2 = orient2d(b, c, a);
        let d3 = orient2d(c, a, b);
        assert_eq!(sgn(d1), sgn(d2));
        assert_eq!(sgn(d2), sgn(d3));
        // Swapping two arguments must flip the sign exactly.
        assert_eq!(sgn(orient2d(a, c, b)), -sgn(d1));
    }

    #[test]
    fn orient2d_near_degenerate_grid() {
        // Shewchuk's classic stress: tiny perturbations off a diagonal.
        let base = p(0.5, 0.5);
        for i in 0..64 {
            for j in 0..64 {
                let pa = p(
                    0.5 + (i as f64) * f64::EPSILON,
                    0.5 + (j as f64) * f64::EPSILON,
                );
                let pb = p(12.0, 12.0);
                let pc = p(24.0, 24.0);
                let det = orient2d(pa, pb, pc);
                // Compare against exact evaluation through the expansion path:
                // scale so coordinates become exact integers (multiples of eps).
                let s = 1.0 / f64::EPSILON;
                let ia = p((pa.x - base.x) * s, (pa.y - base.y) * s);
                // pb - base = 11.5, pc - base = 23.5; scale by 2 for integers.
                let exact = {
                    let a2 = p(ia.x * 2.0, ia.y * 2.0);
                    let b2 = p(11.5 * s * 2.0, 11.5 * s * 2.0);
                    let c2 = p(23.5 * s * 2.0, 23.5 * s * 2.0);
                    orient2d_i128(a2, b2, c2)
                };
                assert_eq!(sgn(det), sgn_i(exact), "mismatch at i={i} j={j}");
            }
        }
    }

    #[test]
    fn incircle_basic_signs() {
        // Unit circle through (1,0), (0,1), (-1,0); origin is inside.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        assert!(incircle(a, b, c, p(0.0, 0.0)) > 0.0);
        assert!(incircle(a, b, c, p(2.0, 0.0)) < 0.0);
        // (0,-1) is exactly on the circle.
        assert_eq!(incircle(a, b, c, p(0.0, -1.0)), 0.0);
    }

    #[test]
    fn incircle_orientation_flip() {
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        let inside = p(0.1, 0.1);
        assert!(incircle(a, b, c, inside) > 0.0); // CCW triangle
        assert!(incircle(a, c, b, inside) < 0.0); // CW triangle flips sign
    }

    #[test]
    fn incircle_cocircular_grid() {
        // The four corners of a unit square are cocircular: every orientation
        // of three corners against the fourth must return exactly 0.
        let q = [p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)];
        assert_eq!(incircle(q[0], q[1], q[2], q[3]), 0.0);
        assert_eq!(incircle(q[1], q[2], q[3], q[0]), 0.0);
        // Tiny inward perturbation must be detected as inside.
        let eps = f64::EPSILON;
        let inside = p(eps, eps); // nudged toward the centre from (0, 0)... on circle?
                                  // (eps, eps) vs circle centred (0.5, 0.5) radius sqrt(0.5):
                                  // dist² = 2*(0.5-eps)² < 0.5, so strictly inside.
        assert!(incircle(q[0], q[1], q[2], inside) > 0.0);
    }

    #[test]
    fn incircle_against_i128_oracle_small_grid() {
        // Exhaustive-ish sweep over a small integer grid.
        let coords: Vec<Point> = (0..4)
            .flat_map(|x| (0..4).map(move |y| p(x as f64, y as f64)))
            .collect();
        let mut checked = 0u32;
        for (i, &a) in coords.iter().enumerate() {
            for (j, &b) in coords.iter().enumerate() {
                if j == i {
                    continue;
                }
                for (k, &c) in coords.iter().enumerate() {
                    if k == i || k == j {
                        continue;
                    }
                    if orient2d_i128(a, b, c) <= 0 {
                        continue; // incircle convention needs CCW triangles
                    }
                    for &d in coords.iter().step_by(3) {
                        let fast = incircle(a, b, c, d);
                        let exact = incircle_i128(a, b, c, d);
                        assert_eq!(sgn(fast), sgn_i(exact), "a={a} b={b} c={c} d={d}");
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 1000);
    }

    #[test]
    fn orient2d_against_i128_oracle_small_grid() {
        let coords: Vec<Point> = (-3..3)
            .flat_map(|x| (-3..3).map(move |y| p(x as f64, y as f64)))
            .collect();
        for &a in &coords {
            for &b in &coords {
                for &c in coords.iter().step_by(5) {
                    let fast = orient2d(a, b, c);
                    let exact = orient2d_i128(a, b, c);
                    assert_eq!(sgn(fast), sgn_i(exact));
                }
            }
        }
    }

    #[test]
    fn orientation_enum() {
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)),
            Orientation::Ccw
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)),
            Orientation::Cw
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn incircle_exact_fallback_direct() {
        // Force the exact path with a deliberately brutal cocircular case
        // where all fast paths are inconclusive: four points on a circle with
        // irrational-ish coordinates scaled to kill the filters.
        let a = p(1e-30 + 1.0, 0.0);
        let b = p(0.0, 1.0 + 1e-30);
        let c = p(-1.0, 0.0);
        let d = p(0.0, -1.0);
        let sign = incircle(a, b, c, d);
        // Exact evaluation must be deterministic and finite.
        assert!(sign.is_finite());
        // Sanity: perturbing d inward flips to strictly positive.
        assert!(incircle(a, b, c, p(0.0, -0.5)) > 0.0);
    }
}
