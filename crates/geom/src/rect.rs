//! Axis-aligned rectangles (bounding boxes).

use crate::point::Point;

/// An axis-aligned rectangle, closed on all sides.
///
/// `Rect` doubles as a *bounding box accumulator*: [`Rect::EMPTY`] is an
/// inverted rectangle that behaves as the identity under [`Rect::union`] and
/// [`Rect::include`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Corner with the smallest coordinates.
    pub min: Point,
    /// Corner with the largest coordinates.
    pub max: Point,
}

impl Rect {
    /// The empty rectangle (identity for `union`; contains nothing).
    pub const EMPTY: Rect = Rect {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates a rectangle from two opposite corners, in any order.
    #[inline]
    pub fn new(a: Point, b: Point) -> Rect {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates the degenerate rectangle containing exactly `p`.
    #[inline]
    pub fn from_point(p: Point) -> Rect {
        Rect { min: p, max: p }
    }

    /// Creates a rectangle centred on `c` with the given width and height.
    #[inline]
    pub fn from_center(c: Point, width: f64, height: f64) -> Rect {
        let half = Point::new(width / 2.0, height / 2.0);
        Rect {
            min: c - half,
            max: c + half,
        }
    }

    /// The tightest rectangle containing every point of the iterator
    /// ([`Rect::EMPTY`] for an empty iterator).
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Rect {
        let mut r = Rect::EMPTY;
        for p in points {
            r.include(p);
        }
        r
    }

    /// `true` for rectangles that contain nothing (e.g. [`Rect::EMPTY`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width (`0` when empty).
    #[inline]
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max.x - self.min.x
        }
    }

    /// Height (`0` when empty).
    #[inline]
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max.y - self.min.y
        }
    }

    /// Area (`0` when empty or degenerate).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Perimeter (`0` when empty). Used by R-tree split heuristics.
    #[inline]
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Centre point. Meaningless for empty rectangles.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` when `other` lies entirely inside `self` (boundaries allowed).
    /// Every rectangle contains the empty rectangle.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        !self.is_empty()
            && self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// `true` when the two *closed* rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The overlapping region, or `None` when disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// Smallest rectangle containing both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the rectangle in place to include `p`.
    #[inline]
    pub fn include(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// The rectangle expanded by `margin` on every side.
    #[inline]
    pub fn expand(&self, margin: f64) -> Rect {
        let d = Point::new(margin, margin);
        Rect {
            min: self.min - d,
            max: self.max + d,
        }
    }

    /// Squared distance from `p` to the closest point of the rectangle
    /// (`0` when `p` is inside). Drives best-first nearest-neighbour search.
    #[inline]
    pub fn min_dist_sq(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// The increase in area needed for this rectangle to cover `other`.
    /// Guttman's `ChooseLeaf` criterion.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// The four corners in counter-clockwise order starting at `min`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn new_normalizes_corners() {
        let a = Rect::new(Point::new(2.0, 3.0), Point::new(0.0, 1.0));
        assert_eq!(a.min, Point::new(0.0, 1.0));
        assert_eq!(a.max, Point::new(2.0, 3.0));
    }

    #[test]
    fn empty_behaviour() {
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert_eq!(Rect::EMPTY.width(), 0.0);
        assert!(!Rect::EMPTY.contains_point(Point::ORIGIN));
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(Rect::EMPTY.union(&a), a);
        assert!(a.contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn from_points_builds_mbr() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let b = Rect::from_points(pts);
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(4.0, 5.0));
        assert!(Rect::from_points(std::iter::empty()).is_empty());
    }

    #[test]
    fn geometry_measures() {
        let a = r(0.0, 0.0, 4.0, 3.0);
        assert_eq!(a.width(), 4.0);
        assert_eq!(a.height(), 3.0);
        assert_eq!(a.area(), 12.0);
        assert_eq!(a.perimeter(), 14.0);
        assert_eq!(a.center(), Point::new(2.0, 1.5));
    }

    #[test]
    fn containment_is_closed() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert!(a.contains_point(Point::new(0.0, 0.0)));
        assert!(a.contains_point(Point::new(1.0, 1.0)));
        assert!(a.contains_point(Point::new(0.5, 1.0)));
        assert!(!a.contains_point(Point::new(1.0 + 1e-12, 0.5)));
    }

    #[test]
    fn rect_containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        assert!(outer.contains_rect(&r(1.0, 1.0, 9.0, 9.0)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&r(5.0, 5.0, 11.0, 6.0)));
    }

    #[test]
    fn intersection_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        // Touching edges count as intersecting (closed semantics).
        let c = r(2.0, 0.0, 4.0, 2.0);
        assert!(a.intersects(&c));
        assert_eq!(a.intersection(&c).unwrap().area(), 0.0);
        let d = r(5.0, 5.0, 6.0, 6.0);
        assert!(!a.intersects(&d));
        assert_eq!(a.intersection(&d), None);
    }

    #[test]
    fn union_and_include() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        assert_eq!(a.union(&b), r(0.0, -1.0, 3.0, 1.0));
        let mut acc = a;
        acc.include(Point::new(-1.0, 4.0));
        assert_eq!(acc, r(-1.0, 0.0, 1.0, 4.0));
    }

    #[test]
    fn min_dist_sq_quadrants() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_dist_sq(Point::new(1.0, 1.0)), 0.0); // inside
        assert_eq!(a.min_dist_sq(Point::new(3.0, 1.0)), 1.0); // right
        assert_eq!(a.min_dist_sq(Point::new(1.0, -2.0)), 4.0); // below
        assert_eq!(a.min_dist_sq(Point::new(5.0, 6.0)), 9.0 + 16.0); // corner
    }

    #[test]
    fn enlargement_measures_growth() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.enlargement(&r(0.5, 0.5, 1.0, 1.0)), 0.0);
        assert_eq!(a.enlargement(&r(0.0, 0.0, 4.0, 2.0)), 4.0);
    }

    #[test]
    fn corners_ccw() {
        let a = r(0.0, 0.0, 2.0, 1.0);
        let c = a.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(2.0, 0.0));
        assert_eq!(c[2], Point::new(2.0, 1.0));
        assert_eq!(c[3], Point::new(0.0, 1.0));
    }

    #[test]
    fn expand_margins() {
        let a = r(0.0, 0.0, 1.0, 1.0).expand(0.5);
        assert_eq!(a, r(-0.5, -0.5, 1.5, 1.5));
    }
}
