//! Regions: polygons with holes.
//!
//! The paper evaluates on simple polygons, but real GIS query areas
//! routinely carry holes (a district minus its lakes). The area-query
//! algorithms extend to regions directly: containment is
//! outer-minus-holes, and boundary tests range over every ring. The
//! region's interior stays **connected** as long as no hole touches the
//! outer ring or another hole, so the connectivity lemma behind the
//! Voronoi method's BFS continues to hold.

use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;
use crate::segment::Segment;
use crate::GeomError;

/// A polygon with zero or more holes.
///
/// Containment semantics: a point is inside the region when it is inside
/// the closed outer ring and not strictly inside any hole — points **on a
/// hole's boundary belong to the region** (the region is a closed set).
#[derive(Clone, Debug)]
pub struct Region {
    outer: Polygon,
    holes: Vec<Polygon>,
}

impl Region {
    /// Creates a region from an outer ring and holes.
    ///
    /// Each ring is validated as a polygon. Holes are expected to lie
    /// inside the outer ring and be pairwise disjoint; this is the
    /// caller's contract (checking it exactly is `O(n²)` — use
    /// [`Region::validate_nesting`] when unsure).
    pub fn new(outer: Polygon, holes: Vec<Polygon>) -> Region {
        Region { outer, holes }
    }

    /// Creates a region from vertex rings, validating each ring.
    pub fn from_rings(outer: Vec<Point>, holes: Vec<Vec<Point>>) -> Result<Region, GeomError> {
        let outer = Polygon::new(outer)?;
        let holes = holes
            .into_iter()
            .map(Polygon::new)
            .collect::<Result<_, _>>()?;
        Ok(Region { outer, holes })
    }

    /// A region without holes.
    pub fn from_polygon(outer: Polygon) -> Region {
        Region {
            outer,
            holes: Vec::new(),
        }
    }

    /// The outer ring.
    pub fn outer(&self) -> &Polygon {
        &self.outer
    }

    /// The hole rings.
    pub fn holes(&self) -> &[Polygon] {
        &self.holes
    }

    /// Checks the nesting contract: every hole inside the outer ring,
    /// holes pairwise disjoint. `O(total² )`; intended for input
    /// validation at system boundaries.
    pub fn validate_nesting(&self) -> Result<(), String> {
        for (i, h) in self.holes.iter().enumerate() {
            if !h.vertices().iter().all(|&v| self.outer.contains(v))
                || h.edges()
                    .any(|e| self.outer.edges().any(|o| e.intersects_properly(&o)))
            {
                return Err(format!("hole {i} is not inside the outer ring"));
            }
            for (j, g) in self.holes.iter().enumerate().skip(i + 1) {
                if h.intersects_polygon(g) {
                    return Err(format!("holes {i} and {j} overlap"));
                }
            }
        }
        Ok(())
    }

    /// MBR of the region (the outer ring's MBR).
    pub fn mbr(&self) -> Rect {
        self.outer.mbr()
    }

    /// Area of the region: outer minus holes.
    pub fn area(&self) -> f64 {
        self.outer.area() - self.holes.iter().map(Polygon::area).sum::<f64>()
    }

    /// `true` when `p` is in the closed region: inside (or on) the outer
    /// ring and not strictly inside any hole.
    pub fn contains(&self, p: Point) -> bool {
        self.outer.contains(p) && !self.holes.iter().any(|h| h.contains_strict(p))
    }

    /// `true` when the segment crosses or touches any ring of the region's
    /// boundary.
    pub fn boundary_intersects_segment(&self, s: &Segment) -> bool {
        self.outer.boundary_intersects_segment(s)
            || self.holes.iter().any(|h| h.boundary_intersects_segment(s))
    }

    /// `true` when the segment shares at least one point with the closed
    /// region.
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        self.contains(s.a) || self.contains(s.b) || self.boundary_intersects_segment(s)
    }

    /// `true` when the closed region and `poly`'s closed area share a
    /// point.
    pub fn intersects_polygon(&self, poly: &Polygon) -> bool {
        if !self.outer.intersects_polygon(poly) {
            return false;
        }
        // They overlap through the outer ring; the overlap misses the
        // region only if poly sits strictly inside one hole.
        !self.holes.iter().any(|h| {
            poly.vertices().iter().all(|&v| h.contains_strict(v))
                && !poly.edges().any(|e| h.boundary_intersects_segment(&e))
        })
    }

    /// A point guaranteed to lie inside the region.
    ///
    /// Probes the outer ring's interior point first, then deterministic
    /// points along outer-ring diagonals until one avoids all holes.
    ///
    /// # Panics
    ///
    /// Panics when the region has effectively no interior (holes cover the
    /// outer ring), which violates the construction contract.
    pub fn interior_point(&self) -> Point {
        let candidate = self.outer.interior_point();
        if self.contains_strictly_between_rings(candidate) {
            return candidate;
        }
        // The candidate fell inside a hole. Probe along the segments from
        // it towards each outer vertex and edge midpoint, at parameters
        // biased to both ends (a centred hole is escaped near the outer
        // ring; a rim hole near the candidate).
        let mut targets: Vec<Point> = self.outer.vertices().to_vec();
        targets.extend(self.outer.edges().map(|e| e.midpoint()));
        for depth in 1..12 {
            let t0 = 1.0 / f64::from(1 << depth);
            for &t in &[t0, 1.0 - t0] {
                for &v in &targets {
                    let probe = candidate.lerp(v, t);
                    if self.contains_strictly_between_rings(probe) {
                        return probe;
                    }
                }
            }
        }
        // vaq-lint: allow(panic-hygiene) -- documented `# Panics` contract:
        // a region whose holes cover its outer ring violates construction
        // invariants, and the QueryArea trait surface returns Point.
        panic!("region has no discoverable interior (holes cover the outer ring?)");
    }

    /// Interior test that also rejects hole boundaries (a seed point on a
    /// hole edge is legal but fragile; prefer strictly interior).
    fn contains_strictly_between_rings(&self, p: Point) -> bool {
        self.outer.contains_strict(p) && !self.holes.iter().any(|h| h.contains(p))
    }
}

impl From<Polygon> for Region {
    fn from(outer: Polygon) -> Region {
        Region::from_polygon(outer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(vec![
            p(cx - half, cy - half),
            p(cx + half, cy - half),
            p(cx + half, cy + half),
            p(cx - half, cy + half),
        ])
        .unwrap()
    }

    fn donut() -> Region {
        Region::new(square(0.5, 0.5, 0.4), vec![square(0.5, 0.5, 0.2)])
    }

    #[test]
    fn containment_excludes_hole_interiors() {
        let r = donut();
        assert!(r.contains(p(0.15, 0.5)), "in the ring");
        assert!(!r.contains(p(0.5, 0.5)), "hole centre excluded");
        assert!(!r.contains(p(0.95, 0.95)), "outside the outer ring");
        // Closed semantics: both boundaries belong to the region.
        assert!(r.contains(p(0.1, 0.5)), "outer boundary");
        assert!(r.contains(p(0.3, 0.5)), "hole boundary");
    }

    #[test]
    fn area_subtracts_holes() {
        let r = donut();
        assert!((r.area() - (0.64 - 0.16)).abs() < 1e-12);
        assert_eq!(r.mbr(), square(0.5, 0.5, 0.4).mbr());
    }

    #[test]
    fn segment_tests_see_hole_boundaries() {
        let r = donut();
        // A segment inside the hole, not touching its boundary: misses.
        let inside_hole = Segment::new(p(0.45, 0.5), p(0.55, 0.5));
        assert!(!r.intersects_segment(&inside_hole));
        // A segment crossing from the hole into the ring: hits.
        let crossing = Segment::new(p(0.5, 0.5), p(0.15, 0.5));
        assert!(r.intersects_segment(&crossing));
        assert!(r.boundary_intersects_segment(&crossing));
        // A segment entirely in the ring: hits (endpoint containment).
        let ring_seg = Segment::new(p(0.15, 0.45), p(0.15, 0.55));
        assert!(r.intersects_segment(&ring_seg));
        assert!(!r.boundary_intersects_segment(&ring_seg));
    }

    #[test]
    fn polygon_intersection_respects_holes() {
        let r = donut();
        // A polygon strictly inside the hole does not meet the region.
        assert!(!r.intersects_polygon(&square(0.5, 0.5, 0.05)));
        // One that pokes out of the hole does.
        assert!(r.intersects_polygon(&square(0.5, 0.5, 0.25)));
        // One in the ring does.
        assert!(r.intersects_polygon(&square(0.15, 0.5, 0.04)));
        // One entirely outside does not.
        assert!(!r.intersects_polygon(&square(2.0, 2.0, 0.1)));
    }

    #[test]
    fn interior_point_avoids_holes() {
        let r = donut();
        let ip = r.interior_point();
        assert!(r.contains(ip));
        assert!(
            !square(0.5, 0.5, 0.2).contains(ip),
            "must not be in the hole"
        );
        // A region without holes just returns the polygon's interior point.
        let plain = Region::from_polygon(square(0.2, 0.2, 0.1));
        assert!(plain.contains(plain.interior_point()));
    }

    #[test]
    fn nesting_validation() {
        assert!(donut().validate_nesting().is_ok());
        // Hole outside the outer ring.
        let bad = Region::new(square(0.5, 0.5, 0.2), vec![square(2.0, 2.0, 0.1)]);
        assert!(bad.validate_nesting().is_err());
        // Overlapping holes.
        let bad = Region::new(
            square(0.5, 0.5, 0.4),
            vec![square(0.45, 0.5, 0.1), square(0.55, 0.5, 0.1)],
        );
        assert!(bad.validate_nesting().is_err());
    }

    #[test]
    fn multiple_holes() {
        let r = Region::new(
            square(0.5, 0.5, 0.45),
            vec![square(0.3, 0.3, 0.08), square(0.7, 0.7, 0.08)],
        );
        assert!(r.validate_nesting().is_ok());
        assert!(!r.contains(p(0.3, 0.3)));
        assert!(!r.contains(p(0.7, 0.7)));
        assert!(r.contains(p(0.3, 0.7)));
        assert!((r.area() - (0.81 - 2.0 * 0.0256)).abs() < 1e-9);
    }
}
