//! Prepared (query-compiled) areas: build-once indexes over a query
//! polygon that turn the per-call geometric primitives from `O(k)` scans
//! over all `k` edges into `O(log k)`-ish searches.
//!
//! Both area-query methods of the paper spend their inner loop on two
//! primitives against the query area `A`:
//!
//! * `Contains(A, p)` — Algorithm 1 line 9 and the traditional refine
//!   step: one call per candidate;
//! * `Intersects(p–pn, A)` — Algorithm 1 line 21 (the segment expansion
//!   test): one call per frontier edge.
//!
//! A raw [`Polygon`] answers each with a scan over every edge. A
//! [`PreparedPolygon`] preprocesses the ring once into
//!
//! 1. a **slab decomposition** over the sorted distinct vertex
//!    y-coordinates, with per-slab lists of the edges spanning the slab.
//!    Within an open slab of a simple polygon the spanning edges are
//!    non-crossing, so they admit a left-to-right order (established and
//!    *proven* per dense slab at build time, with a filtered exact
//!    comparator); a query then binary-searches by [`orient2d`], giving
//!    true `O(log k)` worst-case point-in-polygon. Small slabs (the
//!    common case for star-shaped query areas), slabs where no order
//!    exists (self-crossing rings) and slab-boundary probes keep the
//!    `O(s)` candidate scan — the boundary fallback routed through the
//!    batched orientation filter;
//! 2. an **edge-bucket grid** over the MBR, so a segment test only
//!    examines edges registered in the grid cells the segment's bounding
//!    box overlaps;
//! 3. a **cached MBR and interior point** (the raw path recomputes the
//!    interior point `O(k)` per query seed).
//!
//! ## Exactness contract
//!
//! Every prepared operation returns **bit-identical results** to the raw
//! [`Polygon`]/[`Region`] implementation, for *any* ring — including
//! non-simple and degenerate ones. The indexes only prune which edges are
//! examined; every surviving edge goes through the *same* exact
//! [`orient2d`]-based predicate as the raw code, and every pruned edge is
//! pruned by a proof in exact arithmetic (coordinate comparisons only):
//!
//! * an edge whose closed y-range excludes `p.y` neither straddles the
//!   horizontal ray through `p` nor can contain `p` on its boundary;
//! * a straddling edge lying entirely strictly right of `p`
//!   (`min_x > p.x`) crosses the ray strictly right of `p` and therefore
//!   toggles the crossing parity — for either edge direction — without
//!   needing the orientation predicate;
//! * a straddling edge entirely strictly left of `p` (`max_x < p.x`)
//!   crosses strictly left and never toggles;
//! * a polygon edge whose bounding box misses a query segment's bounding
//!   box fails the raw [`Segment::intersects`] fast-reject, so grid cells
//!   outside the segment's bounding box cannot hide a hit.
//!
//! The differential property suite in `tests/prepared_differential.rs`
//! enforces the contract on random, degenerate and adversarial inputs.

use crate::expansion::{
    expansion_diff, expansion_product, expansion_sign, expansion_sum, two_diff,
};
use crate::point::Point;
use crate::polygon::{CrossingScan, Polygon};
use crate::predicates::{orient2d, orient2d_filter};
use crate::rect::Rect;
use crate::region::Region;
use crate::segment::Segment;
use std::cmp::Ordering;
use std::sync::OnceLock;

/// One preprocessed boundary edge: endpoints in ring order plus the exact
/// coordinate extremes used by the pruning proofs.
#[derive(Clone, Copy, Debug)]
struct PreparedEdge {
    a: Point,
    b: Point,
    min_x: f64,
    max_x: f64,
    min_y: f64,
    max_y: f64,
}

impl PreparedEdge {
    fn new(a: Point, b: Point) -> PreparedEdge {
        PreparedEdge {
            a,
            b,
            min_x: a.x.min(b.x),
            max_x: a.x.max(b.x),
            min_y: a.y.min(b.y),
            max_y: a.y.max(b.y),
        }
    }

    #[inline]
    fn segment(&self) -> Segment {
        Segment::new(self.a, self.b)
    }

    /// Closed bounding box contains `p` (identical to
    /// `Rect::new(a, b).contains_point(p)` in the raw code).
    #[inline]
    fn bbox_contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// The raw crossing-number step for this edge, pruned-edge decisions
    /// replaced by their exact-comparison proofs. Returns `true` when `p`
    /// lies exactly on the edge (the raw code's early boundary return);
    /// otherwise toggles `inside` exactly when the raw code would.
    #[inline]
    fn process(&self, p: Point, inside: &mut bool) -> bool {
        if self.bbox_contains(p) {
            // Same order as the raw code: boundary test first.
            let o = orient2d(self.a, self.b, p);
            if o == 0.0 {
                return true;
            }
            if (self.a.y > p.y) != (self.b.y > p.y) && (o > 0.0) == (self.b.y > self.a.y) {
                *inside = !*inside;
            }
        } else if (self.a.y > p.y) != (self.b.y > p.y) {
            // Straddling edge with p outside its x-extent: since the edge
            // straddles, its y-range contains p.y, so the bbox miss is on
            // x. The crossing with the horizontal line at p.y lies inside
            // [min_x, max_x]; strictly right of p it toggles (for either
            // direction), strictly left it never does.
            if self.min_x > p.x {
                *inside = !*inside;
            }
        }
        false
    }
}

/// A floating-point value with a rigorous running **absolute** error
/// bound, for the crossing comparator's filter stage. Inputs are exact;
/// each operation folds its own rounding (bounded by `|result| · ε`,
/// with `ε = f64::EPSILON` — twice the unit roundoff, so the slack also
/// swallows the rounding of the bound arithmetic itself) plus a tiny
/// absolute floor that keeps subnormal results honestly covered.
#[derive(Clone, Copy)]
struct Approx {
    v: f64,
    e: f64,
}

impl Approx {
    #[inline]
    fn exact(v: f64) -> Approx {
        Approx { v, e: 0.0 }
    }

    #[inline]
    fn add(self, o: Approx) -> Approx {
        let v = self.v + o.v;
        Approx {
            v,
            e: self.e + o.e + v.abs() * f64::EPSILON + f64::MIN_POSITIVE,
        }
    }

    #[inline]
    fn sub(self, o: Approx) -> Approx {
        let v = self.v - o.v;
        Approx {
            v,
            e: self.e + o.e + v.abs() * f64::EPSILON + f64::MIN_POSITIVE,
        }
    }

    #[inline]
    fn mul(self, o: Approx) -> Approx {
        let v = self.v * o.v;
        Approx {
            v,
            e: self.v.abs() * o.e
                + o.v.abs() * self.e
                + self.e * o.e
                + v.abs() * f64::EPSILON
                + f64::MIN_POSITIVE,
        }
    }
}

/// Exact sign of `x_e(y) − x_f(y)`, where `x_g(y)` is the crossing of
/// edge `g`'s supporting line with the horizontal line at height `y`.
/// Both edges must be non-horizontal (every slab-spanning edge is).
///
/// With `d_g = g.b.y − g.a.y` and `N_g(y) = g.a.x·(g.b.y − y) +
/// g.b.x·(y − g.a.y)`, the crossing is `x_g(y) = N_g(y) / d_g`, so
/// `sign(x_e − x_f) = sign(N_e·d_f − N_f·d_e) · sign(d_e) · sign(d_f)`.
/// Three stages, build-time only: a bounding-box shortcut, a
/// floating-point evaluation with a running forward error bound
/// ([`Approx`] — decides every generic case), and exact expansion
/// arithmetic for the (near-)tied remainder, so the sign is exact for
/// all finite inputs.
fn cmp_crossings_at(e: &PreparedEdge, f: &PreparedEdge, y: f64) -> Ordering {
    // Bounding-box shortcut: the crossing of a spanning edge lies on the
    // edge segment, hence inside its x-extent.
    if e.max_x < f.min_x {
        return Ordering::Less;
    }
    if f.max_x < e.min_x {
        return Ordering::Greater;
    }
    let flip = (e.b.y < e.a.y) != (f.b.y < f.a.y);
    let classify = |s: f64| -> Ordering {
        let s = if flip { -s } else { s };
        // vaq-lint: allow(float-exactness) -- callers pass either a
        // filter-certified value (|t.v| > t.e) or the exact expansion
        // stage's result, so the sign of `s` is exact; negating an exact
        // sign stays exact.
        if s < 0.0 {
            Ordering::Less
        // vaq-lint: allow(float-exactness) -- same certified-exact sign
        // as the branch above.
        } else if s > 0.0 {
            Ordering::Greater
        } else {
            Ordering::Equal
        }
    };

    // Filtered floating-point stage.
    let num = |g: &PreparedEdge| -> Approx {
        let t = Approx::exact(g.b.y).sub(Approx::exact(y));
        let s = Approx::exact(y).sub(Approx::exact(g.a.y));
        Approx::exact(g.a.x).mul(t).add(Approx::exact(g.b.x).mul(s))
    };
    let de = Approx::exact(e.b.y).sub(Approx::exact(e.a.y));
    let df = Approx::exact(f.b.y).sub(Approx::exact(f.a.y));
    let t = num(e).mul(df).sub(num(f).mul(de));
    if t.v.abs() > t.e {
        return classify(t.v);
    }

    // Exact expansion stage (rare: ties and near-ties).
    fn numerator(g: &PreparedEdge, y: f64) -> Vec<f64> {
        let (t1, t0) = two_diff(g.b.y, y);
        let (s1, s0) = two_diff(y, g.a.y);
        expansion_sum(
            &expansion_product(&[t0, t1], &[g.a.x]),
            &expansion_product(&[s0, s1], &[g.b.x]),
        )
    }
    fn dy(g: &PreparedEdge) -> [f64; 2] {
        let (d1, d0) = two_diff(g.b.y, g.a.y);
        [d0, d1]
    }
    let t = expansion_diff(
        &expansion_product(&numerator(e, y), &dy(f)),
        &expansion_product(&numerator(f, y), &dy(e)),
    );
    classify(expansion_sign(&t))
}

/// Minimum slab occupancy before the left-to-right order is established
/// and containment binary-searches it. Below this, the `max_x`-sorted
/// prefix-skip scan is both cheaper to build (no order proof) and
/// cheaper to query (coordinate compares at ~2 ns beat `log s`
/// orientation predicates at ~20 ns until the scannable suffix is large);
/// the measured crossover on star-polygon workloads sits near this
/// occupancy (`reproduce predicates`: 1.6–1.8× for the search at ~200).
const ORDERED_SEARCH_MIN: usize = 64;

/// Spans at or below this size skip even the `max_x` prefix-skip binary
/// search — scanning a handful of edges outright is cheaper than
/// bisecting them.
const SMALL_SPAN_SCAN: usize = 16;

/// How one slab answers containment queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlabMode {
    /// `max_x`-sorted prefix-skip scan (small slabs — the order proof
    /// was not attempted because the scan is cheaper anyway).
    Scan,
    /// Left-to-right order proven across the whole closed slab: one
    /// binary search by `orient2d` answers the slab.
    Search,
    /// The order proof failed (self-crossing ring): `max_x`-sorted scan.
    Refused,
}

/// Slab decomposition for `O(log k)` point-in-polygon.
#[derive(Clone, Debug, Default)]
struct Slabs {
    /// Sorted distinct vertex y-coordinates (slab boundaries).
    ys: Vec<f64>,
    /// CSR offsets into `span_edges`, one slab per adjacent `ys` pair.
    span_off: Vec<u32>,
    /// Edges spanning each open slab. In a [`SlabMode::Search`] slab they
    /// are sorted left-to-right across the whole slab, so containment is
    /// a single binary search by `orient2d`; otherwise they are sorted
    /// by `max_x` ascending (so the scan can skip the strictly-left
    /// prefix with one binary search).
    span_edges: Vec<u32>,
    /// Per-slab query strategy (see [`SlabMode`]).
    mode: Vec<SlabMode>,
    /// CSR offsets into `at_edges`, one entry per value in `ys`.
    at_off: Vec<u32>,
    /// Edges whose closed y-range contains each boundary value (the
    /// fallback candidate list when `p.y` equals a vertex y).
    at_edges: Vec<u32>,
}

impl Slabs {
    fn build(edges: &[PreparedEdge]) -> Slabs {
        let mut ys: Vec<f64> = edges.iter().flat_map(|e| [e.a.y, e.b.y]).collect();
        ys.sort_by(f64::total_cmp);
        ys.dedup();
        let n_slabs = ys.len().saturating_sub(1);

        // Counting pass then fill pass (CSR construction).
        let mut span_count = vec![0u32; n_slabs];
        let mut at_count = vec![0u32; ys.len()];
        let mut edge_slab_range = Vec::with_capacity(edges.len());
        for e in edges {
            // Index of the first boundary >= min_y / max_y. Both are exact
            // members of `ys`.
            let lo = ys.partition_point(|&y| y < e.min_y);
            let hi = ys.partition_point(|&y| y < e.max_y);
            debug_assert!(ys[lo] == e.min_y && ys[hi] == e.max_y);
            edge_slab_range.push((lo, hi));
            // The edge spans every open slab between its y-extremes...
            for c in &mut span_count[lo..hi] {
                *c += 1;
            }
            // ...and is a candidate at every boundary value it touches.
            for c in &mut at_count[lo..=hi] {
                *c += 1;
            }
        }
        let mut span_off = vec![0u32; n_slabs + 1];
        for i in 0..n_slabs {
            span_off[i + 1] = span_off[i] + span_count[i];
        }
        let mut at_off = vec![0u32; ys.len() + 1];
        for i in 0..ys.len() {
            at_off[i + 1] = at_off[i] + at_count[i];
        }
        let mut span_edges = vec![0u32; span_off[n_slabs] as usize];
        let mut at_edges = vec![0u32; at_off[ys.len()] as usize];
        let mut span_cursor: Vec<u32> = span_off[..n_slabs].to_vec();
        let mut at_cursor: Vec<u32> = at_off[..ys.len()].to_vec();
        for (ei, &(lo, hi)) in edge_slab_range.iter().enumerate() {
            for s in lo..hi {
                span_edges[span_cursor[s] as usize] = ei as u32;
                span_cursor[s] += 1;
            }
            for yi in lo..=hi {
                at_edges[at_cursor[yi] as usize] = ei as u32;
                at_cursor[yi] += 1;
            }
        }
        // Order each slab's spanning edges. Small slabs keep the `max_x`
        // sort and the prefix-skip scan (cheaper on both sides of the
        // build/query trade). Dense slabs get the left-to-right order:
        // sorted by a cheap approximate key (the f64 crossing with the
        // slab's midline, ties by index), then *proven* pair by pair
        // with the exact crossing comparator at both boundaries — each
        // crossing is linear in y, so agreement at the endpoints extends
        // to the whole slab. Slabs where the proof fails (self-crossing
        // rings, or an approximate sort fooled by a sub-ulp tie) keep
        // the `max_x` order and the scan.
        let mut mode = vec![SlabMode::Scan; n_slabs];
        let mut keyed: Vec<(f64, u32)> = Vec::new();
        for s in 0..n_slabs {
            let range = span_off[s] as usize..span_off[s + 1] as usize;
            let (lo, hi) = (ys[s], ys[s + 1]);
            let span = &mut span_edges[range];
            if span.len() < ORDERED_SEARCH_MIN {
                span.sort_by(|&i, &j| edges[i as usize].max_x.total_cmp(&edges[j as usize].max_x));
                continue;
            }
            let ym = lo + 0.5 * (hi - lo);
            keyed.clear();
            keyed.extend(span.iter().map(|&i| {
                let e = &edges[i as usize];
                let key = e.a.x + (e.b.x - e.a.x) * ((ym - e.a.y) / (e.b.y - e.a.y));
                (key, i)
            }));
            keyed.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let verify = |keyed: &[(f64, u32)]| {
                keyed.windows(2).all(|w| {
                    // vaq-lint: allow(panic-hygiene) -- windows(2) yields
                    // exactly two elements per slice.
                    let (e, f) = (&edges[w[0].1 as usize], &edges[w[1].1 as usize]);
                    cmp_crossings_at(e, f, lo) != Ordering::Greater
                        && cmp_crossings_at(e, f, hi) != Ordering::Greater
                })
            };
            let mut ok = verify(&keyed);
            if !ok {
                // The cheap key can mis-sort nearly-horizontal edges
                // (their crossing divides by a tiny Δy). Retry with the
                // exact comparator: the key `(x(lo), x(hi), index)`
                // compares real values lexicographically, so it is a
                // genuine total order even for self-crossing rings, and
                // re-verification now fails only when no crossing-free
                // order exists at all.
                keyed.sort_by(|a, b| {
                    let (e, f) = (&edges[a.1 as usize], &edges[b.1 as usize]);
                    cmp_crossings_at(e, f, lo)
                        .then_with(|| cmp_crossings_at(e, f, hi))
                        .then(a.1.cmp(&b.1))
                });
                ok = verify(&keyed);
            }
            if ok {
                mode[s] = SlabMode::Search;
                for (slot, &(_, i)) in span.iter_mut().zip(&keyed) {
                    *slot = i;
                }
            } else {
                mode[s] = SlabMode::Refused;
                span.sort_by(|&i, &j| edges[i as usize].max_x.total_cmp(&edges[j as usize].max_x));
            }
        }
        Slabs {
            ys,
            span_off,
            span_edges,
            mode,
            at_off,
            at_edges,
        }
    }

    #[inline]
    fn span(&self, slab: usize) -> &[u32] {
        &self.span_edges[self.span_off[slab] as usize..self.span_off[slab + 1] as usize]
    }

    #[inline]
    fn at(&self, yi: usize) -> &[u32] {
        &self.at_edges[self.at_off[yi] as usize..self.at_off[yi + 1] as usize]
    }
}

/// Uniform edge-bucket grid for segment and boundary tests.
#[derive(Clone, Debug, Default)]
struct EdgeGrid {
    origin: Point,
    inv_cell_w: f64,
    inv_cell_h: f64,
    nx: u32,
    ny: u32,
    /// CSR offsets into `cell_edges`, row-major `ny × nx` cells.
    cell_off: Vec<u32>,
    cell_edges: Vec<u32>,
    /// Per-edge cell range `(cx0, cy0, cx1, cy1)` for the report-once
    /// trick during range scans.
    edge_cells: Vec<(u32, u32, u32, u32)>,
}

impl EdgeGrid {
    fn build(edges: &[PreparedEdge], mbr: &Rect) -> EdgeGrid {
        // ~1 edge per cell-row on average: an n×n grid with n ≈ √k.
        // vaq-lint: allow(float-exactness) -- grid sizing heuristic, not a
        // predicate: √k is clamped into 1..=256 so the casts cannot
        // truncate meaningfully, and any rounding only shifts cell sizes.
        let n = ((edges.len() as f64).sqrt().ceil() as u32).clamp(1, 256);
        let (nx, ny) = (n, n);
        let width = mbr.width();
        let height = mbr.height();
        // vaq-lint: allow(float-exactness) -- degenerate-MBR guard: a
        // zero-width extent maps every point to cell column 0, which is
        // the correct bucket; grid placement never decides geometry.
        let inv_cell_w = if width > 0.0 {
            f64::from(nx) / width
        } else {
            0.0
        };
        // vaq-lint: allow(float-exactness) -- same degenerate-MBR guard as
        // `inv_cell_w` above, for the y extent.
        let inv_cell_h = if height > 0.0 {
            f64::from(ny) / height
        } else {
            0.0
        };
        let mut grid = EdgeGrid {
            origin: mbr.min,
            inv_cell_w,
            inv_cell_h,
            nx,
            ny,
            cell_off: vec![0; (nx * ny + 1) as usize],
            cell_edges: Vec::new(),
            edge_cells: Vec::with_capacity(edges.len()),
        };
        let mut count = vec![0u32; (nx * ny) as usize];
        for e in edges {
            let (cx0, cy0) = grid.cell_of(e.min_x, e.min_y);
            let (cx1, cy1) = grid.cell_of(e.max_x, e.max_y);
            grid.edge_cells.push((cx0, cy0, cx1, cy1));
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    count[(cy * nx + cx) as usize] += 1;
                }
            }
        }
        for (i, &c) in count.iter().enumerate() {
            grid.cell_off[i + 1] = grid.cell_off[i] + c;
        }
        grid.cell_edges = vec![0; grid.cell_off[(nx * ny) as usize] as usize];
        let mut cursor: Vec<u32> = grid.cell_off[..(nx * ny) as usize].to_vec();
        for (ei, &(cx0, cy0, cx1, cy1)) in grid.edge_cells.iter().enumerate() {
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    let c = (cy * nx + cx) as usize;
                    grid.cell_edges[cursor[c] as usize] = ei as u32;
                    cursor[c] += 1;
                }
            }
        }
        grid
    }

    /// Grid cell of a coordinate, clamped into range (coordinates outside
    /// the MBR land in the nearest border cell, which is correct because
    /// callers intersect query ranges with the MBR first).
    #[inline]
    fn cell_of(&self, x: f64, y: f64) -> (u32, u32) {
        let cx = ((x - self.origin.x) * self.inv_cell_w).floor();
        let cy = ((y - self.origin.y) * self.inv_cell_h).floor();
        (
            // vaq-lint: allow(float-exactness) -- bucket assignment, not a
            // predicate: the floored value is clamped into 0..nx so the
            // cast is total, and a point landing one cell off only costs
            // a redundant edge test, never a wrong answer.
            (cx.max(0.0) as u32).min(self.nx - 1),
            // vaq-lint: allow(float-exactness) -- same clamped bucket
            // assignment as `cx` above.
            (cy.max(0.0) as u32).min(self.ny - 1),
        )
    }

    #[inline]
    fn cell(&self, cx: u32, cy: u32) -> &[u32] {
        let c = (cy * self.nx + cx) as usize;
        &self.cell_edges[self.cell_off[c] as usize..self.cell_off[c + 1] as usize]
    }

    /// Runs `visit` over every edge whose bounding box overlaps `range`,
    /// exactly once per edge (report-once trick: an edge is visited only
    /// in the first overlapping cell of the scan order). Stops early when
    /// `visit` returns `true`; returns whether it did.
    fn for_edges_in_range(&self, range: &Rect, mut visit: impl FnMut(u32) -> bool) -> bool {
        let (qx0, qy0) = self.cell_of(range.min.x, range.min.y);
        let (qx1, qy1) = self.cell_of(range.max.x, range.max.y);
        for cy in qy0..=qy1 {
            for cx in qx0..=qx1 {
                for &ei in self.cell(cx, cy) {
                    let (ex0, ey0, ..) = self.edge_cells[ei as usize];
                    // First visited cell for this edge within the range.
                    if cx == ex0.max(qx0) && cy == ey0.max(qy0) && visit(ei) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Filter-first edge-vs-segment test for the grid scan: after the same
/// bounding-box fast-reject the raw [`Segment::intersects`] starts with,
/// both endpoints of the candidate edge are classified against the query
/// segment's supporting line through the cheap orientation filter
/// ([`orient2d_filter`]). An edge certified strictly on one side of that
/// line shares no point with the segment and skips the four-predicate
/// exact test; every surviving edge runs the full exact
/// [`Segment::intersects`] — so the outcome is bit-identical to testing
/// the edge directly.
#[inline]
fn edge_intersects_filtered(e: &PreparedEdge, s: &Segment, sbox: &Rect) -> bool {
    // The raw test's bounding-box fast-reject, on the cached extremes.
    if e.min_x > sbox.max.x || e.max_x < sbox.min.x || e.min_y > sbox.max.y || e.max_y < sbox.min.y
    {
        return false;
    }
    let (da, da_ok) = orient2d_filter(s.a, s.b, e.a);
    // vaq-lint: allow(float-exactness) -- `da` is only compared under the
    // `da_ok` guard, which certifies the filtered sign is the exact sign.
    if da_ok && da != 0.0 {
        let (db, db_ok) = orient2d_filter(s.a, s.b, e.b);
        // vaq-lint: allow(float-exactness) -- both signs guarded by their
        // filter certificates (`da_ok` above, `db_ok` here).
        if db_ok && ((da > 0.0 && db > 0.0) || (da < 0.0 && db < 0.0)) {
            // Both endpoints certified strictly on one side of the
            // segment's supporting line: the edge cannot meet it.
            return false;
        }
    }
    e.segment().intersects(s)
}

/// A query polygon preprocessed for fast repeated containment and segment
/// tests. Build once per query area, reuse across every candidate
/// validation and expansion test of that query (and across a batch).
///
/// All operations return results **identical** to the equivalent raw
/// [`Polygon`] calls — see the module docs for the exactness contract.
#[derive(Clone, Debug)]
pub struct PreparedPolygon {
    poly: Polygon,
    edges: Vec<PreparedEdge>,
    slabs: Slabs,
    grid: EdgeGrid,
    interior: OnceLock<Point>,
}

impl PreparedPolygon {
    /// Preprocesses a polygon. `O(k log k)` time; `O(k)` space for the
    /// paper's star-shaped query areas (worst case `O(k²)` for rings
    /// where many long edges span many slabs).
    pub fn new(poly: Polygon) -> PreparedPolygon {
        let verts = poly.vertices();
        let n = verts.len();
        let edges: Vec<PreparedEdge> = (0..n)
            .map(|i| PreparedEdge::new(verts[i], verts[(i + 1) % n]))
            .collect();
        let slabs = Slabs::build(&edges);
        let grid = EdgeGrid::build(&edges, &poly.mbr());
        PreparedPolygon {
            poly,
            edges,
            slabs,
            grid,
            interior: OnceLock::new(),
        }
    }

    /// The underlying polygon.
    #[inline]
    pub fn polygon(&self) -> &Polygon {
        &self.poly
    }

    /// Number of boundary edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the source ring is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Cached minimum bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.poly.mbr()
    }

    /// `(search, scan, refused)` slab counts — how many slabs proved a
    /// left-to-right edge order and binary-search containment, how many
    /// stayed on the small-slab prefix-skip scan, and how many *failed*
    /// the order proof (possible only for self-crossing rings).
    /// Diagnostics/tests only.
    #[doc(hidden)]
    pub fn slab_modes(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for m in &self.slabs.mode {
            match m {
                SlabMode::Search => counts.0 += 1,
                SlabMode::Scan => counts.1 += 1,
                SlabMode::Refused => counts.2 += 1,
            }
        }
        counts
    }

    /// Cached interior point (computed lazily with the raw polygon's
    /// algorithm, then reused for every seed query).
    pub fn interior_point(&self) -> Point {
        *self.interior.get_or_init(|| self.poly.interior_point())
    }

    /// `true` when `p` lies inside the polygon or exactly on its boundary.
    /// Identical to [`Polygon::contains`]; true `O(log k)` worst case on
    /// **ordered** slabs (every slab of a simple polygon): the spanning
    /// edges are stored left-to-right, so one binary search by
    /// [`orient2d`] separates the crossings strictly left of `p` from the
    /// rest, and the answer is the parity of the strictly-right suffix.
    /// Slab-boundary probes (`p.y` equals a vertex y) and the rare
    /// unordered slabs of self-crossing rings keep the candidate scan —
    /// routed through the batched orientation filter.
    pub fn contains(&self, p: Point) -> bool {
        if self.poly.len() < 3 {
            return false;
        }
        let mbr = self.poly.mbr();
        if !mbr.contains_point(p) {
            // Outside the MBR the raw scan finds no boundary edge and an
            // even number of strictly-right crossings, i.e. `false`.
            return false;
        }
        let ys = &self.slabs.ys;
        // First boundary >= p.y. The MBR check bounds p.y to
        // [ys[0], ys[last]], so j is always in range.
        let j = ys.partition_point(|&y| y < p.y);
        debug_assert!(j < ys.len());
        if ys[j] == p.y {
            return self.contains_at_boundary(p, j);
        }
        // ys[j-1] < p.y < ys[j]: every edge whose y-range contains p.y
        // spans this open slab.
        debug_assert!(j > 0);
        let span = self.slabs.span(j - 1);
        if self.slabs.mode[j - 1] == SlabMode::Search {
            // Crossings with the ray are non-decreasing along the span
            // order, so "crossing strictly left of p" is a prefix. A
            // spanning edge crosses strictly left exactly when p lies
            // strictly on its right side; for an upward edge that is
            // `orient2d < 0`, for a downward edge `> 0`.
            let start = span.partition_point(|&ei| {
                let e = &self.edges[ei as usize];
                let o = orient2d(e.a, e.b, p);
                o != 0.0 && (o > 0.0) != (e.b.y > e.a.y)
            });
            if start == span.len() {
                // Every crossing is strictly left: zero right-crossings.
                return false;
            }
            // The first non-left edge is the only candidate that can pass
            // through p (later crossings are even further right).
            let e = &self.edges[span[start] as usize];
            if orient2d(e.a, e.b, p) == 0.0 {
                // A spanning edge covers the slab in y, so collinearity
                // at p.y puts p on the segment itself — the boundary.
                return true;
            }
            // All crossings in span[start..] are strictly right of p:
            // standard crossing-number parity.
            (span.len() - start) % 2 == 1
        } else {
            // Small or unprovable slab: max_x-sorted scan. The
            // strictly-left prefix (max_x < p.x — crossing strictly left,
            // never toggles, never a boundary hit) is skipped with one
            // binary search, unless the whole span is cheaper to scan
            // than to bisect.
            let start = if span.len() <= SMALL_SPAN_SCAN {
                0
            } else {
                span.partition_point(|&ei| self.edges[ei as usize].max_x < p.x)
            };
            let mut inside = false;
            for &ei in &span[start..] {
                if self.edges[ei as usize].process(p, &mut inside) {
                    return true;
                }
            }
            inside
        }
    }

    /// The slab-boundary case of [`PreparedPolygon::contains`] (`p.y` is
    /// exactly a vertex y-coordinate): straddle status is not uniform
    /// across the slab, so the full per-edge rule runs over the boundary
    /// candidate list — gathered through the batched orientation filter.
    /// Edges outside their x-extent keep the exact coordinate-comparison
    /// proofs (strictly right toggles, strictly left never does).
    fn contains_at_boundary(&self, p: Point, yi: usize) -> bool {
        let mut scan = CrossingScan::new(p);
        for &ei in self.slabs.at(yi) {
            let e = &self.edges[ei as usize];
            if e.bbox_contains(p) {
                scan.push(e.a, e.b);
            } else if (e.a.y > p.y) != (e.b.y > p.y) && e.min_x > p.x {
                scan.toggle();
            }
        }
        let (boundary, inside) = scan.finish();
        boundary || inside
    }

    /// The pre-ordered-slab containment scan (slab lookup + linear
    /// candidate scan), kept as the differential oracle for
    /// [`PreparedPolygon::contains`] and the `reproduce predicates`
    /// baseline. Bit-identical to `contains` and [`Polygon::contains`].
    #[doc(hidden)]
    pub fn contains_linear(&self, p: Point) -> bool {
        if self.poly.len() < 3 || !self.poly.mbr().contains_point(p) {
            return false;
        }
        let ys = &self.slabs.ys;
        let j = ys.partition_point(|&y| y < p.y);
        debug_assert!(j < ys.len());
        let mut inside = false;
        let candidates = if ys[j] == p.y {
            self.slabs.at(j)
        } else {
            self.slabs.span(j - 1)
        };
        for &ei in candidates {
            if self.edges[ei as usize].process(p, &mut inside) {
                return true;
            }
        }
        inside
    }

    /// `true` when `p` lies exactly on the boundary ring. Identical to
    /// [`Polygon::on_boundary`]; only the edges bucketed in `p`'s grid
    /// cell are examined.
    pub fn on_boundary(&self, p: Point) -> bool {
        if !self.poly.mbr().contains_point(p) {
            // An edge containing p would put p inside both bboxes.
            return false;
        }
        let (cx, cy) = self.grid.cell_of(p.x, p.y);
        self.grid
            .cell(cx, cy)
            .iter()
            .any(|&ei| self.edges[ei as usize].segment().contains_point(p))
    }

    /// `true` when `p` lies strictly inside (boundary excluded).
    /// Identical to [`Polygon::contains_strict`].
    pub fn contains_strict(&self, p: Point) -> bool {
        self.contains(p) && !self.on_boundary(p)
    }

    /// `true` when the segment crosses or touches the boundary ring.
    /// Identical to [`Polygon::boundary_intersects_segment`]; only edges
    /// in grid cells overlapping the segment's bounding box are tested,
    /// and their endpoints are classified against the query segment's
    /// supporting line through the cheap orientation filter first — an
    /// edge certified strictly on one side of the line cannot touch the
    /// segment and skips the four-predicate exact test.
    pub fn boundary_intersects_segment(&self, s: &Segment) -> bool {
        let sbox = s.bbox();
        if !self.poly.mbr().intersects(&sbox) {
            return false;
        }
        self.grid.for_edges_in_range(&sbox, |ei| {
            edge_intersects_filtered(&self.edges[ei as usize], s, &sbox)
        })
    }

    /// `true` when the segment shares at least one point with the closed
    /// region. Identical to [`Polygon::intersects_segment`].
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        if !self.poly.mbr().intersects(&s.bbox()) {
            return false;
        }
        if self.contains(s.a) || self.contains(s.b) {
            return true;
        }
        self.boundary_intersects_segment(s)
    }

    /// `true` when the closed regions of `self` and `other` share a point.
    /// Identical to [`Polygon::intersects_polygon`] with `self` as the
    /// receiver.
    pub fn intersects_polygon(&self, other: &Polygon) -> bool {
        if other.is_empty() || self.poly.is_empty() || !self.mbr().intersects(&other.mbr()) {
            return false;
        }
        if other.vertices().iter().any(|&v| self.contains(v)) {
            return true;
        }
        if self.poly.vertices().iter().any(|&v| other.contains(v)) {
            return true;
        }
        other.edges().any(|f| self.boundary_intersects_segment(&f))
    }
}

impl From<Polygon> for PreparedPolygon {
    fn from(poly: Polygon) -> PreparedPolygon {
        PreparedPolygon::new(poly)
    }
}

impl From<&Polygon> for PreparedPolygon {
    fn from(poly: &Polygon) -> PreparedPolygon {
        PreparedPolygon::new(poly.clone())
    }
}

/// A region (polygon with holes) with every ring prepared. Results are
/// identical to the raw [`Region`] operations.
#[derive(Clone, Debug)]
pub struct PreparedRegion {
    outer: PreparedPolygon,
    holes: Vec<PreparedPolygon>,
    interior: OnceLock<Point>,
    /// Kept for interior-point computation (the raw probing algorithm
    /// needs the ring structure).
    region: Region,
}

impl PreparedRegion {
    /// Preprocesses every ring of the region.
    pub fn new(region: Region) -> PreparedRegion {
        let outer = PreparedPolygon::new(region.outer().clone());
        let holes = region
            .holes()
            .iter()
            .map(|h| PreparedPolygon::new(h.clone()))
            .collect();
        PreparedRegion {
            outer,
            holes,
            interior: OnceLock::new(),
            region,
        }
    }

    /// The underlying region.
    #[inline]
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The prepared outer ring.
    #[inline]
    pub fn outer(&self) -> &PreparedPolygon {
        &self.outer
    }

    /// The prepared hole rings.
    #[inline]
    pub fn holes(&self) -> &[PreparedPolygon] {
        &self.holes
    }

    /// Cached MBR (the outer ring's). Identical to [`Region::mbr`].
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.outer.mbr()
    }

    /// Cached interior point. Identical to [`Region::interior_point`].
    pub fn interior_point(&self) -> Point {
        *self.interior.get_or_init(|| self.region.interior_point())
    }

    /// Closed containment: inside (or on) the outer ring and not strictly
    /// inside any hole. Identical to [`Region::contains`].
    pub fn contains(&self, p: Point) -> bool {
        self.outer.contains(p) && !self.holes.iter().any(|h| h.contains_strict(p))
    }

    /// `true` when the segment crosses or touches any ring. Identical to
    /// [`Region::boundary_intersects_segment`].
    pub fn boundary_intersects_segment(&self, s: &Segment) -> bool {
        self.outer.boundary_intersects_segment(s)
            || self.holes.iter().any(|h| h.boundary_intersects_segment(s))
    }

    /// `true` when the segment shares a point with the closed region.
    /// Identical to [`Region::intersects_segment`].
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        self.contains(s.a) || self.contains(s.b) || self.boundary_intersects_segment(s)
    }

    /// `true` when the closed region and the closed polygon share a point.
    /// Identical to [`Region::intersects_polygon`].
    pub fn intersects_polygon(&self, poly: &Polygon) -> bool {
        if !self.outer.intersects_polygon(poly) {
            return false;
        }
        !self.holes.iter().any(|h| {
            poly.vertices().iter().all(|&v| h.contains_strict(v))
                && !poly.edges().any(|e| h.boundary_intersects_segment(&e))
        })
    }
}

impl From<Region> for PreparedRegion {
    fn from(region: Region) -> PreparedRegion {
        PreparedRegion::new(region)
    }
}

impl From<Polygon> for PreparedRegion {
    fn from(poly: Polygon) -> PreparedRegion {
        PreparedRegion::new(Region::from_polygon(poly))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square() -> Polygon {
        Polygon::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]).unwrap()
    }

    /// Concave "L" shape with horizontal and vertical edges.
    fn ell() -> Polygon {
        Polygon::new(vec![
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 4.0),
            p(0.0, 4.0),
        ])
        .unwrap()
    }

    fn probes() -> Vec<Point> {
        let mut v = Vec::new();
        for i in -2..=10 {
            for j in -2..=10 {
                v.push(p(f64::from(i) * 0.5, f64::from(j) * 0.5));
            }
        }
        // Off-grid probes that avoid vertex y-coordinates.
        for i in 0..40 {
            v.push(p(-0.3 + f64::from(i) * 0.13, -0.2 + f64::from(i) * 0.117));
        }
        v
    }

    #[test]
    fn contains_matches_raw_on_grid_probes() {
        for poly in [square(), ell(), ell().reversed()] {
            let prep = PreparedPolygon::new(poly.clone());
            for q in probes() {
                assert_eq!(prep.contains(q), poly.contains(q), "probe {q}");
                assert_eq!(prep.on_boundary(q), poly.on_boundary(q), "probe {q}");
                assert_eq!(
                    prep.contains_strict(q),
                    poly.contains_strict(q),
                    "probe {q}"
                );
            }
        }
    }

    #[test]
    fn vertex_and_edge_probes_hit_boundary() {
        let poly = ell();
        let prep = PreparedPolygon::new(poly.clone());
        for v in poly.vertices() {
            assert!(prep.contains(*v), "vertex {v}");
            assert!(prep.on_boundary(*v), "vertex {v}");
        }
        for e in poly.edges() {
            let m = e.midpoint();
            assert!(prep.contains(m), "midpoint {m}");
            assert!(prep.on_boundary(m), "midpoint {m}");
        }
    }

    #[test]
    fn horizontal_edge_probes() {
        // p.y equal to a vertex y exercises the at-boundary fallback.
        let poly = ell();
        let prep = PreparedPolygon::new(poly.clone());
        for x in [-1.0, 0.0, 0.5, 1.0, 2.0, 4.0, 4.5] {
            for y in [0.0, 1.0, 4.0] {
                let q = p(x, y);
                assert_eq!(prep.contains(q), poly.contains(q), "probe {q}");
            }
        }
    }

    #[test]
    fn segment_tests_match_raw() {
        let poly = ell();
        let prep = PreparedPolygon::new(poly.clone());
        let segs = [
            Segment::new(p(-1.0, 0.5), p(5.0, 0.5)),
            Segment::new(p(2.0, 2.0), p(3.0, 3.0)),
            Segment::new(p(0.5, 0.5), p(0.6, 0.6)),
            Segment::new(p(-1.0, -1.0), p(0.0, 0.0)),
            Segment::new(p(2.0, 1.0), p(2.0, 5.0)),
            Segment::new(p(1.0, 1.0), p(1.0, 1.0)),
            Segment::new(p(5.0, 5.0), p(6.0, 5.0)),
        ];
        for s in &segs {
            assert_eq!(
                prep.boundary_intersects_segment(s),
                poly.boundary_intersects_segment(s),
                "segment {s:?}"
            );
            assert_eq!(
                prep.intersects_segment(s),
                poly.intersects_segment(s),
                "segment {s:?}"
            );
        }
    }

    #[test]
    fn polygon_intersection_matches_raw() {
        let poly = ell();
        let prep = PreparedPolygon::new(poly.clone());
        let others = [
            square(),
            square().translated(10.0, 0.0),
            square().scaled(0.25, p(2.0, 2.0)),
            Polygon::new(vec![p(2.0, 2.0), p(3.0, 2.0), p(3.0, 3.0)]).unwrap(),
            Polygon::new(vec![p(-2.0, -2.0), p(8.0, -2.0), p(8.0, 8.0), p(-2.0, 8.0)]).unwrap(),
        ];
        for other in &others {
            assert_eq!(
                prep.intersects_polygon(other),
                poly.intersects_polygon(other),
                "other {:?}",
                other.vertices()
            );
        }
    }

    #[test]
    fn mbr_and_interior_point_are_cached_raw_values() {
        let poly = ell();
        let prep = PreparedPolygon::new(poly.clone());
        assert_eq!(prep.mbr(), poly.mbr());
        assert_eq!(prep.interior_point(), poly.interior_point());
        // Second call returns the cached value.
        assert_eq!(prep.interior_point(), prep.interior_point());
    }

    #[test]
    fn non_simple_ring_still_matches_raw() {
        // The exactness contract covers non-simple rings: an asymmetric
        // bowtie (crossing-number semantics differ from winding, but
        // prepared must match *raw*, whatever raw says).
        let bow = Polygon::new(vec![p(0.0, 0.0), p(4.0, 3.0), p(4.0, 0.0), p(0.0, 2.0)]).unwrap();
        let prep = PreparedPolygon::new(bow.clone());
        for q in probes() {
            assert_eq!(prep.contains(q), bow.contains(q), "probe {q}");
        }
    }

    #[test]
    fn degenerate_unchecked_rings() {
        // Fewer than 3 vertices: raw contains() answers false.
        let line = Polygon::new_unchecked(vec![p(0.0, 0.0), p(1.0, 1.0)]);
        let prep = PreparedPolygon::new(line);
        assert!(!prep.contains(p(0.5, 0.5)));
        let empty = Polygon::new_unchecked(Vec::new());
        let prep = PreparedPolygon::new(empty);
        assert!(prep.is_empty());
        assert!(!prep.contains(p(0.0, 0.0)));
        assert!(!prep.boundary_intersects_segment(&Segment::new(p(0.0, 0.0), p(1.0, 0.0))));
    }

    #[test]
    fn prepared_region_matches_raw_region() {
        let outer = square();
        let hole = Polygon::new(vec![p(1.0, 1.0), p(3.0, 1.0), p(3.0, 3.0), p(1.0, 3.0)]).unwrap();
        let region = Region::new(outer, vec![hole]);
        let prep = PreparedRegion::new(region.clone());
        assert_eq!(prep.mbr(), region.mbr());
        assert_eq!(prep.interior_point(), region.interior_point());
        for q in probes() {
            assert_eq!(prep.contains(q), region.contains(q), "probe {q}");
        }
        let segs = [
            Segment::new(p(2.0, 2.0), p(2.1, 2.1)),     // inside the hole
            Segment::new(p(2.0, 2.0), p(0.5, 0.5)),     // hole to ring
            Segment::new(p(0.2, 0.2), p(0.3, 0.2)),     // inside the ring
            Segment::new(p(-1.0, -1.0), p(-2.0, -2.0)), // outside
        ];
        for s in &segs {
            assert_eq!(
                prep.boundary_intersects_segment(s),
                region.boundary_intersects_segment(s)
            );
            assert_eq!(prep.intersects_segment(s), region.intersects_segment(s));
        }
        let pokes = [
            Polygon::new(vec![p(1.5, 1.5), p(2.5, 1.5), p(2.0, 2.5)]).unwrap(), // in hole
            Polygon::new(vec![p(0.5, 0.5), p(2.5, 0.5), p(2.0, 2.5)]).unwrap(), // pokes out
        ];
        for poly in &pokes {
            assert_eq!(
                prep.intersects_polygon(poly),
                region.intersects_polygon(poly)
            );
        }
    }

    #[test]
    fn sliver_polygon_matches_raw() {
        // A nearly-degenerate sliver: thin, long, with near-collinear
        // vertices — maximal pressure on the slab boundaries.
        let sliver = Polygon::new(vec![
            p(0.0, 0.0),
            p(10.0, 1e-9),
            p(10.0, 2e-9),
            p(0.0, 1e-9),
        ])
        .unwrap();
        let prep = PreparedPolygon::new(sliver.clone());
        for i in 0..50 {
            let q = p(f64::from(i) * 0.25 - 1.0, f64::from(i % 5) * 5e-10);
            assert_eq!(prep.contains(q), sliver.contains(q), "probe {q}");
        }
    }
}
