//! Line segments and robust segment intersection tests.

use crate::point::Point;
use crate::predicates::orient2d;
use crate::rect::Rect;

/// A closed line segment from `a` to `b`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Squared segment length.
    #[inline]
    pub fn length_sq(&self) -> f64 {
        self.a.dist_sq(self.b)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// The segment with endpoints swapped.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Tight bounding box of the segment.
    #[inline]
    pub fn bbox(&self) -> Rect {
        Rect::new(self.a, self.b)
    }

    /// `true` when `p` lies exactly on the segment (robust: uses exact
    /// collinearity plus a bounding-box check).
    pub fn contains_point(&self, p: Point) -> bool {
        orient2d(self.a, self.b, p) == 0.0 && self.bbox().contains_point(p)
    }

    /// `true` when the two **closed** segments share at least one point.
    ///
    /// Handles all degeneracies exactly: proper crossings, endpoint touches,
    /// collinear overlaps, and zero-length segments.
    pub fn intersects(&self, other: &Segment) -> bool {
        // Cheap reject: disjoint bounding boxes cannot intersect. This skips
        // the exact predicates for the vast majority of non-intersecting
        // pairs in edge-vs-edge loops.
        if !self.bbox().intersects(&other.bbox()) {
            return false;
        }
        let (p1, p2) = (self.a, self.b);
        let (p3, p4) = (other.a, other.b);

        let d1 = orient2d(p3, p4, p1);
        let d2 = orient2d(p3, p4, p2);
        let d3 = orient2d(p1, p2, p3);
        let d4 = orient2d(p1, p2, p4);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true; // proper crossing
        }
        // Degenerate contacts: an endpoint lying on the other segment.
        (d1 == 0.0 && other.bbox().contains_point(p1))
            || (d2 == 0.0 && other.bbox().contains_point(p2))
            || (d3 == 0.0 && self.bbox().contains_point(p3))
            || (d4 == 0.0 && self.bbox().contains_point(p4))
    }

    /// `true` when the segments cross at exactly one interior point of both
    /// (no endpoint touches, no collinear overlap).
    pub fn intersects_properly(&self, other: &Segment) -> bool {
        let d1 = orient2d(other.a, other.b, self.a);
        let d2 = orient2d(other.a, other.b, self.b);
        let d3 = orient2d(self.a, self.b, other.a);
        let d4 = orient2d(self.a, self.b, other.b);
        ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    }

    /// The crossing point of two properly-intersecting segments.
    ///
    /// Returns `None` when the segments do not intersect at all. For
    /// collinear overlaps, returns a representative shared point. The
    /// coordinates of a proper crossing are computed in floating point and
    /// are therefore approximate.
    pub fn intersection_point(&self, other: &Segment) -> Option<Point> {
        if !self.intersects(other) {
            return None;
        }
        // Exact signed "heights" of our endpoints over `other`'s supporting
        // line. The naive cross-product denominator `r.cross(s)` can cancel
        // to 0.0 for nearly-parallel proper crossings and wrongly fall into
        // the collinear branch; `d1 - d2` cannot, because given
        // `intersects()` the two orient2d signs are never strictly equal,
        // so the subtraction adds magnitudes instead of cancelling.
        let d1 = orient2d(other.a, other.b, self.a);
        let d2 = orient2d(other.a, other.b, self.b);
        if d1 == 0.0 && d2 == 0.0 {
            // Both endpoints on `other`'s line: collinear overlap or a
            // degenerate segment. Return an endpoint that lies on the
            // other segment.
            return [self.a, self.b]
                .into_iter()
                .find(|&p| other.contains_point(p))
                .or_else(|| {
                    [other.a, other.b]
                        .into_iter()
                        .find(|&p| self.contains_point(p))
                });
        }
        // The crossing parameter along `self`: t solves
        // (1 - t) * d1 + t * d2 = 0. When an endpoint is exactly on the
        // line, d1 or d2 is exactly zero and t is exactly 0.0 or 1.0; the
        // clamp only guards float dust in the division.
        let t = (d1 / (d1 - d2)).clamp(0.0, 1.0);
        Some(self.a + (self.b - self.a) * t)
    }

    /// Squared distance from `p` to the closest point of the segment.
    pub fn dist_sq_to_point(&self, p: Point) -> f64 {
        let ab = self.b - self.a;
        let len_sq = ab.norm_sq();
        // vaq-lint: allow(float-exactness) -- division guard in an
        // approximate distance helper: a squared length that underflows to
        // 0.0 degrades gracefully to the endpoint distance.
        if len_sq == 0.0 {
            return self.a.dist_sq(p);
        }
        let t = ((p - self.a).dot(ab) / len_sq).clamp(0.0, 1.0);
        (self.a + ab * t).dist_sq(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x0: f64, y0: f64, x1: f64, y1: f64) -> Segment {
        Segment::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn basic_measures() {
        let seg = s(0.0, 0.0, 3.0, 4.0);
        assert_eq!(seg.length(), 5.0);
        assert_eq!(seg.length_sq(), 25.0);
        assert_eq!(seg.midpoint(), Point::new(1.5, 2.0));
        assert_eq!(seg.reversed().a, Point::new(3.0, 4.0));
    }

    #[test]
    fn proper_crossing() {
        let a = s(0.0, 0.0, 2.0, 2.0);
        let b = s(0.0, 2.0, 2.0, 0.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(a.intersects_properly(&b));
        let p = a.intersection_point(&b).unwrap();
        assert!(p.approx_eq(Point::new(1.0, 1.0), 1e-12));
    }

    #[test]
    fn no_intersection() {
        let a = s(0.0, 0.0, 1.0, 0.0);
        let b = s(0.0, 1.0, 1.0, 1.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection_point(&b).is_none());
    }

    #[test]
    fn endpoint_touch_counts_but_is_not_proper() {
        let a = s(0.0, 0.0, 1.0, 1.0);
        let b = s(1.0, 1.0, 2.0, 0.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects_properly(&b));
        assert_eq!(a.intersection_point(&b), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn t_junction_touch() {
        let a = s(0.0, 0.0, 2.0, 0.0);
        let b = s(1.0, 0.0, 1.0, 5.0); // touches interior of a at (1, 0)
        assert!(a.intersects(&b));
        assert!(!a.intersects_properly(&b));
    }

    #[test]
    fn collinear_overlap() {
        let a = s(0.0, 0.0, 2.0, 0.0);
        let b = s(1.0, 0.0, 3.0, 0.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects_properly(&b));
        let p = a.intersection_point(&b).unwrap();
        assert!(a.contains_point(p) && b.contains_point(p));
    }

    #[test]
    fn collinear_disjoint() {
        let a = s(0.0, 0.0, 1.0, 0.0);
        let b = s(2.0, 0.0, 3.0, 0.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn zero_length_segments() {
        let pt = s(1.0, 1.0, 1.0, 1.0);
        let through = s(0.0, 0.0, 2.0, 2.0);
        assert!(pt.intersects(&through));
        let off = s(0.0, 0.0, 1.0, 0.0);
        assert!(!pt.intersects(&off));
        assert!(pt.intersects(&pt));
    }

    #[test]
    fn contains_point_robust() {
        let seg = s(0.0, 0.0, 10.0, 10.0);
        assert!(seg.contains_point(Point::new(5.0, 5.0)));
        assert!(seg.contains_point(Point::new(0.0, 0.0)));
        assert!(!seg.contains_point(Point::new(5.0, 5.0 + 1e-15)));
        assert!(!seg.contains_point(Point::new(11.0, 11.0))); // collinear, outside
    }

    #[test]
    fn distance_to_point() {
        let seg = s(0.0, 0.0, 10.0, 0.0);
        assert_eq!(seg.dist_sq_to_point(Point::new(5.0, 3.0)), 9.0);
        assert_eq!(seg.dist_sq_to_point(Point::new(-4.0, 3.0)), 25.0); // clamps to a
        assert_eq!(seg.dist_sq_to_point(Point::new(13.0, 4.0)), 25.0); // clamps to b
        let degenerate = s(1.0, 1.0, 1.0, 1.0);
        assert_eq!(degenerate.dist_sq_to_point(Point::new(4.0, 5.0)), 25.0);
    }

    #[test]
    fn intersection_symmetry() {
        let cases = [
            (s(0.0, 0.0, 2.0, 2.0), s(0.0, 2.0, 2.0, 0.0)),
            (s(0.0, 0.0, 1.0, 0.0), s(0.5, 0.0, 1.5, 0.0)),
            (s(0.0, 0.0, 1.0, 1.0), s(2.0, 2.0, 3.0, 3.0)),
            (s(0.0, 0.0, 1.0, 1.0), s(1.0, 1.0, 2.0, 2.0)),
        ];
        for (a, b) in cases {
            assert_eq!(a.intersects(&b), b.intersects(&a));
        }
    }
}
