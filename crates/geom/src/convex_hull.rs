//! Convex hulls via Andrew's monotone chain.

use crate::point::Point;
use crate::predicates::orient2d;

/// Indices of the convex hull of `points`, in counter-clockwise order,
/// starting from the lexicographically smallest point.
///
/// Collinear points on the hull boundary are **excluded** (strict hull).
/// Duplicate points are handled; fewer than three distinct non-collinear
/// points yield a degenerate hull of 1–2 indices.
pub fn convex_hull_indices(points: &[Point]) -> Vec<usize> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| points[a].cmp_lex(&points[b]));
    idx.dedup_by(|a, b| points[*a] == points[*b]);
    let m = idx.len();
    if m <= 2 {
        return idx;
    }

    let mut hull: Vec<usize> = Vec::with_capacity(2 * m);
    // Lower hull.
    for &i in &idx {
        while hull.len() >= 2
            && orient2d(
                points[hull[hull.len() - 2]],
                points[hull[hull.len() - 1]],
                points[i],
            ) <= 0.0
        {
            hull.pop();
        }
        hull.push(i);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &i in idx.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(
                points[hull[hull.len() - 2]],
                points[hull[hull.len() - 1]],
                points[i],
            ) <= 0.0
        {
            hull.pop();
        }
        hull.push(i);
    }
    hull.pop(); // last point equals the first
    if hull.len() < 3 {
        // All points collinear: return the two extremes.
        hull.truncate(2);
    }
    hull
}

/// Hull vertices as points (see [`convex_hull_indices`]).
pub fn convex_hull_points(points: &[Point]) -> Vec<Point> {
    convex_hull_indices(points)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn square_with_interior_points() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
            p(0.5, 0.5),
            p(0.25, 0.75),
        ];
        let hull = convex_hull_indices(&pts);
        assert_eq!(hull.len(), 4);
        let hull_pts = convex_hull_points(&pts);
        let poly = Polygon::new(hull_pts).unwrap();
        assert!(poly.is_ccw());
        assert!(poly.is_convex());
        assert_eq!(poly.area(), 1.0);
    }

    #[test]
    fn collinear_points_excluded() {
        let pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(1.0, 1.0)];
        let hull = convex_hull_indices(&pts);
        assert_eq!(hull.len(), 3);
        assert!(!hull.contains(&1)); // the collinear midpoint
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull_indices(&[]).is_empty());
        assert_eq!(convex_hull_indices(&[p(1.0, 1.0)]), vec![0]);
        assert_eq!(convex_hull_indices(&[p(1.0, 1.0), p(2.0, 2.0)]).len(), 2);
        // All collinear.
        let line = vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0), p(3.0, 3.0)];
        let hull = convex_hull_indices(&line);
        assert_eq!(hull.len(), 2);
        assert!(hull.contains(&0) && hull.contains(&3));
        // Duplicates.
        let dups = vec![p(0.0, 0.0), p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)];
        assert_eq!(convex_hull_indices(&dups).len(), 3);
    }

    #[test]
    fn hull_contains_all_points() {
        // Deterministic pseudo-random points (LCG) — no rand dependency here.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let pts: Vec<Point> = (0..200).map(|_| p(next(), next())).collect();
        let hull = convex_hull_points(&pts);
        assert!(hull.len() >= 3);
        let poly = Polygon::new(hull).unwrap();
        assert!(poly.is_convex());
        for &q in &pts {
            assert!(poly.contains(q), "hull must contain {q}");
        }
    }
}
