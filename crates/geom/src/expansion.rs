//! Floating-point expansion arithmetic after Shewchuk.
//!
//! An *expansion* is a sum of `f64` components, ordered by increasing
//! magnitude, that are *non-overlapping*: each component's bit range is
//! disjoint from the others'. Expansions represent real numbers exactly and
//! support exact addition and multiplication using only IEEE-754 double
//! arithmetic. They are the machinery behind the adaptive exact predicates in
//! [`crate::predicates`].
//!
//! Reference: J. R. Shewchuk, *Adaptive Precision Floating-Point Arithmetic
//! and Fast Robust Geometric Predicates*, Discrete & Computational Geometry
//! 18(3), 1997.

/// `2^27 + 1`, used to split a double into two half-precision halves.
pub const SPLITTER: f64 = 134_217_729.0;

/// Machine epsilon as used by Shewchuk: `2^-53`, half of `f64::EPSILON`.
pub const EPSILON: f64 = f64::EPSILON / 2.0;

/// Exact sum: returns `(x, y)` with `x = fl(a + b)` and `a + b = x + y`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bvirt = x - a;
    let avirt = x - bvirt;
    let bround = b - bvirt;
    let around = a - avirt;
    (x, around + bround)
}

/// Exact sum when `|a| >= |b|` is known: cheaper than [`two_sum`].
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bvirt = x - a;
    (x, b - bvirt)
}

/// Exact difference: returns `(x, y)` with `x = fl(a - b)` and `a - b = x + y`.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let bvirt = a - x;
    let avirt = x + bvirt;
    let bround = bvirt - b;
    let around = a - avirt;
    (x, around + bround)
}

/// The roundoff of `fl(a - b)` when the rounded difference `x` is already
/// known: `a - b = x + two_diff_tail(a, b, x)`.
#[inline]
pub fn two_diff_tail(a: f64, b: f64, x: f64) -> f64 {
    let bvirt = a - x;
    let avirt = x + bvirt;
    let bround = bvirt - b;
    let around = a - avirt;
    around + bround
}

/// Splits `a` into `(hi, lo)` halves with non-overlapping 26-bit mantissas,
/// `a = hi + lo`.
#[inline]
pub fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let abig = c - a;
    let ahi = c - abig;
    let alo = a - ahi;
    (ahi, alo)
}

/// Exact product: returns `(x, y)` with `x = fl(a * b)` and `a * b = x + y`.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = x - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (x, alo * blo - err3)
}

/// Exact square: slightly cheaper than `two_product(a, a)`.
#[inline]
pub fn two_square(a: f64) -> (f64, f64) {
    let x = a * a;
    let (ahi, alo) = split(a);
    let err1 = x - ahi * ahi;
    let err3 = err1 - (ahi + ahi) * alo;
    (x, alo * alo - err3)
}

/// `(a1, a0) - (b1, b0)` as an exact 4-component expansion
/// `[x0, x1, x2, x3]` (increasing magnitude).
#[inline]
pub fn two_two_diff(a1: f64, a0: f64, b1: f64, b0: f64) -> [f64; 4] {
    // two_one_diff(a1, a0, b0) -> (x2', x1', x0)
    let (si, x0) = two_diff(a0, b0);
    let (x2a, x1a) = two_sum(a1, si);
    // two_one_diff(x2a, x1a, b1) -> (x3, x2, x1)
    let (si2, x1) = two_diff(x1a, b1);
    let (x3, x2) = two_sum(x2a, si2);
    [x0, x1, x2, x3]
}

/// `(a1, a0) + (b1, b0)` as an exact 4-component expansion.
#[inline]
pub fn two_two_sum(a1: f64, a0: f64, b1: f64, b0: f64) -> [f64; 4] {
    let (si, x0) = two_sum(a0, b0);
    let (x2a, x1a) = two_sum(a1, si);
    let (si2, x1) = two_sum(x1a, b1);
    let (x3, x2) = two_sum(x2a, si2);
    [x0, x1, x2, x3]
}

/// Sums two expansions into `h`, eliminating zero components.
/// Returns the number of components written. `h` must have room for
/// `e.len() + f.len()` components.
///
/// Both inputs must be non-overlapping and sorted by increasing magnitude
/// (Shewchuk's `FAST_EXPANSION_SUM_ZEROELIM`); the output satisfies the same
/// invariant.
pub fn fast_expansion_sum_zeroelim(e: &[f64], f: &[f64], h: &mut [f64]) -> usize {
    let (elen, flen) = (e.len(), f.len());
    if elen == 0 {
        h[..flen].copy_from_slice(f);
        return flen;
    }
    if flen == 0 {
        h[..elen].copy_from_slice(e);
        return elen;
    }

    let mut eindex = 0usize;
    let mut findex = 0usize;
    // vaq-lint: allow(panic-hygiene) -- both expansions are non-empty
    // here: the zero-length cases returned early above.
    let mut enow = e[0];
    // vaq-lint: allow(panic-hygiene) -- same non-empty guarantee as the
    // line above.
    let mut fnow = f[0];
    let mut q;

    if (fnow > enow) == (fnow > -enow) {
        q = enow;
        eindex += 1;
        if eindex < elen {
            enow = e[eindex];
        }
    } else {
        q = fnow;
        findex += 1;
        if findex < flen {
            fnow = f[findex];
        }
    }

    let mut hindex = 0usize;
    let mut hh;
    if eindex < elen && findex < flen {
        if (fnow > enow) == (fnow > -enow) {
            let (qq, h0) = fast_two_sum(enow, q);
            q = qq;
            hh = h0;
            eindex += 1;
            if eindex < elen {
                enow = e[eindex];
            }
        } else {
            let (qq, h0) = fast_two_sum(fnow, q);
            q = qq;
            hh = h0;
            findex += 1;
            if findex < flen {
                fnow = f[findex];
            }
        }
        if hh != 0.0 {
            h[hindex] = hh;
            hindex += 1;
        }
        while eindex < elen && findex < flen {
            if (fnow > enow) == (fnow > -enow) {
                let (qq, h0) = two_sum(q, enow);
                q = qq;
                hh = h0;
                eindex += 1;
                if eindex < elen {
                    enow = e[eindex];
                }
            } else {
                let (qq, h0) = two_sum(q, fnow);
                q = qq;
                hh = h0;
                findex += 1;
                if findex < flen {
                    fnow = f[findex];
                }
            }
            if hh != 0.0 {
                h[hindex] = hh;
                hindex += 1;
            }
        }
    }
    while eindex < elen {
        let (qq, h0) = two_sum(q, enow);
        q = qq;
        hh = h0;
        eindex += 1;
        if eindex < elen {
            enow = e[eindex];
        }
        if hh != 0.0 {
            h[hindex] = hh;
            hindex += 1;
        }
    }
    while findex < flen {
        let (qq, h0) = two_sum(q, fnow);
        q = qq;
        hh = h0;
        findex += 1;
        if findex < flen {
            fnow = f[findex];
        }
        if hh != 0.0 {
            h[hindex] = hh;
            hindex += 1;
        }
    }
    if q != 0.0 || hindex == 0 {
        h[hindex] = q;
        hindex += 1;
    }
    hindex
}

/// Multiplies expansion `e` by the scalar `b`, eliminating zero components.
/// Returns the number of components written. `h` must have room for
/// `2 * e.len()` components (Shewchuk's `SCALE_EXPANSION_ZEROELIM`).
pub fn scale_expansion_zeroelim(e: &[f64], b: f64, h: &mut [f64]) -> usize {
    if e.is_empty() {
        // vaq-lint: allow(panic-hygiene) -- the documented contract gives
        // `h` room for 2·e.len() components and at least one output slot.
        h[0] = 0.0;
        return 1;
    }
    let (bhi, blo) = split(b);
    // vaq-lint: allow(panic-hygiene) -- `e` is non-empty: the is_empty
    // case returned early above.
    let (mut q, hh) = two_product_presplit(e[0], b, bhi, blo);
    let mut hindex = 0usize;
    if hh != 0.0 {
        h[hindex] = hh;
        hindex += 1;
    }
    // vaq-lint: allow(panic-hygiene) -- `e` is non-empty (early return
    // above), so the tail slice from 1 is in bounds.
    for &enow in &e[1..] {
        let (product1, product0) = two_product_presplit(enow, b, bhi, blo);
        let (sum, h0) = two_sum(q, product0);
        if h0 != 0.0 {
            h[hindex] = h0;
            hindex += 1;
        }
        let (qq, h1) = fast_two_sum(product1, sum);
        q = qq;
        if h1 != 0.0 {
            h[hindex] = h1;
            hindex += 1;
        }
    }
    if q != 0.0 || hindex == 0 {
        h[hindex] = q;
        hindex += 1;
    }
    hindex
}

/// [`two_product`] with `b` already split into `(bhi, blo)`.
#[inline]
fn two_product_presplit(a: f64, b: f64, bhi: f64, blo: f64) -> (f64, f64) {
    let x = a * b;
    let (ahi, alo) = split(a);
    let err1 = x - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (x, alo * blo - err3)
}

/// Approximate value of an expansion (sum of components, smallest first).
#[inline]
pub fn estimate(e: &[f64]) -> f64 {
    e.iter().sum()
}

/// Sign of the exact value of a non-overlapping expansion.
///
/// The component of largest magnitude is last (after zero elimination), so
/// its sign is the sign of the whole expansion.
#[inline]
pub fn expansion_sign(e: &[f64]) -> f64 {
    for &c in e.iter().rev() {
        if c != 0.0 {
            return c;
        }
    }
    0.0
}

// ---------------------------------------------------------------------------
// Vec-based exact arithmetic for the rare exact fallback paths. These
// allocate, but they only run when the adaptive filters fail (points that are
// exactly or almost exactly degenerate), so clarity beats speed here.
// ---------------------------------------------------------------------------

/// Exact sum of two expansions as a fresh `Vec`.
pub fn expansion_sum(e: &[f64], f: &[f64]) -> Vec<f64> {
    let mut h = vec![0.0; e.len() + f.len() + 1];
    let n = fast_expansion_sum_zeroelim(e, f, &mut h);
    h.truncate(n);
    h
}

/// Exact difference `e - f` of two expansions as a fresh `Vec`.
pub fn expansion_diff(e: &[f64], f: &[f64]) -> Vec<f64> {
    let neg: Vec<f64> = f.iter().map(|&x| -x).collect();
    expansion_sum(e, &neg)
}

/// Exact product of two expansions as a fresh `Vec` (distributes
/// `scale_expansion` over the components of `f` and sums).
pub fn expansion_product(e: &[f64], f: &[f64]) -> Vec<f64> {
    if e.is_empty() || f.is_empty() {
        return vec![0.0];
    }
    let mut acc: Vec<f64> = vec![0.0];
    let mut scaled = vec![0.0; 2 * e.len() + 1];
    for &b in f {
        let n = scale_expansion_zeroelim(e, b, &mut scaled);
        acc = expansion_sum(&acc, &scaled[..n]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_i128(e: &[f64]) -> i128 {
        // Valid only when every component is an integer that fits i128.
        e.iter().map(|&c| c as i128).sum()
    }

    #[test]
    fn two_sum_exact_on_cancellation() {
        let a = 1e16;
        let b = 1.0;
        let (x, y) = two_sum(a, b);
        // x + y must equal a + b exactly; the tail captures what fl() lost.
        assert_eq!(x, 1e16 + 1.0); // rounds to 1e16 + 2 or stays; whatever fl gives
        assert_eq!(x + y, x); // components non-overlapping: adding tail is no-op in fl
                              // Reconstruct via i128 on an integer case instead:
        let (x, y) = two_sum(9_007_199_254_740_992.0, 1.0); // 2^53 + 1 not representable
        assert_eq!(x as i128 + y as i128, 9_007_199_254_740_993);
    }

    #[test]
    fn two_diff_exact() {
        // 2^53 - 0.5 is not representable; the tail must capture the -0.5.
        let a = 9_007_199_254_740_992.0; // 2^53
        let b = 0.5;
        let (x, y) = two_diff(a, b);
        assert_eq!(x * 2.0, (a - b + y) * 2.0 - y * 2.0 + (x - x)); // identity smoke
                                                                    // Exact check scaled by 2 so everything is an integer:
        assert_eq!((x * 2.0) as i128 + (y * 2.0) as i128, (a * 2.0) as i128 - 1);
        // two_diff_tail agrees with two_diff's tail.
        assert_eq!(two_diff_tail(a, b, a - b), y);
    }

    #[test]
    fn two_product_exact_integers() {
        let a = 94_906_267.0; // ~2^26.5
        let b = 94_906_265.0;
        let (x, y) = two_product(a, b);
        let exact = (a as i128) * (b as i128);
        assert_eq!(x as i128 + y as i128, exact);
    }

    #[test]
    fn two_square_matches_two_product() {
        for &a in &[3.25, -1e10 + 0.123, 94_906_267.0, 0.0, -7.5] {
            let (x1, y1) = two_square(a);
            let (x2, y2) = two_product(a, a);
            assert_eq!(x1, x2);
            assert_eq!(y1, y2);
        }
    }

    #[test]
    fn split_reconstructs() {
        for &a in &[1.0, -3.75e17, 1e-300, 123_456_789.125] {
            let (hi, lo) = split(a);
            assert_eq!(hi + lo, a);
        }
    }

    #[test]
    fn two_two_diff_exact_integers() {
        let e = two_two_diff(1e18, 3.0, 7e17, 11.0);
        let exact = 1_000_000_000_000_000_000i128 + 3 - 700_000_000_000_000_000 - 11;
        assert_eq!(exact_i128(&e), exact);
    }

    #[test]
    fn fast_expansion_sum_integers() {
        let e = [3.0, 1e18];
        let f = [5.0, 2e18];
        let mut h = [0.0; 4];
        let n = fast_expansion_sum_zeroelim(&e, &f, &mut h);
        assert_eq!(exact_i128(&h[..n]), 3_000_000_000_000_000_008);
    }

    #[test]
    fn fast_expansion_sum_cancels_to_zero() {
        let e = [3.0, 1e18];
        let f = [-3.0, -1e18];
        let mut h = [0.0; 4];
        let n = fast_expansion_sum_zeroelim(&e, &f, &mut h);
        assert_eq!(n, 1);
        assert_eq!(h[0], 0.0);
    }

    #[test]
    fn scale_expansion_integers() {
        let e = [3.0, 1e18];
        let mut h = [0.0; 4];
        let n = scale_expansion_zeroelim(&e, 7.0, &mut h);
        assert_eq!(exact_i128(&h[..n]), 7_000_000_000_000_000_021);
    }

    #[test]
    fn expansion_vec_product() {
        let e = [3.0, 1e10];
        let f = [2.0, 5e9];
        let p = expansion_product(&e, &f);
        let exact = (3i128 + 10_000_000_000) * (2 + 5_000_000_000);
        assert_eq!(exact_i128(&p), exact);
    }

    #[test]
    fn expansion_vec_diff_and_sign() {
        let e = [1e18];
        let f = [1.0, 1e18];
        let d = expansion_diff(&e, &f);
        assert_eq!(exact_i128(&d), -1);
        assert!(expansion_sign(&d) < 0.0);
        let z = expansion_diff(&e, &e);
        assert_eq!(expansion_sign(&z), 0.0);
    }

    #[test]
    fn estimate_close_to_sum() {
        let e = [1e-30, 2.0, 3e10];
        assert!((estimate(&e) - (1e-30 + 2.0 + 3e10)).abs() < 1.0);
    }
}
