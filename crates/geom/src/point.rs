//! 2-D point / vector type used throughout the workspace.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point in the Euclidean plane (also used as a 2-D vector).
///
/// Coordinates are `f64`. All geometric algorithms in this workspace assume
/// finite coordinates; constructors of higher-level types validate this.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] for comparisons: it avoids the
    /// square root and is exact for small integer-valued coordinates.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z component of the cross product, treating both points as vectors.
    ///
    /// Positive when `other` is counter-clockwise from `self`. This is the
    /// *naive* floating-point cross product; for orientation decisions use
    /// [`crate::predicates::orient2d`], which is exact.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm, treating the point as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// The midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// The vector `self` rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// `true` when both coordinates are finite (not NaN / ±∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Total lexicographic order by `(x, y)` using `f64::total_cmp`.
    ///
    /// Used to sort points deterministically (e.g. convex hull, dedup).
    #[inline]
    pub fn cmp_lex(&self, other: &Point) -> Ordering {
        self.x
            .total_cmp(&other.x)
            .then_with(|| self.y.total_cmp(&other.y))
    }

    /// Approximate equality with absolute tolerance `eps` per coordinate.
    #[inline]
    pub fn approx_eq(self, other: Point, eps: f64) -> bool {
        (self.x - other.x).abs() <= eps && (self.y - other.y).abs() <= eps
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -4.0);
        assert_eq!(a + b, Point::new(4.0, -2.0));
        assert_eq!(a - b, Point::new(-2.0, 6.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -2.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.perp(), b);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), Point::new(1.0, 2.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point::new(0.5, 1.0));
    }

    #[test]
    fn lexicographic_order() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(1.0, 6.0);
        let c = Point::new(2.0, 0.0);
        assert_eq!(a.cmp_lex(&b), Ordering::Less);
        assert_eq!(b.cmp_lex(&c), Ordering::Less);
        assert_eq!(a.cmp_lex(&a), Ordering::Equal);
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Point::new(1.0, 1.0);
        assert!(a.approx_eq(Point::new(1.0 + 1e-12, 1.0 - 1e-12), 1e-9));
        assert!(!a.approx_eq(Point::new(1.1, 1.0), 1e-9));
    }

    #[test]
    fn conversions() {
        let p: Point = (3.5, -1.5).into();
        assert_eq!(p, Point::new(3.5, -1.5));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (3.5, -1.5));
    }
}
