//! Weighted sites and the exact `power_incircle` predicate behind power
//! diagrams (regular triangulations).
//!
//! A weighted site `(p, w)` measures distance by the **power distance**
//! `pow(x) = |x − p|² − w`. The diagram that assigns each location to the
//! site of minimum power distance is the *power diagram*; its dual is the
//! *regular triangulation*, and the conflict test that drives the
//! incremental construction is the sign of a lifted 3×3 determinant —
//! [`incircle`](crate::predicates::incircle) with every lift term lowered
//! by the site's weight. Equal weights cancel out of the determinant, so
//! the predicate degenerates to the Euclidean `incircle` exactly.
//!
//! The implementation follows the same two-stage discipline as the other
//! adaptive predicates: a cheap floating-point evaluation guarded by a
//! forward error bound (stage A), and a fully exact fallback on the
//! [`crate::expansion`] arithmetic when the bound cannot certify the
//! sign. Both stages are counted in
//! [`predicate_totals`](crate::predicates::predicate_totals).

use crate::expansion::{
    expansion_diff, expansion_product, expansion_sign, expansion_sum, two_diff, EPSILON,
};
use crate::point::Point;
use crate::predicates::{bump_exact, bump_fast};

/// A site with a power-diagram weight.
///
/// The weight has units of squared distance: a site with weight `w > 0`
/// behaves like a circle of radius `√w` (a store with a service radius),
/// and its cell grows at its neighbours' expense. A site whose cell is
/// swallowed entirely is *hidden* — it owns no region of the plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedPoint {
    /// The site location.
    pub point: Point,
    /// The site weight (squared-distance units; may be negative).
    pub weight: f64,
}

impl WeightedPoint {
    /// Creates a weighted site.
    pub fn new(point: Point, weight: f64) -> WeightedPoint {
        WeightedPoint { point, weight }
    }

    /// The power distance `|x − p|² − w` from this site to `x`.
    ///
    /// Plain floating-point arithmetic: callers that need an exact
    /// comparison between two power distances must go through
    /// [`power_incircle`] or expansion arithmetic instead.
    pub fn power_dist(&self, x: Point) -> f64 {
        x.dist_sq(self.point) - self.weight
    }
}

// Stage-A forward error bound coefficient, derived like Shewchuk's
// ICCERRBOUND_A = (10 + 96ε)ε for the Euclidean incircle. The weighted
// determinant differs in two ways: each lift row gains one extra
// subtraction (`… − (w − w_d)`, one more rounding of magnitude ≤ the
// lift's absolute sum) and the weight difference itself carries one
// rounding. Both are covered by the permanent built from the
// *absolute* lift `dx² + dy² + |w − w_d|` (the signed lift can cancel;
// the absolute sum cannot), adding at most 6ε to Shewchuk's first-order
// coefficient. 16ε with generous ε² slack is therefore conservative —
// and soundly so, because an unmet bound only routes the call to the
// fully exact fallback.
const PWRERRBOUND_A: f64 = (16.0 + 224.0 * EPSILON) * EPSILON;

/// Sign of the power-conflict determinant for the weighted sites
/// `(pa, wa), (pb, wb), (pc, wc)` against `(pd, wd)`.
///
/// Assuming `pa, pb, pc` in **counter-clockwise** order, returns a value
/// whose **sign is exact**:
/// * `> 0` — `(pd, wd)` is in conflict with the triangle: its power
///   distance to the triangle's orthocenter is smaller than the
///   triangle's orthoradius, so the triangle cannot survive in the
///   regular triangulation once `pd` is inserted;
/// * `< 0` — no conflict;
/// * `== 0` — exactly orthogonal (the weighted analogue of cocircular).
///
/// With all four weights equal this is exactly
/// [`incircle`](crate::predicates::incircle): the weights cancel out of
/// the determinant term by term.
#[allow(clippy::too_many_arguments)] // four sites and four weights IS the predicate's arity
pub fn power_incircle(
    pa: Point,
    pb: Point,
    pc: Point,
    pd: Point,
    wa: f64,
    wb: f64,
    wc: f64,
    wd: f64,
) -> f64 {
    let adx = pa.x - pd.x;
    let bdx = pb.x - pd.x;
    let cdx = pc.x - pd.x;
    let ady = pa.y - pd.y;
    let bdy = pb.y - pd.y;
    let cdy = pc.y - pd.y;
    let adw = wa - wd;
    let bdw = wb - wd;
    let cdw = wc - wd;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady - adw;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy - bdw;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy - cdw;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    // The permanent uses the cancellation-free absolute lift: the signed
    // lift can be tiny while its terms are huge (a heavy site), and the
    // error bound must scale with the terms actually rounded.
    let alift_abs = adx * adx + ady * ady + adw.abs();
    let blift_abs = bdx * bdx + bdy * bdy + bdw.abs();
    let clift_abs = cdx * cdx + cdy * cdy + cdw.abs();
    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift_abs
        + (cdxady.abs() + adxcdy.abs()) * blift_abs
        + (adxbdy.abs() + bdxady.abs()) * clift_abs;
    let errbound = PWRERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        bump_fast(1);
        return det;
    }

    bump_exact();
    power_incircle_exact(pa, pb, pc, pd, wa, wb, wc, wd)
}

/// Fully exact power-conflict evaluation via expansion `Vec` arithmetic.
///
/// Computes the 3×3 determinant
/// `| adx ady adx²+ady²−adw ; bdx bdy bdx²+bdy²−bdw ; cdx cdy cdx²+cdy²−cdw |`
/// with every difference carried as an exact 2-component expansion, so
/// the result sign is exact for all finite inputs. Only invoked on
/// (near-)orthogonal configurations.
#[allow(clippy::too_many_arguments)] // same arity as the adaptive entry point
fn power_incircle_exact(
    pa: Point,
    pb: Point,
    pc: Point,
    pd: Point,
    wa: f64,
    wb: f64,
    wc: f64,
    wd: f64,
) -> f64 {
    #[inline]
    fn diff2(a: f64, b: f64) -> [f64; 2] {
        let (x, y) = two_diff(a, b);
        [y, x]
    }

    let adx = diff2(pa.x, pd.x);
    let ady = diff2(pa.y, pd.y);
    let bdx = diff2(pb.x, pd.x);
    let bdy = diff2(pb.y, pd.y);
    let cdx = diff2(pc.x, pd.x);
    let cdy = diff2(pc.y, pd.y);
    let adw = diff2(wa, wd);
    let bdw = diff2(wb, wd);
    let cdw = diff2(wc, wd);

    let lift = |dx: &[f64], dy: &[f64], dw: &[f64]| -> Vec<f64> {
        expansion_diff(
            &expansion_sum(&expansion_product(dx, dx), &expansion_product(dy, dy)),
            dw,
        )
    };
    let alift = lift(&adx, &ady, &adw);
    let blift = lift(&bdx, &bdy, &bdw);
    let clift = lift(&cdx, &cdy, &cdw);

    // Minor determinants: bc = bdx*cdy - cdx*bdy, etc.
    let bc = expansion_diff(
        &expansion_product(&bdx, &cdy),
        &expansion_product(&cdx, &bdy),
    );
    let ca = expansion_diff(
        &expansion_product(&cdx, &ady),
        &expansion_product(&adx, &cdy),
    );
    let ab = expansion_diff(
        &expansion_product(&adx, &bdy),
        &expansion_product(&bdx, &ady),
    );

    let det = expansion_sum(
        &expansion_sum(
            &expansion_product(&alift, &bc),
            &expansion_product(&blift, &ca),
        ),
        &expansion_product(&clift, &ab),
    );
    expansion_sign(&det)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::{incircle, orient2d, predicate_totals};
    use proptest::prelude::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// Three-way sign (f64::signum returns ±1 for ±0, which is wrong here).
    fn sgn(x: f64) -> i32 {
        if x > 0.0 {
            1
        } else if x < 0.0 {
            -1
        } else {
            0
        }
    }

    fn sgn_i(x: i128) -> i32 {
        x.signum() as i32
    }

    // Exact i128 oracle for integer coordinates and integer weights.
    #[allow(clippy::too_many_arguments)]
    fn power_incircle_i128(
        pa: Point,
        pb: Point,
        pc: Point,
        pd: Point,
        wa: i128,
        wb: i128,
        wc: i128,
        wd: i128,
    ) -> i128 {
        let d = |q: Point| (q.x as i128 - pd.x as i128, q.y as i128 - pd.y as i128);
        let (adx, ady) = d(pa);
        let (bdx, bdy) = d(pb);
        let (cdx, cdy) = d(pc);
        let alift = adx * adx + ady * ady - (wa - wd);
        let blift = bdx * bdx + bdy * bdy - (wb - wd);
        let clift = cdx * cdx + cdy * cdy - (wc - wd);
        alift * (bdx * cdy - cdx * bdy)
            + blift * (cdx * ady - adx * cdy)
            + clift * (adx * bdy - bdx * ady)
    }

    fn orient2d_i128(pa: Point, pb: Point, pc: Point) -> i128 {
        let (ax, ay) = (pa.x as i128, pa.y as i128);
        let (bx, by) = (pb.x as i128, pb.y as i128);
        let (cx, cy) = (pc.x as i128, pc.y as i128);
        (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    }

    #[test]
    fn equal_weights_match_incircle_sign() {
        let coords: Vec<Point> = (0..4)
            .flat_map(|x| (0..4).map(move |y| p(x as f64, y as f64)))
            .collect();
        for w in [0.0, 1.0, -2.5, 1e9] {
            for (i, &a) in coords.iter().enumerate() {
                for (j, &b) in coords.iter().enumerate().skip(i + 1) {
                    for &c in coords.iter().skip(j + 1) {
                        if orient2d(a, b, c) <= 0.0 {
                            continue;
                        }
                        for &d in coords.iter().step_by(3) {
                            let weighted = power_incircle(a, b, c, d, w, w, w, w);
                            let plain = incircle(a, b, c, d);
                            assert_eq!(sgn(weighted), sgn(plain), "w={w} a={a} b={b} c={c} d={d}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn weight_pulls_the_conflict_region() {
        // Unit circle through (1,0), (0,1), (-1,0); (2,0) is outside, so
        // unweighted there is no conflict — but weight 4 on the query
        // site shrinks its power distance enough to conflict.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        let d = p(2.0, 0.0);
        assert!(power_incircle(a, b, c, d, 0.0, 0.0, 0.0, 0.0) < 0.0);
        assert!(power_incircle(a, b, c, d, 0.0, 0.0, 0.0, 4.0) > 0.0);
        // Symmetrically, weighting the triangle's sites pushes the query
        // point out of conflict even at the circumcenter.
        assert!(power_incircle(a, b, c, p(0.0, 0.0), 0.0, 0.0, 0.0, 0.0) > 0.0);
        assert!(power_incircle(a, b, c, p(0.0, 0.0), 3.0, 3.0, 3.0, 0.0) < 0.0);
    }

    #[test]
    fn exactly_orthogonal_is_zero() {
        // Row reduction: with pa=(2,0) wa=4, pd at the origin with wd=0
        // has lift 0; the configuration is engineered so the determinant
        // is exactly zero (all quantities small integers).
        // Sites (±2, 0) and (0, 2) with weight 4 have lifted heights
        // |p|² − w = 0 — coplanar with the origin lifted at height 0.
        let a = p(2.0, 0.0);
        let b = p(0.0, 2.0);
        let c = p(-2.0, 0.0);
        let d = p(0.0, 0.0);
        assert_eq!(power_incircle(a, b, c, d, 4.0, 4.0, 4.0, 0.0), 0.0);
    }

    #[test]
    fn power_incircle_against_i128_oracle_small_grid() {
        let coords: Vec<Point> = (0..3)
            .flat_map(|x| (0..3).map(move |y| p(x as f64, y as f64)))
            .collect();
        let weights = [0i128, 1, 3, -2];
        let mut checked = 0u32;
        for (i, &a) in coords.iter().enumerate() {
            for (j, &b) in coords.iter().enumerate() {
                if j == i {
                    continue;
                }
                for (k, &c) in coords.iter().enumerate() {
                    if k == i || k == j || orient2d_i128(a, b, c) <= 0 {
                        continue;
                    }
                    for &d in coords.iter().step_by(2) {
                        for (wi, &wa) in weights.iter().enumerate() {
                            let wb = weights[(wi + 1) % 4];
                            let wc = weights[(wi + 2) % 4];
                            let wd = weights[(wi + 3) % 4];
                            let fast = power_incircle(
                                a, b, c, d, wa as f64, wb as f64, wc as f64, wd as f64,
                            );
                            let exact = power_incircle_i128(a, b, c, d, wa, wb, wc, wd);
                            assert_eq!(sgn(fast), sgn_i(exact), "a={a} b={b} c={c} d={d} wa={wa}");
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 500);
    }

    proptest! {
        /// Random integer sites and weights against the exact i128
        /// oracle: the adaptive predicate's sign must always agree, on
        /// generic and (thanks to the small range) frequently degenerate
        /// configurations alike.
        #[test]
        fn power_incircle_matches_i128_oracle(
            ax in -8i32..8, ay in -8i32..8,
            bx in -8i32..8, by in -8i32..8,
            cx in -8i32..8, cy in -8i32..8,
            dx in -8i32..8, dy in -8i32..8,
            wa in -64i32..64, wb in -64i32..64,
            wc in -64i32..64, wd in -64i32..64,
        ) {
            let a = p(ax as f64, ay as f64);
            let b = p(bx as f64, by as f64);
            let c = p(cx as f64, cy as f64);
            let d = p(dx as f64, dy as f64);
            let fast = power_incircle(
                a, b, c, d, wa as f64, wb as f64, wc as f64, wd as f64,
            );
            let exact = power_incircle_i128(
                a, b, c, d, wa as i128, wb as i128, wc as i128, wd as i128,
            );
            prop_assert_eq!(sgn(fast), sgn_i(exact));
        }

        /// Scaled coordinates with huge weights: stress the stage-A error
        /// bound where the lift rows cancel catastrophically.
        #[test]
        fn power_incircle_oracle_with_dominant_weights(
            ax in -4i32..4, ay in -4i32..4,
            bx in -4i32..4, by in -4i32..4,
            cx in -4i32..4, cy in -4i32..4,
            dx in -4i32..4, dy in -4i32..4,
            wa in -1_000_000i64..1_000_000,
            wd in -1_000_000i64..1_000_000,
        ) {
            let a = p(ax as f64, ay as f64);
            let b = p(bx as f64, by as f64);
            let c = p(cx as f64, cy as f64);
            let d = p(dx as f64, dy as f64);
            let fast = power_incircle(a, b, c, d, wa as f64, 0.0, 0.0, wd as f64);
            let exact = power_incircle_i128(
                a, b, c, d, wa as i128, 0, 0, wd as i128,
            );
            prop_assert_eq!(sgn(fast), sgn_i(exact));
        }
    }

    #[test]
    fn totals_count_both_stages() {
        let t0 = predicate_totals();
        // Generic configuration: decided by the stage-A filter.
        assert!(
            power_incircle(
                p(1.0, 0.0),
                p(0.0, 1.0),
                p(-1.0, 0.0),
                p(0.0, 0.0),
                0.0,
                0.0,
                0.0,
                0.0
            ) > 0.0
        );
        let t1 = predicate_totals();
        assert_eq!(t1.filter_fast_accepts - t0.filter_fast_accepts, 1);
        assert_eq!(t1.exact_fallbacks, t0.exact_fallbacks);
        // Exactly orthogonal configuration: must fall back.
        assert_eq!(
            power_incircle(
                p(2.0, 0.0),
                p(0.0, 2.0),
                p(-2.0, 0.0),
                p(0.0, 0.0),
                4.0,
                4.0,
                4.0,
                0.0
            ),
            0.0
        );
        let t2 = predicate_totals();
        assert_eq!(t2.exact_fallbacks - t1.exact_fallbacks, 1);
    }

    #[test]
    fn weighted_point_power_dist() {
        let s = WeightedPoint::new(p(1.0, 2.0), 4.0);
        assert_eq!(s.power_dist(p(1.0, 2.0)), -4.0);
        assert_eq!(s.power_dist(p(4.0, 6.0)), 21.0);
        // Zero weight is the squared Euclidean distance.
        let z = WeightedPoint::new(p(1.0, 2.0), 0.0);
        assert_eq!(z.power_dist(p(4.0, 6.0)), 25.0);
    }
}
