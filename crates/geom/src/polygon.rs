//! Simple polygons: the query areas of the paper.
//!
//! A [`Polygon`] is a closed region bounded by a simple (non-self-
//! intersecting) ring of vertices. All containment semantics are **closed**:
//! boundary points count as inside, matching the paper's definition of an
//! area query ("all elements contained in a specified area").

use crate::expansion::{expansion_sign, expansion_sum, two_product, two_two_diff};
use crate::point::Point;
use crate::predicates::{orient2d, orient2d_filter_batch};
use crate::rect::Rect;
use crate::segment::Segment;
use crate::GeomError;
use std::cmp::Ordering;

/// Lane buffer capacity of [`CrossingScan`] (one filter flush). Small
/// enough that initialising the buffers is negligible next to one
/// predicate call, large enough to fill vector registers.
const SCAN_LANES: usize = 8;

/// Batched crossing-number accumulator for the prepared at-slab-boundary
/// scan (the rare `p.y == vertex y` case, whose candidate lists can be
/// dense — every edge touching that boundary value).
///
/// Edges are pushed in ring order; the ones that can influence the answer
/// (bounding box contains `p`, or the edge straddles the horizontal ray
/// through `p`) are gathered into structure-of-arrays lane buffers and
/// their orientation against `p` is evaluated through the batched
/// error-bound filter ([`orient2d_filter_batch`]), falling back to the
/// adaptive [`orient2d`] only for lanes the filter cannot certify.
///
/// The final `(boundary, inside)` answer is **bit-identical** to the
/// sequential scan: each edge's boundary/toggle decision depends only on
/// its own exact orientation sign, the boundary flag is a disjunction and
/// the parity toggle is commutative, so batching changes evaluation
/// order but never the result — for any ring, including non-simple and
/// degenerate ones.
pub(crate) struct CrossingScan {
    p: Point,
    len: usize,
    ax: [f64; SCAN_LANES],
    ay: [f64; SCAN_LANES],
    bx: [f64; SCAN_LANES],
    by: [f64; SCAN_LANES],
    /// bit 0: p inside the edge's closed bbox (boundary-eligible);
    /// bit 1: the edge straddles the ray (toggle-eligible);
    /// bit 2: the edge points upward (`b.y > a.y`).
    flags: [u8; SCAN_LANES],
    boundary: bool,
    inside: bool,
}

impl CrossingScan {
    pub(crate) fn new(p: Point) -> CrossingScan {
        CrossingScan {
            p,
            len: 0,
            ax: [0.0; SCAN_LANES],
            ay: [0.0; SCAN_LANES],
            bx: [0.0; SCAN_LANES],
            by: [0.0; SCAN_LANES],
            flags: [0; SCAN_LANES],
            boundary: false,
            inside: false,
        }
    }

    /// Feeds one ring edge `a → b`. Edges that can neither host `p` on
    /// their boundary nor toggle the crossing parity are dropped without
    /// touching the predicates, exactly as in the sequential scan.
    #[inline]
    pub(crate) fn push(&mut self, a: Point, b: Point) {
        let p = self.p;
        let bbox = p.x >= a.x.min(b.x)
            && p.x <= a.x.max(b.x)
            && p.y >= a.y.min(b.y)
            && p.y <= a.y.max(b.y);
        let straddle = (a.y > p.y) != (b.y > p.y);
        if !bbox && !straddle {
            return;
        }
        let i = self.len;
        self.ax[i] = a.x;
        self.ay[i] = a.y;
        self.bx[i] = b.x;
        self.by[i] = b.y;
        self.flags[i] = u8::from(bbox) | (u8::from(straddle) << 1) | (u8::from(b.y > a.y) << 2);
        self.len = i + 1;
        if self.len == SCAN_LANES {
            self.flush();
        }
    }

    /// Toggles the crossing parity directly (for callers that prove a
    /// strictly-right crossing by coordinate comparison alone).
    #[inline]
    pub(crate) fn toggle(&mut self) {
        self.inside = !self.inside;
    }

    /// Resolves the buffered lanes: batched filter first, adaptive
    /// fallback per undecided lane.
    fn flush(&mut self) {
        let n = self.len;
        self.len = 0;
        if n == 0 {
            return;
        }
        let mut det = [0.0f64; SCAN_LANES];
        let mut decided = [false; SCAN_LANES];
        if n > 2 {
            orient2d_filter_batch(
                &self.ax[..n],
                &self.ay[..n],
                &self.bx[..n],
                &self.by[..n],
                self.p.x,
                self.p.y,
                &mut det[..n],
                &mut decided[..n],
            );
        }
        for i in 0..n {
            let o = if decided[i] {
                det[i]
            } else {
                orient2d(
                    Point::new(self.ax[i], self.ay[i]),
                    Point::new(self.bx[i], self.by[i]),
                    self.p,
                )
            };
            let flags = self.flags[i];
            if flags & 1 != 0 && o == 0.0 {
                self.boundary = true;
            }
            if flags & 2 != 0 && o != 0.0 && (o > 0.0) == (flags & 4 != 0) {
                self.inside = !self.inside;
            }
        }
    }

    /// Final `(boundary, inside)` answer.
    pub(crate) fn finish(mut self) -> (bool, bool) {
        self.flush();
        (self.boundary, self.inside)
    }
}

/// A polygon given by its vertex ring (implicitly closed, no repeated
/// first/last vertex). May be convex or concave; vertices may wind either
/// way.
///
/// The MBR is computed once at construction and cached: every segment test
/// starts with an MBR fast-reject, and the traditional filter step queries
/// it per query — recomputing it `O(n)` per call would put an `O(n)` scan
/// in front of every `O(1)` reject.
#[derive(Clone, Debug)]
pub struct Polygon {
    vertices: Vec<Point>,
    mbr: Rect,
}

impl PartialEq for Polygon {
    fn eq(&self, other: &Polygon) -> bool {
        // The MBR is derived from the vertices; comparing it would be
        // redundant.
        self.vertices == other.vertices
    }
}

impl Polygon {
    /// Internal constructor computing the cached derived data.
    fn from_vertices(vertices: Vec<Point>) -> Polygon {
        let mbr = Rect::from_points(vertices.iter().copied());
        Polygon { vertices, mbr }
    }

    /// Creates a polygon, validating that it has at least three vertices,
    /// all coordinates are finite, and its area is non-zero.
    ///
    /// Simplicity (non-self-intersection) is *not* verified here because the
    /// check is `O(n²)`; call [`Polygon::is_simple`] when needed.
    pub fn new(vertices: Vec<Point>) -> Result<Polygon, GeomError> {
        if vertices.len() < 3 {
            return Err(GeomError::TooFewVertices(vertices.len()));
        }
        if let Some(p) = vertices.iter().find(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate(*p));
        }
        let poly = Polygon::from_vertices(vertices);
        // Exact degeneracy test: the float shoelace sum can round to 0.0
        // for a sliver polygon with genuinely non-zero area (rejecting a
        // valid input) or to non-zero for an exactly degenerate ring
        // (accepting one) — `winding_sign` certifies the true sign.
        if poly.winding_sign() == Ordering::Equal {
            return Err(GeomError::DegeneratePolygon);
        }
        Ok(poly)
    }

    /// Creates a polygon without any validation.
    ///
    /// Useful for internal construction where the invariants are known to
    /// hold (e.g. clipped Voronoi cells).
    pub fn new_unchecked(vertices: Vec<Point>) -> Polygon {
        Polygon::from_vertices(vertices)
    }

    /// The vertex ring.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the polygon has no vertices (only possible via
    /// [`Polygon::new_unchecked`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Iterates over the boundary edges in ring order.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area: positive for counter-clockwise winding (shoelace).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            sum += p.x * q.y - q.x * p.y;
        }
        sum / 2.0
    }

    /// Unsigned area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Boundary length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Area-weighted centroid. Falls back to the vertex average for
    /// degenerate (zero-area) rings.
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a += w;
        }
        if a.abs() < f64::MIN_POSITIVE {
            // vaq-lint: allow(float-exactness) -- vertex-average fallback
            // for a degenerate ring: `n as f64` is an exact small count and
            // the centroid is approximate by definition.
            let inv = 1.0 / n as f64;
            let sum = self.vertices.iter().fold(Point::ORIGIN, |acc, &p| acc + p);
            return sum * inv;
        }
        Point::new(cx / (3.0 * a), cy / (3.0 * a))
    }

    /// Minimum bounding rectangle of the polygon.
    ///
    /// This is the window the traditional filter step queries — the paper's
    /// whole argument is about `area(MBR) ≫ area(polygon)`.
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.mbr
    }

    /// Exact sign of the signed area: `Greater` for counter-clockwise
    /// winding, `Less` for clockwise, `Equal` for exactly zero area.
    ///
    /// Stage A evaluates the float shoelace sum alongside a running sum of
    /// term magnitudes; when `|sum|` clears the accumulated rounding-error
    /// bound, the float sign is certified. Otherwise stage B re-evaluates
    /// the shoelace sum in expansion arithmetic, which is exact for all
    /// finite inputs. This is the winding decision [`Polygon::new`] and
    /// [`Polygon::is_ccw`] use — [`Polygon::signed_area`] itself stays
    /// float because its magnitude consumers tolerate rounding; only its
    /// *sign* consumers must not.
    pub fn winding_sign(&self) -> Ordering {
        let n = self.vertices.len();
        if n < 3 {
            return Ordering::Equal;
        }
        // Stage A: float shoelace with a running absolute-error bound.
        let mut sum = 0.0;
        let mut absum = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            sum += p.x * q.y - q.x * p.y;
            absum += (p.x * q.y).abs() + (q.x * p.y).abs();
        }
        // γ-style bound: 2n products (one rounding each) plus ~2n
        // additions, applied to the magnitude sum — (2n + 4)·ε·absum
        // over-counts both, so a certified sign is genuinely certified.
        // vaq-lint: allow(float-exactness) -- `n as f64` counts vertices
        // (exact far below 2^53) to scale the stage-A error bound.
        let bound = (2.0 * n as f64 + 4.0) * f64::EPSILON * absum;
        if sum > bound {
            return Ordering::Greater;
        }
        if sum < -bound {
            return Ordering::Less;
        }
        // vaq-lint: allow(float-exactness) -- absum is a sum of absolute
        // values: exactly 0.0 only when every shoelace term is exactly
        // zero, making the float sum itself exact.
        if absum == 0.0 {
            return Ordering::Equal;
        }
        // Stage B: exact shoelace in expansion arithmetic.
        let mut acc: Vec<f64> = vec![0.0];
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let (hi1, lo1) = two_product(p.x, q.y);
            let (hi2, lo2) = two_product(q.x, p.y);
            acc = expansion_sum(&acc, &two_two_diff(hi1, lo1, hi2, lo2));
        }
        let s = expansion_sign(&acc);
        if s > 0.0 {
            Ordering::Greater
        } else if s < 0.0 {
            Ordering::Less
        } else {
            Ordering::Equal
        }
    }

    /// `true` when the vertices wind counter-clockwise (exact decision via
    /// [`Polygon::winding_sign`]).
    #[inline]
    pub fn is_ccw(&self) -> bool {
        self.winding_sign() == Ordering::Greater
    }

    /// The polygon with reversed winding.
    pub fn reversed(&self) -> Polygon {
        let mut v = self.vertices.clone();
        v.reverse();
        // Reversal preserves the vertex set, hence the MBR.
        Polygon {
            vertices: v,
            mbr: self.mbr,
        }
    }

    /// `true` when `p` lies inside the polygon or exactly on its boundary.
    ///
    /// Robust crossing-number test: the straddle rule uses strict/non-strict
    /// `y` comparisons so each crossing is counted exactly once, and all
    /// sidedness decisions go through the exact [`orient2d`] predicate.
    /// This is the `Contains(A, p)` primitive of the paper's Algorithm 1 and
    /// of the traditional refine step.
    ///
    /// Deliberately a sequential scalar scan: the per-edge bbox/straddle
    /// rejects cost a few cycles each and leave so few lanes needing the
    /// orientation predicate that gathering them for the batched filter
    /// was *measured slower* on the paper's star-polygon workloads
    /// (`reproduce predicates` records the pipeline comparison). The
    /// predicate itself still reports its filter/fallback split through
    /// [`crate::predicates::predicate_totals`].
    pub fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        let mut inside = false;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[(i + 1) % n];
            // Boundary check first: exact, and also catches horizontal edges
            // that the straddle rule skips.
            if Rect::new(vi, vj).contains_point(p) && orient2d(vi, vj, p) == 0.0 {
                return true;
            }
            if (vi.y > p.y) != (vj.y > p.y) {
                let o = orient2d(vi, vj, p);
                // For an upward edge, a crossing to the right of p means p is
                // strictly left of the directed edge; downward is symmetric.
                if o != 0.0 && (o > 0.0) == (vj.y > vi.y) {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// `true` when `p` lies strictly inside (boundary excluded).
    pub fn contains_strict(&self, p: Point) -> bool {
        self.contains(p) && !self.on_boundary(p)
    }

    /// `true` when `p` lies exactly on the boundary ring.
    pub fn on_boundary(&self, p: Point) -> bool {
        self.edges().any(|e| e.contains_point(p))
    }

    /// `true` when the segment shares at least one point with the **closed
    /// region** bounded by the polygon.
    ///
    /// This is the `Intersects(line, A)` primitive of Algorithm 1: a segment
    /// intersects the area when it crosses/touches the boundary *or* lies
    /// entirely inside.
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        // Cheap reject: the segment's bbox must meet the polygon's MBR.
        if !self.mbr().intersects(&s.bbox()) {
            return false;
        }
        if self.contains(s.a) || self.contains(s.b) {
            return true;
        }
        self.edges().any(|e| e.intersects(s))
    }

    /// `true` when the segment crosses or touches the polygon's **boundary
    /// ring** (ignoring full containment).
    ///
    /// When one endpoint is already known to lie outside the polygon this
    /// is equivalent to [`Polygon::intersects_segment`] — a segment from an
    /// outside point shares a point with the closed region iff it reaches
    /// the boundary — while skipping both containment tests. The Voronoi
    /// area query's expansion step (where the popped point has just failed
    /// the containment test) uses this fast path.
    pub fn boundary_intersects_segment(&self, s: &Segment) -> bool {
        if !self.mbr().intersects(&s.bbox()) {
            return false;
        }
        self.edges().any(|e| e.intersects(s))
    }

    /// `true` when the closed rectangle and the closed polygon share a point.
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        if r.is_empty() || !self.mbr().intersects(r) {
            return false;
        }
        // Any polygon vertex inside the rect?
        if self.vertices.iter().any(|&v| r.contains_point(v)) {
            return true;
        }
        // Any rect corner inside the polygon (covers rect ⊂ polygon)?
        if r.corners().iter().any(|&c| self.contains(c)) {
            return true;
        }
        // Any boundary crossing?
        let corners = r.corners();
        (0..4).any(|i| {
            let side = Segment::new(corners[i], corners[(i + 1) % 4]);
            self.edges().any(|e| e.intersects(&side))
        })
    }

    /// `true` when this polygon's closed region intersects another polygon's
    /// closed region. `O(n·m)`; used by the cell expansion policy where one
    /// operand is a small convex Voronoi cell.
    pub fn intersects_polygon(&self, other: &Polygon) -> bool {
        if other.is_empty() || self.is_empty() || !self.mbr().intersects(&other.mbr()) {
            return false;
        }
        if other.vertices.iter().any(|&v| self.contains(v)) {
            return true;
        }
        if self.vertices.iter().any(|&v| other.contains(v)) {
            return true;
        }
        self.edges()
            .any(|e| other.edges().any(|f| e.intersects(&f)))
    }

    /// `true` when no two non-adjacent edges intersect and adjacent edges
    /// share only their common vertex. `O(n²)`.
    pub fn is_simple(&self) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        let edges: Vec<Segment> = self.edges().collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let adjacent = j == i + 1 || (i == 0 && j == n - 1);
                if adjacent {
                    // Shared vertex only: the far endpoint of one edge must
                    // not lie on the other edge.
                    let (e, f) = (&edges[i], &edges[j]);
                    let shared = if j == i + 1 { e.b } else { e.a };
                    let e_far = if j == i + 1 { e.a } else { e.b };
                    let f_far = if j == i + 1 { f.b } else { f.a };
                    debug_assert!(
                        (j == i + 1 && e.b == f.a) || (i == 0 && j == n - 1 && e.a == f.b)
                    );
                    let _ = shared;
                    if e.contains_point(f_far) || f.contains_point(e_far) {
                        return false;
                    }
                } else if edges[i].intersects(&edges[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` when all turns share one orientation (collinear runs allowed).
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        let mut saw_pos = false;
        let mut saw_neg = false;
        for i in 0..n {
            let o = orient2d(
                self.vertices[i],
                self.vertices[(i + 1) % n],
                self.vertices[(i + 2) % n],
            );
            if o > 0.0 {
                saw_pos = true;
            } else if o < 0.0 {
                saw_neg = true;
            }
            if saw_pos && saw_neg {
                return false;
            }
        }
        true
    }

    /// The polygon translated by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Polygon {
        Polygon::from_vertices(
            self.vertices
                .iter()
                .map(|&p| Point::new(p.x + dx, p.y + dy))
                .collect(),
        )
    }

    /// The polygon scaled by `factor` about `about`.
    pub fn scaled(&self, factor: f64, about: Point) -> Polygon {
        Polygon::from_vertices(
            self.vertices
                .iter()
                .map(|&p| about + (p - about) * factor)
                .collect(),
        )
    }

    /// A point guaranteed to lie strictly inside the polygon.
    ///
    /// Used as the "arbitrary position in A" from which Algorithm 1 seeds
    /// its nearest-neighbour query. The centroid of a concave polygon can
    /// fall outside it, so this uses the classic representative-point
    /// construction: cast a horizontal line at a height that avoids every
    /// vertex, and take the midpoint of the first inside-span.
    pub fn interior_point(&self) -> Point {
        let c = self.centroid();
        if self.contains_strict(c) {
            return c;
        }
        // Choose a scan height strictly between two distinct vertex ys,
        // as close to the middle of the y-extent as possible.
        let mut ys: Vec<f64> = self.vertices.iter().map(|p| p.y).collect();
        ys.sort_by(f64::total_cmp);
        ys.dedup();
        debug_assert!(ys.len() >= 2, "validated polygons have positive area");
        // vaq-lint: allow(panic-hygiene) -- a validated polygon has
        // non-zero area, hence at least two distinct vertex ys (the
        // debug_assert above states the same invariant).
        let mid = (ys[0] + ys[ys.len() - 1]) / 2.0;
        // Pick the gap [ys[k], ys[k+1]) containing (or nearest to) mid.
        let mut best = (f64::INFINITY, 0usize);
        for k in 0..ys.len() - 1 {
            let g = (ys[k] + ys[k + 1]) / 2.0;
            let d = (g - mid).abs();
            if ys[k + 1] > ys[k] && d < best.0 {
                best = (d, k);
            }
        }
        let y = (ys[best.1] + ys[best.1 + 1]) / 2.0;
        // Collect x-crossings of the horizontal line at y. Because y avoids
        // every vertex, each straddling edge crosses exactly once.
        let mut xs: Vec<f64> = Vec::new();
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if (a.y > y) != (b.y > y) {
                xs.push(a.x + (b.x - a.x) * (y - a.y) / (b.y - a.y));
            }
        }
        xs.sort_by(f64::total_cmp);
        debug_assert!(xs.len() >= 2 && xs.len().is_multiple_of(2));
        // Midpoint of the widest inside-span for numerical headroom.
        // vaq-lint: allow(panic-hygiene) -- the scan line runs strictly
        // inside the y-extent and avoids every vertex, so it crosses the
        // boundary an even number of times, at least twice.
        let mut best_span = (xs[0], xs[1]);
        // vaq-lint: allow(panic-hygiene) -- same even-crossing invariant
        // as the line above.
        let mut best_w = xs[1] - xs[0];
        for k in (0..xs.len() - 1).step_by(2) {
            let w = xs[k + 1] - xs[k];
            if w > best_w {
                best_w = w;
                best_span = (xs[k], xs[k + 1]);
            }
        }
        Point::new((best_span.0 + best_span.1) / 2.0, y)
    }

    /// Winding number of `p` — a slower containment oracle used by tests.
    /// Non-zero winding means inside (for simple polygons this agrees with
    /// the crossing-number rule except exactly on the boundary).
    pub fn winding_number(&self, p: Point) -> i32 {
        let n = self.vertices.len();
        let mut wn = 0i32;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if a.y <= p.y {
                if b.y > p.y && orient2d(a, b, p) > 0.0 {
                    wn += 1;
                }
            } else if b.y <= p.y && orient2d(a, b, p) < 0.0 {
                wn -= 1;
            }
        }
        wn
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Polygon {
        Polygon::from_vertices(r.corners().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square() -> Polygon {
        Polygon::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]).unwrap()
    }

    /// Concave "L" shape.
    fn ell() -> Polygon {
        Polygon::new(vec![
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 4.0),
            p(0.0, 4.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            Polygon::new(vec![p(0.0, 0.0), p(1.0, 1.0)]),
            Err(GeomError::TooFewVertices(2))
        ));
        assert!(matches!(
            Polygon::new(vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)]),
            Err(GeomError::DegeneratePolygon)
        ));
        assert!(matches!(
            Polygon::new(vec![p(0.0, 0.0), p(1.0, f64::NAN), p(2.0, 0.0)]),
            Err(GeomError::NonFiniteCoordinate(_))
        ));
        assert!(square().is_simple());
    }

    #[test]
    fn areas_and_winding() {
        let sq = square();
        assert_eq!(sq.area(), 16.0);
        assert!(sq.is_ccw());
        assert!(!sq.reversed().is_ccw());
        assert_eq!(sq.reversed().area(), 16.0);
        assert_eq!(ell().area(), 7.0);
        assert_eq!(sq.perimeter(), 16.0);
    }

    #[test]
    fn centroid_square() {
        assert!(square().centroid().approx_eq(p(2.0, 2.0), 1e-12));
        // Winding direction must not change the centroid.
        assert!(square().reversed().centroid().approx_eq(p(2.0, 2.0), 1e-12));
    }

    #[test]
    fn mbr_of_ell() {
        let b = ell().mbr();
        assert_eq!(b.min, p(0.0, 0.0));
        assert_eq!(b.max, p(4.0, 4.0));
        // The crux of the paper: MBR area (16) ≫ polygon area (7).
        assert!(b.area() > 2.0 * ell().area());
    }

    #[test]
    fn contains_convex() {
        let sq = square();
        assert!(sq.contains(p(2.0, 2.0)));
        assert!(sq.contains(p(0.0, 0.0))); // vertex
        assert!(sq.contains(p(2.0, 0.0))); // edge
        assert!(sq.contains(p(4.0, 4.0)));
        assert!(!sq.contains(p(4.0 + 1e-12, 2.0)));
        assert!(!sq.contains(p(-1.0, 2.0)));
    }

    #[test]
    fn contains_concave() {
        let l = ell();
        assert!(l.contains(p(0.5, 3.0))); // vertical arm
        assert!(l.contains(p(3.0, 0.5))); // horizontal arm
        assert!(!l.contains(p(2.0, 2.0))); // the notch
        assert!(l.contains(p(1.0, 1.0))); // reflex vertex
        assert!(l.contains(p(2.0, 1.0))); // notch edge
        assert!(!l.contains(p(2.0, 1.0 + 1e-12)));
    }

    #[test]
    fn contains_agrees_for_both_windings() {
        let l = ell();
        let r = l.reversed();
        let probes = [
            p(0.5, 3.0),
            p(3.0, 0.5),
            p(2.0, 2.0),
            p(1.0, 1.0),
            p(-0.5, 0.5),
            p(0.0, 2.0),
        ];
        for q in probes {
            assert_eq!(l.contains(q), r.contains(q), "probe {q}");
        }
    }

    #[test]
    fn strict_vs_closed_containment() {
        let sq = square();
        assert!(sq.contains(p(0.0, 2.0)));
        assert!(!sq.contains_strict(p(0.0, 2.0)));
        assert!(sq.contains_strict(p(2.0, 2.0)));
        assert!(sq.on_boundary(p(0.0, 2.0)));
        assert!(!sq.on_boundary(p(2.0, 2.0)));
    }

    #[test]
    fn segment_intersection_closed_region() {
        let sq = square();
        // Fully inside.
        assert!(sq.intersects_segment(&Segment::new(p(1.0, 1.0), p(2.0, 2.0))));
        // Crossing.
        assert!(sq.intersects_segment(&Segment::new(p(-1.0, 2.0), p(5.0, 2.0))));
        // Touching a vertex from outside.
        assert!(sq.intersects_segment(&Segment::new(p(-1.0, -1.0), p(0.0, 0.0))));
        // Fully outside.
        assert!(!sq.intersects_segment(&Segment::new(p(5.0, 5.0), p(6.0, 5.0))));
        // Outside the notch of the L: endpoints outside, no crossing.
        assert!(!ell().intersects_segment(&Segment::new(p(2.0, 2.0), p(3.0, 3.0))));
    }

    #[test]
    fn rect_intersection() {
        let l = ell();
        assert!(l.intersects_rect(&Rect::new(p(0.0, 0.0), p(0.5, 0.5))));
        // Rect fully in the notch: MBRs overlap but regions don't.
        assert!(!l.intersects_rect(&Rect::new(p(2.0, 2.0), p(3.5, 3.5))));
        // Rect containing the whole polygon.
        assert!(l.intersects_rect(&Rect::new(p(-1.0, -1.0), p(5.0, 5.0))));
        assert!(!l.intersects_rect(&Rect::new(p(10.0, 10.0), p(11.0, 11.0))));
    }

    #[test]
    fn polygon_polygon_intersection() {
        let sq = square();
        let shifted = sq.translated(3.0, 3.0);
        assert!(sq.intersects_polygon(&shifted));
        let far = sq.translated(10.0, 0.0);
        assert!(!sq.intersects_polygon(&far));
        // Nested polygons intersect.
        let inner = sq.scaled(0.25, p(2.0, 2.0));
        assert!(sq.intersects_polygon(&inner));
        assert!(inner.intersects_polygon(&sq));
    }

    #[test]
    fn simplicity_detection() {
        assert!(square().is_simple());
        assert!(ell().is_simple());
        // Bowtie. Its signed area is exactly zero (the two lobes cancel), so
        // `Polygon::new` would reject it as degenerate; bypass validation.
        let bow = Polygon::new_unchecked(vec![p(0.0, 0.0), p(2.0, 2.0), p(2.0, 0.0), p(0.0, 2.0)]);
        assert!(!bow.is_simple());
        // An asymmetric bowtie has nonzero signed area and passes validation,
        // but is still non-simple.
        let bow2 = Polygon::new(vec![p(0.0, 0.0), p(4.0, 3.0), p(4.0, 0.0), p(0.0, 2.0)]).unwrap();
        assert!(!bow2.is_simple());
    }

    #[test]
    fn convexity() {
        assert!(square().is_convex());
        assert!(!ell().is_convex());
        assert!(square().reversed().is_convex());
    }

    #[test]
    fn interior_point_inside() {
        // Concave polygon whose centroid falls in the notch: a "U" shape.
        let u = Polygon::new(vec![
            p(0.0, 0.0),
            p(5.0, 0.0),
            p(5.0, 5.0),
            p(4.0, 5.0),
            p(4.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 5.0),
            p(0.0, 5.0),
        ])
        .unwrap();
        let ip = u.interior_point();
        assert!(u.contains_strict(ip), "got {ip}");
        assert!(square().contains_strict(square().interior_point()));
        assert!(ell().contains_strict(ell().interior_point()));
    }

    #[test]
    fn winding_number_oracle_agrees() {
        let l = ell();
        for q in [
            p(0.5, 0.5),
            p(3.5, 0.5),
            p(2.0, 2.0),
            p(-1.0, 0.5),
            p(0.5, 3.9),
        ] {
            let by_crossing = l.contains(q) && !l.on_boundary(q);
            let by_winding = l.winding_number(q) != 0;
            assert_eq!(by_crossing, by_winding, "probe {q}");
        }
    }

    #[test]
    fn from_rect() {
        let poly: Polygon = Rect::new(p(0.0, 0.0), p(2.0, 1.0)).into();
        assert_eq!(poly.area(), 2.0);
        assert!(poly.is_ccw());
        assert!(poly.is_convex());
    }

    #[test]
    fn scaled_and_translated() {
        let sq = square();
        let t = sq.translated(1.0, 2.0);
        assert_eq!(t.mbr().min, p(1.0, 2.0));
        let s = sq.scaled(0.5, p(0.0, 0.0));
        assert_eq!(s.area(), 4.0);
    }
}
