//! Triangle utilities: circumcircles, areas, containment.

use crate::point::Point;
use crate::predicates::orient2d;

/// Twice the signed area of the triangle `(a, b, c)` — positive when CCW.
///
/// This is the *exact-sign* value from [`orient2d`]; its magnitude is an
/// ordinary floating-point approximation.
#[inline]
pub fn signed_area2(a: Point, b: Point, c: Point) -> f64 {
    orient2d(a, b, c)
}

/// Unsigned area of the triangle `(a, b, c)`.
#[inline]
pub fn area(a: Point, b: Point, c: Point) -> f64 {
    signed_area2(a, b, c).abs() / 2.0
}

/// Circumcentre of the triangle `(a, b, c)`.
///
/// Returns `None` when the points are exactly collinear (no circumcircle).
/// Computed relative to `a` for better conditioning.
pub fn circumcenter(a: Point, b: Point, c: Point) -> Option<Point> {
    if orient2d(a, b, c) == 0.0 {
        return None;
    }
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let acx = c.x - a.x;
    let acy = c.y - a.y;
    let d = 2.0 * (abx * acy - aby * acx);
    let ab_sq = abx * abx + aby * aby;
    let ac_sq = acx * acx + acy * acy;
    let ux = (acy * ab_sq - aby * ac_sq) / d;
    let uy = (abx * ac_sq - acx * ab_sq) / d;
    Some(Point::new(a.x + ux, a.y + uy))
}

/// Squared circumradius of the triangle `(a, b, c)`, or `None` if collinear.
pub fn circumradius_sq(a: Point, b: Point, c: Point) -> Option<f64> {
    circumcenter(a, b, c).map(|o| o.dist_sq(a))
}

/// `true` when `p` lies inside or on the boundary of the triangle `(a, b, c)`.
///
/// Works for both orientations of the triangle; exact on boundaries.
pub fn contains(a: Point, b: Point, c: Point, p: Point) -> bool {
    let d1 = orient2d(a, b, p);
    let d2 = orient2d(b, c, p);
    let d3 = orient2d(c, a, p);
    let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
    let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
    !(has_neg && has_pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn area_and_orientation() {
        let (a, b, c) = (p(0.0, 0.0), p(4.0, 0.0), p(0.0, 3.0));
        assert_eq!(area(a, b, c), 6.0);
        assert!(signed_area2(a, b, c) > 0.0);
        assert!(signed_area2(a, c, b) < 0.0);
        assert_eq!(area(a, b, p(8.0, 0.0)), 0.0);
    }

    #[test]
    fn circumcenter_right_triangle() {
        // Circumcentre of a right triangle is the hypotenuse midpoint.
        let o = circumcenter(p(0.0, 0.0), p(4.0, 0.0), p(0.0, 3.0)).unwrap();
        assert!(o.approx_eq(p(2.0, 1.5), 1e-12));
        let r_sq = circumradius_sq(p(0.0, 0.0), p(4.0, 0.0), p(0.0, 3.0)).unwrap();
        assert!((r_sq - 6.25).abs() < 1e-12);
    }

    #[test]
    fn circumcenter_equidistant() {
        let (a, b, c) = (p(1.3, 2.7), p(-4.1, 0.2), p(2.2, -3.3));
        let o = circumcenter(a, b, c).unwrap();
        let (da, db, dc) = (o.dist(a), o.dist(b), o.dist(c));
        assert!((da - db).abs() < 1e-9);
        assert!((db - dc).abs() < 1e-9);
    }

    #[test]
    fn circumcenter_collinear_is_none() {
        assert!(circumcenter(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)).is_none());
    }

    #[test]
    fn containment_closed() {
        let (a, b, c) = (p(0.0, 0.0), p(4.0, 0.0), p(0.0, 4.0));
        assert!(contains(a, b, c, p(1.0, 1.0))); // interior
        assert!(contains(a, b, c, p(2.0, 0.0))); // edge
        assert!(contains(a, b, c, p(0.0, 0.0))); // vertex
        assert!(contains(a, b, c, p(2.0, 2.0))); // hypotenuse
        assert!(!contains(a, b, c, p(3.0, 3.0)));
        assert!(!contains(a, b, c, p(-0.1, 1.0)));
        // Same answers for the CW orientation.
        assert!(contains(a, c, b, p(1.0, 1.0)));
        assert!(!contains(a, c, b, p(3.0, 3.0)));
    }
}
