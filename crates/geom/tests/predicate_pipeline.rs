//! Differential suite for the exact-predicate pipeline rework:
//!
//! * the **batched filter stage** — `orient2d_filter_batch` must certify
//!   only bit-exact signs (never lie), agree with the scalar predicate
//!   lane by lane, and decide the overwhelming majority of generic
//!   inputs;
//! * the **ordered-slab containment** — `PreparedPolygon::contains`
//!   binary-searches a left-to-right edge order proven at build time for
//!   dense slabs; it must stay bit-identical to the raw polygon *and* to
//!   the pre-existing slab scan (`contains_linear`), including on
//!   polygons dense with collinear/horizontal edges and repeated
//!   y-coordinates.

use proptest::prelude::*;
use vaq_geom::{orient2d, orient2d_filter_batch, Point, Polygon, PreparedPolygon};

fn pt(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// Coordinates on a coarse grid with few distinct values: maximal
/// pressure on collinear runs, horizontal edges and repeated vertex ys.
fn grid_coord() -> impl Strategy<Value = i64> {
    -4i64..5
}

/// A star polygon around `(0.5, 0.5)`.
fn star_polygon(k: usize, seed: u64) -> Option<Polygon> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut angles: Vec<f64> = (0..k).map(|_| next() * std::f64::consts::TAU).collect();
    angles.sort_by(f64::total_cmp);
    let verts: Vec<Point> = angles
        .iter()
        .map(|&t| {
            let r = 0.05 + 0.4 * next();
            pt(0.5 + r * t.cos(), 0.5 + r * t.sin())
        })
        .collect();
    Polygon::new(verts).ok()
}

/// A zigzag comb with `teeth` teeth: every slab between the valley line
/// (y = 1) and the lowest peak is spanned by ~2·teeth edges, so combs
/// with many teeth drive slab occupancy past the binary-search
/// threshold; peak heights repeat y-coordinates aggressively.
fn comb_polygon(teeth: usize, jitter: &[u8]) -> Option<Polygon> {
    let mut verts: Vec<Point> = Vec::new();
    verts.push(pt(0.0, 0.0));
    verts.push(pt(2.0 * teeth as f64, 0.0));
    for t in (0..teeth).rev() {
        let x = 2.0 * t as f64;
        let peak = 2.0 + f64::from(jitter[t % jitter.len().max(1)]);
        verts.push(pt(x + 1.5, peak));
        verts.push(pt(x + 1.0, 1.0));
        verts.push(pt(x + 0.5, peak));
    }
    Polygon::new(verts).ok()
}

/// Probes hammering the slab machinery: every vertex, every vertex y at
/// shifted x (slab boundaries), every edge midpoint, plus off-grid picks.
fn probe_battery(poly: &Polygon, extra: &[(f64, f64)]) -> Vec<Point> {
    let mut probes: Vec<Point> = extra.iter().map(|&(x, y)| pt(x, y)).collect();
    let mbr = poly.mbr();
    for v in poly.vertices() {
        probes.push(*v);
        probes.push(pt(v.x + 0.5, v.y));
        probes.push(pt(v.x - 0.5, v.y));
        probes.push(pt(mbr.min.x - 0.25, v.y));
        probes.push(pt(mbr.max.x + 0.25, v.y));
        // Strictly inside a slab attached to this vertex.
        probes.push(pt(v.x, v.y + 0.25));
        probes.push(pt(v.x + 0.125, v.y - 0.25));
    }
    for e in poly.edges() {
        probes.push(e.midpoint());
    }
    probes
}

/// The three containment paths agree bit for bit: raw scan, prepared
/// (search or prefix-skip scan, whatever each slab chose), and the
/// forced linear slab scan.
fn assert_contains_agree(poly: &Polygon, probes: &[Point]) -> Result<(), TestCaseError> {
    let prep = PreparedPolygon::new(poly.clone());
    for &q in probes {
        let want = poly.contains(q);
        prop_assert_eq!(prep.contains(q), want, "prepared contains {}", q);
        prop_assert_eq!(
            prep.contains_linear(q),
            want,
            "linear prepared contains {}",
            q
        );
        prop_assert_eq!(
            prep.contains_strict(q),
            poly.contains_strict(q),
            "contains_strict {}",
            q
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Grid polygons: collinear runs, horizontal edges, repeated
    /// y-coordinates, and (since simplicity is not validated) occasional
    /// self-intersections — all must match the raw scan.
    #[test]
    fn grid_polygons_contains_agrees(
        coords in proptest::collection::vec((grid_coord(), grid_coord()), 3..14),
        extra in proptest::collection::vec((grid_coord(), grid_coord()), 8),
    ) {
        let verts: Vec<Point> = coords.iter().map(|&(x, y)| pt(x as f64, y as f64)).collect();
        let Ok(poly) = Polygon::new(verts) else { return Ok(()); };
        let extra: Vec<(f64, f64)> = extra
            .iter()
            .flat_map(|&(x, y)| [(x as f64, y as f64), (x as f64 + 0.5, y as f64 + 0.5)])
            .collect();
        let battery = probe_battery(&poly, &extra);
        assert_contains_agree(&poly, &battery)?;
    }

    /// Combs across the occupancy spectrum: small ones stay on the
    /// prefix-skip scan, dense ones (≥ ~32 teeth) cross the threshold
    /// and exercise the ordered binary search; a simple ring must never
    /// *fail* the order proof.
    #[test]
    fn comb_polygons_contains_agrees(
        teeth in 2usize..80,
        jitter in proptest::collection::vec(0u8..3, 16),
    ) {
        let Some(poly) = comb_polygon(teeth, &jitter) else { return Ok(()); };
        let prep = PreparedPolygon::new(poly.clone());
        let (_, _, refused) = prep.slab_modes();
        prop_assert_eq!(refused, 0, "a simple comb must never fail the order proof");
        let battery = probe_battery(&poly, &[(1.25, 1.25), (3.0, 0.5), (2.0, 2.5)]);
        assert_contains_agree(&poly, &battery)?;
    }

    /// Star polygons (the paper's query areas). When the ring is simple
    /// (an angular gap over π can make this generator self-intersect —
    /// those must still *agree*, just without the guarantee), no slab
    /// may fail the order proof.
    #[test]
    fn star_polygons_never_refuse_and_agree(
        seed in 0u64..4000,
        k in 3usize..64,
        raw_probes in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10),
    ) {
        let Some(poly) = star_polygon(k, seed) else { return Ok(()); };
        let prep = PreparedPolygon::new(poly.clone());
        if poly.is_simple() {
            let (_, _, refused) = prep.slab_modes();
            prop_assert_eq!(refused, 0, "simple polygons never fail the order proof");
        }
        let battery = probe_battery(&poly, &raw_probes);
        assert_contains_agree(&poly, &battery)?;
    }

    /// Near-degenerate slivers with nearly coincident slab boundaries.
    #[test]
    fn sliver_polygons_contains_agrees(
        seed in 0u64..2000,
        thinness in 1u32..12,
    ) {
        let eps = 2.0_f64.powi(-(thinness as i32) * 3);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let n = 6;
        let mut verts: Vec<Point> = (0..n).map(|i| pt(i as f64, eps * next())).collect();
        verts.extend((0..n).rev().map(|i| pt(i as f64, eps * (1.0 + next()))));
        let Ok(poly) = Polygon::new(verts) else { return Ok(()); };
        let battery = probe_battery(&poly, &[(2.5, eps * 0.5), (2.5, -eps), (2.5, 3.0 * eps)]);
        assert_contains_agree(&poly, &battery)?;
    }

    /// The filter batch itself: on random lanes the certified determinant
    /// must equal the scalar `orient2d` bit for bit.
    #[test]
    fn filter_batch_matches_scalar(
        lanes in proptest::collection::vec(
            ((-8i64..9, -8i64..9), (-8i64..9, -8i64..9), (-8i64..9, -8i64..9)),
            1..48,
        ),
    ) {
        let n = lanes.len();
        let ax: Vec<f64> = lanes.iter().map(|l| l.0 .0 as f64 * 0.125).collect();
        let ay: Vec<f64> = lanes.iter().map(|l| l.0 .1 as f64 * 0.125).collect();
        let bx: Vec<f64> = lanes.iter().map(|l| l.1 .0 as f64 * 0.125).collect();
        let by: Vec<f64> = lanes.iter().map(|l| l.1 .1 as f64 * 0.125).collect();
        let c = pt(lanes[0].2 .0 as f64 * 0.125, lanes[0].2 .1 as f64 * 0.125);
        let mut det = vec![0.0f64; n];
        let mut dec = vec![false; n];
        orient2d_filter_batch(&ax, &ay, &bx, &by, c.x, c.y, &mut det, &mut dec);
        for i in 0..n {
            let scalar = orient2d(pt(ax[i], ay[i]), pt(bx[i], by[i]), c);
            if dec[i] {
                prop_assert_eq!(det[i].to_bits(), scalar.to_bits(), "lane {}", i);
            }
        }
    }
}

/// Deterministic regression: a dense simple polygon (1024-vertex gear)
/// whose mid slabs carry well over the search threshold — the binary
/// search must engage and stay bit-identical to the raw scan, including
/// on slab-boundary probes.
#[test]
fn dense_gear_engages_binary_search() {
    let k = 1024;
    let verts: Vec<Point> = (0..k)
        .map(|i| {
            let t = std::f64::consts::TAU * i as f64 / k as f64;
            let r = if i % 2 == 0 { 1.0 } else { 0.35 };
            pt(r * t.cos(), r * t.sin())
        })
        .collect();
    let poly = Polygon::new(verts).unwrap();
    let prep = PreparedPolygon::new(poly.clone());
    let (search, _, refused) = prep.slab_modes();
    assert!(search > 0, "dense slabs must take the binary-search path");
    assert_eq!(refused, 0, "a simple gear never fails the order proof");
    for i in -24..=24 {
        for j in -24..=24 {
            let q = pt(f64::from(i) / 20.0, f64::from(j) / 20.0);
            let want = poly.contains(q);
            assert_eq!(prep.contains(q), want, "probe {q}");
            assert_eq!(prep.contains_linear(q), want, "probe {q}");
        }
    }
    // Probes snapped onto vertex y-coordinates (the at-boundary scan).
    for v in poly.vertices().iter().step_by(17) {
        for dx in [-1.5, -0.2, 0.0, 0.2, 1.5] {
            let q = pt(v.x + dx, v.y);
            assert_eq!(prep.contains(q), poly.contains(q), "boundary probe {q}");
        }
    }
}

/// A *dense* self-crossing ring: enough spanning edges to attempt the
/// order proof, which must fail (Refused) and fall back to the scan —
/// still bit-identical to the raw scan.
#[test]
fn dense_self_crossing_ring_refuses_and_matches() {
    let teeth = 70;
    let jitter = [0u8, 1, 2];
    let mut verts = Vec::new();
    verts.push(pt(0.0, 0.0));
    verts.push(pt(2.0 * teeth as f64, 0.0));
    for t in (0..teeth).rev() {
        let x = 2.0 * t as f64;
        let peak = 2.0 + f64::from(jitter[t % jitter.len()]);
        verts.push(pt(x + 1.5, peak));
        // One sabotaged valley reaches far right, crossing its
        // neighbouring teeth inside the dense slab.
        let vx = if t == teeth / 2 { x + 9.0 } else { x + 1.0 };
        verts.push(pt(vx, 1.0));
        verts.push(pt(x + 0.5, peak));
    }
    let poly = Polygon::new(verts).unwrap();
    assert!(!poly.is_simple(), "the sabotage must cross edges");
    let prep = PreparedPolygon::new(poly.clone());
    let (_, _, refused) = prep.slab_modes();
    assert!(refused > 0, "the crossing slab cannot prove an order");
    for i in 0..180 {
        for j in -2..=10 {
            let q = pt(f64::from(i) * 0.5 - 5.0, f64::from(j) * 0.5);
            assert_eq!(prep.contains(q), poly.contains(q), "probe {q}");
            assert_eq!(prep.contains_linear(q), poly.contains(q), "probe {q}");
        }
    }
}
