//! Property-based tests for the geometry kernel: the robust predicates
//! against exact integer arithmetic, containment against a winding-number
//! oracle, and the algebraic symmetries every primitive must satisfy.

use proptest::prelude::*;
use vaq_geom::{
    clip_bisector, clip_halfplane, convex_hull_points, incircle, orient2d, Point, Polygon, Rect,
    Segment,
};

fn pt(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// Three-way sign of an f64 (`f64::signum` maps ±0 to ±1, which is wrong
/// for predicate comparisons).
fn sign(x: f64) -> i32 {
    if x > 0.0 {
        1
    } else if x < 0.0 {
        -1
    } else {
        0
    }
}

/// Exact orientation sign over integer coordinates via i128 arithmetic.
fn exact_orient_sign(ax: i64, ay: i64, bx: i64, by: i64, cx: i64, cy: i64) -> i32 {
    let det = i128::from(bx - ax) * i128::from(cy - ay) - i128::from(by - ay) * i128::from(cx - ax);
    match det.cmp(&0) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

/// Winding-number containment oracle (non-zero rule; boundary handled
/// separately). Independent implementation for cross-checking `contains`.
fn winding_contains(poly: &Polygon, p: Point) -> bool {
    if poly.on_boundary(p) {
        return true;
    }
    poly.winding_number(p) != 0
}

/// Strategy: coordinates on a coarse integer grid — maximal degeneracy
/// pressure (collinear triples, coincident points are common).
fn grid_coord() -> impl Strategy<Value = i64> {
    -8i64..9
}

/// Strategy: "nasty" float coordinates around 1.0 where rounding errors in
/// naive determinants are likely.
fn nasty_coord() -> impl Strategy<Value = f64> {
    (0i32..400).prop_map(|k| 1.0 + f64::from(k) * f64::EPSILON * 3.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// orient2d must agree with exact integer arithmetic on grid points.
    #[test]
    fn orient2d_matches_exact_integers(
        ax in grid_coord(), ay in grid_coord(),
        bx in grid_coord(), by in grid_coord(),
        cx in grid_coord(), cy in grid_coord(),
    ) {
        let got = orient2d(
            pt(ax as f64, ay as f64),
            pt(bx as f64, by as f64),
            pt(cx as f64, cy as f64),
        );
        let want = exact_orient_sign(ax, ay, bx, by, cx, cy);
        prop_assert_eq!(
            sign(got),
            want,
            "orient2d sign mismatch at ({},{}) ({},{}) ({},{})",
            ax, ay, bx, by, cx, cy
        );
    }

    /// orient2d never reports a wrong *nonzero* sign on adversarial floats:
    /// antisymmetry under operand swap is exact.
    #[test]
    fn orient2d_antisymmetry_on_nasty_floats(
        ax in nasty_coord(), ay in nasty_coord(),
        bx in nasty_coord(), by in nasty_coord(),
        cx in nasty_coord(), cy in nasty_coord(),
    ) {
        let a = pt(ax, ay);
        let b = pt(bx, by);
        let c = pt(cx, cy);
        let abc = orient2d(a, b, c);
        let bca = orient2d(b, c, a);
        let cab = orient2d(c, a, b);
        let bac = orient2d(b, a, c);
        // Cyclic permutations preserve the sign; a swap negates it.
        prop_assert_eq!(sign(abc), sign(bca));
        prop_assert_eq!(sign(abc), sign(cab));
        prop_assert_eq!(sign(abc), -sign(bac));
    }

    /// incircle symmetry: cyclic permutations of the first three arguments
    /// preserve the sign (they preserve orientation).
    #[test]
    fn incircle_cyclic_symmetry(
        coords in proptest::array::uniform8(grid_coord()),
    ) {
        let [ax, ay, bx, by, cx, cy, dx, dy] = coords;
        let a = pt(ax as f64, ay as f64);
        let b = pt(bx as f64, by as f64);
        let c = pt(cx as f64, cy as f64);
        let d = pt(dx as f64, dy as f64);
        let abc = incircle(a, b, c, d);
        let bca = incircle(b, c, a, d);
        let cab = incircle(c, a, b, d);
        prop_assert_eq!(sign(abc), sign(bca));
        prop_assert_eq!(sign(abc), sign(cab));
    }

    /// The circumcircle's defining points are *on* the circle: incircle of
    /// any of the three defining points is exactly zero.
    #[test]
    fn incircle_of_defining_point_is_zero(
        coords in proptest::array::uniform6(grid_coord()),
    ) {
        let [ax, ay, bx, by, cx, cy] = coords;
        let a = pt(ax as f64, ay as f64);
        let b = pt(bx as f64, by as f64);
        let c = pt(cx as f64, cy as f64);
        prop_assert_eq!(incircle(a, b, c, a), 0.0);
        prop_assert_eq!(incircle(a, b, c, b), 0.0);
        prop_assert_eq!(incircle(a, b, c, c), 0.0);
    }

    /// Segment intersection is symmetric and invariant under endpoint
    /// reversal.
    #[test]
    fn segment_intersection_symmetries(
        coords in proptest::array::uniform8(grid_coord()),
    ) {
        let [ax, ay, bx, by, cx, cy, dx, dy] = coords;
        let s = Segment::new(pt(ax as f64, ay as f64), pt(bx as f64, by as f64));
        let t = Segment::new(pt(cx as f64, cy as f64), pt(dx as f64, dy as f64));
        let hit = s.intersects(&t);
        prop_assert_eq!(hit, t.intersects(&s), "argument symmetry");
        prop_assert_eq!(hit, s.reversed().intersects(&t), "reversal invariance");
        prop_assert_eq!(hit, s.intersects(&t.reversed()));
        // intersection_point is Some exactly when they intersect.
        prop_assert_eq!(s.intersection_point(&t).is_some(), hit);
    }

    /// Shared-endpoint segments always intersect.
    #[test]
    fn segments_sharing_an_endpoint_intersect(
        coords in proptest::array::uniform6(grid_coord()),
    ) {
        let [ax, ay, bx, by, cx, cy] = coords;
        let a = pt(ax as f64, ay as f64);
        let s = Segment::new(a, pt(bx as f64, by as f64));
        let t = Segment::new(a, pt(cx as f64, cy as f64));
        prop_assert!(s.intersects(&t));
    }

    /// `Polygon::contains` agrees with the independent winding-number
    /// oracle on random star polygons and random probes.
    #[test]
    fn containment_matches_winding_oracle(
        seed in 0u64..10_000,
        probes in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 16),
    ) {
        // Deterministic star polygon from the seed.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut angles: Vec<f64> = (0..8).map(|_| next() * std::f64::consts::TAU).collect();
        angles.sort_by(f64::total_cmp);
        // One radius per vertex: sorted angles around an interior centre
        // with positive radii give a star-shaped — hence simple — ring.
        // (Drawing separate radii for x and y can self-intersect, where
        // crossing-number and winding-number legitimately disagree.)
        let verts: Vec<Point> = angles
            .iter()
            .map(|&t| {
                let r = 0.1 + 0.3 * next();
                pt(0.5 + r * t.cos(), 0.5 + r * t.sin())
            })
            .collect();
        let Ok(poly) = Polygon::new(verts) else { return Ok(()); };
        prop_assume!(poly.is_simple());
        for (x, y) in probes {
            let p = pt(x, y);
            let want = winding_contains(&poly, p);
            prop_assert_eq!(poly.contains(p), want, "probe {}", p);
        }
    }

    /// Convex hull: contains all inputs, is convex, and is invariant under
    /// input permutation.
    #[test]
    fn convex_hull_invariants(
        coords in proptest::collection::vec((grid_coord(), grid_coord()), 3..40),
    ) {
        let pts: Vec<Point> = coords.iter().map(|&(x, y)| pt(x as f64, y as f64)).collect();
        let hull = convex_hull_points(&pts);
        if hull.len() >= 3 {
            let hull_poly = Polygon::new_unchecked(hull.clone());
            prop_assert!(hull_poly.is_convex());
            for &p in &pts {
                prop_assert!(hull_poly.contains(p), "hull must contain {}", p);
            }
        }
        // Permutation invariance (as a set of vertices).
        let mut rev = pts.clone();
        rev.reverse();
        let mut h1: Vec<(u64, u64)> =
            hull.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
        let mut h2: Vec<(u64, u64)> = convex_hull_points(&rev)
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        h1.sort_unstable();
        h2.sort_unstable();
        prop_assert_eq!(h1, h2);
    }

    /// Half-plane clipping never grows the area and is idempotent.
    #[test]
    fn clipping_shrinks_and_is_idempotent(
        coords in proptest::array::uniform4(grid_coord()),
    ) {
        let [ax, ay, bx, by] = coords;
        let a = pt(ax as f64, ay as f64);
        let b = pt(bx as f64, by as f64);
        prop_assume!(a != b);
        let square = vec![pt(-10.0, -10.0), pt(10.0, -10.0), pt(10.0, 10.0), pt(-10.0, 10.0)];
        let clipped = clip_halfplane(&square, a, b);
        let area = |ring: &[Point]| {
            if ring.len() < 3 { 0.0 } else { Polygon::new_unchecked(ring.to_vec()).area() }
        };
        prop_assert!(area(&clipped) <= area(&square) + 1e-9);
        let twice = clip_halfplane(&clipped, a, b);
        prop_assert!((area(&twice) - area(&clipped)).abs() < 1e-9, "idempotent");
    }

    /// Bisector clipping keeps exactly the generator's side: every vertex
    /// of the clipped ring is at least as close to the generator.
    #[test]
    fn bisector_keeps_closer_side(
        px in 0.0f64..1.0, py in 0.0f64..1.0,
        qx in 0.0f64..1.0, qy in 0.0f64..1.0,
    ) {
        let p = pt(px, py);
        let q = pt(qx, qy);
        prop_assume!(p.dist_sq(q) > 1e-12);
        let square = vec![pt(0.0, 0.0), pt(1.0, 0.0), pt(1.0, 1.0), pt(0.0, 1.0)];
        let cell = clip_bisector(&square, p, q);
        for v in &cell {
            prop_assert!(v.dist_sq(p) <= v.dist_sq(q) + 1e-9);
        }
    }

    /// Rect algebra: union contains both operands; intersection is
    /// contained in both; `intersects` agrees with `intersection`.
    #[test]
    fn rect_algebra(
        coords in proptest::array::uniform8(grid_coord()),
    ) {
        let [ax, ay, bx, by, cx, cy, dx, dy] = coords;
        let r1 = Rect::new(pt(ax as f64, ay as f64), pt(bx as f64, by as f64));
        let r2 = Rect::new(pt(cx as f64, cy as f64), pt(dx as f64, dy as f64));
        let u = r1.union(&r2);
        prop_assert!(u.contains_rect(&r1) && u.contains_rect(&r2));
        match r1.intersection(&r2) {
            Some(i) => {
                prop_assert!(r1.intersects(&r2));
                prop_assert!(r1.contains_rect(&i) && r2.contains_rect(&i));
            }
            None => prop_assert!(!r1.intersects(&r2)),
        }
    }

    /// Polygon area is translation-invariant and scales quadratically.
    #[test]
    fn area_under_similarity_transforms(
        seedx in -5i64..5, seedy in -5i64..5, scale in 1u32..5,
    ) {
        let tri = Polygon::new(vec![pt(0.0, 0.0), pt(4.0, 1.0), pt(1.0, 3.0)]).unwrap();
        let moved = tri.translated(seedx as f64, seedy as f64);
        prop_assert!((moved.area() - tri.area()).abs() < 1e-12);
        let s = f64::from(scale);
        let scaled = tri.scaled(s, pt(0.0, 0.0));
        prop_assert!((scaled.area() - tri.area() * s * s).abs() < 1e-9);
    }
}
