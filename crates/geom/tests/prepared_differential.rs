//! Differential property suite: `PreparedPolygon` / `PreparedRegion` must
//! agree with the raw `Polygon` / `Region` implementations on **every**
//! operation, for every input — the prepared layer's whole contract is
//! "same answers, fewer edges examined".
//!
//! The generators are deliberately adversarial:
//! * grid-coordinate polygons — collinear runs, horizontal/vertical edges,
//!   coincident vertices, non-simple rings;
//! * star polygons of varying vertex count — the paper's query areas;
//! * degenerate slivers — needle-thin rings stressing slab boundaries;
//! * probes snapped onto vertex y-coordinates (the slab-boundary fallback
//!   path), onto vertices, edge midpoints and the MBR frame — plus random
//!   interior/exterior points.

use proptest::prelude::*;
use vaq_geom::{Point, Polygon, PreparedPolygon, PreparedRegion, Rect, Region, Segment};

fn pt(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// Coordinates on a coarse integer grid: maximal degeneracy pressure.
fn grid_coord() -> impl Strategy<Value = i64> {
    -6i64..7
}

/// A star polygon around `(0.5, 0.5)`: sorted angles, one radius per
/// vertex — simple by construction.
fn star_polygon(k: usize, seed: u64) -> Option<Polygon> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut angles: Vec<f64> = (0..k).map(|_| next() * std::f64::consts::TAU).collect();
    angles.sort_by(f64::total_cmp);
    let verts: Vec<Point> = angles
        .iter()
        .map(|&t| {
            let r = 0.05 + 0.4 * next();
            pt(0.5 + r * t.cos(), 0.5 + r * t.sin())
        })
        .collect();
    Polygon::new(verts).ok()
}

/// Probe battery for one polygon: random points plus every boundary-
/// grazing configuration the slab/grid code special-cases.
fn probe_battery(poly: &Polygon, extra: &[(f64, f64)]) -> Vec<Point> {
    let mut probes: Vec<Point> = extra.iter().map(|&(x, y)| pt(x, y)).collect();
    let mbr = poly.mbr();
    for v in poly.vertices() {
        probes.push(*v);
        // Same y as a vertex (slab-boundary fallback), varying x.
        probes.push(pt(v.x + 0.25, v.y));
        probes.push(pt(v.x - 0.25, v.y));
        probes.push(pt(mbr.min.x - 0.1, v.y));
        probes.push(pt(mbr.max.x + 0.1, v.y));
    }
    for e in poly.edges() {
        probes.push(e.midpoint());
    }
    // The MBR frame (closed-boundary semantics).
    probes.push(mbr.min);
    probes.push(mbr.max);
    probes.push(pt(mbr.min.x, mbr.max.y));
    probes.push(pt((mbr.min.x + mbr.max.x) / 2.0, mbr.min.y));
    probes
}

/// Asserts every prepared operation against raw on one polygon.
fn assert_polygon_agrees(
    poly: &Polygon,
    probes: &[Point],
    segments: &[Segment],
    others: &[Polygon],
) -> Result<(), TestCaseError> {
    let prep = PreparedPolygon::new(poly.clone());
    prop_assert_eq!(prep.mbr(), poly.mbr(), "mbr");
    for &q in probes {
        prop_assert_eq!(prep.contains(q), poly.contains(q), "contains {}", q);
        prop_assert_eq!(
            prep.on_boundary(q),
            poly.on_boundary(q),
            "on_boundary {}",
            q
        );
        prop_assert_eq!(
            prep.contains_strict(q),
            poly.contains_strict(q),
            "contains_strict {}",
            q
        );
    }
    for s in segments {
        prop_assert_eq!(
            prep.boundary_intersects_segment(s),
            poly.boundary_intersects_segment(s),
            "boundary_intersects_segment {:?}",
            s
        );
        prop_assert_eq!(
            prep.intersects_segment(s),
            poly.intersects_segment(s),
            "intersects_segment {:?}",
            s
        );
    }
    for other in others {
        prop_assert_eq!(
            prep.intersects_polygon(other),
            poly.intersects_polygon(other),
            "intersects_polygon"
        );
    }
    // Interior point: bit-identical cached value.
    prop_assert_eq!(
        prep.interior_point(),
        poly.interior_point(),
        "interior_point"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Grid polygons: horizontal edges, collinear runs, and (since
    /// simplicity is not validated) occasional self-intersections — the
    /// prepared layer must match raw on all of them.
    #[test]
    fn grid_polygons_agree(
        coords in proptest::collection::vec((grid_coord(), grid_coord()), 3..12),
        probes in proptest::collection::vec((grid_coord(), grid_coord()), 8),
        seg in proptest::array::uniform4(grid_coord()),
    ) {
        let verts: Vec<Point> = coords.iter().map(|&(x, y)| pt(x as f64, y as f64)).collect();
        let Ok(poly) = Polygon::new(verts) else { return Ok(()); };
        let extra: Vec<(f64, f64)> =
            probes.iter().map(|&(x, y)| (x as f64, y as f64)).collect();
        let battery = probe_battery(&poly, &extra);
        let [ax, ay, bx, by] = seg;
        let segments = [
            Segment::new(pt(ax as f64, ay as f64), pt(bx as f64, by as f64)),
            Segment::new(pt(ax as f64, ay as f64), pt(ax as f64, ay as f64)),
        ];
        let others = [
            Polygon::new(vec![pt(ax as f64, ay as f64), pt(bx as f64, by as f64), pt(0.5, 9.0)])
                .ok(),
            Some(Polygon::from(Rect::new(pt(-1.5, -1.5), pt(1.5, 1.5)))),
        ];
        let others: Vec<Polygon> = others.into_iter().flatten().collect();
        assert_polygon_agrees(&poly, &battery, &segments, &others)?;
    }

    /// Star polygons across the paper's query-size regime, with probes
    /// concentrated around the boundary.
    #[test]
    fn star_polygons_agree(
        seed in 0u64..5000,
        k in 3usize..48,
        raw_probes in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 12),
    ) {
        let Some(poly) = star_polygon(k, seed) else { return Ok(()); };
        let battery = probe_battery(&poly, &raw_probes);
        // Short segments near the boundary — the shape of Voronoi
        // expansion tests.
        let mut segments = Vec::new();
        for w in battery.windows(2) {
            segments.push(Segment::new(w[0], w[1]));
        }
        let others = [
            star_polygon(5, seed ^ 0xABCD),
            star_polygon(4, seed ^ 0x1234).map(|s| s.translated(0.4, 0.0)),
        ];
        let others: Vec<Polygon> = others.into_iter().flatten().collect();
        assert_polygon_agrees(&poly, &battery, &segments, &others)?;
    }

    /// Degenerate slivers: thin tall/wide rings whose vertices are nearly
    /// collinear; slab boundaries are dense and nearly coincident.
    #[test]
    fn sliver_polygons_agree(
        seed in 0u64..3000,
        thinness in 1u32..12,
        horizontal in 0u64..2,
    ) {
        let eps = 2.0_f64.powi(-(thinness as i32) * 3);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        // A zigzag sliver along the x-axis (or y-axis when transposed).
        let n = 6;
        let mut verts: Vec<Point> = (0..n)
            .map(|i| pt(i as f64, eps * next()))
            .collect();
        verts.extend((0..n).rev().map(|i| pt(i as f64, eps * (1.0 + next()))));
        if horizontal == 1 {
            verts = verts.into_iter().map(|p| pt(p.y, p.x)).collect();
        }
        let Ok(poly) = Polygon::new(verts) else { return Ok(()); };
        let battery = probe_battery(&poly, &[(2.5, eps * 0.5), (2.5, -eps), (2.5, 3.0 * eps)]);
        let segments = [
            Segment::new(pt(2.5, -1.0), pt(2.5, 1.0)),
            Segment::new(pt(-1.0, eps), pt(7.0, eps)),
            Segment::new(pt(0.0, 0.0), pt(5.0, eps)),
        ];
        assert_polygon_agrees(&poly, &battery, &segments, &[])?;
    }

    /// Regions with holes: containment, segment and polygon tests agree
    /// across the ring structure.
    #[test]
    fn regions_agree(
        seed in 0u64..4000,
        hx in 2i64..5,
        hy in 2i64..5,
        probes in proptest::collection::vec((-1.0f64..9.0, -1.0f64..9.0), 16),
    ) {
        let outer = Polygon::new(vec![pt(0.0, 0.0), pt(8.0, 0.0), pt(8.0, 8.0), pt(0.0, 8.0)])
            .unwrap();
        let hole = Polygon::new(vec![
            pt(hx as f64, hy as f64),
            pt(hx as f64 + 2.0, hy as f64),
            pt(hx as f64 + 2.0, hy as f64 + 2.0),
            pt(hx as f64, hy as f64 + 2.0),
        ])
        .unwrap();
        let second = star_polygon(8, seed).map(|s| s.translated(5.5, 5.5));
        let mut holes = vec![hole.clone()];
        if let Some(s) = second {
            // Keep holes disjoint and inside the outer ring.
            if s.mbr().min.x > hx as f64 + 2.0 || s.mbr().min.y > hy as f64 + 2.0 {
                let inside = Rect::new(pt(0.1, 0.1), pt(7.9, 7.9));
                if inside.contains_rect(&s.mbr()) {
                    holes.push(s);
                }
            }
        }
        let region = Region::new(outer, holes);
        let prep = PreparedRegion::new(region.clone());
        prop_assert_eq!(prep.mbr(), region.mbr());
        let mut battery: Vec<Point> = probes.iter().map(|&(x, y)| pt(x, y)).collect();
        for h in region.holes() {
            battery.extend(probe_battery(h, &[]));
        }
        for &q in &battery {
            prop_assert_eq!(prep.contains(q), region.contains(q), "contains {}", q);
        }
        for w in battery.windows(2) {
            let s = Segment::new(w[0], w[1]);
            prop_assert_eq!(
                prep.boundary_intersects_segment(&s),
                region.boundary_intersects_segment(&s),
                "region boundary_intersects_segment {:?}", s
            );
            prop_assert_eq!(
                prep.intersects_segment(&s),
                region.intersects_segment(&s),
                "region intersects_segment {:?}", s
            );
        }
        let pokes = [
            Polygon::new(vec![
                pt(hx as f64 + 0.5, hy as f64 + 0.5),
                pt(hx as f64 + 1.5, hy as f64 + 0.5),
                pt(hx as f64 + 1.0, hy as f64 + 1.5),
            ])
            .unwrap(),
            Polygon::new(vec![pt(0.5, 0.5), pt(3.0, 0.5), pt(2.0, 3.5)]).unwrap(),
            Polygon::new(vec![pt(20.0, 20.0), pt(21.0, 20.0), pt(20.5, 21.0)]).unwrap(),
        ];
        for poly in &pokes {
            prop_assert_eq!(
                prep.intersects_polygon(poly),
                region.intersects_polygon(poly),
                "region intersects_polygon"
            );
        }
        prop_assert_eq!(prep.interior_point(), region.interior_point());
    }
}

/// Deterministic regression battery: the exact configurations that
/// motivated each pruning proof.
#[test]
fn slab_boundary_and_horizontal_edge_regressions() {
    // Plus-sign polygon: every edge horizontal or vertical, every probe
    // below hits a slab boundary or an edge line.
    let plus = Polygon::new(vec![
        pt(2.0, 0.0),
        pt(4.0, 0.0),
        pt(4.0, 2.0),
        pt(6.0, 2.0),
        pt(6.0, 4.0),
        pt(4.0, 4.0),
        pt(4.0, 6.0),
        pt(2.0, 6.0),
        pt(2.0, 4.0),
        pt(0.0, 4.0),
        pt(0.0, 2.0),
        pt(2.0, 2.0),
    ])
    .unwrap();
    let prep = PreparedPolygon::new(plus.clone());
    for i in -1..=13 {
        for j in -1..=13 {
            let q = pt(f64::from(i) * 0.5, f64::from(j) * 0.5);
            assert_eq!(prep.contains(q), plus.contains(q), "probe {q}");
            assert_eq!(prep.on_boundary(q), plus.on_boundary(q), "probe {q}");
        }
    }
}

#[test]
fn segment_grid_covers_long_and_degenerate_segments() {
    let poly = star_polygon(32, 77).unwrap();
    let prep = PreparedPolygon::new(poly.clone());
    let mbr = poly.mbr();
    // Long diagonals crossing the whole grid, axis-aligned skewers, and
    // zero-length segments on and off the boundary.
    let mut segs = vec![
        Segment::new(
            pt(mbr.min.x - 1.0, mbr.min.y - 1.0),
            pt(mbr.max.x + 1.0, mbr.max.y + 1.0),
        ),
        Segment::new(
            pt(mbr.min.x - 1.0, mbr.max.y + 1.0),
            pt(mbr.max.x + 1.0, mbr.min.y - 1.0),
        ),
        Segment::new(pt(0.5, mbr.min.y - 1.0), pt(0.5, mbr.max.y + 1.0)),
        Segment::new(pt(mbr.min.x - 1.0, 0.5), pt(mbr.max.x + 1.0, 0.5)),
    ];
    for v in poly.vertices() {
        segs.push(Segment::new(*v, *v));
        segs.push(Segment::new(*v, pt(v.x + 0.01, v.y + 0.01)));
    }
    for s in &segs {
        assert_eq!(
            prep.boundary_intersects_segment(s),
            poly.boundary_intersects_segment(s),
            "segment {s:?}"
        );
    }
}
