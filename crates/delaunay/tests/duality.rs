//! Integration tests for the Delaunay/Voronoi duality (Property 4 of the
//! reproduced paper) and point location.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaq_delaunay::{cell_polygon, Locate, Triangulation, VoronoiDiagram};
use vaq_geom::{orient2d, Point, Polygon, Rect};

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn uniform(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| p(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

fn window() -> Rect {
    Rect::new(p(-0.5, -0.5), p(1.5, 1.5))
}

/// `true` when any ring vertex lies on (or numerically at) the clipping
/// window boundary — such cells were truncated and may have lost the
/// Voronoi edge shared with a neighbour.
fn clipped_by_window(ring: &[Point], w: &Rect) -> bool {
    let eps = 1e-9;
    ring.iter().any(|v| {
        (v.x - w.min.x).abs() < eps
            || (v.x - w.max.x).abs() < eps
            || (v.y - w.min.y).abs() < eps
            || (v.y - w.max.y).abs() < eps
    })
}

/// The cell ring scaled slightly outward about its centroid, to absorb
/// the ~1 ulp rounding of Sutherland–Hodgman intersection vertices.
fn expanded(ring: &[Point]) -> Polygon {
    let poly = Polygon::new_unchecked(ring.to_vec());
    let c = poly.centroid();
    poly.scaled(1.0 + 1e-9, c)
}

/// Delaunay-adjacent vertices have touching Voronoi cells (they share the
/// bisector segment dual to the edge). Cells truncated by the clipping
/// window are skipped — truncation can remove the shared edge — and each
/// cell is expanded by ~1e-9 to absorb clipping round-off.
#[test]
fn adjacent_vertices_have_touching_cells() {
    let pts = uniform(150, 41);
    let tri = Triangulation::new(&pts).unwrap();
    let w = window();
    let vd = VoronoiDiagram::new(&tri, w);
    let mut checked = 0;
    for v in 0..tri.vertex_count() as u32 {
        if clipped_by_window(&vd.cell(v).polygon, &w) {
            continue;
        }
        let cv = expanded(&vd.cell(v).polygon);
        for &u in tri.neighbors(v) {
            if u < v || clipped_by_window(&vd.cell(u).polygon, &w) {
                continue;
            }
            let cu = expanded(&vd.cell(u).polygon);
            assert!(
                cv.intersects_polygon(&cu),
                "cells of adjacent {v} and {u} do not touch"
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "too few unclipped pairs checked: {checked}");
}

/// Cells of non-adjacent vertices never overlap with positive area: probe
/// points strictly inside one cell must not be strictly inside another.
#[test]
fn non_adjacent_cells_do_not_overlap() {
    let pts = uniform(80, 43);
    let tri = Triangulation::new(&pts).unwrap();
    let vd = VoronoiDiagram::new(&tri, window());
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..500 {
        let q = p(rng.gen::<f64>(), rng.gen::<f64>());
        let strictly_inside: Vec<u32> = (0..tri.vertex_count() as u32)
            .filter(|&v| {
                let ring = &vd.cell(v).polygon;
                ring.len() >= 3 && Polygon::new_unchecked(ring.clone()).contains_strict(q)
            })
            .collect();
        assert!(
            strictly_inside.len() <= 1,
            "point {q} strictly inside cells {strictly_inside:?}"
        );
    }
}

/// On-demand cells agree with the full-diagram extraction.
#[test]
fn cell_polygon_matches_diagram() {
    let pts = uniform(60, 45);
    let tri = Triangulation::new(&pts).unwrap();
    let vd = VoronoiDiagram::new(&tri, window());
    for v in 0..tri.vertex_count() as u32 {
        let on_demand = cell_polygon(&tri, v, &window());
        assert_eq!(on_demand, vd.cell(v).polygon, "vertex {v}");
    }
}

/// `locate` classifications are geometrically correct: `Face` means the
/// point is inside (or on) that triangle; `Outside` means outside the
/// hull; `Vertex` means exact coordinate match.
#[test]
fn locate_agrees_with_geometry() {
    let pts = uniform(200, 47);
    let tri = Triangulation::new(&pts).unwrap();
    let hull_poly =
        Polygon::new_unchecked(tri.hull().iter().map(|&h| tri.point(h)).collect::<Vec<_>>());
    let mut rng = StdRng::seed_from_u64(48);
    for _ in 0..400 {
        let q = p(rng.gen::<f64>() * 1.4 - 0.2, rng.gen::<f64>() * 1.4 - 0.2);
        match tri.locate(q) {
            Locate::Face(_) => {
                assert!(hull_poly.contains(q), "Face result for {q} outside hull");
            }
            Locate::Outside(_) => {
                assert!(
                    !hull_poly.contains_strict(q),
                    "Outside result for {q} strictly inside hull"
                );
            }
            Locate::Vertex(v) => assert_eq!(tri.point(v), q),
            Locate::Degenerate => unreachable!("non-degenerate input"),
        }
    }
    // Exact vertices are recognised.
    for v in (0..tri.vertex_count() as u32).step_by(17) {
        assert_eq!(tri.locate(tri.point(v)), Locate::Vertex(v));
    }
}

/// The hull returned by the triangulation is a convex CCW ring.
#[test]
fn hull_is_convex_and_ccw() {
    for seed in [51u64, 52, 53] {
        let pts = uniform(120, seed);
        let tri = Triangulation::new(&pts).unwrap();
        let hull: Vec<Point> = tri.hull().iter().map(|&h| tri.point(h)).collect();
        let n = hull.len();
        assert!(n >= 3);
        for i in 0..n {
            let o = orient2d(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]);
            assert!(o >= 0.0, "hull turn {i} is clockwise (seed {seed})");
        }
        // Strictly positive signed area ⇒ CCW orientation overall.
        assert!(Polygon::new_unchecked(hull).signed_area() > 0.0);
    }
}

/// Voronoi neighbours of `v` are exactly the generators whose cells touch
/// `v`'s cell: adjacency implies contact (with round-off expansion), and
/// for *non*-adjacent interior pairs the cells stay clearly apart (their
/// separation exceeds the expansion) except for single-point cocircular
/// contacts, which the expansion tolerates by excluding only pairs that
/// overlap with positive area — covered by
/// `non_adjacent_cells_do_not_overlap`.
#[test]
fn neighbourhood_equals_cell_contact_on_interior() {
    let pts = uniform(100, 55);
    let tri = Triangulation::new(&pts).unwrap();
    let w = window();
    let vd = VoronoiDiagram::new(&tri, w);
    let mut checked = 0;
    for v in 0..tri.vertex_count() as u32 {
        if clipped_by_window(&vd.cell(v).polygon, &w) {
            continue;
        }
        let cv = expanded(&vd.cell(v).polygon);
        for &u in tri.neighbors(v) {
            if clipped_by_window(&vd.cell(u).polygon, &w) {
                continue;
            }
            assert!(
                cv.intersects_polygon(&expanded(&vd.cell(u).polygon)),
                "adjacent {v},{u} must touch"
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "too few unclipped pairs checked: {checked}");
}
