//! Flat serialized representation of a built [`Triangulation`].
//!
//! A [`TriangulationFlat`] is the triangulation exploded into plain POD
//! arrays (`u32` ids, `f64` coordinates) — the structure-of-arrays layout
//! a snapshot file stores verbatim, and the layout
//! [`Triangulation::from_flat`] can hand straight back to the engine
//! without per-element decoding. Every field mirrors one internal array
//! of [`Triangulation`]; the round trip
//! `Triangulation::from_flat(tri.to_flat())` reconstructs a structure
//! that is bit-identical to the original (same ids, same slot order,
//! same free-list recycling order).
//!
//! The flat layout is **versioned by shape**: any change to the set,
//! order or meaning of these fields must bump the snapshot container
//! version (the container embeds a fingerprint of this layout and
//! refuses to load a mismatch).
//!
//! [`Triangulation`]: crate::Triangulation
//! [`Triangulation::from_flat`]: crate::Triangulation::from_flat

/// A [`Triangulation`](crate::Triangulation) exploded into flat POD
/// arrays, ready for verbatim storage in a snapshot section.
///
/// Produced by [`to_flat`](crate::Triangulation::to_flat); consumed by
/// [`from_flat`](crate::Triangulation::from_flat), which validates the
/// cross-array invariants (bounds, CSR monotonicity, free-list/DEAD
/// agreement) before rebuilding.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TriangulationFlat {
    /// Canonical vertex coordinates (a [`Point`](vaq_geom::Point) is two
    /// `f64`s, so the serialized form is still `x0 y0 x1 y1 …`).
    pub pts: Vec<vaq_geom::Point>,
    /// Input index → canonical vertex id.
    pub canon: Vec<u32>,
    /// CSR offsets: canonical vertex → range into [`members`](Self::members).
    pub members_off: Vec<u32>,
    /// CSR payload: the input indices that collapsed onto each canonical
    /// vertex, ascending per row.
    pub members: Vec<u32>,
    /// Triangle arena in slot order (each [`Tri`](crate::mesh::Tri)
    /// serializes as `v0 v1 v2 n0 n1 n2`), dead slots in place — see
    /// [`Mesh::raw_tris`](crate::mesh::Mesh::raw_tris).
    pub mesh_tris: Vec<crate::mesh::Tri>,
    /// Arena free list in stack order.
    pub mesh_free: Vec<u32>,
    /// CSR offsets of the Voronoi-neighbour adjacency.
    pub adj_off: Vec<u32>,
    /// CSR payload of the adjacency, ascending per row.
    pub adj: Vec<u32>,
    /// Hull vertices, CCW (degenerate mode: live path order).
    pub hull: Vec<u32>,
    /// `true` when the structure is in degenerate (collinear) path mode.
    pub degenerate: bool,
    /// Walk start hint (a live finite triangle; `u32::MAX` in degenerate
    /// mode).
    pub last_finite: u32,
    /// Canonical site weights; **empty means Euclidean** (a weighted
    /// build always has one weight per canonical vertex).
    pub weights: Vec<f64>,
    /// Hidden canonical vertices, sorted ascending.
    pub hidden: Vec<u32>,
    /// Live anchor per canonical vertex; empty when nothing is hidden.
    pub anchor: Vec<u32>,
}
