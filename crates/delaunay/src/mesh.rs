//! Triangle-based mesh storage for the Delaunay triangulation.
//!
//! The triangulation is stored as a flat arena of triangles, each holding
//! three vertex ids and three neighbour ids. The arena includes **ghost
//! triangles**: for every hull edge `a→b` (directed counter-clockwise, so
//! the triangulated region lies on its left) there is a ghost triangle
//! containing the reversed edge `b→a` and the symbolic vertex [`GHOST`].
//! Ghosts make the mesh closed — every directed edge has exactly one
//! triangle on its left — which removes all boundary special-casing from
//! point location and cavity carving.

/// Symbolic "vertex at infinity" used by ghost triangles.
pub const GHOST: u32 = u32::MAX;

/// Sentinel for a missing neighbour (only during construction of the very
/// first triangles; a finished mesh has no `NONE` links).
pub const NONE: u32 = u32::MAX;

/// Vertex-slot marker identifying a freed (dead) triangle in the arena.
const DEAD: u32 = u32::MAX - 1;

/// A triangle: three vertex ids `v` and three neighbour triangle ids `n`.
///
/// Indexing convention: `n[i]` is the triangle across the edge **opposite**
/// vertex `v[i]`, i.e. the edge `(v[(i+1)%3], v[(i+2)%3])`. Finite triangles
/// store their vertices in counter-clockwise order; ghost triangles hold
/// exactly one [`GHOST`] vertex and their finite edge, read cyclically while
/// skipping the ghost, is the *reversed* hull edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tri {
    /// Vertex ids (CCW for finite triangles).
    pub v: [u32; 3],
    /// Neighbour ids; `n[i]` shares the edge opposite `v[i]`.
    pub n: [u32; 3],
}

impl Tri {
    /// The directed edge opposite vertex slot `i`: `(v[i+1], v[i+2])`
    /// (indices mod 3). For a CCW finite triangle this edge is also
    /// directed CCW, so the triangle lies on its left.
    #[inline]
    pub fn edge(&self, i: usize) -> (u32, u32) {
        (self.v[(i + 1) % 3], self.v[(i + 2) % 3])
    }

    /// The slot of vertex `w` in this triangle, if present.
    #[inline]
    pub fn slot_of(&self, w: u32) -> Option<usize> {
        self.v.iter().position(|&x| x == w)
    }

    /// The slot `i` whose opposite edge equals the directed edge `(a, b)`.
    #[inline]
    pub fn slot_of_edge(&self, a: u32, b: u32) -> Option<usize> {
        (0..3).find(|&i| self.edge(i) == (a, b))
    }

    /// The slot holding [`GHOST`], if this is a ghost triangle.
    #[inline]
    pub fn ghost_slot(&self) -> Option<usize> {
        self.slot_of(GHOST)
    }

    /// `true` when this triangle contains the ghost vertex.
    #[inline]
    pub fn is_ghost(&self) -> bool {
        self.v.contains(&GHOST)
    }
}

/// Growable triangle arena with a free list.
///
/// Freed slots are recycled by subsequent allocations, so the arena stays
/// compact across the churn of Bowyer–Watson cavity re-triangulation
/// (each insertion frees the cavity triangles and allocates the star).
#[derive(Debug, Default)]
pub struct Mesh {
    tris: Vec<Tri>,
    free: Vec<u32>,
    live: usize,
}

impl Mesh {
    /// Creates an empty mesh.
    pub fn new() -> Mesh {
        Mesh::default()
    }

    /// Creates an empty mesh with capacity for `n` triangles.
    pub fn with_capacity(n: usize) -> Mesh {
        Mesh {
            tris: Vec::with_capacity(n),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (allocated, not freed) triangles, ghosts included.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total number of arena slots (live + dead). Slot ids are `< slots()`.
    #[inline]
    pub fn slots(&self) -> usize {
        self.tris.len()
    }

    /// Allocates a triangle with the given vertices and no neighbours.
    pub fn alloc(&mut self, v: [u32; 3]) -> u32 {
        debug_assert!(v.iter().all(|&x| x != DEAD));
        self.live += 1;
        let t = Tri {
            v,
            n: [NONE, NONE, NONE],
        };
        if let Some(id) = self.free.pop() {
            self.tris[id as usize] = t;
            id
        } else {
            self.tris.push(t);
            (self.tris.len() - 1) as u32
        }
    }

    /// Frees triangle `t`, returning its slot to the free list.
    pub fn release(&mut self, t: u32) {
        debug_assert!(!self.is_dead(t), "double free of triangle {t}");
        self.tris[t as usize].v = [DEAD, DEAD, DEAD];
        self.free.push(t);
        self.live -= 1;
    }

    /// `true` when slot `t` has been freed.
    #[inline]
    pub fn is_dead(&self, t: u32) -> bool {
        matches!(self.tris[t as usize].v, [DEAD, ..])
    }

    /// Read access to triangle `t`. Must be live.
    #[inline]
    pub fn tri(&self, t: u32) -> &Tri {
        debug_assert!(!self.is_dead(t), "access to dead triangle {t}");
        &self.tris[t as usize]
    }

    /// Write access to triangle `t`. Must be live.
    #[inline]
    pub fn tri_mut(&mut self, t: u32) -> &mut Tri {
        debug_assert!(!self.is_dead(t), "access to dead triangle {t}");
        &mut self.tris[t as usize]
    }

    /// Sets the neighbour link of `t` across the edge opposite slot `i`,
    /// and the reciprocal link in the neighbour (which must contain the
    /// reversed edge).
    pub fn link(&mut self, t: u32, i: usize, u: u32) {
        let (a, b) = self.tri(t).edge(i);
        self.tri_mut(t).n[i] = u;
        let j = self
            .tri(u)
            .slot_of_edge(b, a)
            .expect("link: neighbour does not share the reversed edge");
        self.tri_mut(u).n[j] = t;
    }

    /// Iterates over the ids of all live triangles (ghosts included).
    pub fn live_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.tris.len() as u32).filter(move |&t| !self.is_dead(t))
    }

    /// Flat export of the arena for snapshot encoding: every slot in
    /// arena order, dead slots included **in place** with their `DEAD`
    /// vertex markers and whatever stale neighbour ids they held when
    /// freed (deterministic, so round-trips are exact).
    pub fn raw_tris(&self) -> Vec<Tri> {
        self.tris.clone()
    }

    /// The free-list slot ids in stack order (preserved across a
    /// round-trip so a rebuilt mesh recycles slots identically).
    pub fn free_slots(&self) -> &[u32] {
        &self.free
    }

    /// Rebuilds an arena from [`Mesh::raw_tris`] + [`Mesh::free_slots`]
    /// output, validating that the free list and the `DEAD`-marked slots
    /// agree exactly. Takes the slot array by value — a snapshot load
    /// hands over the decoded arena without another copy.
    ///
    /// # Errors
    ///
    /// A human-readable message when a free id is out of bounds or
    /// duplicated, or the free set does not match the set of dead slots.
    pub fn from_tris(tris: Vec<Tri>, free: Vec<u32>) -> Result<Mesh, String> {
        let slots = tris.len();
        let mut in_free = vec![false; slots];
        for &f in &free {
            let Some(flag) = in_free.get_mut(f as usize) else {
                return Err(format!("free-list id {f} out of bounds ({slots} slots)"));
            };
            if *flag {
                return Err(format!("free-list id {f} listed twice"));
            }
            *flag = true;
        }
        for (t, tri) in tris.iter().enumerate() {
            let dead = matches!(tri.v, [DEAD, ..]);
            if dead != in_free[t] {
                return Err(format!(
                    "slot {t}: free list and DEAD marker disagree (dead={dead})"
                ));
            }
        }
        Ok(Mesh {
            live: slots - free.len(),
            tris,
            free,
        })
    }

    /// Checks the structural invariant that every neighbour link is
    /// mutual and refers to the shared edge reversed. Test/debug helper;
    /// `O(live triangles)`.
    pub fn check_links(&self) -> Result<(), String> {
        for t in self.live_ids() {
            let tri = self.tri(t);
            for i in 0..3 {
                let u = tri.n[i];
                if u == NONE {
                    return Err(format!("triangle {t} has NONE neighbour at slot {i}"));
                }
                if self.is_dead(u) {
                    return Err(format!("triangle {t} links dead triangle {u}"));
                }
                let (a, b) = tri.edge(i);
                let back = self.tri(u).slot_of_edge(b, a);
                match back {
                    None => {
                        return Err(format!(
                            "triangle {t} edge {i} ({a},{b}): neighbour {u} lacks reversed edge"
                        ))
                    }
                    Some(j) if self.tri(u).n[j] != t => {
                        return Err(format!(
                            "triangle {t} edge {i}: neighbour {u} links {} instead",
                            self.tri(u).n[j]
                        ))
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_indexing_is_opposite_vertex() {
        let t = Tri {
            v: [10, 20, 30],
            n: [NONE, NONE, NONE],
        };
        assert_eq!(t.edge(0), (20, 30));
        assert_eq!(t.edge(1), (30, 10));
        assert_eq!(t.edge(2), (10, 20));
        assert_eq!(t.slot_of_edge(30, 10), Some(1));
        assert_eq!(t.slot_of_edge(10, 30), None);
        assert_eq!(t.slot_of(20), Some(1));
        assert_eq!(t.slot_of(99), None);
    }

    #[test]
    fn ghost_detection() {
        let g = Tri {
            v: [5, GHOST, 7],
            n: [NONE, NONE, NONE],
        };
        assert!(g.is_ghost());
        assert_eq!(g.ghost_slot(), Some(1));
        let f = Tri {
            v: [1, 2, 3],
            n: [NONE, NONE, NONE],
        };
        assert!(!f.is_ghost());
        assert_eq!(f.ghost_slot(), None);
    }

    #[test]
    fn alloc_release_recycles_slots() {
        let mut m = Mesh::new();
        let a = m.alloc([0, 1, 2]);
        let b = m.alloc([1, 2, 3]);
        assert_eq!(m.live_count(), 2);
        m.release(a);
        assert_eq!(m.live_count(), 1);
        assert!(m.is_dead(a));
        let c = m.alloc([4, 5, 6]);
        assert_eq!(c, a, "freed slot must be recycled");
        assert!(!m.is_dead(c));
        assert_eq!(m.live_count(), 2);
        assert_eq!(m.live_ids().count(), 2);
        let _ = b;
    }

    #[test]
    fn link_sets_both_directions() {
        let mut m = Mesh::new();
        // Two triangles sharing edge (1,2): CCW (0,1,2) and (2,1,3).
        let t0 = m.alloc([0, 1, 2]);
        let t1 = m.alloc([2, 1, 3]);
        m.link(t0, 0, t1); // edge opposite vertex 0 in t0 = (1,2)
        assert_eq!(m.tri(t0).n[0], t1);
        // In t1, the reversed edge (2,1) is opposite vertex 3 (slot 2).
        assert_eq!(m.tri(t1).n[2], t0);
        // check_links fails only because the remaining slots are NONE.
        assert!(m.check_links().is_err());
    }
}
